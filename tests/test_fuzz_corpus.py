"""Regression corpus replay: every shrunk reproducer checked into
``tests/corpus/`` is re-run under every registered protocol on every test
run, plus round-trip tests for the corpus text format (which doubles as a
plain repro-trace workload file)."""

import os

import pytest

from repro.fuzz.corpus import (
    load_corpus, load_program, program_from_text, program_to_text,
    save_program,
)
from repro.fuzz.differential import DifferentialRunner
from repro.fuzz.generator import FuzzKnobs, generate_program
from repro.workloads.tracefile import MAGIC

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS = load_corpus(CORPUS_DIR)


def test_corpus_is_nonempty():
    names = [name for name, _ in CORPUS]
    assert len(names) >= 8
    # The classic litmus shapes must stay represented.
    for required in ("mp.trace", "sb.trace", "lb.trace", "iriw.trace",
                     "corr.trace", "toy-tso-shrunk.trace"):
        assert required in names


@pytest.mark.fuzz_smoke
@pytest.mark.parametrize("filename,program", CORPUS,
                         ids=[name for name, _ in CORPUS])
def test_corpus_replays_clean_under_all_protocols(small_cfg, filename,
                                                  program):
    runner = DifferentialRunner(cfg=small_cfg)
    verdict = runner.check_program(program)
    assert verdict.passed, verdict.describe()


def test_corpus_files_are_valid_trace_files():
    for path in (os.path.join(CORPUS_DIR, n) for n, _ in CORPUS):
        with open(path) as f:
            assert f.readline().rstrip() == MAGIC


def test_text_round_trip():
    p = generate_program(4, FuzzKnobs(n_cores=3, warps_per_core=2,
                                      n_addrs=3, p_atomic=0.1,
                                      fence_density=0.3,
                                      p_compute=0.3)).normalized()
    q = program_from_text(program_to_text(p))
    assert q.warps == p.warps
    assert q.n_addrs == len(p.used_slots())
    assert q.seed == p.seed  # parsed back from the "# seed:" header


def test_save_load_round_trip(tmp_path):
    p = generate_program(8, FuzzKnobs(n_addrs=2)).normalized()
    path = str(tmp_path / "repro.trace")
    save_program(path, p, comments=["unit-test entry"])
    q = load_program(path)
    assert q.warps == p.warps
    assert q.name == "repro"  # name comes from the file stem
    with open(path) as f:
        text = f.read()
    assert "unit-test entry" in text
