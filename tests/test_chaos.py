"""The deterministic chaos layer: spec grammar, pure draws, and the
executor contract battery.

Every fault a plan can inject must leave the sweep stack in one of two
legal states: correct results in input order, or a structured
:class:`~repro.errors.HarnessError` in the failure taxonomy. The battery
plans in :data:`repro.chaos.campaign.DEFAULT_PLANS` assert exactly that,
one fault kind and execution mode at a time.
"""

from __future__ import annotations

import errno

import pytest

from repro.chaos import FaultPlan, plan_from_env
from repro.chaos.campaign import DEFAULT_PLANS, _run_cache_plan, _run_map_plan
from repro.chaos.plan import ChaosError


class TestSpecGrammar:
    def test_bare_kind_defaults(self):
        plan = FaultPlan.parse("flaky")
        spec = plan.faults["flaky"]
        assert (spec.prob, spec.mode) == (1.0, "first")
        assert plan.seed == 0 and plan.exit_after is None

    def test_full_clause_and_directives(self):
        plan = FaultPlan.parse(
            "crash:0.3:always;hang;seed=7;hang-s=2.5;exit-after=3")
        assert plan.faults["crash"].prob == 0.3
        assert plan.faults["crash"].mode == "always"
        assert "hang" in plan.faults
        assert plan.seed == 7
        assert plan.hang_s == 2.5
        assert plan.exit_after == 3

    def test_empty_clauses_tolerated(self):
        plan = FaultPlan.parse(";flaky;;")
        assert set(plan.faults) == {"flaky"}

    @pytest.mark.parametrize("bad", [
        "meteor-strike",            # unknown fault kind
        "crash:1.5",                # probability out of range
        "crash:-0.1",
        "crash:0.5:sometimes",      # unknown mode
        "crash:notafloat",
        "seed=notanint",
        "exit-after=maybe",
        "turbo=1",                  # unknown directive
    ])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(ChaosError):
            FaultPlan.parse(bad)


class TestDeterminism:
    def test_decide_is_pure(self):
        a = FaultPlan.parse("flaky:0.5;seed=42")
        b = FaultPlan.parse("flaky:0.5;seed=42")
        ids = [f"cell[{i}]" for i in range(64)]
        assert ([a.decide("worker", "flaky", i) for i in ids]
                == [b.decide("worker", "flaky", i) for i in ids])

    def test_seed_changes_the_draw(self):
        ids = [f"cell[{i}]" for i in range(64)]
        a = FaultPlan.parse("flaky:0.5;seed=1")
        b = FaultPlan.parse("flaky:0.5;seed=2")
        assert ([a.decide("worker", "flaky", i) for i in ids]
                != [b.decide("worker", "flaky", i) for i in ids])

    def test_prob_extremes(self):
        never = FaultPlan.parse("flaky:0")
        always = FaultPlan.parse("flaky:1")
        ids = [f"cell[{i}]" for i in range(16)]
        assert not any(never.decide("worker", "flaky", i) for i in ids)
        assert all(always.decide("worker", "flaky", i) for i in ids)

    def test_mode_first_spares_retries(self):
        plan = FaultPlan.parse("flaky")
        assert plan.decide("worker", "flaky", "c", attempt=1)
        assert not plan.decide("worker", "flaky", "c", attempt=2)
        forever = FaultPlan.parse("flaky:1:always")
        assert forever.decide("worker", "flaky", "c", attempt=5)

    def test_unlisted_kind_never_fires(self):
        plan = FaultPlan.parse("flaky")
        assert not plan.decide("worker", "crash", "c")


class TestByteCorruption:
    def test_torn_write_truncates(self):
        plan = FaultPlan.parse("torn-write")
        data = b'{"key": "value", "result": {"cycles": 12345}}'
        damaged, kind = plan.corrupt_bytes("k", data)
        assert kind == "torn-write"
        assert damaged == data[:len(data) // 2]

    def test_bit_flip_changes_one_interior_byte(self):
        plan = FaultPlan.parse("bit-flip;seed=3")
        data = b'{"key": "value", "result": {"cycles": 12345}}'
        damaged, kind = plan.corrupt_bytes("k", data)
        assert kind == "bit-flip"
        assert len(damaged) == len(data)
        diffs = [i for i in range(len(data)) if damaged[i] != data[i]]
        assert len(diffs) == 1
        assert 0 < diffs[0] < len(data) - 1, "flip hit the JSON envelope"

    def test_no_cache_faults_passes_through(self):
        plan = FaultPlan.parse("flaky")
        data = b'{"intact": true}'
        assert plan.corrupt_bytes("k", data) == (data, None)

    def test_enospc_raises_with_errno(self):
        plan = FaultPlan.parse("enospc")
        with pytest.raises(OSError) as err:
            plan.check_write("cache", "k")
        assert err.value.errno == errno.ENOSPC
        clean = FaultPlan.parse("flaky")
        clean.check_write("cache", "k")  # no-op


class TestEnvPlumbing:
    def test_unset_means_no_plan(self, monkeypatch):
        monkeypatch.delenv("RCC_CHAOS", raising=False)
        assert plan_from_env() is None
        monkeypatch.setenv("RCC_CHAOS", "")
        assert plan_from_env() is None

    def test_same_spec_memoized_new_spec_reparsed(self, monkeypatch):
        monkeypatch.setenv("RCC_CHAOS", "flaky;seed=5")
        first = plan_from_env()
        assert first is plan_from_env(), (
            "plan must be memoized — exit-after counts completions on it")
        monkeypatch.setenv("RCC_CHAOS", "flaky;seed=6")
        assert plan_from_env().seed == 6


class TestContractBattery:
    """One pytest case per battery plan: inject the fault, assert the
    executor contract (see :mod:`repro.chaos.campaign`)."""

    @pytest.mark.parametrize(
        "plan", DEFAULT_PLANS,
        ids=[f"{p.mode}-{p.spec.split(';')[0]}" for p in DEFAULT_PLANS])
    def test_plan_upholds_contract(self, plan, tmp_path):
        runner = (_run_cache_plan if plan.mode in ("cache",)
                  else _run_map_plan)
        outcome = runner(plan, str(tmp_path))
        assert outcome.ok, outcome.describe()
