"""Unit tests for address mapping and message flit accounting."""

import pytest

from repro.common.addresses import AddressMap
from repro.common.messages import CONTROL_FLITS, Message
from repro.common.types import MsgKind
from repro.errors import ConfigError


class TestAddressMap:
    def test_block_alignment(self):
        am = AddressMap(block_bytes=128, n_l2_banks=8)
        assert am.block_of(0) == 0
        assert am.block_of(127) == 0
        assert am.block_of(128) == 128
        assert am.block_of(0x12345) == (0x12345 // 128) * 128

    def test_bank_interleaving(self):
        am = AddressMap(block_bytes=128, n_l2_banks=4)
        banks = [am.bank_of(i * 128) for i in range(8)]
        assert banks == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_same_block(self):
        am = AddressMap()
        assert am.same_block(0, 127)
        assert not am.same_block(127, 128)

    def test_addresses_in_same_block_map_to_same_bank(self):
        am = AddressMap(block_bytes=128, n_l2_banks=8)
        for base in (0, 128, 4096, 999 * 128):
            assert am.bank_of(base) == am.bank_of(base + 127)

    def test_rejects_non_power_of_two_block(self):
        with pytest.raises(ConfigError):
            AddressMap(block_bytes=100)

    def test_rejects_nonpositive_banks(self):
        with pytest.raises(ConfigError):
            AddressMap(n_l2_banks=0)


class TestMessageFlits:
    def test_control_message_size(self):
        msg = Message(MsgKind.GETS, 0, ("core", 0), ("l2", 0))
        assert msg.flits(block_bytes=128, flit_bytes=4) == CONTROL_FLITS

    def test_data_message_includes_block(self):
        msg = Message(MsgKind.DATA, 0, ("l2", 0), ("core", 0))
        assert msg.flits(128, 4) == CONTROL_FLITS + 32

    def test_renew_is_control_only(self):
        msg = Message(MsgKind.RENEW, 0, ("l2", 0), ("core", 0))
        assert msg.flits(128, 4) == CONTROL_FLITS

    def test_write_carries_data(self):
        msg = Message(MsgKind.WRITE, 0, ("core", 0), ("l2", 0))
        assert msg.flits(128, 4) > CONTROL_FLITS

    def test_unique_ids(self):
        a = Message(MsgKind.ACK, 0, ("l2", 0), ("core", 0))
        b = Message(MsgKind.ACK, 0, ("l2", 0), ("core", 0))
        assert a.msg_id != b.msg_id

    @pytest.mark.parametrize("kind,carries", [
        (MsgKind.GETS, False), (MsgKind.ACK, False), (MsgKind.INV, False),
        (MsgKind.INV_ACK, False), (MsgKind.DATA, True), (MsgKind.WRITE, True),
        (MsgKind.ATOMIC, True), (MsgKind.GETX, True), (MsgKind.WBACK, True),
    ])
    def test_carries_data_matrix(self, kind, carries):
        assert kind.carries_data is carries
