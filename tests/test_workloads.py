"""Tests for the synthetic workload generators."""

import pytest

from repro.common.types import MemOpKind
from repro.config import GPUConfig
from repro.errors import ConfigError
from repro.workloads import (
    WORKLOADS, get_workload, inter_workgroup, intra_workgroup,
)
from repro.workloads.base import BLOCK


@pytest.fixture(scope="module")
def gen_cfg():
    return GPUConfig.small()


def test_registry_has_all_twelve():
    assert len(WORKLOADS) == 12
    assert set(inter_workgroup()) == {"bh", "bfs", "cl", "dlb", "stn", "vpr"}
    assert set(intra_workgroup()) == {"hsp", "kmn", "lps", "ndl", "sr", "lud"}


def test_unknown_workload_raises():
    with pytest.raises(ConfigError):
        get_workload("nonsense")


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_shapes_match_config(gen_cfg, name):
    wl = get_workload(name, intensity=0.2)
    traces = wl.generate(gen_cfg)
    assert len(traces) == gen_cfg.n_cores
    for core_traces in traces:
        assert len(core_traces) == gen_cfg.warps_per_core
        for t in core_traces:
            assert t.n_mem_ops > 0
            t.validate(gen_cfg.warps_per_core)


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_deterministic_under_seed(gen_cfg, name):
    a = get_workload(name, intensity=0.2, seed=5).generate(gen_cfg)
    b = get_workload(name, intensity=0.2, seed=5).generate(gen_cfg)
    for ca, cb in zip(a, b):
        for ta, tb in zip(ca, cb):
            assert ta.ops == tb.ops


@pytest.mark.parametrize("name", ["bh", "bfs", "vpr", "dlb"])
def test_different_seeds_differ(gen_cfg, name):
    a = get_workload(name, intensity=0.3, seed=1).generate(gen_cfg)
    b = get_workload(name, intensity=0.3, seed=2).generate(gen_cfg)
    assert any(ta.ops != tb.ops
               for ca, cb in zip(a, b)
               for ta, tb in zip(ca, cb))


def _touched_blocks(traces, kinds):
    out = [set() for _ in traces]
    for c, core_traces in enumerate(traces):
        for t in core_traces:
            for op_ in t.ops:
                if op_.kind in kinds:
                    out[c].add(op_.addr // BLOCK)
    return out


@pytest.mark.parametrize("name", sorted(intra_workgroup()))
def test_intra_workloads_have_no_cross_core_sharing(gen_cfg, name):
    """Intra-workgroup benchmarks must be correct without coherence:
    no block is touched by two different cores."""
    wl = get_workload(name, intensity=0.3)
    traces = wl.generate(gen_cfg)
    mem_kinds = {MemOpKind.LOAD, MemOpKind.STORE, MemOpKind.ATOMIC}
    per_core = _touched_blocks(traces, mem_kinds)
    for i in range(len(per_core)):
        for j in range(i + 1, len(per_core)):
            assert not (per_core[i] & per_core[j]), (
                f"{name}: cores {i} and {j} share blocks")


@pytest.mark.parametrize("name", sorted(inter_workgroup()))
def test_inter_workloads_share_written_data_across_cores(gen_cfg, name):
    """Inter-workgroup benchmarks must have at least one block written by
    one core and read/written by another."""
    wl = get_workload(name, intensity=0.5)
    traces = wl.generate(gen_cfg)
    writes = _touched_blocks(traces, {MemOpKind.STORE, MemOpKind.ATOMIC})
    touches = _touched_blocks(
        traces, {MemOpKind.LOAD, MemOpKind.STORE, MemOpKind.ATOMIC})
    shared_rw = False
    for i in range(len(writes)):
        for j in range(len(touches)):
            if i != j and (writes[i] & touches[j]):
                shared_rw = True
    assert shared_rw, f"{name} has no inter-core read-write sharing"


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_intensity_scales_length(gen_cfg, name):
    short = get_workload(name, intensity=0.2).generate(gen_cfg)
    long = get_workload(name, intensity=1.0).generate(gen_cfg)
    assert sum(t.n_mem_ops for ct in long for t in ct) > \
        sum(t.n_mem_ops for ct in short for t in ct)


def test_category_metadata():
    for name, cls in WORKLOADS.items():
        assert cls.category in ("inter", "intra")
        assert cls.description
        assert cls.name == name


def test_dlb_steals_are_rare_but_present():
    cfg = GPUConfig.small()
    wl = get_workload("dlb", intensity=2.0)
    traces = wl.generate(cfg)
    # Count atomics touching other cores' queue control blocks.
    from repro.workloads.interwg.dlb import QUEUE_BASE
    steals = own = 0
    for c, core_traces in enumerate(traces):
        for t in core_traces:
            for op_ in t.ops:
                if op_.kind is MemOpKind.ATOMIC:
                    q = op_.addr // BLOCK - QUEUE_BASE
                    if 0 <= q < cfg.n_cores:
                        if q == c:
                            own += 1
                        else:
                            steals += 1
    assert steals > 0
    assert steals < own / 4  # stealing is rare (the paper's point)
