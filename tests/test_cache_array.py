"""Unit tests for the set-associative cache array.

Parametrized over both tag-array implementations — the object
``CacheArray`` and the flat-column ``FlatTagArray`` — which must honor
the same contract (the flat kernel swaps one for the other underneath
unmodified controller cold paths).
"""

import pytest

from repro.common.types import L1State
from repro.config import CacheConfig
from repro.errors import SimulationError
from repro.kernel.layout import FlatTagArray
from repro.mem.cache_array import CacheArray


@pytest.fixture(params=[CacheArray, FlatTagArray], ids=["object", "flat"])
def arr_cls(request):
    return request.param


def make_array(arr_cls, size=1024, assoc=2, block=128):
    return arr_cls(CacheConfig(size_bytes=size, assoc=assoc,
                               block_bytes=block), L1State.I)


def test_insert_and_lookup(arr_cls):
    arr = make_array(arr_cls)
    line = arr.insert(0x100, L1State.V)
    assert arr.lookup(0x100) is line
    assert arr.lookup(0x17F) is line  # same block
    assert arr.lookup(0x200) is None


def test_insert_existing_resets_state(arr_cls):
    arr = make_array(arr_cls)
    arr.insert(0x100, L1State.V)
    line = arr.insert(0x100, L1State.IV)
    assert line.state is L1State.IV
    assert arr.occupancy() == 1


def test_lru_eviction_order(arr_cls):
    arr = make_array(arr_cls, size=512, assoc=2)  # 2 sets of 2
    n_sets = arr.n_sets
    stride = 128 * n_sets  # same set
    evicted = []
    arr.insert(0, L1State.V, evicted.append)
    arr.insert(stride, L1State.V, evicted.append)
    arr.lookup(0).touch()  # make block 0 MRU
    arr.insert(2 * stride, L1State.V, evicted.append)
    assert [ln.addr for ln in evicted] == [stride]
    assert arr.lookup(0) is not None


def test_invalid_lines_preferred_victims(arr_cls):
    arr = make_array(arr_cls, size=512, assoc=2)
    stride = 128 * arr.n_sets
    arr.insert(0, L1State.V)
    inv = arr.insert(stride, L1State.V)
    inv.state = L1State.I
    arr.lookup(0)  # no touch needed; invalid preferred regardless of LRU
    evicted = []
    arr.insert(2 * stride, L1State.V, evicted.append)
    assert [ln.addr for ln in evicted] == [stride]


def test_pinned_lines_never_evicted(arr_cls):
    arr = make_array(arr_cls, size=512, assoc=2)
    stride = 128 * arr.n_sets
    arr.insert(0, L1State.IV).pinned = True
    arr.insert(stride, L1State.IV).pinned = True
    assert not arr.can_allocate(2 * stride)
    with pytest.raises(SimulationError):
        arr.insert(2 * stride, L1State.V)


def test_can_allocate_when_space_or_victim(arr_cls):
    arr = make_array(arr_cls, size=512, assoc=2)
    stride = 128 * arr.n_sets
    assert arr.can_allocate(0)
    arr.insert(0, L1State.V)
    arr.insert(stride, L1State.V)
    assert arr.can_allocate(2 * stride)  # unpinned victim available
    assert arr.can_allocate(0)           # already present


def test_remove(arr_cls):
    arr = make_array(arr_cls)
    arr.insert(0x100, L1State.V)
    removed = arr.remove(0x100)
    assert removed is not None
    assert arr.lookup(0x100) is None
    assert arr.remove(0x100) is None


def test_removed_line_keeps_fields(arr_cls):
    """A reference held across remove() still reads the departed line —
    stale-``CacheLine`` aliasing the flat views must reproduce (the MESI
    eviction-recall path hands removed lines to ``_on_evict``)."""
    arr = make_array(arr_cls)
    line = arr.insert(0x100, L1State.V)
    line.value = "old"
    line.sharers.add(("core", 1))
    removed = arr.remove(0x100)
    assert removed.value == "old"
    assert removed.sharers == {("core", 1)}
    assert removed.addr == 0x100


def test_clear_drops_everything(arr_cls):
    arr = make_array(arr_cls)
    for i in range(4):
        arr.insert(i * 128, L1State.V)
    arr.clear()
    assert arr.occupancy() == 0
    assert list(arr.lines()) == []


def test_set_lines(arr_cls):
    arr = make_array(arr_cls, size=512, assoc=2)
    stride = 128 * arr.n_sets
    arr.insert(0, L1State.V)
    arr.insert(stride, L1State.V)
    assert len(arr.set_lines(0)) == 2
    assert len(arr.set_lines(128)) in (0, 1, 2)  # other set


def test_equal_lru_tie_breaks_by_insertion_order(arr_cls):
    """Victim tie-breaking is deterministic: with equal LRU ticks the
    first-inserted line wins (strict ``<`` scan in both kernels — dict
    insertion order in the object array, way order in the flat one).
    Equal ticks cannot occur in a simulation (the shared global counter
    is unique), but the scan must stay pinned so a future tick-source
    change cannot silently reshuffle victims."""
    arr = make_array(arr_cls, size=1024, assoc=4, block=128)
    stride = 128 * arr.n_sets
    for i in range(4):
        arr.insert(i * stride, L1State.V)
    for i in range(4):
        arr.lookup(i * stride)._lru = 5
    evicted = []
    arr.insert(4 * stride, L1State.V, evicted.append)
    assert [ln.addr for ln in evicted] == [0]


def test_geometry_validation():
    with pytest.raises(Exception):
        CacheConfig(size_bytes=1000, assoc=3).validate()
