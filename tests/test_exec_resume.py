"""Kill-and-resume equivalence for journaled campaigns.

Each case runs a real campaign in a child process with the chaos
campaign-kill armed (``RCC_CHAOS=exit-after=N``): the child dies by
``os._exit`` right after journaling its N-th completed cell — the
deterministic stand-in for a CI SIGKILL. A second child with the same
flags (chaos off) must *resume*: replay the N journaled cells without
re-running any of them, finish the rest, and produce output
byte-identical (modulo wall-clock fields) to a clean run in a fresh
directory.
"""

from __future__ import annotations

import pytest

from repro.chaos.campaign import CHILD_KINDS, kill_resume_roundtrip

pytestmark = pytest.mark.chaos


@pytest.mark.parametrize("kind", CHILD_KINDS)
def test_kill_and_resume_round_trip(kind, tmp_path):
    # The quick ablation grid is only two cells; kill after one so the
    # resume still has work left to do.
    exit_after = 1 if kind == "ablation" else 2
    outcome = kill_resume_roundtrip(kind, str(tmp_path),
                                    exit_after=exit_after)
    assert outcome.ok, outcome.describe()
