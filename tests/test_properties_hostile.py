"""Property battery over the hostile-workload lab.

Randomized-but-seeded draws from every hostile regime's knob space assert
the three contracts the lab leans on:

* the coherence-invariant **sanitizer stays silent** — hostility is a
  performance regime, never a correctness excuse;
* sweep execution is a pure wall-clock optimization — **serial, parallel,
  and cache-replayed runs of a hostile cell produce byte-identical
  result payloads**;
* the **SC witness agrees**: MESI, TCS, and RCC executions of the same
  hostile trace all check out sequentially consistent.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import GPUConfig
from repro.consistency.checker import SCChecker
from repro.exec import SweepExecutor
from repro.exec.cache import ResultCache
from repro.exec.cells import SimCell, canonical_overrides, derive_seed
from repro.sim.gpusim import run_simulation
from repro.workloads import get_workload
from repro.workloads.hostile import REGIMES

REGIME_NAMES = sorted(REGIMES)

#: One shared small machine; hostile generators must behave on any shape.
CFG = GPUConfig.small()


def _sampled_cell(regime_name: str, draw_seed: int, protocol: str,
                  intensity: float = 0.25) -> SimCell:
    """One seeded mutation draw from a regime, as a sweep cell."""
    import random
    regime = REGIMES[regime_name]
    rng = random.Random(derive_seed(draw_seed, "prop", regime_name))
    spec, ts = regime.sample_cell_inputs(rng)
    return SimCell(cfg=CFG, protocol=protocol, workload=spec,
                   intensity=intensity,
                   seed=derive_seed(draw_seed, "cell", regime_name),
                   ts_overrides=canonical_overrides(ts))


def _run(cell: SimCell, **kw):
    wl = get_workload(cell.workload, intensity=cell.intensity,
                      seed=cell.seed)
    return run_simulation(cell.effective_cfg(), cell.protocol,
                          wl.generate(cell.effective_cfg()),
                          cell.workload, **kw)


# ----------------------------------------------------------------------
# Sanitizer invariants hold across every regime's knob space
# ----------------------------------------------------------------------
@given(st.sampled_from(REGIME_NAMES),
       st.integers(min_value=0, max_value=10**6),
       st.sampled_from(["RCC", "MESI", "TCS"]))
@settings(max_examples=20, deadline=None)
def test_hostile_draws_run_sanitizer_clean(regime_name, draw_seed,
                                           protocol):
    cell = _sampled_cell(regime_name, draw_seed, protocol)
    res = _run(cell, sanitize=True)  # InvariantViolation would raise
    assert res.mem_ops > 0


@given(st.integers(min_value=0, max_value=10**6),
       st.sampled_from(["TCW", "RCC-WO"]))
@settings(max_examples=8, deadline=None)
def test_hostile_draws_complete_under_weak_protocols(draw_seed, protocol):
    # Weak-ordering protocols retire every op of the hostile trace too.
    cell = _sampled_cell("pingpong", draw_seed, protocol)
    wl = get_workload(cell.workload, intensity=cell.intensity,
                      seed=cell.seed)
    traces = wl.generate(cell.effective_cfg())
    expected = sum(t.n_mem_ops for ct in traces for t in ct)
    res = run_simulation(cell.effective_cfg(), cell.protocol, traces,
                         cell.workload, sanitize=True)
    assert res.mem_ops == expected


# ----------------------------------------------------------------------
# Serial / parallel / cached replay: byte-identical payloads
# ----------------------------------------------------------------------
@pytest.mark.parametrize("regime_name", REGIME_NAMES)
def test_serial_parallel_cached_payloads_identical(regime_name, tmp_path):
    cells = [_sampled_cell(regime_name, draw, proto)
             for draw, proto in ((1, "RCC"), (2, "MESI"))]
    serial = SweepExecutor(jobs=1).run_cells(cells)
    parallel = SweepExecutor(jobs=2).run_cells(cells)
    cache = ResultCache(str(tmp_path / "cache"))
    warm_exec = SweepExecutor(jobs=2, cache=cache)
    warm_exec.run_cells(cells)          # populate
    cached = warm_exec.run_cells(cells)  # replay from disk
    assert warm_exec.last_stats.n_cached == len(cells)
    payloads = [r.to_payload() for r in serial]
    assert [r.to_payload() for r in parallel] == payloads
    assert [r.to_payload() for r in cached] == payloads


# ----------------------------------------------------------------------
# SC-witness agreement across protocol families, per regime
# ----------------------------------------------------------------------
@pytest.mark.parametrize("regime_name", REGIME_NAMES)
@pytest.mark.parametrize("protocol", ["MESI", "TCS", "RCC"])
def test_hostile_regimes_are_sequentially_consistent(regime_name,
                                                     protocol):
    """Every hostile regime, under every SC protocol family (directory
    MESI, physical-timestamp TCS, logical-timestamp RCC), yields an
    execution the SC witness checker accepts."""
    cell = _sampled_cell(regime_name, draw_seed=3, protocol=protocol)
    res = _run(cell, record_ops=True)
    SCChecker().check_or_raise(res.op_logs)


@given(st.integers(min_value=0, max_value=10**6))
@settings(max_examples=6, deadline=None)
def test_storm_random_draws_stay_sc_across_rollover(draw_seed):
    """The storm's whole point is rollover pressure; SC must survive the
    epoch clamp for arbitrary knob draws, not just the center point."""
    cell = _sampled_cell("storm", draw_seed, "RCC")
    res = _run(cell, record_ops=True)
    SCChecker().check_or_raise(res.op_logs)


# ----------------------------------------------------------------------
# Spec strings: the naming layer the whole lab rides on
# ----------------------------------------------------------------------
@given(st.sampled_from(REGIME_NAMES),
       st.integers(min_value=0, max_value=10**6))
@settings(max_examples=40, deadline=None)
def test_sampled_specs_round_trip_and_regenerate(regime_name, draw_seed):
    """A sampled spec string reconstructs the exact same generator
    (same spec back), and the same (spec, seed, cfg) always regenerates
    an identical trace — the property the result cache depends on."""
    import random
    regime = REGIMES[regime_name]
    rng = random.Random(draw_seed)
    spec, _ = regime.sample_cell_inputs(rng)
    wl = get_workload(spec, intensity=0.25, seed=7)
    assert wl.spec == spec
    t1 = get_workload(spec, intensity=0.25, seed=7).generate(CFG)
    t2 = get_workload(spec, intensity=0.25, seed=7).generate(CFG)
    assert [[t.ops for t in ct] for ct in t1] \
        == [[t.ops for t in ct] for ct in t2]
