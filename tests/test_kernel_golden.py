"""Golden-payload battery: the flat kernel is bit-identical to the oracle.

Every hash in ``tests/golden/flat_kernel_golden.json`` was captured from
the **object kernel** (``RCC_FLAT_KERNEL=0``) — the dict-of-dataclass
controllers the flat-array kernel transliterates. The grid covers the
three protocols the flat kernel re-implements (RCC, RCC-WO, MESI) across
the battery workloads, every registered lease policy, and two
intensities on the small machine. Recomputing each cell with the flat
kernel forced on and comparing payload SHA-256 proves the restructuring
changed *nothing observable* — not cycles, not stats, not a single
payload field.

If a deliberate protocol behavior change lands later, regenerate with::

    PYTHONPATH=src python tests/golden/regen_flat_kernel_golden.py

(the regen script forces the object kernel, so it always captures the
oracle even on a post-refactor tree) and say so in the commit message.
"""

from __future__ import annotations

import hashlib
import json
import os

import pytest

from repro.config import GPUConfig
from repro.core.lease_policy import available_lease_policies
from repro.exec import SimCell, run_cell
from repro.kernel import flat_kernel_enabled

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden",
                           "flat_kernel_golden.json")

with open(GOLDEN_PATH) as _fh:
    GOLDEN = json.load(_fh)

assert GOLDEN["kind"] == "flat-kernel-golden" and GOLDEN["schema"] == 1


@pytest.fixture(autouse=True)
def _force_flat_kernel(monkeypatch):
    """Pin the kernel under test: flat on, legacy escape hatch off."""
    monkeypatch.setenv("RCC_FLAT_KERNEL", "1")
    monkeypatch.delenv("RCC_LEGACY_ENGINE", raising=False)
    assert flat_kernel_enabled()


def payload_hash(result) -> str:
    """The canonical payload digest the golden file stores."""
    blob = json.dumps(result.to_payload(), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def cell_for(key: str) -> SimCell:
    """Rebuild the SimCell a golden key (``RCC/bfs/fixed@0.25``) names."""
    protocol, workload, rest = key.split("/")
    policy, intensity = rest.rsplit("@", 1)
    return SimCell(cfg=GPUConfig.small(), protocol=protocol,
                   workload=workload, intensity=float(intensity), seed=1234,
                   ts_overrides=(("lease_policy", policy),))


@pytest.mark.parametrize("key", sorted(GOLDEN["cells"]))
def test_flat_kernel_bit_identical(key):
    expected = GOLDEN["cells"][key]
    result = run_cell(cell_for(key))
    assert result.mem_ops == expected["mem_ops"], \
        f"{key}: mem_ops drifted (workload generation changed)"
    assert result.cycles == expected["cycles"], \
        f"{key}: cycles drifted (flat kernel timing diverged)"
    assert payload_hash(result) == expected["payload_sha256"], (
        f"{key}: result payload differs from the object-kernel oracle — "
        "the flat-array kernel is no longer bit-identical")


def test_golden_grid_shape():
    """The golden grid is the full 3 x 4 x policies x 2 cross it claims."""
    keys = GOLDEN["cells"].keys()
    protocols = {k.split("/")[0] for k in keys}
    workloads = {k.split("/")[1] for k in keys}
    policies = {k.split("/")[2].rsplit("@", 1)[0] for k in keys}
    assert protocols == {"RCC", "RCC-WO", "MESI"}
    assert workloads == {"bfs", "stn", "dlb", "lud"}
    assert policies == set(available_lease_policies())
    assert len(keys) == 3 * 4 * len(policies) * 2
