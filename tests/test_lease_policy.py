"""Property battery for the pluggable lease policies.

Every *registered* policy — built-ins and any test-injected probes — must
satisfy the contract the RCC protocol layers rely on:

* **bounds**: every decision lies within ``[lease_min, lease_max]``; the
  rollover guard band (§III-D) is sized from ``lease_max``, so a longer
  grant could overflow the timestamp width between rollover checks;
* **renew never shortens**: observing a successful renew never shrinks
  the lease the policy would grant next for the same request;
* **monotone lease end**: folding any decision stream through the L2's
  grant formula ``exp' = max(exp, ver + lease, now + lease)`` under
  monotone reads never moves a block's lease end backward;
* **determinism**: identical observation streams produce identical
  decision sequences from fresh instances (the sweep cache keys results
  by configuration alone, and the differential battery replays streams
  expecting identical decisions).

Plus registry behavior and the ``.cell`` schema's optional
``lease_policy`` field (backward-compatible with pre-policy corpus
files).
"""

from __future__ import annotations

import json
import random

import pytest

from repro.config import GPUConfig, TimestampConfig
from repro.core.lease_policy import (
    LEASE_POLICIES,
    LeasePolicy,
    available_lease_policies,
    make_lease_policy,
    register_lease_policy,
    unregister_lease_policy,
)
from repro.errors import ConfigError
from repro.exec.cells import SimCell
from repro.fuzz.cellfile import CELL_SCHEMA, load_cell, save_cell
from repro.mem.cache_array import CacheLine

ALL_POLICIES = sorted(LEASE_POLICIES)


def _cfg(policy: str, **kw) -> TimestampConfig:
    cfg = TimestampConfig(lease_policy=policy, **kw)
    cfg.validate()
    return cfg


# ----------------------------------------------------------------------
# Observation streams
# ----------------------------------------------------------------------

def observation_stream(seed: int, n_events: int = 200, n_lines: int = 4):
    """A seeded stream of the events an L2 bank feeds its policy.

    Reads carry a monotonically advancing requester clock (logical time
    never runs backward at one bank) and a small PC pool; writes bump the
    line's version past its lease end the way RCC rule 3 does.
    """
    rng = random.Random(seed)
    now = 0
    events = []
    for _ in range(n_events):
        line_idx = rng.randrange(n_lines)
        pc = rng.choice([None, 0, 1, 2, 7])
        kind = rng.choices(["read", "write", "renew", "miss"],
                           weights=[6, 2, 1, 1])[0]
        now += rng.randrange(0, 300)
        events.append((kind, line_idx, now, pc))
    return events


def replay(policy: LeasePolicy, events, lines=None):
    """Feed one stream to a policy; return the decision sequence and the
    per-line lease-end history the grant formula produces."""
    lines = lines if lines is not None else {}
    decisions = []
    exp_history = []
    for kind, line_idx, now, pc in events:
        line = lines.setdefault(line_idx, CacheLine(line_idx << 7, "V"))
        if kind == "read":
            lease = policy.lease_for(line, now, pc)
            decisions.append(lease)
            line.exp = max(line.exp, line.ver + lease, now + lease)
            exp_history.append((line_idx, line.exp))
        elif kind == "write":
            line.ver = max(line.ver, now, line.exp + 1)
            policy.on_write(line)
        elif kind == "renew":
            policy.on_renew(line, pc)
        elif kind == "miss":
            policy.on_expired_miss(line, pc)
    return decisions, exp_history


# ----------------------------------------------------------------------
# The contract, per registered policy
# ----------------------------------------------------------------------

@pytest.mark.parametrize("name", ALL_POLICIES)
@pytest.mark.parametrize("seed", [0, 7, 99])
def test_decisions_stay_within_bounds(name, seed):
    cfg = _cfg(name)
    policy = make_lease_policy(cfg)
    decisions, _ = replay(policy, observation_stream(seed))
    assert decisions, "stream produced no reads"
    for lease in decisions:
        assert cfg.lease_min <= lease <= cfg.lease_max, (
            f"{name}: decision {lease} escapes "
            f"[{cfg.lease_min}, {cfg.lease_max}] — the §III-D guard band "
            "no longer covers it")


@pytest.mark.parametrize("name", ALL_POLICIES)
def test_bounds_hold_with_predictor_disabled(name):
    cfg = _cfg(name, predictor_enabled=False)
    policy = make_lease_policy(cfg)
    decisions, _ = replay(policy, observation_stream(3))
    for lease in decisions:
        assert cfg.lease_min <= lease <= cfg.lease_max


@pytest.mark.parametrize("name", ALL_POLICIES)
@pytest.mark.parametrize("seed", [1, 42])
def test_renew_never_shortens_next_lease(name, seed):
    """Two fresh instances see the same stream; one then observes one
    extra successful renew. Its next decision must not be shorter —
    renewal is the *profitable* signal, and a policy that shrinks on it
    would punish exactly the blocks renewing works for."""
    events = observation_stream(seed, n_events=120)
    for pc in (None, 1):
        base, extra = (make_lease_policy(_cfg(name)) for _ in range(2))
        lines_a, lines_b = {}, {}
        replay(base, events, lines_a)
        replay(extra, events, lines_b)
        probe_a = lines_a.setdefault(0, CacheLine(0, "V"))
        probe_b = lines_b.setdefault(0, CacheLine(0, "V"))
        extra.on_renew(probe_b, pc)
        now = 10 ** 6
        assert extra.lease_for(probe_b, now, pc) >= \
            base.lease_for(probe_a, now, pc)


@pytest.mark.parametrize("name", ALL_POLICIES)
@pytest.mark.parametrize("seed", [0, 13, 77])
def test_lease_end_monotone_per_block(name, seed):
    """Under the grant formula, a block's lease end never regresses
    whatever the policy decides (monotone reads feed it)."""
    policy = make_lease_policy(_cfg(name))
    _, exp_history = replay(policy, observation_stream(seed))
    last = {}
    for line_idx, exp in exp_history:
        assert exp >= last.get(line_idx, 0), (
            f"{name}: lease end on line {line_idx} moved backward")
        last[line_idx] = exp


@pytest.mark.parametrize("name", ALL_POLICIES)
@pytest.mark.parametrize("seed", [5, 21])
def test_deterministic_given_same_stream(name, seed):
    events = observation_stream(seed)
    a, _ = replay(make_lease_policy(_cfg(name)), events)
    b, _ = replay(make_lease_policy(_cfg(name)), events)
    assert a == b


@pytest.mark.parametrize("name", ALL_POLICIES)
def test_decisions_respect_tightened_band(name):
    """Shrinking the configured band shrinks every decision with it —
    policies read the band from the config, never hardcode it."""
    cfg = _cfg(name, lease_min=16, lease_default=24, lease_max=32)
    policy = make_lease_policy(cfg)
    decisions, _ = replay(policy, observation_stream(11))
    for lease in decisions:
        assert 16 <= lease <= 32


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

class _ProbePolicy(LeasePolicy):
    name = "probe-constant"

    def lease_for(self, line, now=0, pc=None):
        return self.clamp(self.cfg.lease_default)


class TestRegistry:
    def test_builtins_present(self):
        assert {"fixed", "adaptive", "pc-pred"} <= set(
            available_lease_policies())

    def test_register_and_sweep_and_unregister(self):
        register_lease_policy(_ProbePolicy)
        try:
            assert "probe-constant" in available_lease_policies()
            cfg = _cfg("probe-constant")
            policy = make_lease_policy(cfg)
            decisions, _ = replay(policy, observation_stream(2))
            assert set(decisions) == {cfg.lease_default}
        finally:
            unregister_lease_policy("probe-constant")
        assert "probe-constant" not in available_lease_policies()

    def test_duplicate_registration_rejected(self):
        register_lease_policy(_ProbePolicy)
        try:
            with pytest.raises(ConfigError):
                register_lease_policy(_ProbePolicy)
            register_lease_policy(_ProbePolicy, replace=True)
        finally:
            unregister_lease_policy("probe-constant")

    def test_builtin_unregistration_refused(self):
        with pytest.raises(ConfigError):
            unregister_lease_policy("fixed")

    def test_unknown_policy_rejected_at_validate(self):
        with pytest.raises(ConfigError):
            TimestampConfig(lease_policy="nope").validate()

    def test_unknown_policy_rejected_at_make(self):
        with pytest.raises(ConfigError):
            make_lease_policy(TimestampConfig(lease_policy="nope"))

    def test_simcell_lease_policy_accessor(self):
        cfg = GPUConfig.small()
        plain = SimCell(cfg=cfg, protocol="RCC", workload="bfs")
        assert plain.lease_policy == "fixed"
        overridden = SimCell(cfg=cfg, protocol="RCC", workload="bfs",
                             ts_overrides=(("lease_policy", "adaptive"),))
        assert overridden.lease_policy == "adaptive"


# ----------------------------------------------------------------------
# .cell schema: optional lease_policy field
# ----------------------------------------------------------------------

class TestCellSchema:
    def _cell(self, **ts):
        return SimCell(cfg=GPUConfig.small(), protocol="RCC",
                       workload="storm:hot_blocks=2", intensity=0.5,
                       seed=9, ts_overrides=tuple(sorted(ts.items())))

    def test_policy_promoted_to_top_level(self, tmp_path):
        cell = self._cell(lease_policy="adaptive", bits=12)
        path = str(tmp_path / "p.cell")
        save_cell(path, cell, "small")
        with open(path) as fh:
            doc = json.load(fh)
        assert doc["schema"] == CELL_SCHEMA
        assert doc["lease_policy"] == "adaptive"
        # The promoted field no longer hides inside ts_overrides...
        assert ["lease_policy", "adaptive"] not in doc["ts_overrides"]
        # ...but loading folds it back, round-tripping the cell exactly.
        loaded, _ = load_cell(path)
        assert loaded == cell
        assert loaded.lease_policy == "adaptive"
        assert loaded.effective_cfg().ts.lease_policy == "adaptive"

    def test_cell_without_policy_round_trips(self, tmp_path):
        cell = self._cell(bits=12)
        path = str(tmp_path / "np.cell")
        save_cell(path, cell, "small")
        with open(path) as fh:
            doc = json.load(fh)
        assert "lease_policy" not in doc
        loaded, _ = load_cell(path)
        assert loaded == cell
        assert loaded.lease_policy == "fixed"

    def test_pre_policy_document_still_parses(self, tmp_path):
        """A corpus file written before the field existed (hand-built
        here, byte-for-byte the old shape) loads unchanged."""
        doc = {
            "schema": CELL_SCHEMA, "kind": "hostile-cell",
            "config": "small", "protocol": "RCC-WO", "workload": "storm",
            "intensity": 1.0, "seed": 3,
            "ts_overrides": [["bits", 11], ["predictor_enabled", False]],
            "reason": "", "expect": {},
        }
        path = str(tmp_path / "old.cell")
        with open(path, "w") as fh:
            json.dump(doc, fh)
        loaded, _ = load_cell(path)
        assert loaded.lease_policy == "fixed"
        assert loaded.ts_overrides == (("bits", 11),
                                       ("predictor_enabled", False))


# ----------------------------------------------------------------------
# Sanitizer: the policy-ceiling invariant on grants
# ----------------------------------------------------------------------

class TestPolicyCeilingInvariant:
    """``rcc.grant.policy_ceiling``: a grant may stretch a lease at most
    ``lease_max`` past ``max(ver, m_now)`` — any further and the §III-D
    rollover guard band (sized from ``lease_max``) no longer covers it.
    The bound is against ``max(prev_exp, ...)``: an earlier grant to a
    higher-clock requester can legally leave ``exp`` beyond a later
    low-clock requester's own window."""

    LEASE_MAX = 64

    def _suite(self):
        from repro.sanitize.invariants import RCCInvariants
        return RCCInvariants(ts_bits=16, lease_max=self.LEASE_MAX)

    def _grant(self, seq=1, **fields):
        from repro.sanitize.events import CoherenceEvent, EventKind
        base = {"ver": 0, "m_now": 0, "prev_exp": 0, "epoch": 0}
        base.update(fields)
        return CoherenceEvent(seq, cycle=seq, kind=EventKind.L2_READ_GRANT,
                              unit="L2", unit_id=0, addr=0x80,
                              fields=base)

    def test_in_band_grant_passes(self):
        suite = self._suite()
        ev = self._grant(ver=10, m_now=100, prev_exp=50,
                         exp=100 + self.LEASE_MAX)
        assert suite.check(ev) is None

    def test_overlong_grant_caught(self):
        suite = self._suite()
        ev = self._grant(ver=10, m_now=100, prev_exp=50,
                         exp=100 + self.LEASE_MAX + 1)
        violation = suite.check(ev)
        assert violation is not None
        assert violation.invariant == "rcc.grant.policy_ceiling"

    def test_inherited_long_exp_is_legal(self):
        """exp far past this requester's window is fine when a previous
        grant put it there (prev_exp carries it)."""
        suite = self._suite()
        ev = self._grant(ver=10, m_now=20, prev_exp=5000, exp=5000)
        assert suite.check(ev) is None

    def test_check_skipped_without_lease_max(self):
        from repro.sanitize.invariants import RCCInvariants
        suite = RCCInvariants(ts_bits=16)
        ev = self._grant(ver=0, m_now=0, prev_exp=0, exp=10 ** 4)
        assert suite.check(ev) is None

    def test_suites_for_wires_lease_max(self):
        from repro.sanitize.invariants import RCCInvariants, suites_for
        suites = suites_for("RCC", ts_bits=16, lease_max=self.LEASE_MAX)
        rcc = [s for s in suites if isinstance(s, RCCInvariants)]
        assert rcc and rcc[0].lease_max == self.LEASE_MAX

    def test_sanitizer_passes_config_lease_max(self):
        from repro.config import GPUConfig
        from repro.sanitize.invariants import RCCInvariants
        from repro.sanitize.sanitizer import Sanitizer
        cfg = GPUConfig.small()
        san = Sanitizer("RCC-WO", cfg)
        rcc = [s for s in san.suites if isinstance(s, RCCInvariants)]
        assert rcc and rcc[0].lease_max == cfg.ts.lease_max
