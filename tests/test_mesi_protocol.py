"""Protocol-level tests for the MESI directory baseline and SC-ideal."""

import pytest

from repro.common.types import MemOpKind
from repro.gpu.trace import atomic_op, compute_op, load_op, store_op
from repro.sim.gpusim import GPUSimulator
from tests.conftest import program_traces

BLOCK = 128


def build(cfg, protocol, programs, **kw):
    return GPUSimulator(cfg, protocol, program_traces(cfg, programs),
                        "mesi-test", **kw)


def test_store_invalidate_sharers_before_ack(tiny_cfg):
    sim = build(tiny_cfg, "MESI", {
        (0, 0): [load_op(0)],
        (1, 0): [compute_op(200), store_op(0)],
    }, record_ops=True)
    res = sim.run()
    assert res.l2_invalidations_sent >= 1
    assert res.l1_invalidations >= 1
    # Sharer's copy is gone.
    assert sim.proto.l1s[0].cache.lookup(0) is None


def test_store_latency_grows_with_sharers(tiny_cfg):
    """Both runs store to an L2-resident block; only the second has a
    sharer to invalidate, and only it pays the extra round trip."""
    lone = build(tiny_cfg, "MESI", {
        (1, 0): [store_op(0), compute_op(400), store_op(0)],
    }, record_ops=True)
    r_lone = lone.run()
    shared = build(tiny_cfg, "MESI", {
        (0, 0): [compute_op(200), load_op(0)],
        (1, 0): [store_op(0), compute_op(400), store_op(0)],
    }, record_ops=True)
    r_shared = shared.run()

    def second_store_latency(res):
        return sorted((o for o in res.op_logs
                       if o.kind is MemOpKind.STORE and o.core_id == 1),
                      key=lambda o: o.prog_index)[-1].latency

    assert second_store_latency(r_shared) > second_store_latency(r_lone)


def test_load_hits_until_invalidated(tiny_cfg):
    sim = build(tiny_cfg, "MESI", {
        (0, 0): [load_op(0), compute_op(30), load_op(0)],
    })
    res = sim.run()
    assert res.l1_load_hits == 1


def test_directory_tracks_multiple_sharers(tiny_cfg):
    sim = build(tiny_cfg, "MESI", {
        (0, 0): [load_op(0)],
        (1, 0): [load_op(0)],
    })
    sim.run()
    bank = sim.proto.l2s[sim.amap.bank_of(0)]
    assert bank.cache.lookup(0).sharers == {("core", 0), ("core", 1)}


def test_writer_own_l1_also_invalidated(tiny_cfg):
    """Sibling warps of the writer's SM may hold the block: the directory
    must invalidate the requester's L1 too."""
    sim = build(tiny_cfg, "MESI", {
        (0, 0): [load_op(0)],                       # core 0 caches the block
        (0, 1): [compute_op(250), store_op(0)],     # same core stores
        (1, 0): [load_op(0)],
    }, record_ops=True)
    res = sim.run()
    line = sim.proto.l1s[0].cache.lookup(0)
    assert line is None  # stale copy dropped even on the writing core


def test_atomic_is_rmw_at_directory(tiny_cfg):
    sim = build(tiny_cfg, "MESI", {
        (0, 0): [store_op(0), atomic_op(0)],
    }, record_ops=True)
    res = sim.run()
    at = [o for o in res.op_logs if o.kind is MemOpKind.ATOMIC][0]
    st = [o for o in res.op_logs if o.kind is MemOpKind.STORE][0]
    assert at.read_value == st.value


def test_l2_eviction_recalls_sharers(tiny_cfg):
    n_blocks = (tiny_cfg.l2_per_bank.size_bytes
                // tiny_cfg.l2_per_bank.block_bytes)
    span = 3 * n_blocks * tiny_cfg.l2_banks
    ops = [load_op(0)] + [load_op((i + 4) * BLOCK) for i in range(span)][:200]
    sim = build(tiny_cfg, "MESI", {(0, 0): ops})
    res = sim.run()
    assert res.l2_evictions > 0


def test_ideal_store_no_invalidate_latency(tiny_cfg):
    mesi = build(tiny_cfg, "MESI", {
        (0, 0): [load_op(0)],
        (1, 0): [compute_op(200), store_op(0)],
    }, record_ops=True)
    r_mesi = mesi.run()
    ideal = build(tiny_cfg, "SC-IDEAL", {
        (0, 0): [load_op(0)],
        (1, 0): [compute_op(200), store_op(0)],
    }, record_ops=True)
    r_ideal = ideal.run()

    def st_lat(res):
        return [o.latency for o in res.op_logs
                if o.kind is MemOpKind.STORE][0]

    assert st_lat(r_ideal) < st_lat(r_mesi)
    # Ideal invalidations are free: no INV traffic on the NoC.
    assert r_ideal.l1_invalidations >= 1
    from repro.common.types import MsgKind
    assert ideal.noc.stats.msgs_by_kind[MsgKind.INV] == 0


def test_ideal_still_coherent(tiny_cfg):
    sim = build(tiny_cfg, "SC-IDEAL", {
        (0, 0): [load_op(0), compute_op(400), load_op(0)],
        (1, 0): [compute_op(150), store_op(0)],
    }, record_ops=True)
    res = sim.run()
    loads = sorted((o for o in res.op_logs
                    if o.kind is MemOpKind.LOAD and o.core_id == 0),
                   key=lambda o: o.prog_index)
    st = [o for o in res.op_logs if o.kind is MemOpKind.STORE][0]
    assert loads[-1].read_value == st.value
