"""Protocol-level tests for the MESI directory baseline and SC-ideal."""

import pytest

from repro.common.types import MemOpKind
from repro.gpu.trace import atomic_op, compute_op, load_op, store_op
from repro.sim.gpusim import GPUSimulator
from tests.conftest import program_traces

BLOCK = 128


def build(cfg, protocol, programs, **kw):
    return GPUSimulator(cfg, protocol, program_traces(cfg, programs),
                        "mesi-test", **kw)


def test_store_invalidate_sharers_before_ack(tiny_cfg):
    sim = build(tiny_cfg, "MESI", {
        (0, 0): [load_op(0)],
        (1, 0): [compute_op(200), store_op(0)],
    }, record_ops=True)
    res = sim.run()
    assert res.l2_invalidations_sent >= 1
    assert res.l1_invalidations >= 1
    # Sharer's copy is gone.
    assert sim.proto.l1s[0].cache.lookup(0) is None


def test_store_latency_grows_with_sharers(tiny_cfg):
    """Both runs store to an L2-resident block; only the second has a
    sharer to invalidate, and only it pays the extra round trip."""
    lone = build(tiny_cfg, "MESI", {
        (1, 0): [store_op(0), compute_op(400), store_op(0)],
    }, record_ops=True)
    r_lone = lone.run()
    shared = build(tiny_cfg, "MESI", {
        (0, 0): [compute_op(200), load_op(0)],
        (1, 0): [store_op(0), compute_op(400), store_op(0)],
    }, record_ops=True)
    r_shared = shared.run()

    def second_store_latency(res):
        return sorted((o for o in res.op_logs
                       if o.kind is MemOpKind.STORE and o.core_id == 1),
                      key=lambda o: o.prog_index)[-1].latency

    assert second_store_latency(r_shared) > second_store_latency(r_lone)


def test_load_hits_until_invalidated(tiny_cfg):
    sim = build(tiny_cfg, "MESI", {
        (0, 0): [load_op(0), compute_op(30), load_op(0)],
    })
    res = sim.run()
    assert res.l1_load_hits == 1


def test_directory_tracks_multiple_sharers(tiny_cfg):
    sim = build(tiny_cfg, "MESI", {
        (0, 0): [load_op(0)],
        (1, 0): [load_op(0)],
    })
    sim.run()
    bank = sim.proto.l2s[sim.amap.bank_of(0)]
    assert bank.cache.lookup(0).sharers == {("core", 0), ("core", 1)}


def test_writer_own_l1_also_invalidated(tiny_cfg):
    """Sibling warps of the writer's SM may hold the block: the directory
    must invalidate the requester's L1 too."""
    sim = build(tiny_cfg, "MESI", {
        (0, 0): [load_op(0)],                       # core 0 caches the block
        (0, 1): [compute_op(250), store_op(0)],     # same core stores
        (1, 0): [load_op(0)],
    }, record_ops=True)
    res = sim.run()
    line = sim.proto.l1s[0].cache.lookup(0)
    assert line is None  # stale copy dropped even on the writing core


def test_atomic_is_rmw_at_directory(tiny_cfg):
    sim = build(tiny_cfg, "MESI", {
        (0, 0): [store_op(0), atomic_op(0)],
    }, record_ops=True)
    res = sim.run()
    at = [o for o in res.op_logs if o.kind is MemOpKind.ATOMIC][0]
    st = [o for o in res.op_logs if o.kind is MemOpKind.STORE][0]
    assert at.read_value == st.value


def test_l2_eviction_recalls_sharers(tiny_cfg):
    n_blocks = (tiny_cfg.l2_per_bank.size_bytes
                // tiny_cfg.l2_per_bank.block_bytes)
    span = 3 * n_blocks * tiny_cfg.l2_banks
    ops = [load_op(0)] + [load_op((i + 4) * BLOCK) for i in range(span)][:200]
    sim = build(tiny_cfg, "MESI", {(0, 0): ops})
    res = sim.run()
    assert res.l2_evictions > 0


def test_ideal_store_no_invalidate_latency(tiny_cfg):
    mesi = build(tiny_cfg, "MESI", {
        (0, 0): [load_op(0)],
        (1, 0): [compute_op(200), store_op(0)],
    }, record_ops=True)
    r_mesi = mesi.run()
    ideal = build(tiny_cfg, "SC-IDEAL", {
        (0, 0): [load_op(0)],
        (1, 0): [compute_op(200), store_op(0)],
    }, record_ops=True)
    r_ideal = ideal.run()

    def st_lat(res):
        return [o.latency for o in res.op_logs
                if o.kind is MemOpKind.STORE][0]

    assert st_lat(r_ideal) < st_lat(r_mesi)
    # Ideal invalidations are free: no INV traffic on the NoC.
    assert r_ideal.l1_invalidations >= 1
    from repro.common.types import MsgKind
    assert ideal.noc.stats.msgs_by_kind[MsgKind.INV] == 0


def test_ideal_still_coherent(tiny_cfg):
    sim = build(tiny_cfg, "SC-IDEAL", {
        (0, 0): [load_op(0), compute_op(400), load_op(0)],
        (1, 0): [compute_op(150), store_op(0)],
    }, record_ops=True)
    res = sim.run()
    loads = sorted((o for o in res.op_logs
                    if o.kind is MemOpKind.LOAD and o.core_id == 0),
                   key=lambda o: o.prog_index)
    st = [o for o in res.op_logs if o.kind is MemOpKind.STORE][0]
    assert loads[-1].read_value == st.value


class TestEvictionRecallRace:
    """Regression: an L2 eviction recalls its sharers' copies, but the
    recall acks travel on the NoC. Until every ack returns, the directory
    must refuse to re-allocate the block — a refetched line starts with an
    empty sharer set, so a store could apply while an old sharer still
    holds a (now stale) valid copy, silently breaking write atomicity.
    Found by the coherence-invariant sanitizer (mesi.write.single_writer)
    on the bfs workload."""

    def test_refetch_blocked_until_recall_acks(self, small_cfg):
        from repro.common.messages import Message
        from repro.common.types import L2State, MsgKind
        from tests.conftest import empty_traces

        sim = GPUSimulator(small_cfg, "MESI", empty_traces(small_cfg),
                           "recall-race", sanitize=True)
        l2 = sim.proto.l2s[0]
        inbox = []
        sim.noc.register(("core", 0),
                         lambda m: inbox.append((sim.engine.now, m)))

        # Directory line with one sharer, evicted the way cache.insert
        # evicts a victim (remove + callback).
        line = l2.cache.insert(0, L2State.V, l2._on_evict)
        line.value = "old"
        line.sharers.add(("core", 1))
        l2.cache.remove(0)
        l2._on_evict(line)
        assert l2._recalls[0] == 1  # recall INV in flight to core 1

        # A store for the same block arrives before the recall ack
        # returns: it must be retried, not refetched.
        l2.on_message(Message(kind=MsgKind.GETX, addr=0, src=("core", 0),
                              dst=("l2", 0), value="new",
                              meta={"record": None, "warp": None}))
        assert l2.cache.lookup(0) is None
        assert l2.mshr.get(0) is None

        # Core 1's L1 acks the recall over the NoC; the retried store
        # then refetches and applies with no stale copy anywhere.
        sim.engine.run()
        assert l2._recalls == {}
        assert l2.cache.lookup(0).value == "new"
        acks = [m for _, m in inbox if m.kind is MsgKind.ACK]
        assert len(acks) == 1
        assert sim.sanitizer.events_seen > 0  # and it stayed quiet
