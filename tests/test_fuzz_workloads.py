"""The hostile-lab campaign driver (:mod:`repro.fuzz.workloads`), cell
reproducer files (:mod:`repro.fuzz.cellfile`), and the ``repro-fuzz
--workloads`` CLI surface."""

import json
import os

import pytest

from repro.config import GPUConfig
from repro.errors import InvariantViolation, ReproError
from repro.exec.cells import SimCell
from repro.fuzz import cli
from repro.fuzz.cellfile import (
    CELL_SCHEMA, cell_files, load_cell, replay_cell, save_cell,
)
from repro.fuzz.workloads import (
    DEFAULT_PROTOCOLS, _INTENSITIES, HostileCampaignResult, HostileRun,
    _attach_cliffs, _execute_hostile, plan_cells, run_hostile_campaign,
)
from repro.sanitize.sanitizer import ENV_SANITIZE
from repro.workloads import REGIMES, get_workload
from repro.workloads.hostile import select_regimes

CORPUS = os.path.join(os.path.dirname(__file__), "corpus")
CFG = GPUConfig.small()


def _tiny_cell(protocol="RCC", spec="rwext:shared_blocks=1", seed=11):
    return SimCell(cfg=CFG, protocol=protocol, workload=spec,
                   intensity=0.25, seed=seed)


# ----------------------------------------------------------------------
# plan_cells
# ----------------------------------------------------------------------
class TestPlanCells:
    def test_deterministic_from_seed(self):
        regimes = select_regimes("all")
        a = plan_cells(regimes, 12, 7, CFG, DEFAULT_PROTOCOLS)
        b = plan_cells(regimes, 12, 7, CFG, DEFAULT_PROTOCOLS)
        assert [(r.name, c) for r, c in a] == [(r.name, c) for r, c in b]

    def test_different_seed_moves_the_grid(self):
        regimes = select_regimes("all")
        a = plan_cells(regimes, 12, 7, CFG, DEFAULT_PROTOCOLS)
        b = plan_cells(regimes, 12, 8, CFG, DEFAULT_PROTOCOLS)
        assert [c for _, c in a] != [c for _, c in b]

    def test_draw_zero_is_the_unmutated_center(self):
        regimes = select_regimes("all")
        planned = plan_cells(regimes, len(regimes), 0, CFG,
                             DEFAULT_PROTOCOLS)
        for regime, cell in planned:
            spec, ts = regime.default_cell_inputs()
            assert cell.workload == spec
            assert dict(cell.ts_overrides) == ts

    def test_round_robin_and_valid_draws(self):
        regimes = select_regimes("all")
        planned = plan_cells(regimes, 13, 3, CFG, DEFAULT_PROTOCOLS)
        assert [r.name for r, _ in planned[:5]] == [r.name for r in regimes]
        for _, cell in planned:
            assert cell.protocol in DEFAULT_PROTOCOLS
            assert cell.intensity in _INTENSITIES
            # Every sampled spec must resolve through the registry.
            get_workload(cell.workload, intensity=cell.intensity,
                         seed=cell.seed)


# ----------------------------------------------------------------------
# The worker
# ----------------------------------------------------------------------
class TestExecuteHostile:
    def test_ok_record_shape(self):
        rec = _execute_hostile(_tiny_cell())
        assert rec["status"] == "ok"
        assert rec["mem_ops"] > 0 and rec["events"] > 0
        assert rec["wall_s"] > 0 and rec["events_per_s"] > 0
        assert "sc_stall_cycles" in rec and "rollovers" in rec

    def test_violation_becomes_a_record(self, monkeypatch):
        def boom(cell):
            raise InvariantViolation("rcc.test", "<ev>", "detail", "cite")
        monkeypatch.setattr("repro.fuzz.workloads.run_cell", boom)
        rec = _execute_hostile(_tiny_cell())
        assert rec["status"] == "violation"
        assert "rcc.test" in rec["message"]

    def test_error_becomes_a_record(self, monkeypatch):
        def boom(cell):
            raise ReproError("engine exploded")
        monkeypatch.setattr("repro.fuzz.workloads.run_cell", boom)
        rec = _execute_hostile(_tiny_cell())
        assert rec["status"] == "error"
        assert "engine exploded" in rec["message"]


# ----------------------------------------------------------------------
# Cliff detection
# ----------------------------------------------------------------------
def _result(records, norm_med=None, stall_med=None, calibration=1.0,
            cliff_ratio=0.125, stall_factor=20.0):
    runs = [HostileRun(regime="storm", cell=_tiny_cell(protocol=proto),
                       config_name="small", record=rec)
            for proto, rec in records]
    return HostileCampaignResult(
        config_name="small", runs=runs, calibration=calibration,
        baseline_path="x.json" if norm_med is not None else None,
        baseline_norm_median=norm_med, baseline_stall_median=stall_med,
        cliff_ratio=cliff_ratio, stall_factor=stall_factor)


def _ok(events=1000, wall=1.0, stalls=0, ops=100):
    return {"status": "ok", "wall_s": wall, "events": events,
            "cycles": 1, "mem_ops": ops, "sc_stall_cycles": stalls,
            "rollovers": 0, "events_per_s": events / wall, "message": ""}


class TestAttachCliffs:
    def test_throughput_cliff_below_ratio(self):
        res = _result([("RCC", _ok(events=1000, wall=1.0))], norm_med=100.0)
        _attach_cliffs(res)  # norm = 1000/1/1.0 = 1000 -> fine
        assert not res.runs[0].cliffs
        res = _result([("RCC", _ok(events=10, wall=1.0))], norm_med=100.0)
        _attach_cliffs(res)  # norm = 10 < 0.125 * 100
        assert any("throughput cliff" in c for c in res.runs[0].cliffs)

    def test_parallel_campaign_skips_throughput(self):
        res = _result([("RCC", _ok(events=10, wall=1.0))], norm_med=100.0)
        _attach_cliffs(res, trust_wall_clock=False)
        assert not any("throughput" in c for c in res.runs[0].cliffs)

    def test_stall_cliff_above_factor(self):
        res = _result([("RCC", _ok(stalls=100, ops=100))], stall_med=2.0)
        _attach_cliffs(res)  # 1.0 stall/op vs ceiling 40 -> fine
        assert not res.runs[0].cliffs
        res = _result([("RCC", _ok(stalls=100 * 100, ops=100))],
                      stall_med=2.0)
        _attach_cliffs(res)  # 100 stall/op > 20 * 2.0
        assert any("stall cliff" in c for c in res.runs[0].cliffs)

    def test_grid_median_fallback_without_baseline(self):
        # Without baseline stall data, each run is judged against its own
        # protocol's campaign median; one far outlier gets flagged.
        records = [("RCC", _ok(stalls=100, ops=100)) for _ in range(4)]
        records.append(("RCC", _ok(stalls=100 * 100, ops=100)))
        res = _result(records)
        _attach_cliffs(res)
        flagged = [r for r in res.runs if r.cliffs]
        assert len(flagged) == 1
        assert flagged[0].stall_per_op == 100.0

    def test_normalized_throughput_recorded_on_every_ok_run(self):
        res = _result([("RCC", _ok(events=500, wall=0.5))], calibration=2.0)
        _attach_cliffs(res)
        assert res.runs[0].record["events_per_s_normalized"] == 500.0


# ----------------------------------------------------------------------
# The campaign driver
# ----------------------------------------------------------------------
class TestCampaign:
    def test_small_campaign_clean_and_env_restored(self, monkeypatch):
        monkeypatch.delenv(ENV_SANITIZE, raising=False)
        seen = []
        result = run_hostile_campaign(
            config_name="small", regimes="all", runs=5, seed=0,
            calibration=1.0, baseline_path=None,
            on_run=lambda i, r: seen.append((i, r.regime)))
        assert result.passed
        assert len(result.runs) == 5
        assert {r.regime for r in result.runs} == set(REGIMES)
        assert all(r.ok for r in result.runs)
        assert len(seen) == 5
        assert ENV_SANITIZE not in os.environ  # restored
        assert result.throughput_judged  # serial default executor

    def test_campaign_report_round_trips_as_json(self, tmp_path):
        result = run_hostile_campaign(
            config_name="small", regimes="storm", runs=1, seed=0,
            calibration=1.0, baseline_path=None)
        doc = json.loads(json.dumps(result.to_json()))
        assert doc["kind"] == "hostile-campaign"
        assert doc["totals"] == {"runs": 1, "violations": 0, "errors": 0,
                                 "cliffs": 0}
        assert doc["runs"][0]["regime"] == "storm"
        assert "hostile campaign" in result.render()

    def test_missing_baseline_is_tolerated(self):
        result = run_hostile_campaign(
            config_name="small", regimes="thrash", runs=1, seed=0,
            calibration=1.0, baseline_path="/nonexistent/baseline.json")
        assert result.baseline_path is None
        assert result.baseline_norm_median is None


# ----------------------------------------------------------------------
# Cell files
# ----------------------------------------------------------------------
class TestCellFiles:
    def test_round_trip(self, tmp_path):
        cell = _tiny_cell(spec="storm:hot_blocks=2",
                          seed=99)
        path = str(tmp_path / "x.cell")
        save_cell(path, cell, "small", reason="why",
                  expect={"mem_ops": 123})
        loaded, doc = load_cell(path)
        assert loaded == cell
        assert doc["schema"] == CELL_SCHEMA
        assert doc["reason"] == "why"
        assert doc["expect"] == {"mem_ops": 123}

    def test_ts_overrides_round_trip(self, tmp_path):
        cell = SimCell(cfg=CFG, protocol="RCC", workload="storm",
                       intensity=1.0, seed=1,
                       ts_overrides=(("bits", 10),
                                     ("predictor_enabled", False)))
        path = str(tmp_path / "ts.cell")
        save_cell(path, cell, "small")
        loaded, _ = load_cell(path)
        assert loaded.ts_overrides == cell.ts_overrides
        assert loaded.effective_cfg().ts.bits == 10

    def test_wrong_schema_rejected(self, tmp_path):
        path = str(tmp_path / "bad.cell")
        with open(path, "w") as fh:
            json.dump({"schema": 99, "kind": "hostile-cell"}, fh)
        with pytest.raises(ReproError):
            load_cell(path)
        replay = replay_cell(path)
        assert not replay.passed and "unreadable" in replay.reasons[0]

    def test_drift_detection(self, tmp_path):
        cell = _tiny_cell()
        path = str(tmp_path / "drift.cell")
        save_cell(path, cell, "small", expect={"mem_ops": 1})
        replay = replay_cell(path)
        assert not replay.passed
        assert "drifted" in replay.reasons[0]
        assert "FAIL" in replay.describe()

    def test_cell_files_listing(self, tmp_path):
        (tmp_path / "b.cell").write_text("{}")
        (tmp_path / "a.cell").write_text("{}")
        (tmp_path / "c.trace").write_text("")
        names = [os.path.basename(p) for p in cell_files(str(tmp_path))]
        assert names == ["a.cell", "b.cell"]


# ----------------------------------------------------------------------
# Corpus regression: every archived reproducer must replay clean
# ----------------------------------------------------------------------
@pytest.mark.parametrize("path", cell_files(CORPUS),
                         ids=[os.path.basename(p)
                              for p in cell_files(CORPUS)])
def test_corpus_cell_replays_clean(path):
    replay = replay_cell(path)
    assert replay.passed, replay.describe()


def test_corpus_has_the_fuzz_found_reproducers():
    names = {os.path.basename(p) for p in cell_files(CORPUS)}
    # One cell per hostile regime, plus the RCC-WO VI-ack fuzz find.
    assert "hostile_pingpong_rccwo_viack.cell" in names
    assert len(names) >= 6


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _fake_result(runs):
    return HostileCampaignResult(
        config_name="small", runs=runs, calibration=1.0,
        baseline_path=None, baseline_norm_median=None,
        baseline_stall_median=None, cliff_ratio=0.125, stall_factor=20.0)


class TestCLI:
    def test_workloads_clean_exit_zero(self, monkeypatch, capsys):
        run = HostileRun(regime="storm", cell=_tiny_cell(),
                         config_name="small", record=_ok())
        monkeypatch.setattr(cli, "run_hostile_campaign",
                            lambda **kw: _fake_result([run]))
        assert cli.main(["--workloads"]) == 0
        assert "hostile campaign" in capsys.readouterr().out

    def test_violation_exit_one_and_cell_saved(self, monkeypatch, tmp_path,
                                               capsys):
        bad = HostileRun(
            regime="storm", cell=_tiny_cell(), config_name="small",
            record={"status": "violation", "wall_s": 0.1,
                    "message": "InvariantViolation: boom"})
        monkeypatch.setattr(cli, "run_hostile_campaign",
                            lambda **kw: _fake_result([bad]))
        out_dir = str(tmp_path / "cells")
        assert cli.main(["--workloads", "--save-cells", out_dir]) == 1
        saved = cell_files(out_dir)
        assert len(saved) == 1
        _, doc = load_cell(saved[0])
        assert "boom" in doc["reason"]

    def test_cliffs_report_only_unless_opted_in(self, monkeypatch):
        cliffy = HostileRun(regime="storm", cell=_tiny_cell(),
                            config_name="small", record=_ok(),
                            cliffs=["stall cliff: ..."])
        monkeypatch.setattr(cli, "run_hostile_campaign",
                            lambda **kw: _fake_result([cliffy]))
        assert cli.main(["--workloads"]) == 0
        assert cli.main(["--workloads", "--fail-on-cliff"]) == 1

    def test_report_file_written(self, monkeypatch, tmp_path):
        run = HostileRun(regime="storm", cell=_tiny_cell(),
                         config_name="small", record=_ok())
        monkeypatch.setattr(cli, "run_hostile_campaign",
                            lambda **kw: _fake_result([run]))
        report = str(tmp_path / "report.json")
        assert cli.main(["--workloads", "--report", report]) == 0
        doc = json.load(open(report))
        assert doc["kind"] == "hostile-campaign"

    def test_replay_single_cell_exit_zero(self, capsys):
        cells = cell_files(CORPUS)
        assert cli.main(["--replay", cells[0]]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "1 corpus entries, 0 failing" in out

    def test_bad_regime_is_a_one_line_error(self, capsys):
        assert cli.main(["--workloads", "--regimes", "nope"]) == 2
        assert "repro-fuzz:" in capsys.readouterr().err
