"""MSHR bookkeeping: peak occupancy, lastrd/lastwr merging under
concurrent load+store traffic, and the §III-D early-ack path."""

import pytest

from repro.common.messages import Message
from repro.common.types import L2State, MsgKind
from repro.errors import SimulationError
from repro.gpu.trace import load_op, store_op
from repro.mem.mshr import MSHRFile
from repro.sim.gpusim import GPUSimulator
from tests.conftest import empty_traces, program_traces


class TestMSHRFile:
    def test_peak_occupancy_tracks_high_water_mark(self):
        f = MSHRFile(capacity=4)
        f.allocate(0)
        f.allocate(128)
        f.allocate(256)
        f.release(0)
        f.release(128)
        f.allocate(384)
        assert len(f) == 2
        assert f.peak_occupancy == 3

    def test_allocate_merges_same_block(self):
        f = MSHRFile(capacity=1)
        a = f.allocate(0)
        b = f.allocate(0)
        assert a is b
        assert f.peak_occupancy == 1

    def test_allocate_full_raises(self):
        f = MSHRFile(capacity=1)
        f.allocate(0)
        with pytest.raises(SimulationError):
            f.allocate(128)

    def test_release_absent_raises(self):
        with pytest.raises(SimulationError):
            MSHRFile(capacity=1).release(0)

    def test_release_non_empty_raises(self):
        f = MSHRFile(capacity=1)
        entry = f.allocate(0)
        entry.pending_stores.append("x")
        with pytest.raises(SimulationError):
            f.release(0)
        assert not f.release_if_empty(0)
        entry.pending_stores.clear()
        assert f.release_if_empty(0)
        assert 0 not in f

    def test_bad_capacity(self):
        with pytest.raises(SimulationError):
            MSHRFile(capacity=0)


class TestRCCL2Merging:
    """Drive the RCC L2 bank directly: writes and reads that miss merge
    into one MSHR entry, writes are acked early against lastwr/mnow
    (paper §III-D), and the DRAM fill covers every merged requester."""

    def _sim(self, cfg):
        sim = GPUSimulator(cfg, "RCC", empty_traces(cfg), sanitize=True)
        l2 = sim.proto.l2s[0]
        inbox = []
        # Swallow L2 responses at the L1 so white-box messages (with no
        # real MemOpRecord attached) never reach _complete_store.
        sim.noc.register(("core", 0),
                         lambda m: inbox.append((sim.engine.now, m)))
        return sim, l2, inbox

    @staticmethod
    def _msg(kind, now, value=None, src=("core", 0)):
        return Message(kind=kind, addr=0, src=src, dst=("l2", 0), now=now,
                       value=value, meta={"record": None, "warp": None})

    def test_lastwr_lastrd_merge_and_early_ack(self, small_cfg):
        sim, l2, inbox = self._sim(small_cfg)
        fill_time = {}
        orig = l2._on_dram_data
        l2._on_dram_data = lambda b: (fill_time.setdefault(b, sim.engine.now),
                                      orig(b))
        l2.on_message(self._msg(MsgKind.WRITE, now=5, value="t1"))
        entry = l2.mshr.get(0)
        assert entry is not None and entry.has_write
        assert entry.lastwr == 5

        l2.on_message(self._msg(MsgKind.WRITE, now=9, value="t2"))
        l2.on_message(self._msg(MsgKind.GETS, now=7))
        assert entry.lastwr == 9       # merged: max of the writers' nows
        assert entry.lastrd == 7
        assert entry.has_read
        assert entry.store_value == "t2"
        assert len(l2.mshr) == 1       # one entry absorbed all three
        assert l2.stats.misses == 1

        line = l2.cache.lookup(0)
        sim.engine.run()

        # §III-D early ack: both write ACKs left before the DRAM data came
        # back, carrying ver = max(lastwr, mnow).
        acks = [(t, m) for t, m in inbox if m.kind is MsgKind.ACK]
        assert len(acks) == 2
        assert all(t < fill_time[0] for t, m in acks)
        assert [m.ver for _, m in acks] == [5, 9]

        # The fill then versions the block past every merged writer and
        # leases it past every merged reader.
        assert line.state is L2State.V
        assert line.ver == 9
        assert line.value == "t2"
        assert line.exp >= 9 and line.exp >= 7
        data = [m for _, m in inbox if m.kind is MsgKind.DATA]
        assert len(data) == 1 and data[0].value == "t2"
        assert len(l2.mshr) == 0       # entry released once drained
        assert l2.mshr.peak_occupancy == 1
        assert sim.sanitizer.events_seen > 0  # and it stayed quiet

    def test_concurrent_load_store_end_to_end(self, tiny_cfg):
        a = 0
        prog = {
            (0, 0): [store_op(a), store_op(a)],
            (0, 1): [load_op(a), load_op(a)],
            (1, 0): [load_op(a), store_op(a)],
        }
        sim = GPUSimulator(tiny_cfg, "RCC", program_traces(tiny_cfg, prog),
                           "mshr-e2e", sanitize=True)
        res = sim.run()  # sanitizer quiet on the happy path
        assert res.cycles > 0
        # Counters are exact — one count per op, no replay double-counting.
        assert sum(l1.stats.loads for l1 in sim.proto.l1s) == 3
        assert sum(l1.stats.stores for l1 in sim.proto.l1s) == 3
        assert max(l2.mshr.peak_occupancy for l2 in sim.proto.l2s) >= 1
        assert all(len(l1.mshr) == 0 for l1 in sim.proto.l1s)
        assert all(len(l2.mshr) == 0 for l2 in sim.proto.l2s)
