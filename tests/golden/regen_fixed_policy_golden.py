"""Regenerate ``fixed_policy_golden.json`` from the current tree.

Only run this when a *deliberate* behavior change under the default
(``fixed``) lease policy lands; the whole point of the golden battery is
that this file is regenerated knowingly, never as a side effect. Usage::

    PYTHONPATH=src python tests/golden/regen_fixed_policy_golden.py
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess

from repro.config import GPUConfig, PROTOCOLS
from repro.exec import SimCell, run_cell

WORKLOADS = ("bfs", "stn", "dlb", "kmn", "lud")
INTENSITIES = (0.25, 1.0)
SEED = 1234
OUT = os.path.join(os.path.dirname(__file__), "fixed_policy_golden.json")


def main() -> None:
    try:
        rev = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                             capture_output=True, text=True,
                             check=True).stdout.strip()
    except Exception:
        rev = "unknown"
    cells = {}
    for protocol in sorted(PROTOCOLS):
        for workload in WORKLOADS:
            for intensity in INTENSITIES:
                cell = SimCell(cfg=GPUConfig.small(), protocol=protocol,
                               workload=workload, intensity=intensity,
                               seed=SEED)
                res = run_cell(cell)
                blob = json.dumps(res.to_payload(), sort_keys=True)
                key = f"{protocol}/{workload}@{intensity}"
                cells[key] = {
                    "payload_sha256": hashlib.sha256(
                        blob.encode()).hexdigest(),
                    "cycles": res.cycles,
                    "mem_ops": res.mem_ops,
                }
                print(f"{key}: {cells[key]['payload_sha256'][:12]}")
    doc = {
        "kind": "fixed-policy-golden",
        "schema": 1,
        "note": "Payload hashes of the default (fixed) lease policy, "
                f"captured at commit {rev}. Small machine, seed {SEED}. "
                "Regenerate only for deliberate behavior changes.",
        "cells": cells,
    }
    with open(OUT, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {OUT} ({len(cells)} cells)")


if __name__ == "__main__":
    main()
