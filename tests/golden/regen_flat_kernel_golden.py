"""Regenerate ``flat_kernel_golden.json`` from the object-kernel oracle.

The capture pins the payloads of the three protocols the flat kernel
re-implements (RCC, RCC-WO, MESI) across the battery workloads and every
registered lease policy, as produced by the **object kernel** (the
dict-of-dataclass controllers the flat kernel must be bit-identical to).
``RCC_FLAT_KERNEL=0`` is forced so a regen on a post-refactor tree still
captures the oracle, not the kernel under test.

Only run this when a *deliberate* protocol behavior change lands; commit
the regenerated file in the same PR as the change. Usage::

    PYTHONPATH=src python tests/golden/regen_flat_kernel_golden.py
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess

os.environ["RCC_FLAT_KERNEL"] = "0"  # before any repro import

from repro.config import GPUConfig
from repro.core.lease_policy import available_lease_policies
from repro.exec import SimCell, run_cell

PROTOCOLS = ("RCC", "RCC-WO", "MESI")
WORKLOADS = ("bfs", "stn", "dlb", "lud")
INTENSITIES = (0.25, 1.0)
SEED = 1234
OUT = os.path.join(os.path.dirname(__file__), "flat_kernel_golden.json")


def main() -> None:
    try:
        rev = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                             capture_output=True, text=True,
                             check=True).stdout.strip()
    except Exception:
        rev = "unknown"
    cells = {}
    for protocol in PROTOCOLS:
        for workload in WORKLOADS:
            for policy in available_lease_policies():
                for intensity in INTENSITIES:
                    cell = SimCell(
                        cfg=GPUConfig.small(), protocol=protocol,
                        workload=workload, intensity=intensity, seed=SEED,
                        ts_overrides=(("lease_policy", policy),))
                    res = run_cell(cell)
                    blob = json.dumps(res.to_payload(), sort_keys=True)
                    key = f"{protocol}/{workload}/{policy}@{intensity}"
                    cells[key] = {
                        "payload_sha256": hashlib.sha256(
                            blob.encode()).hexdigest(),
                        "cycles": res.cycles,
                        "mem_ops": res.mem_ops,
                    }
                    print(f"{key}: {cells[key]['payload_sha256'][:12]}")
    doc = {
        "kind": "flat-kernel-golden",
        "schema": 1,
        "note": "Object-kernel (oracle) payload hashes for the protocols "
                f"the flat kernel covers, captured at commit {rev}. Small "
                f"machine, seed {SEED}. Regenerate only for deliberate "
                "behavior changes.",
        "cells": cells,
    }
    with open(OUT, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {OUT} ({len(cells)} cells)")


if __name__ == "__main__":
    main()
