"""Tests for the protocol registry and SimResult derived metrics."""

import pytest

from repro.coherence.registry import VIRTUAL_CHANNELS, build_protocol
from repro.common.addresses import AddressMap
from repro.config import GPUConfig
from repro.errors import ConfigError
from repro.mem.dram import DRAMPartition
from repro.noc.crossbar import Crossbar
from repro.timing.engine import Engine


def wire(name, cfg=None):
    cfg = cfg or GPUConfig.small()
    engine = Engine()
    amap = AddressMap(cfg.l1.block_bytes, cfg.l2_banks)
    noc = Crossbar(engine, cfg.noc, cfg.l1.block_bytes)
    drams = [DRAMPartition(engine, cfg.dram, j) for j in range(cfg.l2_banks)]
    return build_protocol(name, engine, cfg, noc, amap, drams, {})


@pytest.mark.parametrize("name", list(VIRTUAL_CHANNELS))
def test_build_every_protocol(name):
    cfg = GPUConfig.small()
    inst = wire(name, cfg)
    assert len(inst.l1s) == cfg.n_cores
    assert len(inst.l2s) == cfg.l2_banks
    assert inst.virtual_channels == VIRTUAL_CHANNELS[name]
    assert inst.consistency in ("sc", "wo")


def test_unknown_protocol_rejected():
    with pytest.raises(ConfigError):
        wire("MOESI")


def test_rcc_controllers_share_rollover_manager():
    inst = wire("RCC")
    mgrs = {id(l1.rollover) for l1 in inst.l1s}
    mgrs |= {id(l2.rollover) for l2 in inst.l2s}
    assert len(mgrs) == 1
    assert inst.rollover is not None


def test_mesi_has_five_vcs_timestamp_protocols_two():
    assert VIRTUAL_CHANNELS["MESI"] == 5
    assert VIRTUAL_CHANNELS["RCC"] == 2
    assert VIRTUAL_CHANNELS["TCS"] == 2
    assert VIRTUAL_CHANNELS["TCW"] == 2


class TestSimResultMetrics:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.sim.gpusim import run_simulation
        from repro.workloads import get_workload
        cfg = GPUConfig.small()
        wl = get_workload("dlb", intensity=0.2)
        return run_simulation(cfg, "RCC", wl.generate(cfg), "dlb")

    def test_ipc_proxy(self, result):
        assert result.ipc_proxy == pytest.approx(
            1000 * result.mem_ops / result.cycles)

    def test_latency_fractions_bounded(self, result):
        assert 0 <= result.sc_stall_fraction <= 1
        assert 0 <= result.sc_stall_store_fraction <= 1
        assert 0 <= result.l1_expired_fraction <= 1
        assert 0 <= result.renewable_fraction <= 1

    def test_energy_positive_and_decomposed(self, result):
        e = result.energy
        assert e.total == pytest.approx(
            e.router_dynamic + e.link_dynamic + e.static)
        assert e.total > 0

    def test_traffic_groups_cover_all_flits(self, result):
        assert sum(result.traffic_groups.values()) == result.total_flits

    def test_dram_saw_traffic(self, result):
        assert result.dram_reads > 0
