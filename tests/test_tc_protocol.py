"""Protocol-level tests for TC-strong and TC-weak (physical timestamps)."""

import pytest

from repro.common.types import MemOpKind
from repro.config import GPUConfig, TCConfig
from repro.gpu.trace import compute_op, fence_op, load_op, store_op
from repro.sim.gpusim import GPUSimulator
from tests.conftest import program_traces

BLOCK = 128


def build(cfg, protocol, programs, **kw):
    return GPUSimulator(cfg, protocol, program_traces(cfg, programs),
                        "tc-test", **kw)


def fixed_lease_cfg(lease=200):
    cfg = GPUConfig.small().replace(
        n_cores=2, warps_per_core=2,
        tc=TCConfig(lease_min=lease, lease_default=lease, lease_max=lease,
                    predictor_enabled=False))
    return cfg


def test_tcs_store_waits_for_lease_expiry():
    cfg = fixed_lease_cfg(lease=500)
    sim = build(cfg, "TCS", {
        (0, 0): [load_op(0)],                       # takes a 500-cycle lease
        (1, 0): [compute_op(150), store_op(0)],     # store under the lease
    }, record_ops=True)
    res = sim.run()
    st = [op for op in res.op_logs if op.kind is MemOpKind.STORE][0]
    # The ack cannot return before the lease expires.
    assert st.complete_cycle > 500
    assert res.l2_store_lease_wait > 0


def test_tcs_store_to_expired_block_does_not_wait():
    cfg = fixed_lease_cfg(lease=100)
    sim = build(cfg, "TCS", {
        (0, 0): [load_op(0)],
        (1, 0): [compute_op(800), store_op(0)],  # lease long gone
    })
    res = sim.run()
    assert res.l2_store_lease_wait == 0


def test_tcw_store_does_not_wait_but_fence_does():
    cfg = fixed_lease_cfg(lease=600)
    tcw = build(cfg, "TCW", {
        (0, 0): [load_op(0)],
        (1, 0): [compute_op(150), store_op(0), fence_op(),
                 store_op(50 * BLOCK)],
    }, record_ops=True)
    res = tcw.run()
    stores = sorted((op for op in res.op_logs
                     if op.kind is MemOpKind.STORE and op.core_id == 1),
                    key=lambda o: o.prog_index)
    # First store acks quickly (well before the lease expires)...
    assert stores[0].complete_cycle < 600
    # ...but the fence holds the next store until the GWCT (lease expiry).
    assert stores[1].issue_cycle >= 600
    assert res.fence_wait_cycles > 0


def test_tcw_fence_without_pending_writes_is_cheap():
    cfg = fixed_lease_cfg()
    sim = build(cfg, "TCW", {
        (0, 0): [fence_op(), load_op(0)],
    })
    res = sim.run()
    assert res.fence_wait_cycles <= 2


def test_lease_grants_enable_l1_hits():
    cfg = fixed_lease_cfg(lease=5000)
    sim = build(cfg, "TCS", {
        (0, 0): [load_op(0), compute_op(50), load_op(0), compute_op(50),
                 load_op(0)],
    })
    res = sim.run()
    assert res.l1_load_hits == 2


def test_expired_copy_refetches():
    cfg = fixed_lease_cfg(lease=50)
    sim = build(cfg, "TCS", {
        (0, 0): [load_op(0), compute_op(2000), load_op(0)],
    })
    res = sim.run()
    assert res.l1_load_expired == 1
    assert res.l1_load_hits == 0


def test_tcs_same_block_stores_serialize_in_l1():
    cfg = fixed_lease_cfg()
    sim = build(cfg, "TCS", {
        (0, 0): [store_op(0)],
        (0, 1): [store_op(0)],
    })
    res = sim.run()
    assert res.structural_stalls > 0  # the second store retried


def test_tcw_gwct_tracked_per_warp():
    cfg = fixed_lease_cfg(lease=700)
    sim = build(cfg, "TCW", {
        (0, 0): [load_op(0)],
        (1, 0): [compute_op(100), store_op(0)],         # GWCT ~700
        (1, 1): [compute_op(100), store_op(60 * BLOCK),  # unleased: GWCT ~now
                 fence_op(), store_op(61 * BLOCK)],
    }, record_ops=True)
    res = sim.run()
    w1_stores = sorted((op for op in res.op_logs
                        if op.kind is MemOpKind.STORE and op.core_id == 1
                        and op.warp_id == 1), key=lambda o: o.prog_index)
    # Warp 1's fence must not inherit warp 0's large GWCT.
    assert w1_stores[1].issue_cycle < 650


def test_tc_predictor_adapts():
    cfg = GPUConfig.small().replace(n_cores=2, warps_per_core=2)
    assert cfg.tc.predictor_enabled
    sim = build(cfg, "TCS", {
        (0, 0): [load_op(0), store_op(0), load_op(0), store_op(0)],
    })
    sim.run()
    bank = sim.proto.l2s[sim.amap.bank_of(0)]
    line = bank.cache.lookup(0)
    assert line.meta.get("tc_lease") == cfg.tc.lease_min


def test_parked_lease_survives_eviction():
    """A write to a block whose unexpired lease was evicted from L2 must
    still wait for that lease (parked in an MSHR slot)."""
    cfg = fixed_lease_cfg(lease=100000)
    n_blocks = cfg.l2_per_bank.size_bytes // cfg.l2_per_bank.block_bytes
    span_blocks = 3 * n_blocks * cfg.l2_banks
    # Lease block 0, then sweep enough blocks to evict it from L2, then
    # store to it.
    ops = [load_op(0)]
    ops += [load_op((i + 8) * BLOCK) for i in range(0, span_blocks, 1)][:200]
    sim = build(cfg, "TCS", {
        (0, 0): ops,
        (1, 0): [compute_op(4000), store_op(0)],
    }, record_ops=True)
    res = sim.run()
    st = [op for op in res.op_logs if op.kind is MemOpKind.STORE][0]
    assert st.complete_cycle > 100000  # waited for the parked lease
