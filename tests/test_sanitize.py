"""The coherence-invariant sanitizer: silent on correct runs, loud (with a
trace dump naming the faulting event) when a protocol rule is broken."""

import json

import pytest

from repro.common.types import L1State, MemOpKind
from repro.config import GPUConfig
from repro.errors import InvariantViolation
from repro.fuzz.differential import DifferentialRunner
from repro.fuzz.generator import FuzzKnobs, generate_program
from repro.gpu.trace import atomic_op, fence_op, load_op, store_op
from repro.gpu.warp import MemOpRecord
from repro.sanitize.events import CoherenceEvent, EventKind, TraceRing
from repro.sanitize.sanitizer import (ENV_SANITIZE, ENV_TRACE_OUT,
                                      sanitize_enabled_from_env,
                                      trace_out_from_env)
from repro.sim.gpusim import GPUSimulator
from tests.conftest import (ALL_PROTOCOLS, empty_traces, program_traces,
                            run_program)


def contended_program(cfg):
    """Two blocks shared by four warps: hits, misses, write-after-read,
    atomics, and fences — every emission site fires at least once."""
    a, b = 0, cfg.l1.block_bytes
    return {
        (0, 0): [store_op(a), load_op(a), load_op(b), atomic_op(a)],
        (0, 1): [load_op(a), store_op(b), fence_op(), load_op(b)],
        (1, 0): [store_op(a), store_op(b), load_op(a), atomic_op(b)],
        (1, 1): [load_op(b), load_op(a), fence_op(), store_op(a)],
    }


class TestHappyPath:
    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_quiet_and_sees_events(self, tiny_cfg, protocol):
        traces = program_traces(tiny_cfg, contended_program(tiny_cfg))
        sim = GPUSimulator(tiny_cfg, protocol, traces, "litmus",
                           sanitize=True)
        res = sim.run()  # a violation would raise InvariantViolation
        assert res.cycles > 0
        assert sim.sanitizer is not None
        assert sim.sanitizer.events_seen > 0

    @pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
    def test_sanitize_does_not_change_results(self, tiny_cfg, protocol):
        prog = contended_program(tiny_cfg)
        plain = run_program(tiny_cfg, protocol, prog)
        checked = run_program(tiny_cfg, protocol, prog, sanitize=True)
        assert plain.to_payload() == checked.to_payload()


class TestEnvToggles:
    def test_disabled_by_default(self):
        assert not sanitize_enabled_from_env({})

    def test_truthy_values(self):
        for v in ("1", "true", "YES", "on"):
            assert sanitize_enabled_from_env({ENV_SANITIZE: v})
        for v in ("0", "false", "", "off"):
            assert not sanitize_enabled_from_env({ENV_SANITIZE: v})

    def test_trace_out(self):
        assert trace_out_from_env({}) is None
        assert trace_out_from_env({ENV_TRACE_OUT: "t.jsonl"}) == "t.jsonl"


class TestTraceRing:
    @staticmethod
    def _ev(seq):
        return CoherenceEvent(seq, cycle=seq, kind=EventKind.L1_LOAD_HIT,
                              unit="L1", unit_id=0, addr=0, fields={})

    def test_keeps_last_n(self):
        ring = TraceRing(depth=4)
        for i in range(10):
            ring.append(self._ev(i))
        assert [ev.seq for ev in ring.events()] == [6, 7, 8, 9]
        assert ring.total == 10

    def test_dump_never_clobbers(self, tmp_path):
        ring = TraceRing(depth=4)
        ring.append(self._ev(1))
        path = str(tmp_path / "trace.jsonl")
        first = ring.dump_jsonl(path)
        second = ring.dump_jsonl(path)
        assert first == path
        assert second == path + ".1"
        assert json.loads(open(first).readline())["seq"] == 1

    def test_tail_text_empty(self):
        assert "no coherence events" in TraceRing().tail_text()


class TestInjectedBug:
    def test_lease_off_by_one_is_caught(self, small_cfg, tmp_path,
                                        monkeypatch):
        # Re-introduce the classic off-by-one: treat an L1 copy as valid
        # one cycle past its lease. The very first stale hit must trip the
        # sanitizer and dump a trace naming the faulting event. The bug is
        # injected through the object controller's lease_valid seam, which
        # the flat kernel inlines away, so force the object kernel here.
        monkeypatch.setenv("RCC_FLAT_KERNEL", "0")
        monkeypatch.setattr("repro.core.rcc_l1.lease_valid",
                            lambda now, exp: now <= exp + 1)
        trace = str(tmp_path / "violation.jsonl")
        sim = GPUSimulator(small_cfg, "RCC", empty_traces(small_cfg),
                           sanitize=True, trace_out=trace)
        l1 = sim.proto.l1s[0]
        line = l1.cache.insert(0, L1State.V, l1._on_evict)
        line.exp = 10
        line.value = "stale"
        l1.clock.advance_to(11)  # logically past the lease
        rec = MemOpRecord(MemOpKind.LOAD, addr=0, core_id=0, warp_id=0,
                          prog_index=0)
        with pytest.raises(InvariantViolation) as exc_info:
            l1.access(rec, warp=None)
        err = exc_info.value
        assert err.invariant == "rcc.read.within_lease"
        assert err.trace_path == trace
        dumped = [json.loads(s) for s in open(trace)]
        assert dumped[-1]["kind"] == EventKind.L1_LOAD_HIT
        assert dumped[-1]["now"] == 11
        assert dumped[-1]["exp"] == 10
        assert "rcc.read.within_lease" in str(err)

    def test_without_sanitizer_bug_is_silent(self, small_cfg, monkeypatch):
        # Control: the same injected bug goes unnoticed when --sanitize is
        # off (which is why the sanitizer exists). Same object-kernel seam
        # as above.
        monkeypatch.setenv("RCC_FLAT_KERNEL", "0")
        monkeypatch.setattr("repro.core.rcc_l1.lease_valid",
                            lambda now, exp: now <= exp + 1)
        sim = GPUSimulator(small_cfg, "RCC", empty_traces(small_cfg))
        l1 = sim.proto.l1s[0]
        line = l1.cache.insert(0, L1State.V, l1._on_evict)
        line.exp = 10
        line.value = "stale"
        l1.clock.advance_to(11)
        rec = MemOpRecord(MemOpKind.LOAD, addr=0, core_id=0, warp_id=0,
                          prog_index=0)
        l1.access(rec, warp=None)  # no exception: the stale hit "succeeds"
        assert rec.read_value == "stale"


class TestVIPerStoreTracking:
    """Regression: the VI (store-past-lease) invariant is judged per store
    op, not per (core, block). Found by hostile-workload fuzzing: a store
    that issued with NO copy and merged at the L2 before any lease existed
    is legally acked with ver=0; that stale ack must not be judged against
    the pre-store copy a *later* store snapshotted."""

    @staticmethod
    def _suite():
        from repro.sanitize.invariants import RCCInvariants
        return RCCInvariants(ts_bits=16)

    @staticmethod
    def _ev(kind, seq=1, **fields):
        return CoherenceEvent(seq, cycle=seq, kind=kind, unit="L1",
                              unit_id=3, addr=0x1000, fields=fields)

    def _feed(self, suite, kind, **fields):
        v = suite.check(self._ev(kind, **fields))
        assert v is None, v
        return v

    def test_pre_copy_store_ack_not_judged_against_later_snapshot(self):
        suite = self._suite()
        # Store op=1 issues with no readable copy (cold block).
        self._feed(suite, EventKind.L1_STORE_ISSUE, op=1, copy_exp=None,
                   now=0, view="write", epoch=0)
        # The block then fills with a lease, and op=2 issues under it.
        self._feed(suite, EventKind.L1_FILL, ver=0, exp=8, now_after=0,
                   view="read", epoch=0)
        self._feed(suite, EventKind.L1_STORE_ISSUE, op=2, copy_exp=8,
                   now=0, view="write", epoch=0)
        # op=1's ack (merged at the L2 before the lease existed) carries
        # ver=0 — legal, and must not trip op=2's exp=8 snapshot.
        self._feed(suite, EventKind.L1_STORE_ACK, op=1, ver=0, now_after=0,
                   epoch=0, cur_epoch=0, view="write")
        # op=2's own ack must still exceed its snapshot.
        self._feed(suite, EventKind.L1_STORE_ACK, op=2, ver=9, now_after=9,
                   epoch=0, cur_epoch=0, view="write")

    def test_invariant_still_fires_for_the_matching_store(self):
        suite = self._suite()
        self._feed(suite, EventKind.L1_STORE_ISSUE, op=7, copy_exp=8,
                   now=0, view="write", epoch=0)
        v = suite.check(self._ev(EventKind.L1_STORE_ACK, op=7, ver=5,
                                 now_after=5, epoch=0, cur_epoch=0,
                                 view="write"))
        assert v is not None and v.invariant == "rcc.vi.store_past_lease"

    def test_renew_extends_every_outstanding_snapshot(self):
        suite = self._suite()
        self._feed(suite, EventKind.L1_STORE_ISSUE, op=1, copy_exp=8,
                   now=0, view="write", epoch=0)
        self._feed(suite, EventKind.L1_STORE_ISSUE, op=2, copy_exp=8,
                   now=0, view="write", epoch=0)
        self._feed(suite, EventKind.L1_RENEW, exp=16, epoch=0)
        v = suite.check(self._ev(EventKind.L1_STORE_ACK, op=1, ver=9,
                                 now_after=9, epoch=0, cur_epoch=0,
                                 view="write"))
        assert v is not None and v.invariant == "rcc.vi.store_past_lease"
        self._feed(suite, EventKind.L1_STORE_ACK, op=2, ver=17,
                   now_after=17, epoch=0, cur_epoch=0, view="write")

    def test_fuzz_reproducer_runs_clean_end_to_end(self):
        # The exact cell the hostile fuzzer found (also archived in
        # tests/corpus/hostile_pingpong_rccwo_viack.cell).
        from repro.sim.gpusim import run_simulation
        from repro.workloads import get_workload
        cfg = GPUConfig.small()
        wl = get_workload("pingpong:p_store=0.0609,burst=13",
                          intensity=0.25, seed=5996351577606141765)
        res = run_simulation(cfg, "RCC-WO", wl.generate(cfg), wl.spec,
                             sanitize=True)
        assert res.mem_ops == 1248


class TestFuzzIntegration:
    def test_runner_with_sanitizer_passes(self):
        knobs = FuzzKnobs(n_cores=2, warps_per_core=1, ops_per_warp=5,
                          n_addrs=2, p_store=0.4, p_atomic=0.1)
        program = generate_program(3, knobs)
        runner = DifferentialRunner(cfg=GPUConfig.small(),
                                    protocols=["RCC", "MESI"],
                                    sanitize=True)
        assert all(ex.sanitize for ex in runner.executors)
        verdict = runner.check_program(program)
        assert verdict.passed, verdict.failures
