"""Tests for the fuzz program generator: determinism, knob coverage, and
lowering invariants (FuzzOps must map 1:1 onto trace ops so prog_index
round-trips through the simulator's MemOpRecords)."""

import pytest

from repro.common.types import MemOpKind
from repro.config import GPUConfig
from repro.fuzz.generator import (
    FUZZ_BASE_ADDR, FuzzKnobs, FuzzOp, FuzzProgram, generate_program,
)

L = lambda s: FuzzOp(MemOpKind.LOAD, slot=s)
S = lambda s: FuzzOp(MemOpKind.STORE, slot=s)
F = lambda: FuzzOp(MemOpKind.FENCE)


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------

def test_same_seed_same_program():
    knobs = FuzzKnobs(n_cores=3, warps_per_core=2, ops_per_warp=8,
                      n_addrs=3, p_store=0.4, p_atomic=0.1,
                      fence_density=0.3, p_compute=0.2)
    a = generate_program(42, knobs)
    b = generate_program(42, knobs)
    assert a.warps == b.warps
    assert a.n_addrs == b.n_addrs
    assert a.seed == b.seed == 42


def test_different_seeds_differ():
    knobs = FuzzKnobs(ops_per_warp=8)
    programs = [generate_program(s, knobs).warps for s in range(8)]
    assert any(p != programs[0] for p in programs[1:])


# ----------------------------------------------------------------------
# Knob coverage
# ----------------------------------------------------------------------

def _kinds(program):
    return [op.kind for _, _, op in program.iter_ops()]


def test_fence_density_zero_means_no_fences():
    p = generate_program(1, FuzzKnobs(fence_density=0.0, ops_per_warp=10))
    assert MemOpKind.FENCE not in _kinds(p)


def test_fence_density_one_fences_every_mem_op():
    p = generate_program(1, FuzzKnobs(fence_density=1.0, ops_per_warp=10))
    kinds = _kinds(p)
    assert kinds.count(MemOpKind.FENCE) == p.n_mem_ops
    # ... and each mem op is immediately followed by its fence.
    for ops in p.warps.values():
        for i, op in enumerate(ops):
            if op.is_mem:
                assert ops[i + 1].kind is MemOpKind.FENCE


def test_single_address_contention():
    p = generate_program(7, FuzzKnobs(n_addrs=1, n_cores=4,
                                      ops_per_warp=6))
    assert all(op.slot == 0 for _, _, op in p.iter_ops() if op.is_mem)
    assert p.used_slots() == [0]


def test_ops_per_warp_counts_memory_ops():
    knobs = FuzzKnobs(ops_per_warp=5, fence_density=0.5, p_compute=0.5)
    p = generate_program(3, knobs)
    for ops in p.warps.values():
        assert sum(1 for op in ops if op.is_mem) == 5


def test_sharing_patterns_and_op_mix():
    hot = generate_program(11, FuzzKnobs(n_addrs=4, sharing="hot",
                                         ops_per_warp=64))
    slots = [op.slot for _, _, op in hot.iter_ops() if op.is_mem]
    assert slots.count(0) > len(slots) // 3  # slot 0 runs hot
    stores = generate_program(11, FuzzKnobs(p_store=1.0, p_atomic=0.0))
    assert all(k is MemOpKind.STORE for k in _kinds(stores))


def test_knob_validation():
    with pytest.raises(ValueError):
        FuzzKnobs(p_store=0.9, p_atomic=0.3).validate()
    with pytest.raises(ValueError):
        FuzzKnobs(fence_density=1.5).validate()
    with pytest.raises(ValueError):
        FuzzKnobs(sharing="broadcast").validate()
    with pytest.raises(ValueError):
        FuzzKnobs(n_addrs=0).validate()


def test_fuzz_op_invariants():
    with pytest.raises(ValueError):
        FuzzOp(MemOpKind.LOAD)  # mem op needs a slot
    with pytest.raises(ValueError):
        FuzzOp(MemOpKind.COMPUTE, cycles=0)  # compute needs cycles


# ----------------------------------------------------------------------
# Lowering invariants
# ----------------------------------------------------------------------

def test_to_traces_maps_ops_one_to_one():
    cfg = GPUConfig.small()
    p = generate_program(5, FuzzKnobs(fence_density=0.3, p_compute=0.3,
                                      p_atomic=0.2))
    traces = p.to_traces(cfg)
    assert len(traces) == cfg.n_cores
    assert all(len(row) == cfg.warps_per_core for row in traces)
    bb = cfg.l1.block_bytes
    for (core, warp), ops in p.warps.items():
        lowered = traces[core][warp].ops
        assert len(lowered) == len(ops)  # prog_index == op list index
        for fop, top in zip(ops, lowered):
            assert top.kind is fop.kind
            if fop.is_mem:
                assert top.addr == FUZZ_BASE_ADDR + fop.slot * bb
    for row in traces:
        for t in row:
            t.validate(cfg.warps_per_core)


def test_to_traces_rejects_oversized_program():
    cfg = GPUConfig.small().replace(n_cores=2, warps_per_core=1)
    p = generate_program(0, FuzzKnobs(n_cores=4))
    with pytest.raises(ValueError):
        p.to_traces(cfg)


def test_trace_round_trip():
    cfg = GPUConfig.small()
    p = generate_program(9, FuzzKnobs(n_cores=3, warps_per_core=2,
                                      fence_density=0.2, p_compute=0.2,
                                      n_addrs=3)).normalized()
    q = FuzzProgram.from_traces(p.to_traces(cfg),
                                block_bytes=cfg.l1.block_bytes)
    assert q.warps == p.warps
    assert q.n_addrs == len(p.used_slots())


def test_normalized_repacks_warps_and_slots():
    p = FuzzProgram(n_addrs=8, warps={
        (0, 0): [],                      # empty: dropped
        (2, 1): [S(5), L(5)],            # core 2 -> core 1
        (0, 3): [L(3)],                  # warp 3 -> warp 0
    })
    n = p.normalized()
    assert set(n.warps) == {(0, 0), (1, 0)}
    assert n.warps[(0, 0)] == [L(0)]          # slot 3 -> first-use slot 0
    assert n.warps[(1, 0)] == [S(1), L(1)]    # slot 5 -> slot 1
    assert n.n_addrs == 2


def test_pretty_smoke():
    p = generate_program(2, FuzzKnobs(fence_density=0.5))
    text = p.pretty()
    assert "c0w0" in text and "|" in text
