"""Correctness of the content-keyed on-disk result cache.

A cache hit must return the exact payload that was computed; any change
to any key component must miss; and a damaged cache may cost time but
never correctness (corrupt entries are evicted and recomputed). The
warm-run test is the acceptance criterion: replaying a full sweep from
cache completes in a small fraction of the cold wall-clock time.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.config import GPUConfig
from repro.exec import (
    ResultCache, SimCell, SweepExecutor, cell_key, run_cell, sweep_cells,
)
from repro.gpu.trace import store_op
from repro.sim.gpusim import run_simulation
from tests.conftest import program_traces

BASE = SimCell(cfg=GPUConfig.small(), protocol="RCC", workload="dlb",
               intensity=0.1, seed=42)


@pytest.fixture(scope="module")
def base_result():
    return run_cell(BASE)


class TestRoundTrip:
    def test_hit_returns_exact_payload(self, tmp_path, base_result):
        cache = ResultCache(str(tmp_path))
        key = cell_key(BASE)
        assert cache.put(key, base_result)
        got = cache.get(key)
        assert got is not None
        assert got.to_payload() == base_result.to_payload()
        # The figures' vocabulary survives: scalars, derived metrics,
        # histograms, energy, and tuple-valued data tokens.
        assert got.as_dict() == base_result.as_dict()
        assert got.final_memory == base_result.final_memory
        assert any(isinstance(v, tuple)
                   for v in got.final_memory.values())
        for kind in base_result.latency_hist:
            assert (got.latency_hist[kind].summary()
                    == base_result.latency_hist[kind].summary())
        assert got.energy.as_dict() == base_result.energy.as_dict()
        assert cache.hits == 1 and cache.misses == 0

    def test_get_without_put_misses(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.get(cell_key(BASE)) is None
        assert cache.misses == 1

    def test_record_ops_results_never_cached(self, tmp_path):
        cfg = GPUConfig.small().replace(n_cores=2, warps_per_core=1)
        res = run_simulation(cfg, "RCC",
                             program_traces(cfg, {(0, 0): [store_op(0)]}),
                             record_ops=True)
        assert res.op_logs
        cache = ResultCache(str(tmp_path))
        assert not cache.put("somekey", res)
        assert cache.get("somekey") is None


class TestKeying:
    def test_every_component_changes_the_key(self):
        base = cell_key(BASE)
        import dataclasses
        variants = [
            dataclasses.replace(BASE, protocol="TCW"),
            dataclasses.replace(BASE, workload="bfs"),
            dataclasses.replace(BASE, intensity=0.2),
            dataclasses.replace(BASE, seed=43),
            dataclasses.replace(
                BASE, ts_overrides=(("renew_enabled", False),)),
            dataclasses.replace(BASE, cfg=GPUConfig.bench()),
        ]
        keys = {base} | {cell_key(v) for v in variants}
        assert len(keys) == len(variants) + 1

    def test_library_version_changes_the_key(self):
        assert (cell_key(BASE, version="1.0.0")
                != cell_key(BASE, version="1.0.1"))

    def test_key_is_stable(self):
        assert cell_key(BASE) == cell_key(BASE)


class TestCorruption:
    def _cached(self, tmp_path, base_result):
        cache = ResultCache(str(tmp_path))
        key = cell_key(BASE)
        cache.put(key, base_result)
        return cache, key, cache.path_for(key)

    def test_truncated_entry_evicted_not_crashing(self, tmp_path,
                                                  base_result):
        cache, key, path = self._cached(tmp_path, base_result)
        blob = open(path).read()
        with open(path, "w") as f:
            f.write(blob[:len(blob) // 2])
        assert cache.get(key) is None
        assert cache.evictions == 1
        assert not os.path.exists(path)

    def test_garbage_entry_evicted(self, tmp_path, base_result):
        cache, key, path = self._cached(tmp_path, base_result)
        with open(path, "w") as f:
            f.write("not json at all {{{")
        assert cache.get(key) is None
        assert cache.evictions == 1

    def test_key_mismatch_evicted(self, tmp_path, base_result):
        cache, key, path = self._cached(tmp_path, base_result)
        blob = json.load(open(path))
        blob["key"] = "0" * 64
        json.dump(blob, open(path, "w"))
        assert cache.get(key) is None
        assert cache.evictions == 1

    def test_bad_payload_evicted(self, tmp_path, base_result):
        cache, key, path = self._cached(tmp_path, base_result)
        blob = json.load(open(path))
        del blob["result"]["cycles"]
        json.dump(blob, open(path, "w"))
        assert cache.get(key) is None
        assert cache.evictions == 1

    def test_bit_flip_inside_valid_json_caught_by_digest(self, tmp_path,
                                                         base_result):
        # The failure mode the format-1 envelope checks could not see:
        # the file is valid JSON, format and key match, but one value in
        # the result was silently altered. Only the digest catches it.
        cache, key, path = self._cached(tmp_path, base_result)
        blob = json.load(open(path))
        blob["result"]["cycles"] = blob["result"]["cycles"] + 1
        json.dump(blob, open(path, "w"))  # digest left as written
        assert cache.get(key) is None
        assert cache.evictions == 1
        assert not os.path.exists(path)

    def test_digest_invariant_under_json_round_trip(self, base_result):
        from repro.exec.cache import result_digest
        payload = base_result.to_payload()
        reloaded = json.loads(json.dumps(payload))
        assert result_digest(payload) == result_digest(reloaded)

    def test_corrupted_cell_recomputed_through_executor(self, tmp_path,
                                                        base_result):
        cache = ResultCache(str(tmp_path))
        ex = SweepExecutor(jobs=1, cache=cache)
        first = ex.run_cells([BASE])[0]
        path = cache.path_for(cell_key(BASE))
        with open(path, "w") as f:
            f.write("{\"truncated\": tru")
        again = SweepExecutor(jobs=1, cache=ResultCache(str(tmp_path)))
        second = again.run_cells([BASE])[0]
        assert second.to_payload() == first.to_payload()
        assert again.last_stats.n_computed == 1
        # ... and the recomputed result was re-cached, valid this time.
        third = SweepExecutor(jobs=1, cache=ResultCache(str(tmp_path)))
        assert third.run_cells([BASE])[0].to_payload() == first.to_payload()
        assert third.last_stats.n_cached == 1

    def test_clear_removes_everything(self, tmp_path, base_result):
        cache, key, path = self._cached(tmp_path, base_result)
        cache.clear()
        assert not os.path.exists(path)
        assert cache.get(key) is None


class TestCrashSafety:
    """``put`` is crash-atomic (publish via ``os.replace``) and failure-
    tolerant (a sick disk costs the cache, never the result)."""

    def test_put_oserror_swallowed_and_counted(self, tmp_path, base_result):
        # Point the cache root at a *file*: makedirs raises, and the
        # failed write must be swallowed, counted, and leave no debris.
        blocker = tmp_path / "blocker"
        blocker.write_text("in the way")
        cache = ResultCache(str(blocker))
        assert cache.put(cell_key(BASE), base_result) is False
        assert cache.write_errors == 1
        assert blocker.read_text() == "in the way"

    def test_no_tmp_debris_after_successful_put(self, tmp_path,
                                                base_result):
        cache = ResultCache(str(tmp_path))
        assert cache.put(cell_key(BASE), base_result)
        assert not [f for f in os.listdir(str(tmp_path))
                    if f.endswith(".tmp")]

    def test_stale_tmp_swept_young_tmp_kept(self, tmp_path, base_result):
        stale = tmp_path / "dead-writer.tmp"
        stale.write_text("half an entry")
        old = time.time() - 7200
        os.utime(str(stale), (old, old))
        young = tmp_path / "inflight.tmp"
        young.write_text("concurrent commit")

        cache = ResultCache(str(tmp_path))  # __init__ sweeps
        assert not stale.exists(), "stale tmp from a crashed writer kept"
        assert young.exists(), "a concurrent writer's tmp was destroyed"
        # The survivor is not treated as a cache entry.
        assert cache.get(cell_key(BASE)) is None


class TestSizeBound:
    """The cache directory respects its entry/byte bounds, evicting
    oldest-mtime entries first, with evictions visible in the counters
    and the sweep summary line."""

    def _fill(self, cache, base_result, n):
        """Write ``n`` entries under distinct keys with strictly
        increasing mtimes (set explicitly — filesystem timestamp
        granularity is too coarse to rely on write order)."""
        keys = [f"{i:02d}" + "0" * 62 for i in range(n)]
        for i, key in enumerate(keys):
            assert cache.put(key, base_result)
            os.utime(cache.path_for(key), ns=(i * 10 ** 9, i * 10 ** 9))
        return keys

    def test_entry_bound_drops_oldest(self, tmp_path, base_result):
        cache = ResultCache(str(tmp_path), max_entries=3, max_bytes=0)
        keys = self._fill(cache, base_result, 3)
        assert cache.evictions == 0
        # A fourth entry pushes the oldest (keys[0]) out.
        assert cache.put("ff" + "0" * 62, base_result)
        assert cache.evictions == 1
        assert not os.path.exists(cache.path_for(keys[0]))
        for key in keys[1:]:
            assert os.path.exists(cache.path_for(key))
        assert os.path.exists(cache.path_for("ff" + "0" * 62))

    def test_byte_bound_drops_oldest(self, tmp_path, base_result):
        probe = ResultCache(str(tmp_path), max_entries=0, max_bytes=0)
        probe.put("0" * 64, base_result)
        entry_bytes = os.path.getsize(probe.path_for("0" * 64))
        probe.clear()

        # Room for two entries but not three.
        cache = ResultCache(str(tmp_path), max_entries=0,
                            max_bytes=2 * entry_bytes + entry_bytes // 2)
        keys = self._fill(cache, base_result, 2)
        assert cache.evictions == 0
        assert cache.put("ee" + "0" * 62, base_result)
        assert cache.evictions == 1
        assert not os.path.exists(cache.path_for(keys[0]))
        assert os.path.exists(cache.path_for(keys[1]))

    def test_zero_disables_bounds(self, tmp_path, base_result):
        cache = ResultCache(str(tmp_path), max_entries=0, max_bytes=0)
        self._fill(cache, base_result, 6)
        assert cache.evictions == 0
        assert len([f for f in os.listdir(str(tmp_path))
                    if f.endswith(".json")]) == 6

    def test_env_bounds_respected(self, tmp_path, base_result, monkeypatch):
        monkeypatch.setenv("RCC_CACHE_MAX_ENTRIES", "2")
        monkeypatch.setenv("RCC_CACHE_MAX_BYTES", "0")
        cache = ResultCache(str(tmp_path))
        assert cache.max_entries == 2 and cache.max_bytes == 0
        self._fill(cache, base_result, 2)
        assert cache.put("ee" + "0" * 62, base_result)
        assert cache.evictions == 1

    def test_sweep_stats_carry_cache_counters(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cold = SweepExecutor(jobs=1, cache=cache)
        cold.run_cells([BASE])
        assert cold.last_stats.cache_hits == 0
        assert cold.last_stats.cache_misses == 1
        assert cold.last_stats.cache_evictions == 0
        assert "cache 0 hit/1 miss" in cold.last_stats.render()

        warm = SweepExecutor(jobs=1, cache=ResultCache(str(tmp_path)))
        warm.run_cells([BASE])
        assert warm.last_stats.cache_hits == 1
        assert warm.last_stats.cache_misses == 0
        assert "cache 1 hit/0 miss" in warm.last_stats.render()

    def test_stats_without_cache_omit_counters(self):
        ex = SweepExecutor(jobs=1, cache=None)
        ex.run_cells([BASE])
        assert ex.last_stats.cache_hits is None
        assert "cache" not in ex.last_stats.render()


class TestWarmSweep:
    def test_warm_rerun_under_quarter_of_cold(self, tmp_path):
        """Acceptance: a cache-warm full protocol sweep finishes in <25%
        of the cold wall-clock time, with zero cells recomputed."""
        cells = sweep_cells(
            GPUConfig.small(),
            ["MESI", "TCS", "TCW", "RCC", "RCC-WO", "SC-IDEAL"],
            ["bh", "bfs", "cl", "dlb", "stn", "vpr", "hsp", "kmn", "lps",
             "ndl", "sr", "lud"],
            intensity=0.3, seed=7)
        cold_ex = SweepExecutor(jobs=1, cache=ResultCache(str(tmp_path)))
        t0 = time.perf_counter()
        cold = cold_ex.run_cells(cells)
        cold_wall = time.perf_counter() - t0
        assert cold_ex.last_stats.n_computed == len(cells)
        assert cold_wall > 0.5, "sweep too small to time meaningfully"

        warm_ex = SweepExecutor(jobs=1, cache=ResultCache(str(tmp_path)))
        t0 = time.perf_counter()
        warm = warm_ex.run_cells(cells)
        warm_wall = time.perf_counter() - t0
        assert warm_ex.last_stats.n_computed == 0
        assert warm_ex.last_stats.n_cached == len(cells)
        assert ([r.to_payload() for r in warm]
                == [r.to_payload() for r in cold])
        assert warm_wall < 0.25 * cold_wall, (
            f"warm {warm_wall:.2f}s vs cold {cold_wall:.2f}s")
