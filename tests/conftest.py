"""Shared fixtures and trace-building helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.config import GPUConfig
from repro.gpu.trace import WarpTrace
from repro.sim.gpusim import run_simulation

#: All protocols, and the subsets most tests sweep.
ALL_PROTOCOLS = ["MESI", "TCS", "TCW", "RCC", "RCC-WO", "SC-IDEAL"]
SC_PROTOCOLS = ["MESI", "TCS", "RCC", "SC-IDEAL"]
WO_PROTOCOLS = ["TCW", "RCC-WO"]


@pytest.fixture
def small_cfg() -> GPUConfig:
    return GPUConfig.small()


@pytest.fixture
def tiny_cfg() -> GPUConfig:
    """Two cores, two warps: the smallest interesting machine."""
    cfg = GPUConfig.small()
    return cfg.replace(n_cores=2, warps_per_core=2)


def empty_traces(cfg: GPUConfig):
    """A trace grid of the right shape with no ops."""
    return [[WarpTrace(c, w) for w in range(cfg.warps_per_core)]
            for c in range(cfg.n_cores)]


def program_traces(cfg: GPUConfig, programs):
    """Build traces from {(core, warp): [ops...]}."""
    traces = empty_traces(cfg)
    for (core, warp), ops in programs.items():
        traces[core][warp].extend(ops)
    return traces


def run_program(cfg: GPUConfig, protocol: str, programs, **kw):
    """Run a {(core, warp): [ops]} program and return the SimResult."""
    return run_simulation(cfg, protocol, program_traces(cfg, programs),
                          workload_name="test", **kw)
