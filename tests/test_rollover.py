"""Timestamp rollover tests (paper §III-D).

A tiny timestamp width forces frequent rollovers; execution must stay
correct (all ops complete, values flow) across them.
"""

import pytest

from repro.config import GPUConfig, TimestampConfig
from repro.core.rollover import RolloverManager
from repro.gpu.trace import compute_op, load_op, store_op
from repro.sim.gpusim import GPUSimulator, run_simulation
from repro.timing.engine import Engine
from tests.conftest import program_traces


def narrow_cfg(bits=12, lease=16):
    cfg = GPUConfig.small().replace(n_cores=2, warps_per_core=2)
    cfg.ts = TimestampConfig(bits=bits, lease_min=8, lease_default=lease,
                             lease_max=lease, predictor_enabled=False,
                             livelock_tick_cycles=0)
    return cfg


def lease_write_loop(n, block_a=0, block_b=10 * 128):
    """Each (load B, store B) pair advances logical time by ~lease."""
    ops = [load_op(block_a)]
    for _ in range(n):
        ops += [load_op(block_b), store_op(block_b)]
    ops += [load_op(block_a)]
    return ops


def test_rollover_triggers_and_execution_completes():
    cfg = narrow_cfg(bits=10, lease=32)  # max 1023, guard band kicks early
    sim = GPUSimulator(cfg, "RCC", program_traces(cfg, {
        (0, 0): lease_write_loop(40),
        (1, 0): lease_write_loop(40, block_b=20 * 128),
    }), "rollover")
    res = sim.run()
    assert res.rollovers >= 1
    assert res.mem_ops == 2 * (1 + 80 + 1)


def test_clocks_reset_after_rollover():
    cfg = narrow_cfg(bits=10, lease=32)
    sim = GPUSimulator(cfg, "RCC", program_traces(cfg, {
        (0, 0): lease_write_loop(40),
    }), "rollover")
    sim.run()
    max_ts = cfg.ts.max_timestamp
    for l1 in sim.proto.l1s:
        assert l1.clock.value < max_ts
    for l2 in sim.proto.l2s:
        for line in l2.cache.lines():
            assert line.ver < max_ts
            assert line.exp < max_ts


def test_values_flow_across_rollover():
    """A store before the rollover must still be visible after it."""
    cfg = narrow_cfg(bits=10, lease=32)
    sim = GPUSimulator(cfg, "RCC", program_traces(cfg, {
        (0, 0): [store_op(0)] + lease_write_loop(40) + [load_op(0)],
    }), "rollover", record_ops=True)
    res = sim.run()
    assert res.rollovers >= 1
    loads = [op for op in res.op_logs
             if op.kind.name == "LOAD" and op.addr == 0]
    store = [op for op in res.op_logs
             if op.kind.name == "STORE" and op.addr == 0][0]
    assert loads[-1].read_value == store.value


def test_multiple_rollovers():
    cfg = narrow_cfg(bits=9, lease=32)
    sim = GPUSimulator(cfg, "RCC", program_traces(cfg, {
        (0, 0): lease_write_loop(80),
    }), "rollover")
    res = sim.run()
    assert res.rollovers >= 2


def test_rollover_with_rcc_wo():
    cfg = narrow_cfg(bits=10, lease=32)
    sim = GPUSimulator(cfg, "RCC-WO", program_traces(cfg, {
        (0, 0): lease_write_loop(40),
        (1, 0): lease_write_loop(40, block_b=30 * 128),
    }), "rollover")
    res = sim.run()
    assert res.mem_ops > 0
    for l1 in sim.proto.l1s:
        assert l1.write_clock.value <= cfg.ts.max_timestamp


def test_wide_timestamps_never_roll_over():
    cfg = GPUConfig.small().replace(n_cores=2, warps_per_core=2)
    sim = GPUSimulator(cfg, "RCC", program_traces(cfg, {
        (0, 0): lease_write_loop(30),
    }), "no-rollover")
    res = sim.run()
    assert res.rollovers == 0


class TestStormRegime:
    """The hostile lab's rollover storm (tiny width + write-heavy) at
    lease boundaries, run through the same narrow configs as the unit
    tests above."""

    @staticmethod
    def _storm(cfg, intensity=1.0, seed=7, **knobs):
        from repro.workloads import get_workload
        spec = "storm" + ("" if not knobs else ":" + ",".join(
            f"{k}={v}" for k, v in sorted(knobs.items())))
        return get_workload(spec, intensity=intensity, seed=seed).generate(cfg)

    def test_storm_forces_rollovers_and_completes(self):
        cfg = narrow_cfg(bits=10, lease=64)
        res = run_simulation(cfg, "RCC", self._storm(cfg), "storm")
        assert res.rollovers >= 1
        # Every warp's full trace retired: 4 warps x 48 iterations, each
        # contributing 1 (store) to 2 (load+store) ops.
        assert res.mem_ops >= 4 * 48

    def test_storm_sanitized_across_widths(self):
        # The storm under the invariant sanitizer at several widths near
        # the regime's mutation range, including the narrowest allowed.
        for bits in (10, 12):
            cfg = narrow_cfg(bits=bits, lease=64)
            res = run_simulation(cfg, "RCC", self._storm(cfg), "storm",
                                 sanitize=True)
            assert res.mem_ops > 0

    def test_storm_clocks_clamped_after_rollover(self):
        cfg = narrow_cfg(bits=10, lease=64)
        sim = GPUSimulator(cfg, "RCC", self._storm(cfg), "storm")
        res = sim.run()
        assert res.rollovers >= 1
        max_ts = cfg.ts.max_timestamp
        for l1 in sim.proto.l1s:
            assert l1.clock.value < max_ts
        for l2 in sim.proto.l2s:
            for line in l2.cache.lines():
                assert line.ver < max_ts
                assert line.exp < max_ts

    def test_storm_values_flow_on_private_escalators(self):
        # Each warp's escalator block is private, so under SC its final
        # load must observe that warp's own latest store — across however
        # many rollovers the storm forced.
        from repro.workloads.base import BLOCK
        from repro.workloads.hostile.storm import STORM_COL
        cfg = narrow_cfg(bits=10, lease=64)
        # p_remote=0 makes the trace pure escalator (load, store) pairs.
        sim = GPUSimulator(cfg, "RCC", self._storm(cfg, p_remote=0.0),
                           "storm", record_ops=True)
        res = sim.run()
        assert res.rollovers >= 1
        checked = 0
        for core in range(cfg.n_cores):
            for warp in range(cfg.warps_per_core):
                gid = core * cfg.warps_per_core + warp
                addr = (STORM_COL + gid) * BLOCK
                ops = sorted((op for op in res.op_logs
                              if op.addr == addr and op.core_id == core),
                             key=lambda o: o.issue_cycle)
                last_written = None
                for op in ops:
                    if op.kind.name == "STORE":
                        last_written = op.value
                    elif last_written is not None:
                        # Every load after the first store must see the
                        # warp's own latest write (private block => sole
                        # writer), whatever epoch the clocks are in.
                        assert op.read_value == last_written
                        checked += 1
        assert checked > 0

    def test_store_serializes_at_post_lease_edge(self):
        # RCC rule 3's exact boundary: a store to a freshly leased block
        # must version itself at post_lease(exp) == exp + 1 — strictly
        # past the lease end, never equal to it.
        cfg = narrow_cfg(bits=12, lease=64)
        sim = GPUSimulator(cfg, "RCC", program_traces(cfg, {
            (0, 0): [load_op(5 * 128), store_op(5 * 128)],
        }), "post-lease-edge")
        sim.run()
        lines = [line for l2 in sim.proto.l2s
                 for line in l2.cache.lines() if line.addr == 5 * 128]
        assert len(lines) == 1
        line = lines[0]
        assert line.ver == line.exp + 1

    def test_storm_post_lease_jumps_drive_the_climb(self):
        # The escalator's whole mechanism is the post_lease jump: with
        # stores jumping to exp+1 and a fresh 64-tick lease per load, one
        # warp's clock climbs ~a lease per (load, store) pair, so a
        # 10-bit clock must roll over within ~16 pairs x 4 warps.
        cfg = narrow_cfg(bits=10, lease=64)
        res = run_simulation(cfg, "RCC",
                             self._storm(cfg, p_remote=0.0), "storm")
        assert res.rollovers >= 2


class TestRolloverManagerUnit:
    def test_threshold(self):
        mgr = RolloverManager(Engine(), threshold=1000)
        assert not mgr.needs_rollover(999)
        assert mgr.needs_rollover(1000)

    def test_clamp_by_epoch(self):
        mgr = RolloverManager(Engine(), threshold=1000)
        assert mgr.clamp(55, msg_epoch=0) == 55
        mgr.epoch += 1
        assert mgr.clamp(55, msg_epoch=0) == 0
        assert mgr.clamp(55, msg_epoch=1) == 55
        assert mgr.clamp(None, msg_epoch=1) == 0

    def test_concurrent_trigger_collapses(self):
        eng = Engine()
        mgr = RolloverManager(eng, threshold=10)
        mgr.wire([], [], [])
        assert mgr.maybe_trigger(50, bank_id=1)
        assert mgr.in_progress
        # A second bank triggering while in progress defers, no new rollover.
        assert mgr.maybe_trigger(60, bank_id=0)
        assert mgr.rollovers == 1
        eng.run()
        assert not mgr.in_progress
        assert mgr.epoch == 1
