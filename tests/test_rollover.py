"""Timestamp rollover tests (paper §III-D).

A tiny timestamp width forces frequent rollovers; execution must stay
correct (all ops complete, values flow) across them.
"""

import pytest

from repro.config import GPUConfig, TimestampConfig
from repro.core.rollover import RolloverManager
from repro.gpu.trace import compute_op, load_op, store_op
from repro.sim.gpusim import GPUSimulator
from repro.timing.engine import Engine
from tests.conftest import program_traces


def narrow_cfg(bits=12, lease=16):
    cfg = GPUConfig.small().replace(n_cores=2, warps_per_core=2)
    cfg.ts = TimestampConfig(bits=bits, lease_min=8, lease_default=lease,
                             lease_max=lease, predictor_enabled=False,
                             livelock_tick_cycles=0)
    return cfg


def lease_write_loop(n, block_a=0, block_b=10 * 128):
    """Each (load B, store B) pair advances logical time by ~lease."""
    ops = [load_op(block_a)]
    for _ in range(n):
        ops += [load_op(block_b), store_op(block_b)]
    ops += [load_op(block_a)]
    return ops


def test_rollover_triggers_and_execution_completes():
    cfg = narrow_cfg(bits=10, lease=32)  # max 1023, guard band kicks early
    sim = GPUSimulator(cfg, "RCC", program_traces(cfg, {
        (0, 0): lease_write_loop(40),
        (1, 0): lease_write_loop(40, block_b=20 * 128),
    }), "rollover")
    res = sim.run()
    assert res.rollovers >= 1
    assert res.mem_ops == 2 * (1 + 80 + 1)


def test_clocks_reset_after_rollover():
    cfg = narrow_cfg(bits=10, lease=32)
    sim = GPUSimulator(cfg, "RCC", program_traces(cfg, {
        (0, 0): lease_write_loop(40),
    }), "rollover")
    sim.run()
    max_ts = cfg.ts.max_timestamp
    for l1 in sim.proto.l1s:
        assert l1.clock.value < max_ts
    for l2 in sim.proto.l2s:
        for line in l2.cache.lines():
            assert line.ver < max_ts
            assert line.exp < max_ts


def test_values_flow_across_rollover():
    """A store before the rollover must still be visible after it."""
    cfg = narrow_cfg(bits=10, lease=32)
    sim = GPUSimulator(cfg, "RCC", program_traces(cfg, {
        (0, 0): [store_op(0)] + lease_write_loop(40) + [load_op(0)],
    }), "rollover", record_ops=True)
    res = sim.run()
    assert res.rollovers >= 1
    loads = [op for op in res.op_logs
             if op.kind.name == "LOAD" and op.addr == 0]
    store = [op for op in res.op_logs
             if op.kind.name == "STORE" and op.addr == 0][0]
    assert loads[-1].read_value == store.value


def test_multiple_rollovers():
    cfg = narrow_cfg(bits=9, lease=32)
    sim = GPUSimulator(cfg, "RCC", program_traces(cfg, {
        (0, 0): lease_write_loop(80),
    }), "rollover")
    res = sim.run()
    assert res.rollovers >= 2


def test_rollover_with_rcc_wo():
    cfg = narrow_cfg(bits=10, lease=32)
    sim = GPUSimulator(cfg, "RCC-WO", program_traces(cfg, {
        (0, 0): lease_write_loop(40),
        (1, 0): lease_write_loop(40, block_b=30 * 128),
    }), "rollover")
    res = sim.run()
    assert res.mem_ops > 0
    for l1 in sim.proto.l1s:
        assert l1.write_clock.value <= cfg.ts.max_timestamp


def test_wide_timestamps_never_roll_over():
    cfg = GPUConfig.small().replace(n_cores=2, warps_per_core=2)
    sim = GPUSimulator(cfg, "RCC", program_traces(cfg, {
        (0, 0): lease_write_loop(30),
    }), "no-rollover")
    res = sim.run()
    assert res.rollovers == 0


class TestRolloverManagerUnit:
    def test_threshold(self):
        mgr = RolloverManager(Engine(), threshold=1000)
        assert not mgr.needs_rollover(999)
        assert mgr.needs_rollover(1000)

    def test_clamp_by_epoch(self):
        mgr = RolloverManager(Engine(), threshold=1000)
        assert mgr.clamp(55, msg_epoch=0) == 55
        mgr.epoch += 1
        assert mgr.clamp(55, msg_epoch=0) == 0
        assert mgr.clamp(55, msg_epoch=1) == 55
        assert mgr.clamp(None, msg_epoch=1) == 0

    def test_concurrent_trigger_collapses(self):
        eng = Engine()
        mgr = RolloverManager(eng, threshold=10)
        mgr.wire([], [], [])
        assert mgr.maybe_trigger(50, bank_id=1)
        assert mgr.in_progress
        # A second bank triggering while in progress defers, no new rollover.
        assert mgr.maybe_trigger(60, bank_id=0)
        assert mgr.rollovers == 1
        eng.run()
        assert not mgr.in_progress
        assert mgr.epoch == 1
