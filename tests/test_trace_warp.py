"""Unit tests for trace ops and warp state."""

import pytest

from repro.common.types import MemOpKind
from repro.errors import TraceError
from repro.gpu.trace import (
    WarpTrace, atomic_op, barrier_op, compute_op, fence_op, load_op, store_op,
)
from repro.gpu.warp import MemOpRecord, Warp


class TestTraceOps:
    def test_constructors(self):
        assert load_op(0x100).kind is MemOpKind.LOAD
        assert store_op(0x100).kind is MemOpKind.STORE
        assert atomic_op(0x100).kind is MemOpKind.ATOMIC
        assert compute_op(5).cycles == 5
        assert fence_op().kind is MemOpKind.FENCE
        assert barrier_op(3).barrier_id == 3

    def test_mem_op_requires_address(self):
        from repro.gpu.trace import TraceOp
        with pytest.raises(TraceError):
            TraceOp(MemOpKind.LOAD)

    def test_compute_requires_positive_cycles(self):
        with pytest.raises(TraceError):
            compute_op(0)

    def test_negative_address_rejected(self):
        with pytest.raises(TraceError):
            load_op(-4)

    def test_kind_predicates(self):
        assert MemOpKind.LOAD.is_global_mem
        assert MemOpKind.ATOMIC.is_write
        assert not MemOpKind.LOAD.is_write
        assert not MemOpKind.FENCE.is_global_mem
        assert not MemOpKind.BARRIER.is_write

    def test_trace_counts(self):
        t = WarpTrace(0, 0)
        t.extend([load_op(0), compute_op(3), store_op(128), fence_op()])
        assert len(t) == 4
        assert t.n_mem_ops == 2

    def test_barrier_validation(self):
        t = WarpTrace(0, 0)
        t.extend([barrier_op(1), barrier_op(0)])
        with pytest.raises(TraceError):
            t.validate(4)


class TestWarp:
    def test_program_counter_walk(self):
        t = WarpTrace(0, 1)
        t.extend([load_op(0), store_op(0)])
        w = Warp(t)
        assert not w.done
        assert w.next_op().kind is MemOpKind.LOAD
        w.pc += 1
        assert w.next_op().kind is MemOpKind.STORE
        w.pc += 1
        assert w.done
        assert w.next_op() is None

    def test_oldest_outstanding(self):
        t = WarpTrace(0, 0)
        w = Warp(t)
        assert w.oldest_outstanding is None
        a = MemOpRecord(MemOpKind.LOAD, 0, 0, 0, 0)
        b = MemOpRecord(MemOpKind.STORE, 0, 0, 0, 1)
        w.outstanding.extend([a, b])
        assert w.oldest_outstanding is a

    def test_record_latency(self):
        r = MemOpRecord(MemOpKind.LOAD, 0x80, 1, 2, 3)
        r.issue_cycle = 10
        r.complete_cycle = 50
        assert r.latency == 40
        assert r.core_id == 1 and r.warp_id == 2 and r.prog_index == 3

    def test_record_seq_unique(self):
        a = MemOpRecord(MemOpKind.LOAD, 0, 0, 0, 0)
        b = MemOpRecord(MemOpKind.LOAD, 0, 0, 0, 0)
        assert a.seq != b.seq
