"""Unit tests for the crossbar NoC and the energy model."""

import pytest

from repro.common.messages import Message
from repro.common.types import MsgKind
from repro.config import NoCConfig
from repro.noc.crossbar import Crossbar
from repro.noc.energy import EnergyModel, EnergyParams
from repro.timing.engine import Engine


def make_noc(link_latency=4, extra=0):
    eng = Engine()
    noc = Crossbar(eng, NoCConfig(link_latency=link_latency),
                   block_bytes=128, extra_latency=extra)
    return eng, noc


def test_delivery_and_latency():
    eng, noc = make_noc(link_latency=4)
    got = []
    noc.register(("l2", 0), lambda m: got.append((eng.now, m)))
    msg = Message(MsgKind.GETS, 0, ("core", 0), ("l2", 0))
    arrival = noc.send(msg)
    eng.run()
    # 2 control flits serialize + 4 link cycles
    assert arrival == 2 + 4
    assert got[0][0] == arrival


def test_extra_latency_added():
    eng, noc = make_noc(link_latency=4, extra=100)
    noc.register(("l2", 0), lambda m: None)
    arrival = noc.send(Message(MsgKind.GETS, 0, ("core", 0), ("l2", 0)))
    assert arrival == 2 + 4 + 100


def test_port_serialization_of_data_messages():
    eng, noc = make_noc(link_latency=4)
    times = []
    noc.register(("core", 1), lambda m: times.append(eng.now))
    for _ in range(3):
        noc.send(Message(MsgKind.DATA, 0, ("l2", 0), ("core", 1)))
    eng.run()
    # 34 flits each; same source port, so deliveries are 34 cycles apart.
    assert times[1] - times[0] == 34
    assert times[2] - times[1] == 34


def test_different_sources_do_not_serialize():
    eng, noc = make_noc(link_latency=4)
    times = []
    noc.register(("core", 1), lambda m: times.append(eng.now))
    noc.send(Message(MsgKind.DATA, 0, ("l2", 0), ("core", 1)))
    noc.send(Message(MsgKind.DATA, 0, ("l2", 1), ("core", 1)))
    eng.run()
    assert times[0] == times[1]


def test_in_order_per_src_dst_pair():
    """Messages between one (src, dst) pair must deliver in send order —
    the protocols rely on this FIFO property."""
    eng, noc = make_noc()
    seen = []
    noc.register(("core", 0), lambda m: seen.append(m.meta["i"]))
    for i in range(10):
        kind = MsgKind.DATA if i % 2 else MsgKind.ACK
        noc.send(Message(kind, 0, ("l2", 0), ("core", 0), meta={"i": i}))
    eng.run()
    assert seen == list(range(10))


def test_unregistered_endpoint_raises():
    eng, noc = make_noc()
    with pytest.raises(KeyError):
        noc.send(Message(MsgKind.GETS, 0, ("core", 0), ("l2", 99)))


def test_traffic_stats_by_kind():
    eng, noc = make_noc()
    noc.register(("l2", 0), lambda m: None)
    noc.send(Message(MsgKind.GETS, 0, ("core", 0), ("l2", 0)))
    noc.send(Message(MsgKind.WRITE, 0, ("core", 0), ("l2", 0)))
    assert noc.stats.msgs_by_kind[MsgKind.GETS] == 1
    assert noc.stats.flits_by_kind[MsgKind.WRITE] == 34
    groups = noc.stats.grouped_flits()
    assert groups["store_data"] == 34
    assert groups["control"] == 2


def test_energy_scales_with_flits_and_vcs():
    eng, noc = make_noc()
    noc.register(("l2", 0), lambda m: None)
    for _ in range(10):
        noc.send(Message(MsgKind.DATA, 0, ("core", 0), ("l2", 0)))
    model = EnergyModel()
    e2 = model.estimate(noc.stats, cycles=1000, virtual_channels=2)
    e5 = model.estimate(noc.stats, cycles=1000, virtual_channels=5)
    assert e5.static > e2.static
    assert e5.router_dynamic == e2.router_dynamic
    assert e2.total > 0
    assert set(e2.as_dict()) == {"router_dynamic", "link_dynamic", "static",
                                 "total"}


def test_energy_params_linear_in_traffic():
    eng, noc = make_noc()
    noc.register(("l2", 0), lambda m: None)
    noc.send(Message(MsgKind.DATA, 0, ("core", 0), ("l2", 0)))
    one = EnergyModel(EnergyParams()).estimate(noc.stats, 0, 2)
    noc.send(Message(MsgKind.DATA, 0, ("core", 0), ("l2", 0)))
    two = EnergyModel(EnergyParams()).estimate(noc.stats, 0, 2)
    assert abs(two.router_dynamic - 2 * one.router_dynamic) < 1e-9
