"""Property-based tests (hypothesis) on core data structures and on the
central invariant of the whole system: every SC protocol produces
sequentially consistent executions for *arbitrary* programs.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.common.addresses import AddressMap
from repro.common.types import L1State
from repro.config import CacheConfig, GPUConfig
from repro.consistency.checker import SCChecker
from repro.core.timestamps import LogicalClock
from repro.gpu.trace import (
    WarpTrace, atomic_op, barrier_op, compute_op, fence_op, load_op, store_op,
)
from repro.mem.cache_array import CacheArray
from repro.mem.mshr import MSHRFile
from repro.sim.gpusim import run_simulation
from repro.timing.engine import Engine


# ----------------------------------------------------------------------
# Engine ordering
# ----------------------------------------------------------------------
@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1,
                max_size=60))
@settings(max_examples=50, deadline=None)
def test_engine_fires_in_nondecreasing_time(times):
    eng = Engine()
    fired = []
    for t in times:
        eng.schedule(t, lambda t=t: fired.append(eng.now))
    eng.run()
    assert fired == sorted(fired)
    assert len(fired) == len(times)


# ----------------------------------------------------------------------
# Address mapping
# ----------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=2**40),
       st.sampled_from([64, 128, 256]),
       st.integers(min_value=1, max_value=16))
@settings(max_examples=100, deadline=None)
def test_address_map_properties(addr, block, banks):
    am = AddressMap(block_bytes=block, n_l2_banks=banks)
    base = am.block_of(addr)
    assert base <= addr < base + block
    assert base % block == 0
    assert 0 <= am.bank_of(addr) < banks
    assert am.bank_of(addr) == am.bank_of(base)


# ----------------------------------------------------------------------
# Logical clock monotonicity
# ----------------------------------------------------------------------
@given(st.lists(st.integers(min_value=0, max_value=2**20), max_size=80))
@settings(max_examples=60, deadline=None)
def test_clock_monotone(targets):
    clk = LogicalClock(bits=32)
    prev = 0
    for t in targets:
        v = clk.advance_to(t)
        assert v >= prev
        assert v >= t or v == prev
        prev = v


# ----------------------------------------------------------------------
# Cache array invariants under random op sequences
# ----------------------------------------------------------------------
@given(st.lists(st.tuples(st.sampled_from(["ins", "rm", "get"]),
                          st.integers(min_value=0, max_value=63)),
                max_size=150),
       st.integers(min_value=0, max_value=2**31))
@settings(max_examples=50, deadline=None)
def test_cache_array_never_overflows(ops, seed):
    arr = CacheArray(CacheConfig(size_bytes=2048, assoc=2, block_bytes=128),
                     L1State.I)
    for action, blk in ops:
        addr = blk * 128
        if action == "ins":
            arr.insert(addr, L1State.V)
        elif action == "rm":
            arr.remove(addr)
        else:
            line = arr.lookup(addr)
            if line is not None:
                assert line.addr == addr
    # Invariants: per-set occupancy <= assoc; all addresses block-aligned.
    for s in arr._sets:
        assert len(s) <= arr.assoc
        for a, line in s.items():
            assert a % 128 == 0
            assert line.addr == a
            assert arr.set_index(a) == arr._sets.index(s)


# ----------------------------------------------------------------------
# MSHR occupancy bound
# ----------------------------------------------------------------------
@given(st.lists(st.tuples(st.booleans(),
                          st.integers(min_value=0, max_value=15)),
                max_size=100))
@settings(max_examples=50, deadline=None)
def test_mshr_never_exceeds_capacity(ops):
    f = MSHRFile(4)
    for allocate, blk in ops:
        addr = blk * 128
        if allocate:
            if f.has_free() or addr in f:
                f.allocate(addr)
        else:
            f.release_if_empty(addr)
        assert len(f) <= 4


# ----------------------------------------------------------------------
# THE invariant: random programs through SC protocols are SC
# ----------------------------------------------------------------------
def _random_traces(cfg, rng, n_ops, n_blocks=12):
    traces = []
    for c in range(cfg.n_cores):
        core_traces = []
        for w in range(cfg.warps_per_core):
            t = WarpTrace(c, w)
            for _ in range(n_ops):
                roll = rng.random()
                addr = rng.randrange(n_blocks) * 128
                if roll < 0.45:
                    t.append(load_op(addr))
                elif roll < 0.75:
                    t.append(store_op(addr))
                elif roll < 0.85:
                    t.append(atomic_op(addr))
                elif roll < 0.95:
                    t.append(compute_op(rng.randrange(1, 40)))
                else:
                    t.append(fence_op())
            core_traces.append(t)
        traces.append(core_traces)
    return traces


@given(st.integers(min_value=0, max_value=10**6),
       st.sampled_from(["RCC", "TCS", "MESI", "SC-IDEAL"]))
@settings(max_examples=25, deadline=None)
def test_random_programs_are_sequentially_consistent(seed, protocol):
    cfg = GPUConfig.small().replace(n_cores=2, warps_per_core=2)
    rng = random.Random(seed)
    traces = _random_traces(cfg, rng, n_ops=14)
    res = run_simulation(cfg, protocol, traces, "random", record_ops=True)
    SCChecker().check_or_raise(res.op_logs)


@given(st.integers(min_value=0, max_value=10**6))
@settings(max_examples=10, deadline=None)
def test_random_programs_complete_under_weak_protocols(seed):
    cfg = GPUConfig.small().replace(n_cores=2, warps_per_core=2)
    rng = random.Random(seed)
    traces = _random_traces(cfg, rng, n_ops=12)
    for protocol in ("TCW", "RCC-WO"):
        res = run_simulation(cfg, protocol, traces, "random")
        expected = sum(t.n_mem_ops for ct in traces for t in ct)
        assert res.mem_ops == expected


# ----------------------------------------------------------------------
# Trace-file round trip
# ----------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=10**6))
@settings(max_examples=30, deadline=None)
def test_tracefile_round_trip_property(seed):
    import io
    from repro.workloads.tracefile import load_traces, save_traces
    cfg = GPUConfig.small().replace(n_cores=2, warps_per_core=2)
    rng = random.Random(seed)
    traces = _random_traces(cfg, rng, n_ops=10)
    # Barriers are also exercised (random traces have none).
    from repro.gpu.trace import barrier_op
    traces[0][0].append(barrier_op(1))
    traces[0][1].append(barrier_op(1))
    buf = io.StringIO()
    save_traces(buf, traces)
    buf.seek(0)
    loaded = load_traces(buf)
    for co, cl in zip(traces, loaded):
        for to, tl in zip(co, cl):
            assert to.ops == tl.ops


# ----------------------------------------------------------------------
# Histogram statistics vs exact reference
# ----------------------------------------------------------------------
@given(st.lists(st.integers(min_value=0, max_value=100_000), min_size=1,
                max_size=200))
@settings(max_examples=60, deadline=None)
def test_histogram_tracks_exact_aggregates(samples):
    from repro.stats.histogram import Histogram
    h = Histogram()
    for s in samples:
        h.add(s)
    assert h.count == len(samples)
    assert h.min == min(samples)
    assert h.max == max(samples)
    assert h.mean == sum(samples) / len(samples)
    # Percentiles bracket the data range and are monotone.
    ps = [h.percentile(p) for p in (10, 50, 90, 100)]
    assert ps == sorted(ps)
    assert ps[-1] <= 2 * max(samples) + 1  # within the top bucket


@given(st.integers(min_value=0, max_value=10**6))
@settings(max_examples=8, deadline=None)
def test_rcc_sc_with_rollover_is_still_correct(seed):
    """Random programs under a narrow clock roll over and still complete
    with per-address coherence intact (value flow is spot-checked by the
    final reads)."""
    from repro.config import TimestampConfig
    cfg = GPUConfig.small().replace(n_cores=2, warps_per_core=2)
    cfg.ts = TimestampConfig(bits=10, lease_min=8, lease_default=32,
                             lease_max=32, predictor_enabled=False,
                             livelock_tick_cycles=0)
    rng = random.Random(seed)
    traces = _random_traces(cfg, rng, n_ops=30, n_blocks=6)
    res = run_simulation(cfg, "RCC", traces, "rollover-random")
    expected = sum(t.n_mem_ops for ct in traces for t in ct)
    assert res.mem_ops == expected
