"""Tests for histograms, time series, and run comparison."""

import pytest

from repro.common.types import MemOpKind
from repro.config import GPUConfig
from repro.sim.gpusim import run_simulation
from repro.stats.compare import compare_runs, speedup_table
from repro.stats.histogram import Histogram
from repro.stats.timeseries import TimeSeries, clock_skew_probe
from repro.timing.engine import Engine
from repro.workloads import get_workload


class TestHistogram:
    def test_mean_and_count(self):
        h = Histogram()
        for v in (1, 2, 3, 4):
            h.add(v)
        assert h.count == 4
        assert h.mean == 2.5
        assert h.min == 1 and h.max == 4

    def test_percentiles_monotone(self):
        h = Histogram()
        for v in range(1, 1001):
            h.add(v)
        p50 = h.percentile(50)
        p90 = h.percentile(90)
        p99 = h.percentile(99)
        assert p50 <= p90 <= p99
        assert 200 <= p50 <= 800  # log-bucket approximation is coarse

    def test_zero_bucket(self):
        h = Histogram()
        h.add(0, count=5)
        assert h.buckets() == [(0, 0, 5)]
        assert h.percentile(99) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Histogram().add(-1)

    def test_saturates_at_max(self):
        h = Histogram(max_value=1 << 10)
        h.add(10**9)
        assert h.max == 1 << 10

    def test_merge(self):
        a, b = Histogram(), Histogram()
        a.add(4)
        b.add(400, count=3)
        a.merge(b)
        assert a.count == 4
        assert a.max == 400
        assert a.total == 4 + 1200

    def test_summary_keys(self):
        h = Histogram()
        h.add(7)
        assert set(h.summary()) == {"count", "mean", "p50", "p90", "p99",
                                    "min", "max"}

    def test_empty_percentile(self):
        assert Histogram().percentile(50) == 0.0

    def test_bad_percentile(self):
        with pytest.raises(ValueError):
            Histogram().percentile(0)

    def test_single_sample_percentiles_exact(self):
        # One sample occupies one bucket; interpolating over the bucket's
        # nominal [lo, hi) used to report values the histogram never saw.
        h = Histogram()
        h.add(5)
        for p in (1, 50, 90, 99, 100):
            assert h.percentile(p) == 5.0

    def test_percentile_clamped_to_observed_range(self):
        h = Histogram()
        h.add(9, count=2)  # bucket [8, 15], samples only at 9
        assert h.percentile(50) == 9.0
        assert h.percentile(99) == 9.0

    def test_merge_wider_histogram_folds_overflow(self):
        a = Histogram(max_value=1 << 4)
        b = Histogram(max_value=1 << 10)
        b.add(1000, count=3)
        a.merge(b)
        # The wider histogram's overflow buckets fold into a's saturation
        # bucket instead of silently vanishing.
        assert a.count == 3
        assert sum(a._buckets) == 3
        assert a.percentile(99) > 0

    def test_merged_overflow_percentiles_reach_observed_max(self):
        # Folded overflow lives in the saturation bucket, whose nominal
        # power-of-two range tops out far below the folded samples; the
        # bucket's effective upper bound must extend to the observed max
        # or percentiles contradict min/max/mean.
        a = Histogram(max_value=1 << 4)
        a.add(12)
        b = Histogram(max_value=1 << 10)
        b.add(1000, count=3)
        a.merge(b)
        assert a.max == 1000
        # 3 of 4 samples are 1000: p99 must land well above the
        # saturation bucket's nominal top (31), at most at max.
        assert 500 < a.percentile(99) <= 1000
        assert a.percentile(50) >= 12
        # buckets() reports the same extended bound.
        lo, hi, n = a.buckets()[-1]
        assert hi == 1000 and n == 3

    def test_merged_overflow_all_mass_in_saturation_bucket(self):
        # Degenerate: *every* sample folds into the saturation bucket.
        a = Histogram(max_value=1 << 4)
        b = Histogram(max_value=1 << 10)
        b.add(600, count=4)
        a.merge(b)
        assert a.min == a.max == 600
        # Single-valued histogram: every percentile is that value.
        assert a.percentile(50) == 600.0
        assert a.percentile(99) == 600.0

    def test_single_bucket_histogram_merge(self):
        # max_value=0 gives a one-bucket histogram; merging wider data
        # must keep percentiles within [min, max], not pinned to 0.
        c = Histogram(max_value=0)
        c.add(0)
        d = Histogram(max_value=1 << 6)
        d.add(40, count=5)
        c.merge(d)
        assert c.count == 6
        assert 0 <= c.percentile(50) <= 40
        assert c.percentile(99) <= 40
        assert c.buckets() == [(0, 40, 6)]

    def test_unmerged_histogram_bounds_unchanged(self):
        # The saturation-bucket extension must not disturb ordinary
        # histograms: samples within max_value keep nominal bounds.
        h = Histogram(max_value=1 << 10)
        h.add(3)
        h.add(700)
        assert h.buckets()[0] == (2, 3, 1)
        assert h.buckets()[-1] == (512, 1023, 1)
        assert h.percentile(99) <= 700


class TestTimeSeries:
    def test_samples_until_inactive(self):
        eng = Engine()
        counter = {"v": 0, "alive": True}

        def bump():
            counter["v"] += 1
            if eng.now < 5000:
                eng.schedule_in(100, bump)
            else:
                counter["alive"] = False

        eng.schedule(0, bump)
        ts = TimeSeries(eng, probe=lambda: counter["v"], period=500,
                        active=lambda: counter["alive"])
        ts.start()
        eng.run()
        assert len(ts.samples) >= 5
        vals = ts.values()
        assert vals == sorted(vals)  # the counter only grows
        assert ts.peak == vals[-1] == ts.last()
        assert ts.mean > 0

    def test_bad_period(self):
        with pytest.raises(ValueError):
            TimeSeries(Engine(), probe=lambda: 0, period=0)

    def test_clock_skew_probe_on_real_run(self):
        from repro.sim.gpusim import GPUSimulator
        cfg = GPUConfig.small()
        wl = get_workload("dlb", intensity=0.2)
        sim = GPUSimulator(cfg, "RCC", wl.generate(cfg), "dlb")
        series = TimeSeries(sim.engine, clock_skew_probe(sim.proto.l1s),
                            period=500,
                            active=lambda: not all(c.finished
                                                   for c in sim.cores))
        series.start()
        sim.run()
        assert series.samples  # cores really do drift apart and resync
        assert series.peak >= 0


class TestCompare:
    @pytest.fixture(scope="class")
    def results(self):
        cfg = GPUConfig.small()
        out = []
        for protocol in ("MESI", "RCC"):
            for wlname in ("dlb", "kmn"):
                wl = get_workload(wlname, intensity=0.15)
                out.append(run_simulation(cfg, protocol, wl.generate(cfg),
                                          wlname))
        return out

    def test_compare_runs_baseline_is_one(self, results):
        table = compare_runs(results, baseline_protocol="MESI")
        assert table["MESI"]["speedup"] == pytest.approx(1.0)
        assert table["MESI"]["energy"] == pytest.approx(1.0)
        assert set(table) == {"MESI", "RCC"}
        assert table["RCC"]["speedup"] > 0

    def test_speedup_table_rows(self, results):
        rows = speedup_table(results)
        assert len(rows) == 4
        assert all(len(r) == 3 for r in rows)

    @staticmethod
    def _stub(protocol, workload, cycles, energy_total, flits):
        from types import SimpleNamespace
        return SimpleNamespace(protocol=protocol, workload=workload,
                               cycles=cycles,
                               energy=SimpleNamespace(total=energy_total),
                               total_flits=flits)

    def test_degenerate_runs_do_not_crash(self):
        # A zero-cycle run (empty trace) or zero energy total (energy
        # model off) must not raise ZeroDivisionError or poison the
        # geometric mean with zeros.
        results = [
            self._stub("MESI", "w", cycles=0, energy_total=0.0, flits=0),
            self._stub("RCC", "w", cycles=0, energy_total=0.0, flits=0),
        ]
        table = compare_runs(results, baseline_protocol="MESI")
        assert table["MESI"]["speedup"] == pytest.approx(1.0)
        assert table["RCC"]["energy"] == pytest.approx(1.0)
        rows = speedup_table(results, baseline_protocol="MESI")
        assert len(rows) == 2  # and formatting a 0-cycle run didn't crash

    def test_zero_cycle_run_against_real_baseline(self):
        results = [
            self._stub("MESI", "w", cycles=100, energy_total=4.0, flits=10),
            self._stub("RCC", "w", cycles=0, energy_total=2.0, flits=5),
        ]
        table = compare_runs(results, baseline_protocol="MESI")
        assert table["MESI"]["speedup"] == pytest.approx(1.0)
        assert table["RCC"]["speedup"] == pytest.approx(100.0)
        assert table["RCC"]["energy"] == pytest.approx(0.5)
