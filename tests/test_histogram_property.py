"""Randomized property battery for the log-bucketed histogram.

Every property is checked against an exact oracle: the raw sample list,
clamped to ``max_value`` exactly as :meth:`Histogram.add` clamps, kept
sorted. The histogram is a lossy structure, so the contract is split:

* **exact**: ``count``, ``total``, ``min``, ``max``, ``mean``,
  serialization round-trips, weighted ``add``, and same-width ``merge``
  (bucket counts are closed under addition, so merging must equal
  building from the concatenated samples);
* **bounded**: ``percentile(p)`` interpolates inside one power-of-two
  bucket, so the estimate must land within the nominal bounds of the
  bucket holding the oracle's nearest-rank sample (a rank of slack
  absorbs float round-off in the rank target), never leave
  ``[min, max]``, and be monotone in ``p``.

Distributions are chosen to hit the structure's edges: constants
(single-bucket degenerate interpolation), zeros (bucket 0 is the single
value 0), log-uniform spreads (most buckets occupied), values beyond
``max_value`` (saturation clamp), and cross-width merges (overflow
folding into the saturation bucket).
"""

from __future__ import annotations

import math
import random

import pytest

from repro.stats.histogram import Histogram

SEEDS = list(range(8))
PERCENTILES = [0.5, 1, 5, 10, 25, 50, 75, 90, 95, 99, 99.9, 100]


def sample_sets(seed: int):
    """Named sample lists covering the histogram's edge cases."""
    rng = random.Random(seed)
    yield "uniform-small", [rng.randrange(0, 64) for _ in range(200)]
    yield "log-uniform", [
        int(2 ** (rng.random() * 20)) for _ in range(300)]
    yield "constant", [rng.randrange(0, 1 << 16)] * 50
    yield "zeros", [0] * 20 + [rng.randrange(1, 8) for _ in range(5)]
    yield "heavy-tail", ([rng.randrange(1, 16) for _ in range(150)]
                         + [rng.randrange(1 << 18, 1 << 22)
                            for _ in range(10)])
    yield "singleton", [rng.randrange(0, 1 << 20)]


def build(samples, max_value=1 << 24):
    h = Histogram(max_value=max_value)
    for s in samples:
        h.add(s)
    oracle = sorted(min(s, max_value) for s in samples)
    return h, oracle


def oracle_rank_value(oracle, p, slack=0):
    """Nearest-rank percentile sample, offset by ``slack`` ranks."""
    target = len(oracle) * p / 100.0
    rank = max(1, math.ceil(target - 1e-9)) + slack
    rank = max(1, min(len(oracle), rank))
    return oracle[rank - 1]


def nominal_bounds(value: int, hist: Histogram):
    """The add-time bucket bounds of ``value`` (saturation-extended)."""
    i = value.bit_length()
    lo = 0 if i == 0 else 1 << (i - 1)
    hi = 0 if i == 0 else (1 << i) - 1
    if i == len(hist._buckets) - 1 and hist.max is not None:
        hi = max(hi, hist.max)
    return lo, hi


@pytest.mark.parametrize("seed", SEEDS)
class TestAgainstOracle:
    def test_exact_aggregates(self, seed):
        for name, samples in sample_sets(seed):
            h, oracle = build(samples)
            assert h.count == len(oracle), name
            assert h.total == sum(oracle), name
            assert h.min == oracle[0], name
            assert h.max == oracle[-1], name
            assert h.mean == pytest.approx(sum(oracle) / len(oracle)), name
            assert sum(n for _, _, n in h.buckets()) == len(oracle), name

    def test_percentiles_bracket_oracle(self, seed):
        """The estimate stays inside the bucket of the oracle's
        nearest-rank sample (one rank of slack either side for float
        round-off in the rank target), and inside [min, max]."""
        for name, samples in sample_sets(seed):
            h, oracle = build(samples)
            for p in PERCENTILES:
                est = h.percentile(p)
                lo = min(nominal_bounds(oracle_rank_value(oracle, p, s), h)[0]
                         for s in (-1, 0, 1))
                hi = max(nominal_bounds(oracle_rank_value(oracle, p, s), h)[1]
                         for s in (-1, 0, 1))
                assert lo <= est <= hi, (
                    f"{name} p{p}: est {est} outside [{lo}, {hi}]")
                assert h.min <= est <= h.max, (
                    f"{name} p{p}: est {est} outside [{h.min}, {h.max}]")

    def test_percentiles_monotone(self, seed):
        for name, samples in sample_sets(seed):
            h, _ = build(samples)
            ests = [h.percentile(p) for p in PERCENTILES]
            assert ests == sorted(ests), name
            assert ests[-1] == h.max, name

    def test_weighted_add_equals_repeats(self, seed):
        rng = random.Random(seed)
        pairs = [(rng.randrange(0, 1 << 20), rng.randrange(1, 5))
                 for _ in range(50)]
        weighted = Histogram()
        repeated = Histogram()
        for value, k in pairs:
            weighted.add(value, count=k)
            for _ in range(k):
                repeated.add(value)
        assert weighted.to_dict() == repeated.to_dict()

    def test_same_width_merge_equals_concat(self, seed):
        for (name_a, a), (name_b, b) in zip(sample_sets(seed),
                                            sample_sets(seed + 1000)):
            ha, _ = build(a)
            hb, _ = build(b)
            hall, _ = build(a + b)
            ha.merge(hb)
            assert ha.to_dict() == hall.to_dict(), (name_a, name_b)

    def test_cross_width_merge_keeps_aggregates(self, seed):
        """Folding a wider histogram into a narrower one must keep
        count/total/min/max exact and percentiles sane, even though the
        overflow collapses into the saturation bucket."""
        rng = random.Random(seed)
        wide_samples = [int(2 ** (rng.random() * 18)) for _ in range(100)]
        narrow_samples = [rng.randrange(0, 200) for _ in range(100)]
        wide, wide_oracle = build(wide_samples, max_value=1 << 20)
        narrow, narrow_oracle = build(narrow_samples, max_value=1 << 8)
        narrow.merge(wide)
        oracle = sorted(narrow_oracle + wide_oracle)
        assert narrow.count == len(oracle)
        assert narrow.total == sum(oracle)
        assert narrow.min == oracle[0]
        assert narrow.max == oracle[-1]
        ests = [narrow.percentile(p) for p in PERCENTILES]
        assert ests == sorted(ests)
        assert all(narrow.min <= e <= narrow.max for e in ests)
        assert narrow.percentile(100) == narrow.max

    def test_serialization_roundtrip(self, seed):
        for name, samples in sample_sets(seed):
            h, _ = build(samples)
            back = Histogram.from_dict(h.to_dict())
            assert back.to_dict() == h.to_dict(), name
            assert back.summary() == h.summary(), name
            for p in PERCENTILES:
                assert back.percentile(p) == h.percentile(p), name


class TestClampEdges:
    def test_over_max_values_clamp_exactly(self):
        h = Histogram(max_value=1 << 10)
        h.add(5000)
        h.add(123456, count=3)
        assert h.count == 4
        assert h.total == 4 * (1 << 10)
        assert h.min == h.max == 1 << 10
        for p in PERCENTILES:
            assert h.percentile(p) == float(1 << 10)

    def test_single_zero(self):
        h = Histogram()
        h.add(0)
        assert h.min == h.max == 0
        for p in PERCENTILES:
            assert h.percentile(p) == 0.0
