"""Unit tests for MSHRs and the DRAM partition model."""

import pytest

from repro.config import DRAMConfig
from repro.errors import SimulationError
from repro.mem.dram import DRAMPartition
from repro.mem.mshr import MSHRFile
from repro.timing.engine import Engine


class TestMSHR:
    def test_allocate_and_release(self):
        f = MSHRFile(2)
        e = f.allocate(0x100)
        assert f.get(0x100) is e
        assert 0x100 in f
        f.release(0x100)
        assert f.get(0x100) is None

    def test_allocate_is_get_or_create(self):
        f = MSHRFile(2)
        a = f.allocate(0x100)
        b = f.allocate(0x100)
        assert a is b
        assert len(f) == 1

    def test_capacity(self):
        f = MSHRFile(2)
        f.allocate(0)
        f.allocate(128)
        assert not f.has_free()
        with pytest.raises(SimulationError):
            f.allocate(256)

    def test_release_nonempty_rejected(self):
        f = MSHRFile(2)
        e = f.allocate(0)
        e.waiting_loads.append(object())
        with pytest.raises(SimulationError):
            f.release(0)

    def test_release_if_empty(self):
        f = MSHRFile(2)
        e = f.allocate(0)
        e.pending_stores.append(object())
        assert not f.release_if_empty(0)
        e.pending_stores.clear()
        assert f.release_if_empty(0)

    def test_peak_occupancy(self):
        f = MSHRFile(4)
        for i in range(3):
            f.allocate(i * 128)
        f.release(0)
        assert f.peak_occupancy == 3


class TestDRAM:
    def make(self, **kw):
        eng = Engine()
        cfg = DRAMConfig(min_latency=100, row_hit_cycles=10,
                         row_miss_cycles=40, **kw)
        return eng, DRAMPartition(eng, cfg, partition_id=0)

    def test_min_latency_respected(self):
        eng, dram = self.make()
        done = []
        dram.access(0, False, "t", lambda t: done.append(eng.now))
        eng.run()
        assert done == [100]

    def test_row_hit_vs_miss_accounting(self):
        eng, dram = self.make()
        dram.access(0, False, "a", lambda t: None)
        dram.access(128 * dram.cfg.banks_per_partition, False, "b",
                    lambda t: None)  # same bank, same row
        eng.run()
        assert dram.row_misses == 1
        assert dram.row_hits == 1

    def test_bank_contention_extends_latency(self):
        eng, dram = self.make()
        finish = []
        bank_stride = 128 * dram.cfg.banks_per_partition
        for i in range(30):
            # All to bank 0, alternating rows: every access is a row miss.
            addr = i * bank_stride * 16
            dram.access(addr, False, i, lambda t: finish.append(eng.now))
        eng.run()
        assert max(finish) > 100  # queueing pushed past the min latency

    def test_reads_and_writes_counted(self):
        eng, dram = self.make()
        dram.access(0, False, "r", lambda t: None)
        dram.access(128, True, "w", lambda t: None)
        eng.run()
        assert dram.reads == 1
        assert dram.writes == 1

    def test_mnow_monotone(self):
        _, dram = self.make()
        dram.bump_mnow(50)
        dram.bump_mnow(20)
        assert dram.mnow == 50
        dram.reset_timestamps()
        assert dram.mnow == 0
