"""Integration tests for the SM core's issue stage: SC stalls, barriers,
fences, round-robin fairness, and stall attribution."""

import pytest

from repro.common.types import MemOpKind
from repro.gpu.trace import (
    atomic_op, barrier_op, compute_op, fence_op, load_op, store_op,
)
from tests.conftest import run_program


BLOCK = 128


def test_single_warp_executes_all_ops(tiny_cfg):
    r = run_program(tiny_cfg, "RCC", {
        (0, 0): [load_op(0), compute_op(5), store_op(BLOCK), load_op(0)],
    })
    assert r.mem_ops == 3
    assert r.cycles > 0


def test_sc_limits_one_outstanding_per_warp(tiny_cfg):
    """Back-to-back loads from one warp must serialize under SC."""
    one = run_program(tiny_cfg, "RCC", {(0, 0): [load_op(0)]})
    two = run_program(tiny_cfg, "RCC",
                      {(0, 0): [load_op(0), load_op(10 * BLOCK)]})
    # The second (independent) load could overlap under WO; under SC the
    # runtime roughly doubles.
    assert two.cycles > one.cycles * 1.6


def test_wo_overlaps_independent_loads(tiny_cfg):
    ops = [load_op(i * 7 * BLOCK) for i in range(4)]
    sc = run_program(tiny_cfg, "RCC", {(0, 0): list(ops)})
    wo = run_program(tiny_cfg, "RCC-WO", {(0, 0): list(ops)})
    assert wo.cycles < sc.cycles


def test_sc_stall_attributed_to_store(tiny_cfg):
    r = run_program(tiny_cfg, "RCC", {
        (0, 0): [store_op(0), load_op(5 * BLOCK)],
    })
    assert r.sc_stalled_ops == 1
    assert r.sc_stall_by_blocker[MemOpKind.STORE] > 0
    assert r.sc_stall_by_blocker[MemOpKind.LOAD] == 0


def test_sc_stall_attributed_to_load(tiny_cfg):
    r = run_program(tiny_cfg, "RCC", {
        (0, 0): [load_op(0), load_op(5 * BLOCK)],
    })
    assert r.sc_stall_by_blocker[MemOpKind.LOAD] > 0
    assert r.sc_stall_by_blocker[MemOpKind.STORE] == 0


def test_compute_between_mem_ops_reduces_stall(tiny_cfg):
    stall = run_program(tiny_cfg, "RCC", {
        (0, 0): [store_op(0), load_op(5 * BLOCK)],
    })
    padded = run_program(tiny_cfg, "RCC", {
        (0, 0): [store_op(0), compute_op(2000), load_op(5 * BLOCK)],
    })
    assert padded.sc_stall_cycles < stall.sc_stall_cycles


def test_barrier_synchronizes_warps(tiny_cfg):
    """A fast warp must wait at the barrier for a slow sibling."""
    r = run_program(tiny_cfg, "RCC", {
        (0, 0): [barrier_op(0), store_op(0)],
        (0, 1): [compute_op(3000), barrier_op(0), store_op(BLOCK)],
    }, record_ops=True)
    stores = [op for op in r.op_logs if op.kind is MemOpKind.STORE]
    assert all(op.issue_cycle >= 3000 for op in stores)


def test_barrier_with_done_warp_does_not_deadlock(tiny_cfg):
    # Warp 1 finishes before warp 0 reaches the barrier.
    r = run_program(tiny_cfg, "RCC", {
        (0, 0): [compute_op(500), barrier_op(0), store_op(0)],
        (0, 1): [load_op(BLOCK)],
    })
    assert r.mem_ops == 2


def test_fence_noop_under_sc(tiny_cfg):
    plain = run_program(tiny_cfg, "RCC", {
        (0, 0): [store_op(0), load_op(BLOCK)],
    })
    fenced = run_program(tiny_cfg, "RCC", {
        (0, 0): [store_op(0), fence_op(), load_op(BLOCK)],
    })
    # Under SC the fence retires immediately once the store drains; the
    # run should not be meaningfully longer.
    assert fenced.cycles <= plain.cycles + 10


def test_fence_drains_outstanding_under_wo(tiny_cfg):
    r = run_program(tiny_cfg, "TCW", {
        (0, 0): [store_op(0), store_op(5 * BLOCK), fence_op(),
                 load_op(9 * BLOCK)],
    }, record_ops=True)
    load = [op for op in r.op_logs if op.kind is MemOpKind.LOAD][0]
    stores = [op for op in r.op_logs if op.kind is MemOpKind.STORE]
    assert load.issue_cycle >= max(s.complete_cycle for s in stores)
    assert r.fence_ops == 1


def test_atomic_returns_previous_value(tiny_cfg):
    r = run_program(tiny_cfg, "RCC", {
        (0, 0): [store_op(0), atomic_op(0)],
    }, record_ops=True)
    at = [op for op in r.op_logs if op.kind is MemOpKind.ATOMIC][0]
    st = [op for op in r.op_logs if op.kind is MemOpKind.STORE][0]
    assert at.read_value == st.value


def test_round_robin_serves_all_warps(small_cfg):
    ops = [load_op(i * BLOCK) for i in range(3)]
    r = run_program(small_cfg, "RCC", {
        (c, w): list(ops)
        for c in range(small_cfg.n_cores)
        for w in range(small_cfg.warps_per_core)
    })
    assert r.mem_ops == 3 * small_cfg.n_cores * small_cfg.warps_per_core


def test_latency_accounting_by_kind(tiny_cfg):
    r = run_program(tiny_cfg, "RCC", {
        (0, 0): [load_op(0), store_op(BLOCK)],
    })
    assert r.avg_load_latency > 0
    assert r.avg_store_latency > 0
    assert r.mem_ops_by_kind[MemOpKind.LOAD] == 1
    assert r.mem_ops_by_kind[MemOpKind.STORE] == 1
