"""Tests for the exception hierarchy and miscellaneous invariants."""

import pytest

from repro.errors import (
    ConfigError, ConsistencyViolation, DeadlockError, ProtocolError,
    ReproError, SimulationError, TraceError,
)


def test_hierarchy():
    for exc in (ConfigError, ConsistencyViolation, DeadlockError,
                ProtocolError, SimulationError, TraceError):
        assert issubclass(exc, ReproError)
    assert issubclass(DeadlockError, SimulationError)


def test_deadlock_error_carries_cycle():
    err = DeadlockError(123, "stuck cores")
    assert err.cycle == 123
    assert "123" in str(err)
    assert "stuck cores" in str(err)


def test_protocol_error_fields():
    err = ProtocolError("L2[1]", "IAV", "GETS")
    assert err.component == "L2[1]"
    assert err.state == "IAV"
    assert err.event == "GETS"


def test_single_except_clause_catches_everything():
    for exc in (ConfigError("x"), TraceError("y"), DeadlockError(1)):
        try:
            raise exc
        except ReproError:
            pass


class TestPackageSurface:
    def test_top_level_exports(self):
        import repro
        assert repro.__version__
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_workloads_exports(self):
        import repro.workloads as w
        for name in w.__all__:
            assert hasattr(w, name), name

    def test_core_package_exports(self):
        import repro.core as c
        for name in c.__all__:
            assert hasattr(c, name), name

    def test_latency_histograms_in_results(self):
        from repro.common.types import MemOpKind
        from repro.config import GPUConfig
        from repro.sim.gpusim import run_simulation
        from repro.workloads import get_workload
        cfg = GPUConfig.small()
        wl = get_workload("dlb", intensity=0.15)
        res = run_simulation(cfg, "RCC", wl.generate(cfg), "dlb")
        hist = res.latency_hist[MemOpKind.LOAD]
        assert hist.count == res.mem_ops_by_kind[MemOpKind.LOAD]
        assert hist.mean == pytest.approx(res.avg_load_latency, rel=1e-6)
        assert hist.percentile(99) >= hist.percentile(50)
