"""Protocol-level tests for RCC: the three ordering rules, instant write
permissions, VI-state readability, lease extension (RENEW), the lease
predictor in vivo, L2 evictions through ``mnow``, and MSHR write merging.

These run tiny programs through the full simulator and inspect controller
state and statistics, pinning the behaviours of paper §III.
"""

import pytest

from repro.common.types import L1State, MemOpKind
from repro.config import GPUConfig, TimestampConfig
from repro.gpu.trace import atomic_op, compute_op, load_op, store_op
from repro.sim.gpusim import GPUSimulator
from tests.conftest import program_traces

BLOCK = 128


def build(cfg, protocol, programs, **kw):
    return GPUSimulator(cfg, protocol, program_traces(cfg, programs),
                        "rcc-test", **kw)


def test_store_acquires_write_permission_instantly(tiny_cfg):
    """An RCC store to data leased by other cores must NOT wait for the
    lease: its latency is a plain round trip, unlike TCS."""
    program = {
        (0, 0): [load_op(0), compute_op(20), load_op(0)],   # reader holds lease
        (1, 0): [compute_op(300), store_op(0)],             # writer
    }
    rcc = build(tiny_cfg, "RCC", program, record_ops=True)
    r_rcc = rcc.run()
    tcs = build(tiny_cfg, "TCS", program, record_ops=True)
    r_tcs = tcs.run()

    def store_latency(res):
        return [op.latency for op in res.op_logs
                if op.kind is MemOpKind.STORE][0]

    assert store_latency(r_rcc) < store_latency(r_tcs)
    assert r_tcs.l2_store_lease_wait > 0
    assert r_rcc.l2_store_lease_wait == 0


def test_rule3_write_version_exceeds_outstanding_lease(tiny_cfg):
    """After a store, the block's L2 version must exceed the lease that was
    outstanding when the store arrived (rule 3)."""
    sim = build(tiny_cfg, "RCC", {
        (0, 0): [load_op(0)],
        (1, 0): [compute_op(200), store_op(0)],
    })
    sim.run()
    bank = sim.proto.l2s[sim.amap.bank_of(0)]
    line = bank.cache.lookup(0)
    assert line.ver > 0
    # The lease handed to core 0 ended at most at line.exp at store time;
    # ver must have been pushed past it.
    assert line.ver > tiny_cfg.ts.lease_min


def test_writer_clock_advances_past_lease(tiny_cfg):
    sim = build(tiny_cfg, "RCC", {
        (0, 0): [load_op(0)],
        (1, 0): [compute_op(200), store_op(0)],
    })
    sim.run()
    writer = sim.proto.l1s[1]
    bank = sim.proto.l2s[sim.amap.bank_of(0)]
    assert writer.clock.value == bank.cache.lookup(0).ver


def test_reader_picks_up_write_version_rule1(tiny_cfg):
    """A read of written data advances the reading core's now to ver."""
    sim = build(tiny_cfg, "RCC", {
        (0, 0): [store_op(0)],
        (1, 0): [compute_op(500), load_op(0)],
    }, record_ops=True)
    res = sim.run()
    reader = sim.proto.l1s[1]
    bank = sim.proto.l2s[sim.amap.bank_of(0)]
    assert reader.clock.value >= bank.cache.lookup(0).ver
    load = [op for op in res.op_logs if op.kind is MemOpKind.LOAD][0]
    store = [op for op in res.op_logs if op.kind is MemOpKind.STORE][0]
    assert load.read_value == store.value


def test_vi_state_keeps_old_copy_readable(tiny_cfg):
    """While a store ack is outstanding (VI), *other* warps may still read
    the pre-store copy (GPU-specific optimization, paper §III-C)."""
    cfg = tiny_cfg
    # Warp 0: load fills the line (~105 cy with the cold DRAM fetch),
    # computes, stores at ~305; the ack returns ~55 cy later. Warp 1's
    # load at ~320 lands inside the VI window and must hit the retained
    # pre-store copy.
    # (COMPUTE ops overlap outstanding loads, so the store issues at
    # ~200 and its ack lands ~55 cycles later.)
    sim = build(cfg, "RCC", {
        (0, 0): [load_op(0), compute_op(200), store_op(0)],
        (0, 1): [compute_op(230), load_op(0)],  # reads while VI
    }, record_ops=True)
    res = sim.run()
    # The sibling's load must have hit in the L1 (no extra GETS).
    assert sim.proto.l1s[0].stats.load_hits >= 1


def test_same_warp_cannot_read_own_store_from_vi(tiny_cfg):
    """The VI copy is readable by *other* warps only: the writing warp's
    own load must fetch the new value (read-own-write)."""
    sim = build(tiny_cfg, "RCC-WO", {
        (0, 0): [load_op(0), store_op(0), load_op(0)],
    }, record_ops=True)
    res = sim.run()
    loads = sorted((op for op in res.op_logs if op.kind is MemOpKind.LOAD),
                   key=lambda o: o.prog_index)
    store = [op for op in res.op_logs if op.kind is MemOpKind.STORE][0]
    assert loads[1].read_value == store.value


def test_self_invalidation_after_final_ack(tiny_cfg):
    """VI -> I on the last store ack: the stale copy is dropped."""
    sim = build(tiny_cfg, "RCC", {
        (0, 0): [load_op(0), store_op(0)],
    })
    sim.run()
    l1 = sim.proto.l1s[0]
    assert l1.stats.self_invalidations >= 1
    line = l1.cache.lookup(0)
    assert line is None or line.state is not L1State.V


def test_renew_grants_on_unchanged_block(tiny_cfg):
    """An expired copy of an unwritten block gets a data-less RENEW."""
    cfg = tiny_cfg.replace(ts=TimestampConfig(
        lease_min=8, lease_max=16, lease_default=8,
        predictor_enabled=False, livelock_tick_cycles=2000))
    # Warp reads A, then repeatedly leases-and-writes B (each write must
    # push past B's fresh lease, advancing the warp's clock), then re-reads
    # A: A's lease has logically expired but A is unchanged.
    ops = [load_op(0)]
    for i in range(6):
        ops += [load_op(10 * BLOCK), store_op(10 * BLOCK)]
    ops += [load_op(0)]
    sim = build(cfg, "RCC", {(0, 0): ops})
    res = sim.run()
    assert res.l1_load_expired >= 1
    assert res.l2_renew_grants >= 1
    assert res.l1_renews >= 1


def test_renew_not_granted_when_block_changed(tiny_cfg):
    cfg = tiny_cfg.replace(ts=TimestampConfig(
        lease_min=8, lease_max=16, lease_default=8,
        predictor_enabled=False, livelock_tick_cycles=2000))
    # Core 0 advances its own logical clock (lease/write loop on B) so its
    # re-read of A is logically after core 1's store to A — it must fetch
    # the new value, not get a renewal. (Without the clock advance, reading
    # the *old* A forever would be legal: that is the relativistic point.)
    advance = []
    for i in range(6):
        advance += [load_op(10 * BLOCK), store_op(10 * BLOCK)]
    sim = build(cfg, "RCC", {
        (0, 0): [load_op(0)] + advance + [compute_op(400), load_op(0)],
        (1, 0): [compute_op(100), store_op(0)],
    }, record_ops=True)
    res = sim.run()
    # Core 0's second load must return the new value, not a renewed copy.
    loads = sorted((op for op in res.op_logs
                    if op.kind is MemOpKind.LOAD and op.core_id == 0),
                   key=lambda o: o.prog_index)
    store = [op for op in res.op_logs
             if op.kind is MemOpKind.STORE and op.addr == 0][0]
    assert loads[-1].read_value == store.value


def test_predictor_shortens_after_write_and_grows_on_renew(tiny_cfg):
    sim = build(tiny_cfg, "RCC", {
        (0, 0): [store_op(0), load_op(0)],
    })
    sim.run()
    bank = sim.proto.l2s[sim.amap.bank_of(0)]
    line = bank.cache.lookup(0)
    assert bank.predictor.prediction(line) == tiny_cfg.ts.lease_min


def test_l2_eviction_folds_into_mnow(tiny_cfg):
    """Evicted blocks carry max(exp+1, ver) into the partition's mnow."""
    n_blocks = (tiny_cfg.l2_per_bank.size_bytes
                // tiny_cfg.l2_per_bank.block_bytes)
    span = 4 * n_blocks * tiny_cfg.l2_banks
    ops = [load_op(i * BLOCK) for i in range(0, span, 2)][:160]
    ops += [store_op(3 * BLOCK)]
    sim = build(tiny_cfg, "RCC", {(0, 0): ops})
    res = sim.run()
    assert res.l2_evictions > 0
    assert any(d.mnow > 0 for d in sim.drams)


def test_atomic_miss_uses_iav_and_returns_memory_value(tiny_cfg):
    sim = build(tiny_cfg, "RCC", {
        (0, 0): [atomic_op(7 * BLOCK)],
    }, record_ops=True)
    res = sim.run()
    at = res.op_logs[0]
    assert at.read_value == ("init", 7 * BLOCK)
    bank = sim.proto.l2s[sim.amap.bank_of(7 * BLOCK)]
    line = bank.cache.lookup(7 * BLOCK)
    assert line.value == at.value     # RMW result installed
    assert line.dirty


def test_write_miss_acked_before_dram_fill(tiny_cfg):
    """RCC acks a write that misses in L2 against lastwr/mnow without
    waiting for the DRAM fill (paper §III-D)."""
    sim = build(tiny_cfg, "RCC", {(0, 0): [store_op(9 * BLOCK)]},
                record_ops=True)
    res = sim.run()
    st = res.op_logs[0]
    # Round trip without DRAM: must complete well before a DRAM-inclusive
    # round trip (NoC ~ l2_min_round_trip, DRAM adds min_latency more).
    assert st.latency < tiny_cfg.l2_min_round_trip + tiny_cfg.dram.min_latency


def test_concurrent_stores_same_block_allowed(tiny_cfg):
    """Unlike MESI/TCS, RCC does not serialize same-block stores in the L1
    MSHR (the FSM sends WRITE from II state)."""
    sim = build(tiny_cfg, "RCC", {
        (0, 0): [store_op(0)],
        (0, 1): [store_op(0)],
    })
    res = sim.run()
    assert res.structural_stalls == 0


def test_livelock_tick_advances_idle_clock():
    cfg = GPUConfig.small().replace(n_cores=2, warps_per_core=2)
    cfg.ts.livelock_tick_cycles = 100
    sim = build(cfg, "RCC", {
        (0, 0): [load_op(0), compute_op(5000), load_op(0)],
    })
    sim.run()
    assert sim.proto.l1s[0].clock.value > 0
