"""Unit tests for configuration validation and canned configs."""

import pytest

from repro.config import (
    GPUConfig, CacheConfig, TimestampConfig, PROTOCOLS, consistency_of,
)
from repro.errors import ConfigError


def test_paper_config_matches_table_iii():
    cfg = GPUConfig.paper()
    cfg.validate()
    assert cfg.n_cores == 16
    assert cfg.warps_per_core == 48
    assert cfg.l1.size_bytes == 32 * 1024
    assert cfg.l1.assoc == 4
    assert cfg.l1.block_bytes == 128
    assert cfg.l2_banks == 8
    assert cfg.l2_per_bank.size_bytes == 128 * 1024
    assert cfg.l2_min_round_trip == 340
    assert cfg.dram.min_latency == 460
    assert cfg.ts.bits == 32
    assert cfg.ts.lease_min == 8
    assert cfg.ts.lease_max == 2048


def test_small_and_bench_validate():
    GPUConfig.small().validate()
    GPUConfig.bench().validate()


def test_replace_returns_copy():
    cfg = GPUConfig.small()
    cfg2 = cfg.replace(n_cores=2)
    assert cfg.n_cores == 4
    assert cfg2.n_cores == 2


def test_consistency_of_known_protocols():
    assert consistency_of("RCC") == "sc"
    assert consistency_of("RCC-WO") == "wo"
    assert consistency_of("TCW") == "wo"
    assert consistency_of("MESI") == "sc"
    assert set(PROTOCOLS) == {"MESI", "TCS", "TCW", "RCC", "RCC-WO",
                              "SC-IDEAL"}


def test_consistency_of_unknown_raises():
    with pytest.raises(ConfigError):
        consistency_of("MOESI")


def test_bad_lease_bounds_rejected():
    with pytest.raises(ConfigError):
        TimestampConfig(lease_min=100, lease_default=50).validate()


def test_lease_max_must_fit_width():
    with pytest.raises(ConfigError):
        TimestampConfig(bits=10, lease_min=8, lease_default=64,
                        lease_max=2048).validate()


def test_mismatched_block_sizes_rejected():
    cfg = GPUConfig.small()
    cfg.l1 = CacheConfig(size_bytes=4096, assoc=4, block_bytes=64)
    with pytest.raises(ConfigError):
        cfg.validate()


def test_zero_cores_rejected():
    with pytest.raises(ConfigError):
        GPUConfig.small().replace(n_cores=0).validate()
