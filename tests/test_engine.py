"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.timing.engine import Engine


def test_runs_events_in_time_order():
    eng = Engine()
    fired = []
    eng.schedule(10, lambda: fired.append(10))
    eng.schedule(5, lambda: fired.append(5))
    eng.schedule(7, lambda: fired.append(7))
    eng.run()
    assert fired == [5, 7, 10]
    assert eng.now == 10


def test_same_cycle_events_fire_in_schedule_order():
    eng = Engine()
    fired = []
    for i in range(20):
        eng.schedule(3, lambda i=i: fired.append(i))
    eng.run()
    assert fired == list(range(20))


def test_schedule_in_is_relative():
    eng = Engine()
    seen = []
    eng.schedule(4, lambda: eng.schedule_in(6, lambda: seen.append(eng.now)))
    eng.run()
    assert seen == [10]


def test_cannot_schedule_in_past():
    eng = Engine()
    eng.schedule(5, lambda: None)
    eng.run()
    with pytest.raises(SimulationError):
        eng.schedule(3, lambda: None)


def test_negative_delay_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng.schedule_in(-1, lambda: None)


def test_cancelled_events_do_not_fire():
    eng = Engine()
    fired = []
    ev = eng.schedule(5, lambda: fired.append("cancelled"))
    eng.schedule(6, lambda: fired.append("kept"))
    ev.cancel()
    eng.run()
    assert fired == ["kept"]


def test_stop_halts_run():
    eng = Engine()
    fired = []
    eng.schedule(1, lambda: fired.append(1))
    eng.schedule(2, eng.stop)
    eng.schedule(3, lambda: fired.append(3))
    eng.run()
    assert fired == [1]
    assert eng.step()          # the stopped event is still pending
    eng.run()
    assert fired == [1, 3]


def test_run_until_leaves_future_events():
    eng = Engine()
    fired = []
    eng.schedule(5, lambda: fired.append(5))
    eng.schedule(50, lambda: fired.append(50))
    eng.run(until=10)
    assert fired == [5]
    assert eng.now == 10
    assert eng.pending == 1


def test_max_cycles_guards_against_livelock():
    eng = Engine(max_cycles=100)

    def reschedule():
        eng.schedule_in(10, reschedule)

    eng.schedule(0, reschedule)
    with pytest.raises(DeadlockError):
        eng.run()


def test_peek_skips_cancelled():
    eng = Engine()
    ev = eng.schedule(5, lambda: None)
    eng.schedule(9, lambda: None)
    ev.cancel()
    assert eng.peek() == 9


def test_events_fired_counter():
    eng = Engine()
    for i in range(7):
        eng.schedule(i, lambda: None)
    eng.run()
    assert eng.events_fired == 7
    assert eng.snapshot() == (6, 7, 0)
