"""Tests for the experiment harness, table rendering, and the CLI."""

import pytest

from repro.config import GPUConfig
from repro.harness.complexity import PAPER_TABLE_V, implementation_states, \
    table_v_rows
from repro.harness.experiments import ALL_EXPERIMENTS, ExperimentResult, \
    Harness
from repro.harness.runner import build_parser, main, select
from repro.harness.tables import fmt, render_markdown, render_table


@pytest.fixture(scope="module")
def harness():
    # Tiny machine + tiny intensity: the harness logic, not the numbers.
    return Harness(cfg=GPUConfig.small(), intensity=0.1)


class TestTables:
    def test_fmt(self):
        assert fmt(3.14159) == "3.142"
        assert fmt(1234.5) == "1234.5"
        assert fmt("x") == "x"
        assert fmt(7) == "7"

    def test_render_table_alignment(self):
        out = render_table(["a", "long_column"], [[1, 2], [333, 4]],
                           title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "long_column" in lines[1]
        assert len(lines) == 5

    def test_render_markdown(self):
        out = render_markdown(["x", "y"], [[1, 2.5]])
        assert out.splitlines()[0] == "| x | y |"
        assert "| 1 | 2.500 |" in out


class TestComplexity:
    def test_paper_numbers(self):
        assert PAPER_TABLE_V["RCC"]["l1_transitions"] == 33
        assert PAPER_TABLE_V["RCC"]["l2_transitions"] == 14
        assert PAPER_TABLE_V["MESI"]["l1_transitions"] == 81

    def test_implementation_matches_paper_state_counts(self):
        impl = implementation_states()["RCC"]
        paper = PAPER_TABLE_V["RCC"]
        for key in impl:
            assert impl[key] == paper[key]

    def test_rows_shape(self):
        rows = table_v_rows()
        assert len(rows) == 4
        assert all(len(r) == 5 for r in rows)


class TestHarness:
    def test_run_is_cached(self, harness):
        a = harness.run("RCC", "dlb")
        b = harness.run("RCC", "dlb")
        assert a is b

    def test_ts_overrides_not_conflated(self, harness):
        a = harness.run("RCC", "dlb")
        b = harness.run("RCC", "dlb", ts_overrides={"renew_enabled": False})
        assert a is not b
        assert b.l2_renew_grants == 0

    def test_static_tables(self, harness):
        for name in ("table1", "table3", "table4", "table5"):
            exp = getattr(harness, name)()
            assert exp.rows
            assert exp.render()

    def test_fig6_runs_on_small_machine(self, harness):
        exp = harness.fig6()
        assert len(exp.rows) == 12
        assert set(ALL_EXPERIMENTS) >= {"fig1", "fig9", "table5"}

    def test_experiment_result_render(self):
        exp = ExperimentResult("x", "Title", ["a", "b"])
        exp.add_row(1, 2)
        exp.claim("thing", "10%", "12%")
        exp.notes.append("a note")
        text = exp.render()
        assert "Title" in text and "paper 10%" in text and "a note" in text


class TestRunnerCLI:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig6"])
        assert args.experiments == ["fig6"]
        assert args.intensity == 0.25

    def test_select_all(self):
        assert select(["all"]) == list(ALL_EXPERIMENTS)

    def test_select_unknown_exits(self):
        with pytest.raises(SystemExit):
            select(["fig99"])

    def test_main_static_table(self, capsys, tmp_path):
        report = tmp_path / "r.md"
        rc = main(["table1", "table4", "--quick",
                   "--report", str(report)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert report.read_text().startswith("## Table I")
