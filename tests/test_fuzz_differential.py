"""Differential fuzzing tests: the SC interleaving oracle on hand-built
observations, a bounded smoke campaign over every registered protocol
(zero SC violations expected), and the closed loop that certifies the
fuzzer can catch a broken protocol — a deliberately TSO-buffered toy
executor must be flagged and shrunk to a minimal reproducer."""

import pytest

from repro.common.types import MemOpKind
from repro.fuzz.differential import (
    DifferentialRunner, ProgramVerdict, run_campaign,
)
from repro.fuzz.generator import FuzzKnobs, FuzzOp, FuzzProgram, \
    generate_program
from repro.fuzz.oracle import (
    INIT, Observation, OracleExhausted, explain, sc_explainable,
)
from repro.fuzz.shrink import shrink_program
from repro.fuzz.toy import broken_store_buffer_executor, \
    reference_sc_executor
from tests.conftest import SC_PROTOCOLS

L = lambda s: FuzzOp(MemOpKind.LOAD, slot=s)
S = lambda s: FuzzOp(MemOpKind.STORE, slot=s)
A = lambda s: FuzzOp(MemOpKind.ATOMIC, slot=s)


def prog(warps, n_addrs=2):
    return FuzzProgram(n_addrs=n_addrs, warps=warps, name="hand")


# ----------------------------------------------------------------------
# Oracle on hand-built observations
# ----------------------------------------------------------------------

MP = prog({(0, 0): [S(0), S(1)], (1, 0): [L(1), L(0)]})


def test_oracle_explains_sc_mp_outcome():
    obs = Observation(reads={(1, 0): [(0, 0, 1), (0, 0, 0)]},
                      final={0: (0, 0, 0), 1: (0, 0, 1)})
    steps = explain(MP, obs)
    assert steps is not None
    assert len(steps) == 4  # full interleaving returned


def test_oracle_rejects_mp_violation():
    # Saw the flag (second store) but stale data: forbidden under SC.
    obs = Observation(reads={(1, 0): [(0, 0, 1), INIT]},
                      final={0: (0, 0, 0), 1: (0, 0, 1)})
    assert explain(MP, obs) is None


def test_oracle_rejects_store_buffering_outcome():
    sb = prog({(0, 0): [S(0), L(1)], (1, 0): [S(1), L(0)]})
    both_stale = Observation(reads={(0, 0): [INIT], (1, 0): [INIT]},
                             final={0: (0, 0, 0), 1: (1, 0, 0)})
    assert not sc_explainable(sb, both_stale)
    one_stale = Observation(reads={(0, 0): [(1, 0, 0)], (1, 0): [INIT]},
                            final={0: (0, 0, 0), 1: (1, 0, 0)})
    assert sc_explainable(sb, one_stale)


def test_oracle_atomics_serialize():
    contended = prog({(0, 0): [A(0)], (1, 0): [A(0)]}, n_addrs=1)
    serialized = Observation(reads={(0, 0): [INIT], (1, 0): [(0, 0, 0)]},
                             final={0: (1, 0, 0)})
    assert sc_explainable(contended, serialized)
    # Both atomics reading the initial value means a lost update.
    lost = Observation(reads={(0, 0): [INIT], (1, 0): [INIT]},
                       final={0: (1, 0, 0)})
    assert not sc_explainable(contended, lost)


def test_oracle_rejects_wrong_read_count():
    obs = Observation(reads={(1, 0): [(0, 0, 1)]},  # one read missing
                      final={0: (0, 0, 0), 1: (0, 0, 1)})
    assert explain(MP, obs) is None


def test_oracle_fences_have_no_semantics():
    fenced = prog({(0, 0): [S(0), FuzzOp(MemOpKind.FENCE), L(0)]},
                  n_addrs=1)
    obs = Observation(reads={(0, 0): [(0, 0, 0)]}, final={0: (0, 0, 0)})
    assert sc_explainable(fenced, obs)


def test_oracle_state_budget():
    two_stores = prog({(0, 0): [S(0)], (1, 0): [S(0)]}, n_addrs=1)
    unreachable = Observation(final={0: "?"})
    with pytest.raises(OracleExhausted):
        explain(two_stores, unreachable, max_states=1)
    # With budget, the proof of unexplainability completes.
    assert explain(two_stores, unreachable) is None


def test_reference_executor_always_sc():
    """The depth-0 toy interpreter is SC by construction; every outcome
    it produces must be oracle-explainable (validates the oracle)."""
    ex = reference_sc_executor()
    for seed in range(25):
        p = generate_program(seed, FuzzKnobs(n_cores=3, p_atomic=0.1,
                                             fence_density=0.2))
        out = ex.execute(p)
        assert out.error is None
        assert sc_explainable(p, out.observation)


# ----------------------------------------------------------------------
# Smoke campaigns over the real protocols
# ----------------------------------------------------------------------

@pytest.mark.fuzz_smoke
def test_campaign_no_sc_violations(small_cfg):
    runner = DifferentialRunner(cfg=small_cfg)
    result = run_campaign(runner, seed=0, n_programs=200)
    assert result.passed, [f.describe() for f in result.failures]
    assert result.sc_violations == 0
    for name in SC_PROTOCOLS:
        tally = result.tallies[name]
        assert tally.runs == 200
        assert tally.errors == 0
        assert tally.witness_failures == 0
        assert tally.oracle_failures == 0
    # The report renders like any harness experiment.
    assert "witness_fail" in result.render()


@pytest.mark.fuzz_smoke
def test_campaign_hard_knobs(small_cfg):
    """Contended atomics + fences + compute noise on a 4-core grid."""
    knobs = FuzzKnobs(n_cores=4, ops_per_warp=5, n_addrs=2, p_store=0.4,
                      p_atomic=0.2, fence_density=0.3, sharing="hot",
                      p_compute=0.3)
    runner = DifferentialRunner(cfg=small_cfg)
    result = run_campaign(runner, seed=100, n_programs=40, knobs=knobs)
    assert result.passed, [f.describe() for f in result.failures]
    assert result.sc_violations == 0


# ----------------------------------------------------------------------
# The fuzzer must catch a broken protocol and shrink the evidence
# ----------------------------------------------------------------------

BROKEN_KNOBS = FuzzKnobs(n_cores=2, ops_per_warp=8, n_addrs=2,
                         p_store=0.5, p_atomic=0.0)


@pytest.mark.fuzz_smoke
def test_broken_store_buffer_is_caught_and_shrunk():
    runner = DifferentialRunner(
        executors=[reference_sc_executor(), broken_store_buffer_executor()])
    result = run_campaign(runner, seed=0, n_programs=60,
                          knobs=BROKEN_KNOBS, max_shrinks=2)
    assert not result.passed
    tally = result.tallies["TOY-TSO2"]
    assert tally.sc_violations > 0
    assert result.tallies["TOY-SC"].sc_violations == 0  # only the bug trips
    report = result.failures[0]
    assert report.shrunk is not None
    # The minimal store-buffering reproducer is the 4-op SB core (plus at
    # most buffer filler); the issue's bar is <= 6 ops.
    assert report.shrunk.n_ops <= 6
    assert report.shrunk.n_ops < report.program.n_ops
    assert report.shrunk_reasons  # the reproducer still fails


def test_shrinker_minimizes_synthetic_predicate():
    """Independent of any executor: ddmin must isolate the one op the
    predicate keys on."""
    p = generate_program(17, FuzzKnobs(n_cores=3, ops_per_warp=8,
                                       n_addrs=3, p_store=0.5))

    def still_fails(q):
        return any(op.kind is MemOpKind.STORE and op.slot == 0
                   for _, _, op in q.iter_ops())

    assert still_fails(p)
    shrunk = shrink_program(p, still_fails)
    assert shrunk.n_ops == 1
    assert len(shrunk.warps) == 1
    only = next(op for _, _, op in shrunk.iter_ops())
    assert only.kind is MemOpKind.STORE and only.slot == 0


def test_verdict_failure_reporting():
    runner = DifferentialRunner(
        executors=[broken_store_buffer_executor(depth=4)])
    # Guaranteed SB trip under round-robin: both stores sit buffered while
    # both loads read init (w0's trailing load keeps it live so its drain
    # can't land before w1's stale load).
    sb = prog({(0, 0): [S(0), L(1), L(1)], (1, 0): [S(1), L(0)]})
    verdict = runner.check_program(sb)
    assert isinstance(verdict, ProgramVerdict)
    assert not verdict.passed
    assert any("oracle" in f for f in verdict.failures)
    assert "FAIL" in verdict.describe()
