"""Unit tests for the hostile-workload generators and their knob/spec
machinery (:mod:`repro.workloads.hostile`)."""

import random

import pytest

from repro.config import GPUConfig
from repro.errors import ConfigError
from repro.workloads import (
    HOSTILE_WORKLOADS, REGIMES, WORKLOADS, get_workload, hostile_workloads,
)
from repro.workloads.base import BLOCK
from repro.workloads.hostile import (
    HostileWorkload, Knob, get_regime, parse_spec, select_regimes,
)
from repro.workloads.hostile.base import HOSTILE_BASE
from repro.workloads.hostile.storm import STORM_COL, STORM_HOT

CFG = GPUConfig.small()


# ----------------------------------------------------------------------
# Registry separation
# ----------------------------------------------------------------------
def test_hostile_registry_is_separate_from_paper_suite():
    # The paper's twelve benchmark models must stay exactly twelve; the
    # hostile suite rides in its own registry.
    assert len(WORKLOADS) == 12
    assert set(HOSTILE_WORKLOADS) == {"storm", "pingpong", "rwext",
                                      "bursty", "thrash"}
    assert not set(HOSTILE_WORKLOADS) & set(WORKLOADS)
    assert hostile_workloads() == sorted(HOSTILE_WORKLOADS)


def test_get_workload_resolves_hostile_names():
    for name in HOSTILE_WORKLOADS:
        wl = get_workload(name, intensity=0.25, seed=3)
        assert isinstance(wl, HostileWorkload)
        assert wl.category == "hostile"


def test_knobbed_spec_on_paper_workload_rejected():
    with pytest.raises(ConfigError):
        get_workload("bfs:hot_blocks=2")


def test_unknown_knob_rejected():
    with pytest.raises(ConfigError):
        get_workload("storm:no_such_knob=1")


def test_out_of_range_knob_rejected():
    with pytest.raises(ConfigError):
        get_workload("storm:hot_blocks=10000")


def test_bad_knob_type_rejected():
    with pytest.raises(ConfigError):
        get_workload("storm:hot_blocks=banana")


# ----------------------------------------------------------------------
# Spec strings
# ----------------------------------------------------------------------
def test_parse_spec_splits_name_and_knobs():
    name, knobs = parse_spec("storm:hot_blocks=2,p_load=0.8")
    assert name == "storm"
    assert knobs == {"hot_blocks": "2", "p_load": "0.8"}
    assert parse_spec("bfs") == ("bfs", {})


def test_spec_omits_default_valued_knobs():
    assert get_workload("storm", intensity=1.0, seed=0).spec == "storm"
    wl = get_workload("storm:hot_blocks=2", intensity=1.0, seed=0)
    assert wl.spec == "storm:hot_blocks=2"


def test_spec_round_trips_through_get_workload():
    for cls in HOSTILE_WORKLOADS.values():
        rng = random.Random(11)
        knobs = cls.sample_knobs(rng, ())
        spec = cls(**knobs).spec
        wl = get_workload(spec, intensity=0.5, seed=9)
        assert wl.spec == spec
        for k, v in knobs.items():
            assert wl.knob(k) == v


def test_knob_sampling_respects_ranges():
    rng = random.Random(0)
    for cls in HOSTILE_WORKLOADS.values():
        for _ in range(50):
            knobs = cls.sample_knobs(rng, ())
            for knob in cls.KNOBS:
                assert knob.lo <= knobs[knob.name] <= knob.hi


def test_log_scale_sampling_covers_orders_of_magnitude():
    # thrash's working_set spans 2^8..2^20; log2-uniform draws must not
    # cluster at the top.
    knob = next(k for k in HOSTILE_WORKLOADS["thrash"].KNOBS
                if k.name == "working_set")
    rng = random.Random(1)
    draws = [knob.sample(rng) for _ in range(200)]
    assert min(draws) < 4096
    assert max(draws) > 1 << 17


# ----------------------------------------------------------------------
# Generator behavior
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(HOSTILE_WORKLOADS))
def test_generators_deterministic_under_seed(name):
    t1 = get_workload(name, intensity=0.5, seed=5).generate(CFG)
    t2 = get_workload(name, intensity=0.5, seed=5).generate(CFG)
    assert [[t.ops for t in ct] for ct in t1] \
        == [[t.ops for t in ct] for ct in t2]


@pytest.mark.parametrize("name", sorted(HOSTILE_WORKLOADS))
def test_generators_match_machine_shape(name):
    traces = get_workload(name, intensity=0.25, seed=5).generate(CFG)
    assert len(traces) == CFG.n_cores
    assert all(len(ct) == CFG.warps_per_core for ct in traces)
    assert sum(t.n_mem_ops for ct in traces for t in ct) > 0


def test_hostile_block_regions_disjoint_from_paper_suite():
    # Hostile generators address far above the benchmark models' block
    # ranges, so mixed corpora never alias the same lines.
    hostile_min = HOSTILE_BASE * BLOCK
    for name in WORKLOADS:
        traces = get_workload(name, intensity=0.25, seed=5).generate(CFG)
        for ct in traces:
            for t in ct:
                for op in t.ops:
                    addr = getattr(op, "addr", None)
                    if addr is not None:
                        assert addr < hostile_min


def test_storm_escalators_are_per_warp_private():
    traces = get_workload("storm:p_remote=0.0", intensity=0.5,
                          seed=5).generate(CFG)
    for core, ct in enumerate(traces):
        for warp, t in enumerate(ct):
            gid = core * CFG.warps_per_core + warp
            expected = (STORM_COL + gid) * BLOCK
            addrs = {op.addr for op in t.ops
                     if getattr(op, "addr", None) is not None}
            assert addrs == {expected}


def test_rwext_writer_cap_limits_writers():
    from repro.common.types import MemOpKind
    traces = get_workload("rwext:writers=1,read_frac=0.5", intensity=0.5,
                          seed=5).generate(CFG)
    writing_gids = set()
    for core, ct in enumerate(traces):
        for warp, t in enumerate(ct):
            if any(op.kind is MemOpKind.STORE for op in t.ops
                   if hasattr(op, "kind")):
                writing_gids.add(core * CFG.warps_per_core + warp)
    assert writing_gids <= {0}


def test_thrash_working_set_bounds_addresses():
    from repro.workloads.hostile.thrash import THRASH_BASE
    ws = 512
    traces = get_workload(f"thrash:working_set={ws},p_shared=0.0",
                          intensity=0.5, seed=5).generate(CFG)
    for ct in traces:
        for t in ct:
            for op in t.ops:
                addr = getattr(op, "addr", None)
                if addr is not None:
                    blk = addr // BLOCK
                    assert THRASH_BASE <= blk < THRASH_BASE + ws


# ----------------------------------------------------------------------
# Regimes
# ----------------------------------------------------------------------
def test_regimes_cover_all_generators():
    assert {r.workload for r in REGIMES.values()} == set(HOSTILE_WORKLOADS)


def test_get_regime_and_select():
    assert get_regime("storm").name == "storm"
    with pytest.raises(ConfigError):
        get_regime("nope")
    assert [r.name for r in select_regimes("all")] == sorted(REGIMES)
    assert [r.name for r in select_regimes("thrash,storm")] \
        == ["thrash", "storm"]


def test_storm_regime_pins_narrow_timestamps():
    spec, ts = REGIMES["storm"].default_cell_inputs()
    assert spec == "storm"
    assert ts["bits"] == 11
    assert ts["predictor_enabled"] is False


def test_regime_sampling_is_seed_deterministic():
    for name, regime in REGIMES.items():
        a = regime.sample_cell_inputs(random.Random(42))
        b = regime.sample_cell_inputs(random.Random(42))
        assert a == b
        spec, ts = a
        get_workload(spec, intensity=0.25, seed=1)  # spec is valid
        if regime.ts_ranges:
            for field, (lo, hi) in regime.ts_ranges:
                assert lo <= ts[field] <= hi
