"""Tests for the SC witness checker: it must accept protocol-produced logs
(covered elsewhere) and *reject* hand-built violating histories — a checker
that never fires is worthless."""

import pytest

from repro.common.types import MemOpKind
from repro.consistency.checker import (
    AXIOM_ATOMICITY, AXIOM_COHERENCE, AXIOM_PROGRAM_ORDER, AXIOM_READS_FROM,
    AXIOMS, SCChecker, Violation, is_init_value,
)
from repro.errors import ConsistencyViolation
from repro.gpu.warp import MemOpRecord

BLOCK = 128


def op(kind, addr, core, warp, prog, ts, ak=-1, value=None, read=None):
    rec = MemOpRecord(kind, addr, core, warp, prog)
    rec.logical_ts = ts
    rec.order_key = ak
    rec.value = value
    rec.read_value = read
    return rec


def store(addr, core, prog, ts, ak, tag):
    return op(MemOpKind.STORE, addr, core, 0, prog, ts, ak, value=tag)


def load(addr, core, prog, ts, read, ak=-1):
    return op(MemOpKind.LOAD, addr, core, 0, prog, ts, ak, read=read)


INIT0 = ("init", 0)


def test_clean_history_passes():
    ops = [
        store(0, 0, 0, ts=10, ak=1, tag="A"),
        load(0, 1, 0, ts=12, read="A"),
        store(0, 0, 1, ts=20, ak=2, tag="B"),
        load(0, 1, 1, ts=25, read="B"),
    ]
    assert SCChecker().check(ops) == []
    SCChecker().check_or_raise(ops)  # no exception


def test_detects_read_from_future():
    ops = [
        store(0, 0, 0, ts=50, ak=1, tag="A"),
        load(0, 1, 0, ts=10, read="A"),  # reads a store logically after it
    ]
    v = SCChecker().check(ops)
    assert any(x.axiom == "reads-from" for x in v)
    with pytest.raises(ConsistencyViolation):
        SCChecker().check_or_raise(ops)


def test_detects_skipped_store():
    ops = [
        store(0, 0, 0, ts=10, ak=1, tag="A"),
        store(0, 0, 1, ts=20, ak=2, tag="B"),
        load(0, 1, 0, ts=30, read="A"),  # stale: B is witness-before
    ]
    v = SCChecker().check(ops)
    assert any("skipped" in x.detail for x in v)


def test_detects_unknown_value():
    ops = [load(0, 1, 0, ts=5, read="garbage")]
    v = SCChecker().check(ops)
    assert any("unknown value" in x.detail for x in v)


def test_detects_program_order_violation():
    ops = [
        load(0, 0, 0, ts=100, read=INIT0),
        load(0, 0, 1, ts=50, read=INIT0),  # ts went backwards in one warp
    ]
    v = SCChecker().check(ops)
    assert any(x.axiom == "program-order" for x in v)


def test_detects_non_adjacent_atomic():
    ops = [
        store(0, 0, 0, ts=10, ak=1, tag="A"),
        store(0, 0, 1, ts=20, ak=2, tag="B"),
        op(MemOpKind.ATOMIC, 0, 1, 0, 0, ts=30, ak=3, value="C", read="A"),
    ]
    v = SCChecker().check(ops)
    assert any(x.axiom == "atomicity" for x in v)


def test_adjacent_atomic_ok():
    ops = [
        store(0, 0, 0, ts=10, ak=1, tag="A"),
        op(MemOpKind.ATOMIC, 0, 1, 0, 0, ts=30, ak=2, value="C", read="A"),
        load(0, 1, 1, ts=40, read="C"),
    ]
    assert SCChecker().check(ops) == []


def test_init_reads_allowed_before_any_store():
    ops = [
        load(0, 1, 0, ts=1, read=INIT0),
        store(0, 0, 0, ts=10, ak=1, tag="A"),
    ]
    assert SCChecker().check(ops) == []


def test_init_read_after_store_flagged():
    ops = [
        store(0, 0, 0, ts=10, ak=1, tag="A"),
        load(0, 1, 0, ts=30, read=INIT0),
    ]
    v = SCChecker().check(ops)
    assert v


def test_same_ts_tiebreak_by_arrival():
    """A load at the same ts as a later store but with an earlier L2
    arrival key is legally ordered before it."""
    ops = [
        store(0, 0, 0, ts=10, ak=1, tag="A"),
        load(0, 1, 0, ts=20, read="A", ak=2),
        store(0, 2, 0, ts=20, ak=3, tag="B"),
    ]
    assert SCChecker().check(ops) == []


def test_same_ts_stale_read_after_arrival_flagged():
    ops = [
        store(0, 0, 0, ts=10, ak=1, tag="A"),
        store(0, 2, 0, ts=20, ak=2, tag="B"),
        load(0, 1, 0, ts=20, read="A", ak=3),  # arrived after B, read A
    ]
    v = SCChecker().check(ops)
    assert any(x.axiom == "reads-from" for x in v)


def test_duplicate_arrival_keys_flagged():
    ops = [
        store(0, 0, 0, ts=10, ak=1, tag="A"),
        store(0, 1, 0, ts=10, ak=1, tag="B"),
    ]
    v = SCChecker().check(ops)
    assert any(x.axiom == "coherence" for x in v)


def test_blocks_checked_independently():
    ops = [
        store(0, 0, 0, ts=10, ak=1, tag="A"),
        store(BLOCK, 0, 1, ts=20, ak=1, tag="B"),  # same ak, other block: OK
        load(0, 1, 0, ts=15, read="A"),
        load(BLOCK, 1, 1, ts=25, read="B"),
    ]
    assert SCChecker().check(ops) == []


# ----------------------------------------------------------------------
# Atomic read-half edge cases
# ----------------------------------------------------------------------

def test_first_atomic_in_coherence_order_reads_init():
    """The atomic that serializes first sees no predecessor: its read
    half must return the initial value, and that is legal."""
    ops = [
        op(MemOpKind.ATOMIC, 0, 0, 0, 0, ts=10, ak=1, value="A", read=INIT0),
        op(MemOpKind.ATOMIC, 0, 1, 0, 0, ts=20, ak=2, value="B", read="A"),
        load(0, 2, 0, ts=30, read="B"),
    ]
    assert SCChecker().check(ops) == []


def test_non_first_atomic_reading_init_flagged():
    """An atomic that is *not* first in coherence order but still read the
    initial value jumped over its predecessor (lost update)."""
    ops = [
        store(0, 0, 0, ts=10, ak=1, tag="A"),
        op(MemOpKind.ATOMIC, 0, 1, 0, 0, ts=20, ak=2, value="B", read=INIT0),
    ]
    v = SCChecker().check(ops)
    assert any(x.axiom == AXIOM_ATOMICITY for x in v)


def test_atomic_value_missing_from_coherence_order():
    rec = op(MemOpKind.ATOMIC, 0, 1, 0, 0, ts=20, ak=2, value="B",
             read=INIT0)
    rec.value = None  # write half never serialized a value
    v = SCChecker().check([rec])
    assert any(x.axiom == AXIOM_COHERENCE for x in v)
    assert any(x.axiom == AXIOM_ATOMICITY for x in v)


# ----------------------------------------------------------------------
# Structured violation API
# ----------------------------------------------------------------------

def test_axiom_constants_cover_all_violations():
    assert set(AXIOMS) == {AXIOM_PROGRAM_ORDER, AXIOM_COHERENCE,
                           AXIOM_READS_FROM, AXIOM_ATOMICITY}


def test_per_axiom_methods_return_lists():
    checker = SCChecker()
    good = [store(0, 0, 0, ts=10, ak=1, tag="A"),
            load(0, 1, 0, ts=20, read="A")]
    assert checker.check_program_order(good) == []
    order, coh = checker.coherence_order(good)
    assert coh == []
    assert [s.value for s in order[0]] == ["A"]
    assert checker.check_reads_from(good, order) == []

    bad = [load(0, 0, 0, ts=100, read=INIT0),
           load(0, 0, 1, ts=50, read=INIT0)]
    po = checker.check_program_order(bad)
    assert all(isinstance(v, Violation) for v in po)
    assert all(v.axiom == AXIOM_PROGRAM_ORDER for v in po)


def test_violation_as_dict_and_exception_payload():
    ops = [load(0, 1, 3, ts=5, read="garbage")]
    v = SCChecker().check(ops)
    d = v[0].as_dict()
    assert d["axiom"] == AXIOM_READS_FROM
    assert (d["core"], d["prog_index"]) == (1, 3)
    with pytest.raises(ConsistencyViolation) as exc_info:
        SCChecker().check_or_raise(ops)
    assert exc_info.value.violations == v


def test_is_init_value():
    assert is_init_value(INIT0)
    assert is_init_value(("init", 128))
    assert not is_init_value(("A", 0))
    assert not is_init_value("init")
    assert not is_init_value(None)
