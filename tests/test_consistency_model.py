"""Unit tests for the core-side consistency policies."""

import pytest

from repro.common.types import MemOpKind
from repro.consistency.model import SCPolicy, WOPolicy, make_policy
from repro.errors import ConfigError
from repro.gpu.trace import WarpTrace, load_op
from repro.gpu.warp import MemOpRecord, Warp


def make_warp():
    t = WarpTrace(0, 0)
    t.extend([load_op(0)] * 4)
    return Warp(t)


def rec(kind=MemOpKind.LOAD):
    return MemOpRecord(kind, 0, 0, 0, 0)


class TestSCPolicy:
    def test_allows_when_nothing_outstanding(self):
        w = make_warp()
        ok, blocker = SCPolicy().can_issue_mem(w)
        assert ok and blocker is None

    def test_blocks_on_outstanding_and_names_blocker(self):
        w = make_warp()
        blocking = rec(MemOpKind.STORE)
        w.outstanding.append(blocking)
        ok, blocker = SCPolicy().can_issue_mem(w)
        assert not ok
        assert blocker is blocking

    def test_fence_always_done(self):
        w = make_warp()
        assert SCPolicy().fence_done(w)


class TestWOPolicy:
    def test_allows_multiple_outstanding(self):
        w = make_warp()
        p = WOPolicy(max_outstanding=3)
        w.outstanding.extend([rec(), rec()])
        ok, _ = p.can_issue_mem(w)
        assert ok

    def test_blocks_at_limit(self):
        w = make_warp()
        p = WOPolicy(max_outstanding=2)
        w.outstanding.extend([rec(), rec()])
        ok, blocker = p.can_issue_mem(w)
        assert not ok
        assert blocker is w.outstanding[0]

    def test_fence_pending_blocks_mem(self):
        w = make_warp()
        w.fence_pending = True
        ok, _ = WOPolicy().can_issue_mem(w)
        assert not ok

    def test_fence_done_requires_drain(self):
        w = make_warp()
        p = WOPolicy()
        assert p.fence_done(w)
        w.outstanding.append(rec())
        assert not p.fence_done(w)

    def test_rejects_bad_limit(self):
        with pytest.raises(ConfigError):
            WOPolicy(max_outstanding=0)


def test_make_policy():
    assert isinstance(make_policy("sc"), SCPolicy)
    assert isinstance(make_policy("wo", 4), WOPolicy)
    with pytest.raises(ConfigError):
        make_policy("tso")
