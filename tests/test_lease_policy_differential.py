"""Cross-policy differential battery: every policy, same correctness.

A lease policy only tunes *performance* — how long leases run, how often
copies renew. Sequential consistency must be untouched: whatever policy
the L2 runs, every litmus program stays SC-explainable and every hostile
campaign stays violation-free under the sanitizer. This battery sweeps
all registered policies through

* the checked-in litmus corpus (``tests/corpus/*.trace``) with the
  differential runner — RCC and RCC-WO execute under the policy with the
  sanitizer armed, and each observation is cross-checked against the SC
  interleaving oracle; any divergence fails; and
* a small hostile-lab smoke grid (one unmutated center point per regime)
  with the policy pinned campaign-wide.

Failures are archived as replayable reproducers (``.trace`` for litmus,
``.cell`` for hostile runs) in the directory named by the
``RCC_FUZZ_ARCHIVE`` environment variable (default: a temp directory);
the assertion message points at them.
"""

from __future__ import annotations

import dataclasses
import os

import pytest

from repro.config import named_config
from repro.core.lease_policy import available_lease_policies
from repro.fuzz.cellfile import save_cell
from repro.fuzz.corpus import corpus_files, load_program, save_program
from repro.fuzz.differential import DifferentialRunner
from repro.fuzz.workloads import run_hostile_campaign

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")

POLICIES = available_lease_policies()

#: Only the RCC variants consult the lease policy; the SC oracle supplies
#: the policy-independent ground truth each observation is checked against.
PROTOCOLS = ["RCC", "RCC-WO"]


def _archive_dir(tmp_path) -> str:
    path = os.environ.get("RCC_FUZZ_ARCHIVE") or str(tmp_path / "findings")
    os.makedirs(path, exist_ok=True)
    return path


@pytest.mark.fuzz_smoke
@pytest.mark.parametrize("policy", POLICIES)
def test_litmus_corpus_passes_under_policy(policy, tmp_path):
    cfg = named_config("small")
    cfg = cfg.replace(ts=dataclasses.replace(cfg.ts, lease_policy=policy))
    runner = DifferentialRunner(cfg=cfg, protocols=PROTOCOLS, sanitize=True)
    failing = []
    for path in corpus_files(CORPUS_DIR):
        program = load_program(path)
        verdict = runner.check_program(program)
        if not verdict.passed:
            stem = os.path.splitext(os.path.basename(path))[0]
            out = os.path.join(_archive_dir(tmp_path),
                               f"{stem}_{policy}.trace")
            save_program(out, program, comments=[
                f"lease_policy: {policy}",
                f"reasons: {'; '.join(verdict.failures)}"])
            failing.append((path, out, verdict.failures))
    assert not failing, (
        f"lease policy {policy!r} broke SC on the litmus corpus; "
        "reproducers archived:\n" + "\n".join(
            f"  {src} -> {out}: {'; '.join(reasons)}"
            for src, out, reasons in failing))


@pytest.mark.fuzz_smoke
@pytest.mark.parametrize("policy", POLICIES)
def test_hostile_smoke_grid_passes_under_policy(policy, tmp_path):
    result = run_hostile_campaign(
        config_name="small", regimes="all", runs=5, seed=0,
        protocols=("RCC", "RCC-WO"), baseline_path=None, calibration=1.0,
        lease_policy=policy)
    assert all(run.cell.lease_policy == policy for run in result.runs)
    findings = result.violations + result.errors
    archived = []
    for run in findings:
        out = os.path.join(
            _archive_dir(tmp_path),
            f"hostile_{run.regime}_{run.cell.protocol.lower()}"
            f"_{policy}_{run.cell.seed % 100000:05d}.cell")
        save_cell(out, run.cell, run.config_name,
                  reason=f"[{policy}] {run.record['message']}")
        archived.append((run, out))
    assert not findings, (
        f"lease policy {policy!r} produced sanitizer violations/errors in "
        "the hostile smoke grid; reproducers archived:\n" + "\n".join(
            f"  {out}: {run.record['message']}" for run, out in archived))


@pytest.mark.fuzz_smoke
def test_policies_agree_on_program_results():
    """Cross-policy differential: for one representative corpus program,
    the *memory semantics* (mem_ops and final SC verdict) agree across
    policies even though timing may differ."""
    cfg = named_config("small")
    program = load_program(os.path.join(CORPUS_DIR, "mp.trace"))
    verdicts = {}
    for policy in POLICIES:
        pcfg = cfg.replace(
            ts=dataclasses.replace(cfg.ts, lease_policy=policy))
        runner = DifferentialRunner(cfg=pcfg, protocols=PROTOCOLS,
                                    sanitize=True)
        verdicts[policy] = runner.check_program(program).passed
    assert all(verdicts.values()), f"per-policy verdicts: {verdicts}"
