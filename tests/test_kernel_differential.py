"""Differential battery: flat-array protocol kernel vs the object oracle.

The flat kernel (``repro.kernel``) restructures per-block protocol state
into parallel arrays and table-driven transitions; the object kernel
(dict-of-dataclass controllers) stays in the tree as its oracle. This
battery flips ``RCC_FLAT_KERNEL`` between two runs of the *same* cell
in one process and demands:

* bit-identical result payloads (cycles, stats, per-block values) on
  fresh seeds the golden file does not cover;
* an **identical sanitizer event stream** — same transitions at the same
  cycles with the same fields, event for event — proving the flat
  handlers preserve every emission point, not just the end state;
* a clean sanitized run under both kernels (no invariant violations).
"""

from __future__ import annotations

import json

import pytest

from repro.config import GPUConfig
from repro.core.lease_policy import (FixedLeasePolicy,
                                     available_lease_policies,
                                     register_lease_policy,
                                     unregister_lease_policy)
from repro.exec import SimCell, run_cell
from repro.kernel import flat_kernel_enabled
from repro.sanitize.sanitizer import Sanitizer
from repro.sim.gpusim import run_simulation
from repro.workloads import get_workload

PROTOCOLS = ("RCC", "RCC-WO", "MESI")


def _payload(cell, monkeypatch, flat: bool):
    monkeypatch.setenv("RCC_FLAT_KERNEL", "1" if flat else "0")
    monkeypatch.delenv("RCC_LEGACY_ENGINE", raising=False)
    assert flat_kernel_enabled() == flat
    return run_cell(cell).to_payload()


@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("workload", ("bfs", "stn"))
@pytest.mark.parametrize("seed", (7, 4242))
def test_payload_bit_identical(protocol, workload, seed, monkeypatch):
    cell = SimCell(cfg=GPUConfig.small(), protocol=protocol,
                   workload=workload, intensity=0.5, seed=seed)
    flat = _payload(cell, monkeypatch, flat=True)
    obj = _payload(cell, monkeypatch, flat=False)
    assert json.dumps(flat, sort_keys=True) == json.dumps(obj, sort_keys=True)


@pytest.mark.parametrize("policy", sorted(available_lease_policies()))
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_policy_override_bit_identical(protocol, policy, monkeypatch):
    """Every built-in lease policy's arithmetic now runs *inside* the
    fused L2 grant handler (``hot.rcc_l2_gets`` + the ``_policy_*``
    helpers) — the atomic-heavy dlb cell must stay bit-identical to the
    object controllers running the policy objects."""
    cell = SimCell(cfg=GPUConfig.small(), protocol=protocol,
                   workload="dlb", intensity=1.0, seed=31,
                   ts_overrides=(("lease_policy", policy),))
    flat = _payload(cell, monkeypatch, flat=True)
    obj = _payload(cell, monkeypatch, flat=False)
    assert flat == obj


class _ProbeHalfLease(FixedLeasePolicy):
    """Registered subclass: must NOT be treated as the built-in fixed
    policy by the fused kernel (exact-type detection -> P_OTHER)."""

    name = "probe-half"

    def lease_for(self, line, now=0, pc=None):
        base = super().lease_for(line, now, pc=pc)
        return max(1, base // 2)


@pytest.mark.parametrize("protocol", ("RCC", "RCC-WO"))
def test_registered_subclass_policy_bit_identical(protocol, monkeypatch):
    """A registered *subclass* policy takes the R_NEED_LEASE escape: the
    fused handler bumps the hit stat, then defers the grant to the
    wrapper running the real policy object. Payloads must match the
    object kernel exactly, proving the escape hatch loses nothing."""
    register_lease_policy(_ProbeHalfLease, replace=True)
    try:
        cell = SimCell(cfg=GPUConfig.small(), protocol=protocol,
                       workload="dlb", intensity=1.0, seed=31,
                       ts_overrides=(("lease_policy", "probe-half"),))
        flat = _payload(cell, monkeypatch, flat=True)
        obj = _payload(cell, monkeypatch, flat=False)
        assert flat == obj
    finally:
        unregister_lease_policy("probe-half")


def _event_stream(protocol: str, monkeypatch, flat: bool):
    """Run one sanitized simulation, teeing every Sanitizer.emit call."""
    monkeypatch.setenv("RCC_FLAT_KERNEL", "1" if flat else "0")
    monkeypatch.delenv("RCC_LEGACY_ENGINE", raising=False)
    events = []
    real_emit = Sanitizer.emit

    def tee(self, kind, unit, unit_id, cycle, addr, **fields):
        events.append((kind, unit, unit_id, cycle, addr,
                       tuple(sorted(fields.items()))))
        real_emit(self, kind, unit, unit_id, cycle, addr, **fields)

    monkeypatch.setattr(Sanitizer, "emit", tee)
    cfg = GPUConfig.small()
    wl = get_workload("stn", intensity=0.75, seed=11)
    result = run_simulation(cfg, protocol, wl.generate(cfg), "stn",
                            sanitize=True)
    monkeypatch.setattr(Sanitizer, "emit", real_emit)
    return events, result.to_payload()


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_sanitizer_event_stream_identical(protocol, monkeypatch):
    flat_events, flat_payload = _event_stream(protocol, monkeypatch,
                                              flat=True)
    obj_events, obj_payload = _event_stream(protocol, monkeypatch,
                                            flat=False)
    assert flat_payload == obj_payload
    assert len(flat_events) == len(obj_events), \
        f"{protocol}: flat kernel emits a different number of events"
    for i, (fe, oe) in enumerate(zip(flat_events, obj_events)):
        assert fe == oe, (
            f"{protocol}: sanitizer event #{i} diverges:\n"
            f"  flat:   {fe}\n  object: {oe}")
    assert flat_events, "sanitized run produced no events (vacuous test)"
