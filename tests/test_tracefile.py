"""Tests for trace file save/load round-trips."""

import io

import pytest

from repro.config import GPUConfig
from repro.errors import TraceError
from repro.gpu.trace import (
    WarpTrace, atomic_op, barrier_op, compute_op, fence_op, load_op,
    store_op,
)
from repro.sim.gpusim import run_simulation
from repro.workloads import get_workload
from repro.workloads.tracefile import load_traces, save_traces


def sample_traces():
    t00 = WarpTrace(0, 0)
    t00.extend([load_op(0x1000), store_op(0x2080), atomic_op(0x3000),
                compute_op(17), fence_op(), barrier_op(2)])
    t01 = WarpTrace(0, 1)
    t01.extend([load_op(0x80)])
    t10 = WarpTrace(1, 0)
    t11 = WarpTrace(1, 1)
    t11.extend([store_op(0xFFF00)])
    return [[t00, t01], [t10, t11]]


def test_round_trip_in_memory():
    buf = io.StringIO()
    save_traces(buf, sample_traces())
    buf.seek(0)
    loaded = load_traces(buf)
    orig = sample_traces()
    assert len(loaded) == len(orig)
    for co, cl in zip(orig, loaded):
        for to, tl in zip(co, cl):
            assert to.ops == tl.ops


def test_round_trip_on_disk(tmp_path):
    path = str(tmp_path / "trace.txt")
    save_traces(path, sample_traces())
    loaded = load_traces(path)
    assert loaded[0][0].ops == sample_traces()[0][0].ops


def test_round_trip_generated_workload(tmp_path):
    cfg = GPUConfig.small()
    traces = get_workload("stn", intensity=0.15).generate(cfg)
    path = str(tmp_path / "stn.trace")
    save_traces(path, traces)
    loaded = load_traces(path)
    a = run_simulation(cfg, "RCC", traces, "stn")
    b = run_simulation(cfg, "RCC", loaded, "stn")
    assert a.cycles == b.cycles       # identical replay
    assert a.mem_ops == b.mem_ops


def test_comments_and_blanks_ignored():
    text = "\n".join([
        "# repro-trace v1", "", "# a comment", "@ 0 0", "L 100", "",
        "C 5", "# done",
    ])
    loaded = load_traces(io.StringIO(text))
    assert len(loaded[0][0].ops) == 2


def test_malformed_op_rejected():
    with pytest.raises(TraceError):
        load_traces(io.StringIO("@ 0 0\nL\n"))
    with pytest.raises(TraceError):
        load_traces(io.StringIO("@ 0 0\nX 99\n"))


def test_op_before_header_rejected():
    with pytest.raises(TraceError):
        load_traces(io.StringIO("L 100\n"))


def test_duplicate_warp_rejected():
    with pytest.raises(TraceError):
        load_traces(io.StringIO("@ 0 0\nL 1\n@ 0 0\nL 2\n"))


def test_empty_file_rejected():
    with pytest.raises(TraceError):
        load_traces(io.StringIO("# nothing here\n"))


def test_missing_warps_filled_empty():
    loaded = load_traces(io.StringIO("@ 1 1\nL 80\n"))
    assert len(loaded) == 2
    assert len(loaded[0]) == 2
    assert loaded[0][0].ops == []
    assert len(loaded[1][1].ops) == 1
