"""Tests for the repro-perf benchmark harness and regression gate."""

import json

import pytest

from repro.perf import bench
from repro.perf.cli import main as perf_main


@pytest.fixture(scope="module")
def quick_report():
    return bench.run_bench(quick=True)


def test_report_structure(quick_report):
    assert quick_report["schema"] == bench.BENCH_SCHEMA
    assert quick_report["mode"] == "quick"
    assert quick_report["calibration_loops_per_s"] > 0
    assert len(quick_report["cells"]) == len(bench.quick_cells())
    for label, cell in quick_report["cells"].items():
        assert cell["events"] > 0, label
        assert cell["cycles"] > 0, label
        assert cell["wall_s"] > 0, label
        assert cell["events_per_s"] > 0, label
        assert cell["events_per_s_normalized"] > 0, label
    totals = quick_report["totals"]
    assert totals["events"] == sum(
        c["events"] for c in quick_report["cells"].values())


def test_quick_cells_cover_all_protocol_families():
    protocols = {c.protocol for c in bench.quick_cells()}
    assert {"MESI", "TCS", "TCW", "RCC", "RCC-WO"} <= protocols


def test_compare_identical_reports_pass(quick_report):
    assert bench.compare_to_baseline(quick_report, quick_report) == []


def test_compare_flags_throughput_regression(quick_report):
    slow = json.loads(json.dumps(quick_report))
    label = next(iter(slow["cells"]))
    slow["cells"][label]["events_per_s_normalized"] *= 0.5
    failures = bench.compare_to_baseline(slow, quick_report, tolerance=0.20)
    assert len(failures) == 1 and label in failures[0]
    # ... but a drop inside the band passes.
    slow["cells"][label]["events_per_s_normalized"] = \
        quick_report["cells"][label]["events_per_s_normalized"] * 0.9
    assert bench.compare_to_baseline(slow, quick_report,
                                     tolerance=0.20) == []


def test_compare_flags_event_count_drift(quick_report):
    drifted = json.loads(json.dumps(quick_report))
    label = next(iter(drifted["cells"]))
    drifted["cells"][label]["events"] += 1
    failures = bench.compare_to_baseline(drifted, quick_report)
    assert any("behavior drifted" in f for f in failures)


def test_compare_rejects_mode_mismatch(quick_report):
    other = json.loads(json.dumps(quick_report))
    other["mode"] = "full"
    failures = bench.compare_to_baseline(other, quick_report)
    assert len(failures) == 1 and "mode" in failures[0]


def test_cli_update_then_check_roundtrip(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    out = tmp_path / "bench.json"
    assert perf_main(["--quick", "--out", str(out),
                      "--baseline", str(baseline),
                      "--update-baseline"]) == 0
    assert baseline.exists() and out.exists()
    assert perf_main(["--quick", "--out", str(out),
                      "--baseline", str(baseline), "--check",
                      "--tolerance", "0.90"]) == 0
    captured = capsys.readouterr()
    assert "perf regression check passed" in captured.out


def test_cli_check_missing_baseline_errors(tmp_path):
    assert perf_main(["--quick", "--out", str(tmp_path / "b.json"),
                      "--baseline", str(tmp_path / "missing.json"),
                      "--check"]) == 2


def test_events_fired_in_result_payload():
    cell = bench.quick_cells()[0]
    result = bench._measure(cell)[1]
    payload = result.to_payload()
    assert payload["payload_version"] >= 2
    assert payload["events_fired"] == result.events_fired > 0


# ----------------------------------------------------------------------
# Lease-policy ablation
# ----------------------------------------------------------------------

def test_lease_ablation_report_shape():
    report = bench.run_lease_ablation(quick=True, workloads=["bfs"])
    assert report["kind"] == "lease-ablation"
    assert set(report["policies"]) == {"fixed", "adaptive", "pc-pred"}
    for policy, cells in report["policies"].items():
        assert set(cells) == {"RCC/bfs", "RCC-WO/bfs"}
        for entry in cells.values():
            assert entry["mem_ops"] > 0 and entry["cycles"] > 0
            assert entry["renew_traffic"] == \
                entry["l2_renew_grants"] + entry["l1_renews"]
            assert entry["events_per_s_normalized"] > 0
    rendered = bench.render_ablation(report)
    assert "lease-policy ablation" in rendered
    assert "adaptive" in rendered and "pc-pred" in rendered


def test_ablation_cells_carry_policy_in_overrides():
    cells = bench.ablation_cells(quick=True, workloads=["bfs", "stn"])
    # 3 policies x 2 protocols x 2 workloads, each naming its policy in
    # ts_overrides so the result cache keys them apart.
    assert len(cells) == 12
    assert {c.lease_policy for c in cells} == {"fixed", "adaptive",
                                               "pc-pred"}
    for cell in cells:
        assert ("lease_policy", cell.lease_policy) in cell.ts_overrides
        assert cell.effective_cfg().ts.lease_policy == cell.lease_policy


def test_cli_lease_ablation_quick(tmp_path, capsys):
    out = tmp_path / "ablation.json"
    assert perf_main(["--lease-ablation", "--quick",
                      "--out", str(out)]) == 0
    report = json.loads(out.read_text())
    assert report["kind"] == "lease-ablation"
    assert "RCC/dlb" in report["policies"]["fixed"]
    captured = capsys.readouterr()
    assert "lease-policy ablation" in captured.out


def test_cli_lease_ablation_rejects_baseline_modes(tmp_path):
    with pytest.raises(SystemExit):
        perf_main(["--lease-ablation", "--check",
                   "--baseline", str(tmp_path / "b.json")])
