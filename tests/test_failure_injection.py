"""Failure-injection and edge-case tests: tiny MSHRs, tiny caches, port
pressure, empty traces, and protocol-error paths."""

import pytest

from repro.common.messages import Message
from repro.common.types import MsgKind
from repro.config import CacheConfig, GPUConfig
from repro.errors import ProtocolError
from repro.gpu.trace import WarpTrace, load_op, store_op
from repro.sim.gpusim import run_simulation
from repro.workloads import get_workload
from tests.conftest import empty_traces, program_traces

BLOCK = 128


def squeeze_cfg(l1_mshr=2, l2_mshr=2):
    cfg = GPUConfig.small().replace(n_cores=2, warps_per_core=4)
    cfg.l1 = CacheConfig(size_bytes=1024, assoc=2, mshr_entries=l1_mshr)
    cfg.l2_per_bank = CacheConfig(size_bytes=2048, assoc=2, hit_latency=10,
                                  mshr_entries=l2_mshr)
    return cfg


@pytest.mark.parametrize("protocol", ["RCC", "MESI", "TCS", "TCW"])
def test_tiny_mshrs_stall_but_complete(protocol):
    """With 2 L1 MSHRs and 4 warps issuing misses, structural stalls are
    inevitable; every op must still complete."""
    cfg = squeeze_cfg()
    programs = {
        (c, w): [load_op((c * 40 + w * 9 + i * 3) * BLOCK) for i in range(6)]
        for c in range(cfg.n_cores) for w in range(cfg.warps_per_core)
    }
    res = run_simulation(cfg, protocol, program_traces(cfg, programs), "sq")
    assert res.mem_ops == cfg.n_cores * cfg.warps_per_core * 6


@pytest.mark.parametrize("protocol", ["RCC", "MESI", "TCS"])
def test_tiny_l2_thrashes_but_completes(protocol):
    cfg = squeeze_cfg(l1_mshr=8, l2_mshr=8)
    wl = get_workload("vpr", intensity=0.1)
    res = run_simulation(cfg, protocol, wl.generate(cfg), "vpr")
    assert res.l2_evictions > 0
    assert res.mem_ops > 0


def test_empty_traces_finish_instantly(small_cfg):
    res = run_simulation(small_cfg, "RCC", empty_traces(small_cfg), "empty")
    assert res.mem_ops == 0
    assert res.cycles == 0


def test_one_op_program(small_cfg):
    traces = empty_traces(small_cfg)
    traces[0][0].append(store_op(0))
    res = run_simulation(small_cfg, "RCC", traces, "one")
    assert res.mem_ops == 1


def test_wrong_trace_shape_rejected(small_cfg):
    from repro.errors import ConfigError
    from repro.sim.gpusim import GPUSimulator
    with pytest.raises(ConfigError):
        GPUSimulator(small_cfg, "RCC", [[WarpTrace(0, 0)]], "bad")


def test_unexpected_message_raises_protocol_error(small_cfg):
    """Controllers must loudly reject messages their FSM has no row for."""
    from repro.sim.gpusim import GPUSimulator
    sim = GPUSimulator(small_cfg, "RCC", empty_traces(small_cfg), "err")
    l1 = sim.proto.l1s[0]
    bogus = Message(MsgKind.INV, 0, ("l2", 0), ("core", 0))
    with pytest.raises(ProtocolError):
        l1.on_message(bogus)
    l2 = sim.proto.l2s[0]
    bogus2 = Message(MsgKind.INV_ACK, 0, ("core", 0), ("l2", 0))
    with pytest.raises(ProtocolError):
        l2.on_message(bogus2)


def test_protocol_error_message_content():
    err = ProtocolError("L1[3]", "V", "RENEW", "detail here")
    assert "L1[3]" in str(err)
    assert "RENEW" in str(err)
    assert "detail here" in str(err)


def test_same_block_hammering_from_all_warps(small_cfg):
    """Every warp loads+stores one single block: maximal contention on one
    L2 bank and one L1 set; must serialize correctly under all protocols."""
    for protocol in ("RCC", "MESI", "TCS"):
        programs = {
            (c, w): [load_op(0), store_op(0), load_op(0)]
            for c in range(small_cfg.n_cores)
            for w in range(small_cfg.warps_per_core)
        }
        res = run_simulation(small_cfg, protocol,
                             program_traces(small_cfg, programs), "hammer",
                             record_ops=True)
        from repro.consistency.checker import SCChecker
        SCChecker().check_or_raise(res.op_logs)


def test_atomic_hammering_is_atomic(small_cfg):
    """N warps atomically RMW one counter: the checker's atomicity axiom
    guarantees each observes a distinct predecessor (no lost updates)."""
    from repro.gpu.trace import atomic_op
    programs = {
        (c, w): [atomic_op(0)]
        for c in range(small_cfg.n_cores)
        for w in range(small_cfg.warps_per_core)
    }
    res = run_simulation(small_cfg, "RCC",
                         program_traces(small_cfg, programs), "atomics",
                         record_ops=True)
    observed = [op.read_value for op in res.op_logs]
    assert len(set(observed)) == len(observed)  # all predecessors distinct
