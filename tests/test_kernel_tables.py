"""Pins for the flat kernel's integer encodings and transition tables.

The hot module hard-codes state codes as integers so the optional
compiled build never touches enum objects; the generic
:class:`FlatTagArray` derives its encode/decode maps from enum
definition order at runtime. These tests weld the two together — if
someone reorders a state enum, inserts a member, or edits a table, the
mismatch fails here rather than as a silent mis-dispatch — and pin
victim-selection parity between the kernels with a randomized replay.
"""

from __future__ import annotations

import random

import pytest

from repro.common.types import L1State, L2State
from repro.config import CacheConfig
from repro.kernel import hot
from repro.kernel.layout import FlatTagArray
from repro.mem.cache_array import CacheArray

# ----------------------------------------------------------------------
# State encodings
# ----------------------------------------------------------------------

L1_CODES = {"I": hot.L1_I, "V": hot.L1_V, "IV": hot.L1_IV,
            "II": hot.L1_II, "VI": hot.L1_VI}
L2_CODES = {"I": hot.L2_I, "V": hot.L2_V, "IV": hot.L2_IV,
            "IAV": hot.L2_IAV}


def test_l1_codes_are_definition_order():
    assert [m.name for m in L1State] == ["I", "V", "IV", "II", "VI"]
    for i, member in enumerate(L1State):
        assert L1_CODES[member.name] == i
    assert hot.L1_NONE == len(L1State)


def test_l2_codes_are_definition_order():
    assert [m.name for m in L2State] == ["I", "V", "IV", "IAV"]
    for i, member in enumerate(L2State):
        assert L2_CODES[member.name] == i
    assert hot.L2_NONE == len(L2State)


@pytest.mark.parametrize("enum_cls,none_code", [(L1State, hot.L1_NONE),
                                                (L2State, hot.L2_NONE)])
def test_layout_encoding_matches_hot(enum_cls, none_code):
    """FlatTagArray's runtime-derived maps agree with the constants."""
    arr = FlatTagArray(CacheConfig(size_bytes=1024, assoc=2,
                                   block_bytes=128), enum_cls.I)
    assert arr.decode == tuple(enum_cls)
    assert arr.encode == {m: i for i, m in enumerate(enum_cls)}
    assert arr.state_none == none_code
    assert arr.inv_code == arr.encode[enum_cls.I]


# ----------------------------------------------------------------------
# Transition tables
# ----------------------------------------------------------------------

ACTIONS = {hot.A_UNREACHED, hot.A_VHIT, hot.A_MISS, hot.A_GRANT,
           hot.A_MERGE_RD, hot.A_RETRY, hot.A_FETCH, hot.A_APPLY,
           hot.A_MERGE_WR}

L1_TABLES = {"RCC_L1_LOAD": hot.RCC_L1_LOAD,
             "MESI_L1_LOAD": hot.MESI_L1_LOAD}
L2_TABLES = {"RCC_L2_GETS": hot.RCC_L2_GETS,
             "RCC_L2_WRITE": hot.RCC_L2_WRITE,
             "RCC_L2_ATOMIC": hot.RCC_L2_ATOMIC,
             "MESI_L2_GETS": hot.MESI_L2_GETS,
             "MESI_L2_GETX": hot.MESI_L2_GETX}


@pytest.mark.parametrize("name,table", sorted(L1_TABLES.items()))
def test_l1_tables_cover_every_state(name, table):
    assert len(table) == len(L1State) + 1, \
        f"{name}: one cell per L1 state plus the no-tag-entry cell"
    assert set(table) <= ACTIONS


@pytest.mark.parametrize("name,table", sorted(L2_TABLES.items()))
def test_l2_tables_cover_every_state(name, table):
    assert len(table) == len(L2State) + 1, \
        f"{name}: one cell per L2 state plus the no-tag-entry cell"
    assert set(table) <= ACTIONS


def test_table_semantics_spot_checks():
    """The cells the protocols lean on hardest, pinned one by one."""
    # L1 load: valid line is a (lease-checked) hit; IV and absent miss.
    assert hot.RCC_L1_LOAD[hot.L1_V] == hot.A_VHIT
    assert hot.RCC_L1_LOAD[hot.L1_IV] == hot.A_MISS
    assert hot.RCC_L1_LOAD[hot.L1_NONE] == hot.A_MISS
    # RCC L2: V grants/applies instantly; IV merges; IAV blocks (retry).
    assert hot.RCC_L2_GETS[hot.L2_V] == hot.A_GRANT
    assert hot.RCC_L2_GETS[hot.L2_IV] == hot.A_MERGE_RD
    assert hot.RCC_L2_GETS[hot.L2_IAV] == hot.A_RETRY
    assert hot.RCC_L2_WRITE[hot.L2_V] == hot.A_APPLY
    assert hot.RCC_L2_WRITE[hot.L2_IV] == hot.A_MERGE_WR
    # Atomics never merge: anything not V retries or refetches.
    assert hot.RCC_L2_ATOMIC[hot.L2_V] == hot.A_APPLY
    assert hot.RCC_L2_ATOMIC[hot.L2_IV] == hot.A_RETRY
    assert hot.RCC_L2_ATOMIC[hot.L2_IAV] == hot.A_RETRY
    # MESI has no IAV occupancy; reaching it is a protocol bug.
    assert hot.MESI_L2_GETS[hot.L2_IAV] == hot.A_UNREACHED
    assert hot.MESI_L2_GETX[hot.L2_IAV] == hot.A_UNREACHED


# ----------------------------------------------------------------------
# Victim-selection parity (object vs flat), randomized replay
# ----------------------------------------------------------------------

def _replay(arr, script):
    """Apply a script; return (evicted addr sequence, final tag map).

    A fully-pinned set makes insert raise; that is part of the observable
    behavior being compared, so it lands in the log instead of aborting.
    """
    from repro.errors import SimulationError
    evicted = []
    for op, addr in script:
        if op == "insert":
            try:
                arr.insert(addr, L1State.V,
                           lambda ln: evicted.append(ln.addr))
            except SimulationError:
                evicted.append(("pinned-full", addr))
        elif op == "touch":
            line = arr.lookup(addr)
            if line is not None:
                line.touch()
        elif op == "invalidate":
            line = arr.lookup(addr)
            if line is not None:
                line.state = L1State.I
        elif op == "pin":
            line = arr.lookup(addr)
            if line is not None and not line.pinned:
                line.pinned = True
        elif op == "unpin":
            line = arr.lookup(addr)
            if line is not None:
                line.pinned = False
        elif op == "remove":
            arr.remove(addr)
    final = {ln.addr: ln.state for ln in arr.lines()}
    return evicted, final


@pytest.mark.parametrize("seed", range(8))
def test_victim_parity_object_vs_flat(seed):
    """The same op script evicts the same victims in the same order from
    both arrays. Replays are sequential (object first, then flat), so the
    shared global LRU counter hands each array different absolute ticks —
    only relative order matters, which is the point being pinned."""
    rng = random.Random(seed)
    cfg = CacheConfig(size_bytes=2048, assoc=4, block_bytes=128)
    addrs = [i * 128 for i in range(16)]  # 4 blocks per set, 4 sets
    ops = ("insert", "insert", "insert", "touch", "touch", "invalidate",
           "pin", "unpin", "remove")
    script = [(rng.choice(ops), rng.choice(addrs)) for _ in range(300)]
    # Unpin everything at the end so the final inserts cannot raise on a
    # fully-pinned set in one array but not the other mid-comparison.
    obj = CacheArray(cfg, L1State.I)
    flat = FlatTagArray(cfg, L1State.I)
    obj_ev, obj_final = _replay(obj, script)
    flat_ev, flat_final = _replay(flat, script)
    assert obj_ev == flat_ev
    assert obj_final == flat_final


# ----------------------------------------------------------------------
# Fill-target selection: pick_slot replaces the two-scan pair
# ----------------------------------------------------------------------

def test_find_free_way_removed():
    """``find_free_way`` is gone: the free-way scan is fused into
    :func:`hot.pick_slot` so steady-state fills pay one pass, not two.
    This pin stops the dead helper from quietly coming back (and the
    compiled build from re-exporting it)."""
    assert not hasattr(hot, "find_free_way")
    assert callable(hot.pick_slot)
    assert callable(hot.pick_victim)  # the victim half survives alone


@pytest.mark.parametrize("seed", range(6))
def test_pick_slot_is_free_way_first_else_victim(seed):
    """Randomized occupancy/pin/LRU grids: pick_slot must return the
    lowest free way when one exists, and exactly ``pick_victim``'s
    choice otherwise (including the -1 all-pinned case)."""
    rng = random.Random(seed)
    assoc = 4
    inv = hot.L1_I
    states = [hot.L1_I, hot.L1_V, hot.L1_IV, hot.L1_VI]
    for _ in range(500):
        used = [rng.random() < 0.8 for _ in range(assoc)]
        state = [rng.choice(states) for _ in range(assoc)]
        lru = rng.sample(range(1, 1000), assoc)
        pinned = [rng.random() < 0.3 for _ in range(assoc)]
        got = hot.pick_slot(used, state, lru, pinned, 0, assoc, inv)
        free = [w for w in range(assoc) if not used[w]]
        if free:
            assert got == free[0], (used, pinned)
        else:
            want = hot.pick_victim(used, state, lru, pinned, 0, assoc, inv)
            assert got == want, (used, state, lru, pinned)
            assert got == -1 or not pinned[got]
        assert hot.can_fill(used, pinned, 0, assoc) == (got != -1)
