"""Differential battery: fast bucketed engine vs the legacy heap oracle.

Two layers of evidence that the two-level queue preserves the engine's
determinism contract (events fire in exact ``(cycle, seq)`` order):

* randomized schedule/schedule_call/cancel/run(until) scripts replayed
  against both engines must produce identical firing logs — with a
  greedy shrinker so a failure prints its minimal script;
* a seeded Fig. 9 sweep cell run end-to-end on each engine must produce
  bit-identical result payloads.
"""

import json
import random

import pytest

from repro.config import GPUConfig
from repro.exec import SimCell, run_cell
from repro.timing.engine import Engine
from repro.timing.legacy import LegacyEngine

# ----------------------------------------------------------------------
# Script interpreter
# ----------------------------------------------------------------------
# A script is a list of top-level ops:
#   ("sched", delay, tag, nested)  schedule() with a handle kept under tag
#   ("call",  delay, tag, nested)  schedule_call() (no handle)
#   ("cancel", tag)                cancel tag's handle if one exists
#   ("run_until", delta)           run(until=now + delta)
#   ("run",)                       drain everything queued so far
# ``nested`` is a list of (kind, delay, tag) scheduled from inside the
# callback when it fires — the mid-drain insertion case the bucket
# cursor must handle.


def exec_script(engine, script):
    log = []
    handles = {}

    def make_cb(tag, nested):
        def cb():
            log.append((engine.now, tag))
            for kind, delay, sub in nested:
                if kind == "call":
                    engine.schedule_call(engine.now + delay, make_cb(sub, ()))
                else:
                    handles[sub] = engine.schedule(engine.now + delay,
                                                   make_cb(sub, ()))
        return cb

    for op in script:
        kind = op[0]
        if kind == "sched":
            _, delay, tag, nested = op
            handles[tag] = engine.schedule(engine.now + delay,
                                           make_cb(tag, nested))
        elif kind == "call":
            _, delay, tag, nested = op
            engine.schedule_call(engine.now + delay, make_cb(tag, nested))
        elif kind == "cancel":
            handle = handles.get(op[1])
            if handle is not None:
                handle.cancel()
        elif kind == "run_until":
            engine.run(until=engine.now + op[1])
        elif kind == "run":
            engine.run()
    engine.run()
    return log, engine.now, engine.events_fired, engine.pending


def observe(script):
    fast = exec_script(Engine(), script)
    slow = exec_script(LegacyEngine(), script)
    return fast, slow


def shrink(script):
    """Greedily drop ops while the fast/legacy mismatch persists."""
    current = list(script)
    changed = True
    while changed:
        changed = False
        for i in range(len(current)):
            candidate = current[:i] + current[i + 1:]
            fast, slow = observe(candidate)
            if fast != slow:
                current = candidate
                changed = True
                break
    return current


def random_script(rng):
    #: Delays straddle the 512-cycle ring window so far-heap migration,
    #: horizon slides, and run(until) parking all get exercised.
    delays = [0, 0, 1, 2, 3, 7, 8, 50, 200, 511, 512, 513, 900, 5000]
    script = []
    tag = 0
    for _ in range(rng.randrange(4, 40)):
        roll = rng.random()
        if roll < 0.35:
            nested = [("call" if rng.random() < 0.5 else "sched",
                       rng.choice(delays), f"n{tag}-{j}")
                      for j in range(rng.randrange(0, 3))]
            script.append(("sched", rng.choice(delays), f"t{tag}", nested))
            tag += 1
        elif roll < 0.65:
            nested = [("call", rng.choice(delays), f"n{tag}-{j}")
                      for j in range(rng.randrange(0, 3))]
            script.append(("call", rng.choice(delays), f"t{tag}", nested))
            tag += 1
        elif roll < 0.75 and tag:
            script.append(("cancel", f"t{rng.randrange(tag)}"))
        elif roll < 0.92:
            script.append(("run_until", rng.choice([0, 1, 5, 60, 513, 2000])))
        else:
            script.append(("run",))
    return script


# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(12))
def test_randomized_scripts_match_legacy(seed):
    rng = random.Random(987_000 + seed)
    for round_no in range(40):
        script = random_script(rng)
        fast, slow = observe(script)
        if fast != slow:
            minimal = shrink(script)
            pytest.fail(
                f"engines diverged (seed {seed}, round {round_no}); "
                f"minimal script: {minimal!r}\n"
                f"fast:   {exec_script(Engine(), minimal)}\n"
                f"legacy: {exec_script(LegacyEngine(), minimal)}")


def test_interleaved_same_cycle_schedule_and_call_order():
    # schedule() and schedule_call() share one seq counter: an interleaved
    # same-cycle mix must fire in exact submission order on both engines.
    script = [("sched", 5, "a", ()), ("call", 5, "b", ()),
              ("sched", 5, "c", ()), ("call", 5, "d", ()),
              ("call", 5, "e", ()), ("sched", 5, "f", ())]
    fast, slow = observe(script)
    assert fast == slow
    assert [tag for _, tag in fast[0]] == ["a", "b", "c", "d", "e", "f"]


def test_cancel_of_far_future_event_matches():
    script = [("sched", 5000, "far", ()), ("sched", 3, "near", ()),
              ("cancel", "far"), ("run",)]
    fast, slow = observe(script)
    assert fast == slow
    assert fast[3] == 0  # nothing pending on either engine


def test_park_and_resume_with_earlier_insertion():
    # run(until) parks with the next cycle still queued; a later schedule
    # targets an earlier cycle, which must fire first on resume.
    script = [("sched", 100, "late", ()), ("run_until", 10),
              ("sched", 20, "early", ()), ("run",)]
    fast, slow = observe(script)
    assert fast == slow
    assert [tag for _, tag in fast[0]] == ["early", "late"]


# ----------------------------------------------------------------------
# Drain-path edges: a callback-only bucket goes through the batch
# hot-kernel drain on the fast engine; these pins hold on both engines.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine_cls", [Engine, LegacyEngine],
                         ids=["fast", "legacy"])
def test_stop_from_bare_callback_mid_drain(engine_cls):
    # stop() issued *inside* a bare schedule_call callback must halt the
    # drain before the next entry of the same bucket fires, and a second
    # run() must resume exactly where it left off.
    eng = engine_cls()
    log = []
    eng.schedule_call(5, lambda: log.append("a"))
    eng.schedule_call(5, lambda: (log.append("stop"), eng.stop()))
    eng.schedule_call(5, lambda: log.append("b"))
    eng.schedule_call(9, lambda: log.append("later"))
    eng.run()
    assert log == ["a", "stop"]
    eng.run()
    assert log == ["a", "stop", "b", "later"]


def test_event_appended_to_current_bucket_mid_drain():
    # A bare callback scheduling a cancellable *Event* into its own cycle
    # forces the fast engine to abandon the batch drain mid-bucket (the
    # bucket no longer holds only bare callbacks). Firing order must stay
    # submission order on both engines, and cancelling the fresh handle
    # from a sibling callback must suppress it.
    def script_ops(eng, log, cancel_it):
        box = {}

        def planter():
            log.append("plant")
            box["h"] = eng.schedule(eng.now, lambda: log.append("event"))

        def sibling():
            log.append("sibling")
            if cancel_it:
                box["h"].cancel()

        eng.schedule_call(7, planter)
        eng.schedule_call(7, sibling)
        eng.schedule_call(7, lambda: log.append("tail"))

    for cancel_it, expect in ((False, ["plant", "sibling", "tail",
                                       "event"]),
                              (True, ["plant", "sibling", "tail"])):
        logs = []
        for engine_cls in (Engine, LegacyEngine):
            eng = engine_cls()
            log = []
            script_ops(eng, log, cancel_it)
            eng.run()
            logs.append(log)
            assert log == expect, (engine_cls.__name__, cancel_it)
        assert logs[0] == logs[1]


# ----------------------------------------------------------------------
# End-to-end: a seeded Fig. 9 cell must be bit-identical across engines.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("protocol,workload",
                         [("RCC", "bfs"), ("TCS", "dlb"), ("MESI", "bfs")])
def test_fig9_cell_payload_identical_across_engines(monkeypatch, protocol,
                                                    workload):
    cell = SimCell(cfg=GPUConfig.small(), protocol=protocol,
                   workload=workload, intensity=0.25, seed=1234)
    monkeypatch.delenv("RCC_LEGACY_ENGINE", raising=False)
    fast = run_cell(cell).to_payload()
    monkeypatch.setenv("RCC_LEGACY_ENGINE", "1")
    legacy = run_cell(cell).to_payload()
    assert json.dumps(fast, sort_keys=True) == json.dumps(legacy,
                                                          sort_keys=True)
