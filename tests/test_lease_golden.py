"""Golden-payload regression battery: ``fixed`` is bit-identical to HEAD.

Every hash in ``tests/golden/fixed_policy_golden.json`` was captured at
the commit *before* the pluggable lease-policy refactor (the last rev
where the L2 called the monolithic ``LeasePredictor`` directly). The
grid covers all six protocols x five workloads x two intensities on the
small machine. Recomputing each cell and comparing payload SHA-256
proves the strategy extraction changed *nothing observable* under the
default policy — not cycles, not stats, not a single payload field.

If a deliberate behavior change lands later, regenerate the file with::

    PYTHONPATH=src python tests/golden/regen_fixed_policy_golden.py

and say so in the commit message — this battery exists to make silent
behavioral drift impossible, not to freeze the simulator forever.
"""

from __future__ import annotations

import hashlib
import json
import os

import pytest

from repro.config import GPUConfig
from repro.exec import SimCell, run_cell

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden",
                           "fixed_policy_golden.json")

with open(GOLDEN_PATH) as _fh:
    GOLDEN = json.load(_fh)

assert GOLDEN["kind"] == "fixed-policy-golden" and GOLDEN["schema"] == 1


def payload_hash(result) -> str:
    """The canonical payload digest the golden file stores."""
    blob = json.dumps(result.to_payload(), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def cell_for(key: str) -> SimCell:
    """Rebuild the SimCell a golden key (``RCC/bfs@0.25``) names."""
    protocol, rest = key.split("/")
    workload, intensity = rest.rsplit("@", 1)
    return SimCell(cfg=GPUConfig.small(), protocol=protocol,
                   workload=workload, intensity=float(intensity), seed=1234)


@pytest.mark.parametrize("key", sorted(GOLDEN["cells"]))
def test_fixed_policy_bit_identical(key):
    expected = GOLDEN["cells"][key]
    result = run_cell(cell_for(key))
    assert result.mem_ops == expected["mem_ops"], \
        f"{key}: mem_ops drifted (workload generation changed)"
    assert result.cycles == expected["cycles"], \
        f"{key}: cycles drifted (timing behavior changed)"
    assert payload_hash(result) == expected["payload_sha256"], (
        f"{key}: result payload differs from the pre-refactor golden — "
        "the 'fixed' lease policy is no longer byte-identical to the "
        "historical LeasePredictor")


def test_explicit_fixed_override_matches_default():
    """Naming the default policy in ts_overrides changes nothing but the
    cache key: the simulation output is identical."""
    base = cell_for("RCC/bfs@0.25")
    explicit = SimCell(cfg=base.cfg, protocol=base.protocol,
                       workload=base.workload, intensity=base.intensity,
                       seed=base.seed,
                       ts_overrides=(("lease_policy", "fixed"),))
    assert run_cell(explicit).to_payload() == run_cell(base).to_payload()


def test_golden_grid_shape():
    """The golden grid is the full 6x5x2 cross it claims to be."""
    keys = GOLDEN["cells"].keys()
    protocols = {k.split("/")[0] for k in keys}
    workloads = {k.split("/")[1].rsplit("@", 1)[0] for k in keys}
    intensities = {k.rsplit("@", 1)[1] for k in keys}
    assert protocols == {"MESI", "TCS", "TCW", "RCC", "RCC-WO", "SC-IDEAL"}
    assert workloads == {"bfs", "stn", "dlb", "kmn", "lud"}
    assert intensities == {"0.25", "1.0"}
    assert len(keys) == 60
