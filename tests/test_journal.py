"""Journaled campaigns: identity, encoding, resume, and divergence.

The contract under test: an interrupted campaign resumes from its
journal with completed cells replayed byte-identically and zero
re-computation; a journal/cache digest disagreement is *surfaced* as a
``cache-corrupt`` failure, never silently resolved; and a journal that
cannot be written degrades the campaign instead of killing it.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.config import GPUConfig
from repro.errors import HarnessError, JournalError
from repro.exec import (
    CampaignJournal, ResultCache, SimCell, SweepExecutor, campaign_id,
    cell_key, decode_value, encode_value, payload_digest,
)
from repro.exec.journal import _load_journal

CELLS = [
    SimCell(cfg=GPUConfig.small(), protocol=proto, workload="bfs",
            intensity=0.05, seed=11)
    for proto in ("RCC", "MESI")
]


def _touched(path):
    return json.load(open(path)) if os.path.exists(path) else None


class TestCampaignIdentity:
    def test_stable_for_same_plan(self):
        a = campaign_id(["k1", "k2"], {"seed": 7})
        assert a == campaign_id(["k1", "k2"], {"seed": 7})

    def test_sensitive_to_cells_meta_and_order(self):
        base = campaign_id(["k1", "k2"], {"seed": 7})
        assert campaign_id(["k1", "k2", "k3"], {"seed": 7}) != base
        assert campaign_id(["k2", "k1"], {"seed": 7}) != base
        assert campaign_id(["k1", "k2"], {"seed": 8}) != base

    def test_meta_with_non_json_values_still_hashes(self):
        # default=str covers sets, objects, etc. in caller metadata.
        assert campaign_id(["k"], {"knobs": {1, 2}})


class TestPayloadEncoding:
    def test_json_round_trip(self):
        doc = {"cycles": 123, "nested": {"a": [1, 2.5, None]}}
        enc = encode_value(doc)
        assert enc["enc"] == "json"
        assert decode_value(enc) == doc

    def test_pickle_fallback_round_trip(self):
        value = {"tuple": (1, 2), "set": {3, 4}}  # not JSON-able
        enc = encode_value(value)
        assert enc["enc"] == "pickle"
        assert decode_value(enc) == value

    def test_tampered_json_payload_raises(self):
        enc = encode_value({"cycles": 123})
        enc["data"]["cycles"] = 124
        with pytest.raises(JournalError):
            decode_value(enc)

    def test_tampered_pickle_payload_raises(self):
        enc = encode_value({"set": {1, 2}})
        assert enc["enc"] == "pickle"
        enc["data"] = enc["data"][:-8] + "AAAAAAA="
        with pytest.raises(JournalError):
            decode_value(enc)

    def test_unknown_encoding_raises(self):
        with pytest.raises(JournalError):
            decode_value({"enc": "msgpack", "data": "x"})
        with pytest.raises(JournalError):
            decode_value("not a dict")

    def test_payload_digest_invariant_under_round_trip(self):
        payload = {"final_memory": {7: ["v", 1]}, "cycles": 9}
        assert payload_digest(payload) == payload_digest(
            json.loads(json.dumps(payload, default=str)))


class TestJournalFile:
    def _open(self, tmp_path, cid="c" * 64, n=3, **kw):
        return CampaignJournal.open(str(tmp_path / "j.jsonl"), cid, n, **kw)

    def test_record_then_reopen_resumes(self, tmp_path):
        j = self._open(tmp_path)
        j.record_ok(0, "key0", "cell0", "d" * 64, 0.5, 1)
        j.record_failure(1, "key1", "cell1", "timeout", "wedged", 3)
        j.close()
        again = self._open(tmp_path)
        assert set(again.completed()) == {0}
        assert again.completed()[0]["key"] == "key0"
        assert set(again.failed()) == {1}
        assert again.failed()[1]["error"]["kind"] == "timeout"

    def test_latest_record_per_seq_wins(self, tmp_path):
        j = self._open(tmp_path)
        j.record_failure(0, "key0", "cell0", "crash", "died", 3)
        j.record_ok(0, "key0", "cell0", "d" * 64, 0.1, 4)
        j.close()
        again = self._open(tmp_path)
        assert set(again.completed()) == {0}
        assert not again.failed()

    def test_torn_trailing_line_tolerated(self, tmp_path):
        j = self._open(tmp_path)
        j.record_ok(0, "key0", "cell0", "d" * 64, 0.5, 1)
        j.record_ok(1, "key1", "cell1", "e" * 64, 0.5, 1)
        j.close()
        path = str(tmp_path / "j.jsonl")
        blob = open(path).read()
        with open(path, "w") as fh:           # SIGKILL mid-append
            fh.write(blob[:-17])
        again = self._open(tmp_path)
        assert set(again.completed()) == {0}, "torn record not dropped"

    def test_out_of_range_seq_ignored(self, tmp_path):
        j = self._open(tmp_path, n=2)
        j.record_ok(0, "k", "c", "d" * 64, 0.1, 1)
        j.close()
        shrunk = CampaignJournal.open(str(tmp_path / "j.jsonl"), "c" * 64, 2)
        path = str(tmp_path / "j.jsonl")
        with open(path, "a") as fh:
            fh.write(json.dumps({"kind": "cell", "seq": 9,
                                 "status": "ok"}) + "\n")
        shrunk = CampaignJournal.open(path, "c" * 64, 2)
        assert set(shrunk.completed()) == {0}

    def test_mismatched_journal_rotated_not_overwritten(self, tmp_path):
        warnings = []
        j = self._open(tmp_path, cid="a" * 64)
        j.record_ok(0, "k", "c", "d" * 64, 0.1, 1)
        j.close()
        j2 = self._open(tmp_path, cid="b" * 64,
                        on_warning=warnings.append)
        assert not j2.completed()
        rotated = str(tmp_path / "j.jsonl.1")
        assert os.path.exists(rotated), "old journal lost, not rotated"
        header, records = _load_journal(rotated)
        assert header["campaign"] == "a" * 64
        assert len(records) == 1
        assert any("rotated" in w for w in warnings)

    def test_explicit_resume_mismatch_raises(self, tmp_path):
        j = self._open(tmp_path, cid="a" * 64)
        j.record_ok(0, "k", "c", "d" * 64, 0.1, 1)
        j.close()
        with pytest.raises(JournalError, match="different campaign"):
            CampaignJournal.open(str(tmp_path / "j.jsonl"), "b" * 64, 3,
                                 explicit=True)

    def test_write_failure_degrades_with_warning(self, tmp_path):
        blocker = tmp_path / "dir-in-the-way"
        blocker.write_text("file, not a directory")
        warnings = []
        j = CampaignJournal.open(str(blocker / "j.jsonl"), "c" * 64, 2,
                                 on_warning=warnings.append)
        j.record_ok(0, "k", "c", "d" * 64, 0.1, 1)   # must not raise
        j.record_ok(1, "k", "c", "e" * 64, 0.1, 1)
        assert j.broken
        assert j.write_errors == 1, "further writes not short-circuited"
        assert any("journal write failed" in w for w in warnings)


class TestExecutorResume:
    def _run(self, tmp_path, **kw):
        ex = SweepExecutor(jobs=1, on_summary=lambda s: None, **kw)
        return ex, ex.run_cells(CELLS, meta={"suite": "test"})

    def test_second_run_replays_everything(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        jdir = str(tmp_path / "journals")
        ex1, first = self._run(tmp_path, cache=cache, journal_dir=jdir)
        assert ex1.last_stats.n_computed == len(CELLS)
        assert os.path.exists(ex1.last_journal_path)

        ex2, second = self._run(
            tmp_path, cache=ResultCache(str(tmp_path / "cache")),
            journal_dir=jdir)
        assert ex2.last_stats.n_replayed == len(CELLS)
        assert ex2.last_stats.n_computed == 0
        assert ([r.to_payload() for r in second]
                == [r.to_payload() for r in first])

    def test_cacheless_map_campaign_replays_from_embedded(self, tmp_path):
        jdir = str(tmp_path / "journals")
        calls = tmp_path / "calls"
        ex1 = SweepExecutor(jobs=1, journal_dir=jdir,
                            on_summary=lambda s: None)
        first = ex1.map(_count_and_square, [(str(calls), x)
                                            for x in (2, 3)],
                        labels=["a", "b"], meta={"m": 1})
        assert first == [4, 9]
        assert len(calls.read_text()) == 2

        ex2 = SweepExecutor(jobs=1, journal_dir=jdir,
                            on_summary=lambda s: None)
        second = ex2.map(_count_and_square, [(str(calls), x)
                                             for x in (2, 3)],
                         labels=["a", "b"], meta={"m": 1})
        assert second == first
        assert ex2.last_stats.n_replayed == 2
        assert len(calls.read_text()) == 2, "resume re-ran completed cells"

    def test_cache_evicted_cell_recomputed_pinned_to_digest(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        jdir = str(tmp_path / "journals")
        ex1, first = self._run(tmp_path, cache=cache, journal_dir=jdir)
        # Evict one entry: resume must recompute it and converge on the
        # journaled digest (the simulator is deterministic).
        os.unlink(cache.path_for(cell_key(CELLS[0])))
        ex2, second = self._run(
            tmp_path, cache=ResultCache(str(tmp_path / "cache")),
            journal_dir=jdir)
        assert ex2.last_stats.n_computed == 1
        assert ex2.last_stats.n_replayed == len(CELLS) - 1
        assert ([r.to_payload() for r in second]
                == [r.to_payload() for r in first])

    def test_journal_cache_divergence_surfaces_cache_corrupt(self,
                                                             tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        jdir = str(tmp_path / "journals")
        self._run(tmp_path, cache=cache, journal_dir=jdir)
        # Forge the cache entry: altered payload, *re-signed* with a
        # valid digest — the cache's own check passes, only the journal
        # cross-check can catch it.
        from repro.exec.cache import result_digest
        path = cache.path_for(cell_key(CELLS[0]))
        blob = json.load(open(path))
        blob["result"]["cycles"] += 1
        blob["digest"] = result_digest(blob["result"])
        json.dump(blob, open(path, "w"))

        ex = SweepExecutor(jobs=1, cache=ResultCache(str(tmp_path / "cache")),
                           journal_dir=jdir, on_summary=lambda s: None)
        with pytest.raises(HarnessError) as err:
            ex.run_cells(CELLS, meta={"suite": "test"})
        (failure,) = err.value.failures
        assert failure.kind == "cache-corrupt"
        assert "refusing to pick a side" in failure.message
        # Neither store was silently "fixed".
        assert json.load(open(path))["result"]["cycles"] \
            == blob["result"]["cycles"]

    def test_resume_flag_accepts_journal_file(self, tmp_path):
        jdir = str(tmp_path / "journals")
        ex1, first = self._run(tmp_path, journal_dir=jdir)
        path = ex1.last_journal_path
        ex2, second = self._run(tmp_path, resume=path)
        assert ex2.last_stats.n_replayed == len(CELLS)
        assert ([r.to_payload() for r in second]
                == [r.to_payload() for r in first])

    def test_resume_flag_rejects_foreign_journal(self, tmp_path):
        jdir = str(tmp_path / "journals")
        ex1, _ = self._run(tmp_path, journal_dir=jdir)
        path = ex1.last_journal_path
        other = [CELLS[0]]  # different plan -> different campaign id
        ex2 = SweepExecutor(jobs=1, resume=path, on_summary=lambda s: None)
        with pytest.raises(JournalError, match="different campaign"):
            ex2.run_cells(other, meta={"suite": "test"})

    def test_resume_directory_means_journal_dir(self, tmp_path):
        jdir = tmp_path / "journals"
        jdir.mkdir()
        ex = SweepExecutor(jobs=1, resume=str(jdir),
                           on_summary=lambda s: None)
        assert ex.journal_dir == str(jdir)
        assert ex.resume is None
        assert ex.journaling

    def test_env_var_enables_journaling(self, tmp_path, monkeypatch):
        monkeypatch.setenv("RCC_JOURNAL_DIR", str(tmp_path / "j"))
        assert SweepExecutor(jobs=1).journaling
        monkeypatch.delenv("RCC_JOURNAL_DIR")
        assert not SweepExecutor(jobs=1).journaling


def _count_and_square(pair):
    path, x = pair
    with open(path, "a") as fh:
        fh.write("x")
    return x * x
