"""Tests for RCC-WO: split read/write logical views (paper §III-F)."""

import pytest

from repro.common.types import MemOpKind
from repro.gpu.trace import compute_op, fence_op, load_op, store_op
from repro.sim.gpusim import GPUSimulator
from tests.conftest import program_traces

BLOCK = 128


def build(cfg, programs, protocol="RCC-WO", **kw):
    return GPUSimulator(cfg, protocol, program_traces(cfg, programs),
                        "rcc-wo-test", **kw)


def test_views_split_until_fence(tiny_cfg):
    """Stores advance only the write view; the read view stays behind.
    (The store runs in a sibling warp after the lease exists, so its
    version must push past the outstanding lease.)"""
    sim = build(tiny_cfg, {
        (0, 0): [load_op(10 * BLOCK)],            # lease on block 10
        (0, 1): [compute_op(400), store_op(10 * BLOCK)],
    })
    sim.run()
    l1 = sim.proto.l1s[0]
    assert l1.write_clock.value > l1.clock.value  # write view ran ahead


def test_fence_joins_views(tiny_cfg):
    sim = build(tiny_cfg, {
        (0, 0): [load_op(10 * BLOCK)],
        (0, 1): [compute_op(400), store_op(10 * BLOCK), fence_op(),
                 load_op(0)],
    })
    sim.run()
    l1 = sim.proto.l1s[0]
    assert l1.write_clock.value > 0
    assert l1.clock.value == l1.write_clock.value


def test_stores_do_not_expire_own_read_leases(tiny_cfg):
    """The RCC-WO advantage: a store's version does not advance the read
    view, so the core's other cached blocks stay valid — under RCC-SC the
    same sequence expires them."""
    program = {
        (0, 0): [load_op(0),                       # cache block 0
                 load_op(10 * BLOCK), store_op(10 * BLOCK),  # unrelated RW
                 load_op(0)],                      # re-read block 0
    }
    wo = build(tiny_cfg, dict(program))
    r_wo = wo.run()
    sc = build(tiny_cfg, dict(program), protocol="RCC")
    r_sc = sc.run()
    assert r_wo.l1_load_expired < r_sc.l1_load_expired \
        or r_wo.l1_load_hits > r_sc.l1_load_hits


def test_fence_is_instant_unlike_tcw(tiny_cfg):
    """RCC-WO fences only join views (no physical GWCT wait)."""
    program = {
        (0, 0): [load_op(0)],  # long lease for TCW's GWCT
        (1, 0): [compute_op(150), store_op(0), fence_op(),
                 store_op(50 * BLOCK)],
    }
    wo = build(tiny_cfg, dict(program))
    r_wo = wo.run()
    tcw = build(tiny_cfg, dict(program), protocol="TCW")
    r_tcw = tcw.run()
    assert r_wo.fence_wait_cycles <= r_tcw.fence_wait_cycles


def test_wo_overlaps_memory_ops(tiny_cfg):
    ops = []
    for i in range(8):
        ops.append(load_op((i * 7 + 3) * BLOCK))
    sc = build(tiny_cfg, {(0, 0): list(ops)}, protocol="RCC")
    r_sc = sc.run()
    wo = build(tiny_cfg, {(0, 0): list(ops)})
    r_wo = wo.run()
    assert r_wo.cycles < r_sc.cycles


def test_atomic_joins_views(tiny_cfg):
    from repro.gpu.trace import atomic_op
    sim = build(tiny_cfg, {
        (0, 0): [load_op(10 * BLOCK), store_op(10 * BLOCK),
                 atomic_op(20 * BLOCK)],
    })
    sim.run()
    l1 = sim.proto.l1s[0]
    assert l1.clock.value == l1.write_clock.value


def test_same_address_raw_respected(tiny_cfg):
    """Even under WO, a warp's load after its own store to the same address
    must see the stored value (data dependence)."""
    sim = build(tiny_cfg, {
        (0, 0): [store_op(0), load_op(0)],
    }, record_ops=True)
    res = sim.run()
    ld = [o for o in res.op_logs if o.kind is MemOpKind.LOAD][0]
    st = [o for o in res.op_logs if o.kind is MemOpKind.STORE][0]
    assert ld.read_value == st.value
