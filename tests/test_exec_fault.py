"""Fault paths of the sweep executor: hangs, crashes, fallback, CLI.

A wedged or crashing worker must cost at most one timeout + one retry,
then surface as a clean :class:`~repro.errors.HarnessError` — never a
bare ``BrokenProcessPool`` — and a failing experiment must not abort the
rest of an ``rcc-repro all`` run.

The worker functions live at module level so the fork-based pool can
pickle them by reference.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.errors import HarnessError
from repro.exec import SweepExecutor
from repro.harness import runner as runner_cli


def _hang_worker(item):
    time.sleep(60)


def _boom_worker(item):
    raise ValueError(f"kaboom {item!r}")


def _die_worker(item):
    os._exit(3)  # kills the pool process outright -> BrokenProcessPool


def _flaky_worker(path):
    if not os.path.exists(path):
        open(path, "w").close()
        raise RuntimeError("first attempt fails")
    return "ok"


def _echo_worker(item):
    return item * 2


def _boom_cell_worker(cell):
    raise ValueError("injected cell failure")


class TestTimeoutAndRetry:
    def test_hung_worker_times_out_retries_once_then_harness_error(self):
        ex = SweepExecutor(jobs=2, timeout=0.75)
        t0 = time.perf_counter()
        with pytest.raises(HarnessError) as err:
            ex.map(_hang_worker, [1], labels=["wedged-cell"])
        assert time.perf_counter() - t0 < 20, "hung worker was not reaped"
        assert ex.last_stats.retries == 1
        assert "wedged-cell" in str(err.value)
        assert "TimeoutError" in str(err.value)

    def test_raising_worker_retried_once_then_harness_error(self):
        ex = SweepExecutor(jobs=2, timeout=30.0)
        with pytest.raises(HarnessError) as err:
            ex.map(_boom_worker, ["x"])
        assert ex.last_stats.retries == 1
        assert "kaboom" in str(err.value)

    def test_dead_worker_not_a_bare_broken_process_pool(self):
        ex = SweepExecutor(jobs=2, timeout=30.0)
        with pytest.raises(HarnessError):
            ex.map(_die_worker, [1])
        assert ex.last_stats.retries == 1

    def test_transient_failure_recovers_on_retry(self, tmp_path):
        sentinel = str(tmp_path / "sentinel")
        ex = SweepExecutor(jobs=2, timeout=30.0)
        assert ex.map(_flaky_worker, [sentinel]) == ["ok"]
        assert ex.last_stats.retries == 1

    def test_serial_failure_also_wrapped(self):
        ex = SweepExecutor(jobs=1)
        with pytest.raises(HarnessError) as err:
            ex.map(_boom_worker, ["y"])
        assert ex.last_stats.retries == 1
        assert "kaboom" in str(err.value)

    def test_healthy_cells_survive_a_failing_sibling(self, tmp_path):
        # map() is all-or-error per batch, but the error must arrive only
        # after every healthy cell had its chance (results are computed
        # before the batch raises).
        ex = SweepExecutor(jobs=2, timeout=30.0)
        with pytest.raises(HarnessError) as err:
            ex.map(_boom_worker, ["a", "b"])
        assert str(err.value).startswith("2 cell(s) failed")


class TestFallback:
    def test_in_process_fallback_when_mp_unavailable(self, monkeypatch):
        monkeypatch.setenv("RCC_NO_MP", "1")
        ex = SweepExecutor(jobs=4)
        assert ex.map(_echo_worker, [1, 2, 3]) == [2, 4, 6]
        assert ex.last_stats.mode == "serial-fallback"

    def test_serial_is_default(self):
        ex = SweepExecutor(jobs=1)
        assert ex.map(_echo_worker, [5]) == [10]
        assert ex.last_stats.mode == "serial"


class TestRunnerCLIFaults:
    def test_failing_experiment_does_not_abort_the_rest(self, monkeypatch,
                                                        capsys):
        from repro.harness.experiments import Harness

        def explode(self):
            raise RuntimeError("injected fig6 failure")

        monkeypatch.setattr(Harness, "fig6", explode)
        rc = runner_cli.main(["fig6", "table1", "--quick", "--no-cache"])
        assert rc == 1
        captured = capsys.readouterr()
        assert "Table I" in captured.out, "later experiment did not run"
        assert "fig6 FAILED" in captured.err
        assert "1 experiment(s) failed: fig6" in captured.err

    def test_cell_failure_reaches_cli_as_harness_error(self, monkeypatch,
                                                       capsys):
        import repro.exec.engine as engine
        monkeypatch.setattr(engine, "run_cell", _boom_cell_worker)
        rc = runner_cli.main(["fig6", "--quick", "--no-cache"])
        assert rc == 1
        captured = capsys.readouterr()
        assert "HarnessError" in captured.err
        assert "BrokenProcessPool" not in captured.err

    def test_all_experiments_ok_exits_zero(self, capsys):
        rc = runner_cli.main(["table1", "table4", "--quick", "--no-cache"])
        assert rc == 0
