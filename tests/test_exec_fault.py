"""Fault paths of the sweep executor: hangs, crashes, fallback, CLI.

A wedged or crashing worker must cost a bounded number of attempts
(:class:`~repro.exec.RetryPolicy`), then surface as a clean
:class:`~repro.errors.HarnessError` carrying structured
:class:`~repro.errors.CellFailure` records — never a bare
``BrokenProcessPool`` — and a failing experiment must not abort the rest
of an ``rcc-repro all`` run. One worker death must cost one pool
rebuild, not one isolated pool per innocent sibling cell.

The worker functions live at module level so the fork-based pool can
pickle them by reference.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

from repro.errors import FAILURE_KINDS, HarnessError
from repro.exec import RetryPolicy, SweepExecutor
from repro.harness import runner as runner_cli

#: Fast retry budget for fault tests: 2 attempts, near-zero backoff.
FAST2 = RetryPolicy(max_attempts=2, base_delay=0.01)
FAST3 = RetryPolicy(max_attempts=3, base_delay=0.01)


def _hang_worker(item):
    time.sleep(60)


def _boom_worker(item):
    raise ValueError(f"kaboom {item!r}")


def _die_worker(item):
    os._exit(3)  # kills the pool process outright -> BrokenProcessPool


def _die_if_zero_worker(item):
    if item == 0:
        os._exit(3)
    return item * 2


def _flaky_worker(path):
    if not os.path.exists(path):
        open(path, "w").close()
        raise RuntimeError("first attempt fails")
    return "ok"


def _echo_worker(item):
    return item * 2


def _boom_cell_worker(cell):
    raise ValueError("injected cell failure")


class TestTimeoutAndRetry:
    def test_hung_worker_times_out_retried_then_harness_error(self):
        ex = SweepExecutor(jobs=2, timeout=0.75, retry=FAST2)
        t0 = time.perf_counter()
        with pytest.raises(HarnessError) as err:
            ex.map(_hang_worker, [1], labels=["wedged-cell"])
        assert time.perf_counter() - t0 < 20, "hung worker was not reaped"
        assert ex.last_stats.retries == 1
        assert "wedged-cell" in str(err.value)
        assert "TimeoutError" in str(err.value)
        (failure,) = err.value.failures
        assert failure.kind == "timeout"
        assert failure.attempts == 2

    def test_raising_worker_retried_then_harness_error(self):
        ex = SweepExecutor(jobs=2, timeout=30.0, retry=FAST2)
        with pytest.raises(HarnessError) as err:
            ex.map(_boom_worker, ["x"])
        assert ex.last_stats.retries == 1
        assert "kaboom" in str(err.value)
        (failure,) = err.value.failures
        assert failure.kind == "exception"

    def test_dead_worker_not_a_bare_broken_process_pool(self):
        ex = SweepExecutor(jobs=2, timeout=30.0, retry=FAST3)
        with pytest.raises(HarnessError) as err:
            ex.map(_die_worker, [1])
        (failure,) = err.value.failures
        # The last attempt ran in an isolated single-worker pool, so the
        # crash is *confirmed* — not collateral "poisoned-pool" damage.
        assert failure.kind == "crash"
        assert failure.attempts == 3

    def test_transient_failure_recovers_on_retry(self, tmp_path):
        sentinel = str(tmp_path / "sentinel")
        ex = SweepExecutor(jobs=2, timeout=30.0, retry=FAST2)
        assert ex.map(_flaky_worker, [sentinel]) == ["ok"]
        assert ex.last_stats.retries == 1

    def test_serial_failure_also_wrapped(self):
        ex = SweepExecutor(jobs=1, retry=FAST2)
        with pytest.raises(HarnessError) as err:
            ex.map(_boom_worker, ["y"])
        assert ex.last_stats.retries == 1
        assert "kaboom" in str(err.value)
        (failure,) = err.value.failures
        assert failure.kind == "exception"

    def test_healthy_cells_survive_a_failing_sibling(self, tmp_path):
        # map() is all-or-error per batch, but the error must arrive only
        # after every healthy cell had its chance (results are computed
        # before the batch raises).
        ex = SweepExecutor(jobs=2, timeout=30.0, retry=FAST2)
        with pytest.raises(HarnessError) as err:
            ex.map(_boom_worker, ["a", "b"])
        assert str(err.value).startswith("2 cell(s) failed")
        assert [f.kind for f in err.value.failures] == ["exception"] * 2

    def test_retry_policy_env_override(self, monkeypatch):
        monkeypatch.setenv("RCC_MAX_ATTEMPTS", "1")
        assert RetryPolicy.from_env().max_attempts == 1
        monkeypatch.setenv("RCC_MAX_ATTEMPTS", "junk")
        assert RetryPolicy.from_env().max_attempts == 3

    def test_backoff_is_bounded_exponential(self):
        policy = RetryPolicy(max_attempts=9, base_delay=0.05, max_delay=0.3)
        delays = [policy.delay(k) for k in range(1, 6)]
        assert delays == [0.05, 0.1, 0.2, 0.3, 0.3]


class TestPoolRebuild:
    """One dead worker used to poison every un-collected future and burn
    one isolated single-worker pool per innocent cell (crash
    amplification). Now: rebuild the shared pool once and resubmit."""

    def test_one_crasher_does_not_amplify_pool_builds(self):
        items = [0, 1, 2, 3, 4, 5]
        ex = SweepExecutor(jobs=2, timeout=30.0, retry=FAST3)
        with pytest.raises(HarnessError) as err:
            ex.map(_die_if_zero_worker, items)
        # Only the actual crasher surfaces, classified in the taxonomy.
        (failure,) = err.value.failures
        assert failure.kind in ("crash", "poisoned-pool")
        assert failure.kind in FAILURE_KINDS
        # Initial pool + at most 2 rebuilds + 1 isolated retry pool; the
        # old per-sibling amplification would have built ~len(items).
        assert ex.pools_built <= 4, (
            f"{ex.pools_built} pools built for one crasher "
            f"among {len(items)} cells")
        assert ex.last_stats.pool_rebuilds >= 1

    def test_healthy_siblings_complete_despite_crasher(self):
        ex = SweepExecutor(jobs=2, timeout=30.0, retry=FAST3)
        with pytest.raises(HarnessError) as err:
            ex.map(_die_if_zero_worker, [0, 1, 2, 3])
        labels = [f.label for f in err.value.failures]
        assert labels == ["item[0]"], (
            f"innocent cells surfaced as failures: {labels}")


class TestWedgedWorkerReaping:
    """``_shutdown_pool(force=True)`` and the isolated retry stage must
    reap wedged worker processes — a timed-out campaign leaks nothing."""

    def _assert_no_leaked_children(self, before, deadline_s=10.0):
        t0 = time.perf_counter()
        while time.perf_counter() - t0 < deadline_s:
            leaked = [p for p in multiprocessing.active_children()
                      if p not in before]
            if not leaked:
                return
            time.sleep(0.1)
        assert not leaked, f"leaked worker processes: {leaked}"

    def test_timeout_reaps_wedged_workers(self):
        before = set(multiprocessing.active_children())
        ex = SweepExecutor(jobs=2, timeout=0.5, retry=FAST2)
        with pytest.raises(HarnessError):
            ex.map(_hang_worker, [1, 2], labels=["w1", "w2"])
        self._assert_no_leaked_children(before)

    def test_isolated_retry_pool_reaped_on_timeout(self):
        before = set(multiprocessing.active_children())
        ex = SweepExecutor(jobs=2, timeout=0.5, retry=FAST3)
        with pytest.raises(HarnessError) as err:
            ex.map(_hang_worker, [1])
        (failure,) = err.value.failures
        assert failure.kind == "timeout"
        assert failure.attempts == 3
        self._assert_no_leaked_children(before)

    def test_crash_then_success_leaves_no_processes(self):
        before = set(multiprocessing.active_children())
        ex = SweepExecutor(jobs=2, timeout=30.0, retry=FAST3)
        with pytest.raises(HarnessError):
            ex.map(_die_if_zero_worker, [0, 1, 2])
        self._assert_no_leaked_children(before)


class TestFallback:
    def test_in_process_fallback_when_mp_unavailable(self, monkeypatch):
        monkeypatch.setenv("RCC_NO_MP", "1")
        ex = SweepExecutor(jobs=4)
        assert ex.map(_echo_worker, [1, 2, 3]) == [2, 4, 6]
        assert ex.last_stats.mode == "serial-fallback"

    def test_serial_is_default(self):
        ex = SweepExecutor(jobs=1)
        assert ex.map(_echo_worker, [5]) == [10]
        assert ex.last_stats.mode == "serial"


class TestRunnerCLIFaults:
    def test_failing_experiment_does_not_abort_the_rest(self, monkeypatch,
                                                        capsys):
        from repro.harness.experiments import Harness

        def explode(self):
            raise RuntimeError("injected fig6 failure")

        monkeypatch.setattr(Harness, "fig6", explode)
        rc = runner_cli.main(["fig6", "table1", "--quick", "--no-cache"])
        assert rc == 1
        captured = capsys.readouterr()
        assert "Table I" in captured.out, "later experiment did not run"
        assert "fig6 FAILED" in captured.err
        assert "1 experiment(s) failed: fig6" in captured.err

    def test_cell_failure_reaches_cli_as_harness_error(self, monkeypatch,
                                                       capsys):
        import repro.exec.engine as engine
        monkeypatch.setattr(engine, "run_cell", _boom_cell_worker)
        rc = runner_cli.main(["fig6", "--quick", "--no-cache"])
        assert rc == 1
        captured = capsys.readouterr()
        assert "HarnessError" in captured.err
        assert "BrokenProcessPool" not in captured.err

    def test_all_experiments_ok_exits_zero(self, capsys):
        rc = runner_cli.main(["table1", "table4", "--quick", "--no-cache"])
        assert rc == 0
