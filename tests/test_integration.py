"""End-to-end integration tests: every protocol x several workloads, with
SC verification where applicable and cross-protocol invariants."""

import pytest

from repro.common.types import MemOpKind
from repro.config import GPUConfig
from repro.consistency.checker import SCChecker
from repro.sim.gpusim import run_simulation
from repro.workloads import get_workload
from tests.conftest import ALL_PROTOCOLS, SC_PROTOCOLS


@pytest.fixture(scope="module")
def cfg():
    return GPUConfig.small()


def run(cfg, protocol, wlname, intensity=0.2, seed=3, **kw):
    wl = get_workload(wlname, intensity=intensity, seed=seed)
    return run_simulation(cfg, protocol, wl.generate(cfg), wlname, **kw)


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
@pytest.mark.parametrize("wlname", ["dlb", "hsp"])
def test_all_protocols_complete(cfg, protocol, wlname):
    res = run(cfg, protocol, wlname)
    assert res.cycles > 0
    assert res.mem_ops > 0
    assert res.total_flits > 0


@pytest.mark.parametrize("protocol", SC_PROTOCOLS)
@pytest.mark.parametrize("wlname", ["vpr", "stn", "bfs", "lud"])
def test_sc_protocols_produce_sc_executions(cfg, protocol, wlname):
    res = run(cfg, protocol, wlname, record_ops=True)
    SCChecker().check_or_raise(res.op_logs)


@pytest.mark.parametrize("wlname", ["dlb", "bh"])
def test_same_workload_same_op_count_across_protocols(cfg, wlname):
    counts = {p: run(cfg, p, wlname).mem_ops for p in ALL_PROTOCOLS}
    assert len(set(counts.values())) == 1, counts


def test_rcc_store_latency_beats_tcs_and_mesi_on_sharing(cfg):
    lat = {p: run(cfg, p, "vpr", intensity=0.3).avg_store_latency
           for p in ("RCC", "TCS", "MESI")}
    assert lat["RCC"] < lat["TCS"]
    assert lat["RCC"] < lat["MESI"]


def test_intra_workloads_see_no_renew_need(cfg):
    """Intra-workgroup benchmarks have near-zero coherence expirations
    (paper Fig. 6: negligible for intra)."""
    res = run(cfg, "RCC", "kmn", intensity=0.3)
    assert res.l1_expired_fraction < 0.05


def test_result_summary_dict(cfg):
    res = run(cfg, "RCC", "dlb")
    d = res.as_dict()
    assert d["protocol"] == "RCC"
    assert d["workload"] == "dlb"
    assert d["cycles"] == res.cycles
    assert 0 <= d["sc_stall_fraction"] <= 1


def test_stats_internally_consistent(cfg):
    res = run(cfg, "RCC", "stn", intensity=0.3)
    assert res.l1_load_hits + res.l1_load_expired <= res.l1_loads
    assert res.l2_renew_grants <= res.l2_gets_expired or \
        res.l2_gets_expired == 0
    assert res.sc_stall_cycles >= res.sc_stalled_ops  # each stall >= 1 cycle
    total_blocker = sum(res.sc_stall_by_blocker.values())
    assert total_blocker == res.sc_stall_cycles


def test_deadlock_detection():
    """A config whose traces cannot finish raises rather than hanging:
    engineered by exhausting pinned L1 sets (all ways pinned forever is
    impossible in normal operation, so instead check the deadlock guard
    via max_cycles on a long workload)."""
    from repro.errors import DeadlockError
    cfg = GPUConfig.small().replace(max_cycles=200)
    with pytest.raises(DeadlockError):
        run(cfg, "RCC", "vpr", intensity=0.5)


def test_mesi_needs_more_virtual_channels():
    cfg = GPUConfig.small()
    mesi = run(cfg, "MESI", "stn", intensity=0.2)
    rcc = run(cfg, "RCC", "stn", intensity=0.2)
    assert mesi.virtual_channels == 5
    assert rcc.virtual_channels == 2


def test_renew_reduces_traffic_on_inter_workload():
    cfg = GPUConfig.small()
    wl = get_workload("stn", intensity=0.3)
    on = run_simulation(cfg, "RCC", wl.generate(cfg), "stn")
    cfg_off = GPUConfig.small()
    cfg_off.ts.renew_enabled = False
    wl = get_workload("stn", intensity=0.3)
    off = run_simulation(cfg_off, "RCC", wl.generate(cfg_off), "stn")
    assert on.total_flits <= off.total_flits
    assert on.l2_renew_grants > 0
    assert off.l2_renew_grants == 0
