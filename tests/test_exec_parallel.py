"""Serial-vs-parallel equivalence battery for the sweep executor.

The whole point of ``repro.exec`` is that ``--jobs N`` is a pure
wall-clock optimization: every experiment must produce row-for-row
identical tables, claims, and notes whether its cells ran serially
in-process or fanned out over worker processes — and two parallel runs
with the same seed must be identical to each other. These tests pin that
contract for every experiment id, for the differential fuzz campaign,
and for the CLI's ``--report`` output at the byte level.
"""

from __future__ import annotations

import pytest

from repro.config import GPUConfig
from repro.exec import SweepExecutor, derive_seed, sweep_cells
from repro.fuzz import DifferentialRunner, run_campaign
from repro.harness.experiments import ALL_EXPERIMENTS, Harness
from repro.harness import runner as runner_cli

INTENSITY = 0.1
SEED = 99
FUZZ_PROGRAMS = 6

#: Experiments whose cells are simulations; ``fuzz`` is exercised
#: separately (its unit of work is a program, not a sweep cell).
SIM_EXPERIMENTS = [n for n in ALL_EXPERIMENTS if n != "fuzz"]


def make_harness(jobs: int) -> Harness:
    return Harness(cfg=GPUConfig.small(), intensity=INTENSITY, seed=SEED,
                   executor=SweepExecutor(jobs=jobs))


def run_experiment(harness: Harness, name: str):
    if name == "fuzz":
        return harness.fuzz(n_programs=FUZZ_PROGRAMS)
    return getattr(harness, ALL_EXPERIMENTS[name])()


def table_of(exp) -> dict:
    """Everything an ExperimentResult reports, as comparable data."""
    return {
        "name": exp.name,
        "title": exp.title,
        "columns": exp.columns,
        "rows": exp.rows,
        "claims": exp.claims,
        "notes": exp.notes,
    }


@pytest.fixture(scope="module")
def serial_tables():
    harness = make_harness(jobs=1)
    return {name: table_of(run_experiment(harness, name))
            for name in ALL_EXPERIMENTS}


@pytest.fixture(scope="module")
def parallel_tables():
    harness = make_harness(jobs=4)
    return {name: table_of(run_experiment(harness, name))
            for name in ALL_EXPERIMENTS}


@pytest.mark.parametrize("name", list(ALL_EXPERIMENTS))
def test_jobs4_matches_serial_row_for_row(name, serial_tables,
                                          parallel_tables):
    """--jobs 4 reproduces the serial tables exactly: same rows (cells
    and float values), same paper-vs-measured claims, same notes."""
    assert parallel_tables[name] == serial_tables[name]


def test_two_parallel_runs_identical(serial_tables):
    """Two parallel runs with the same seed agree with each other (and
    with serial) — scheduling order must never leak into results."""
    again = make_harness(jobs=4)
    for name in ("fig7", "fig9"):
        assert table_of(run_experiment(again, name)) == serial_tables[name]


def test_executor_payloads_identical_across_modes():
    """Below the experiment layer: the raw SimResult payloads coming back
    from worker processes are byte-equivalent to in-process ones."""
    cells = sweep_cells(GPUConfig.small(), ["RCC", "MESI"], ["dlb", "bfs"],
                        INTENSITY, SEED)
    serial = SweepExecutor(jobs=1).run_cells(cells)
    parallel = SweepExecutor(jobs=4).run_cells(cells)
    assert ([r.to_payload() for r in serial]
            == [r.to_payload() for r in parallel])


def test_fuzz_campaign_parallel_equivalent():
    """The differential fuzz campaign tallies identically when programs
    are checked in worker processes."""
    def campaign(executor):
        runner = DifferentialRunner(cfg=GPUConfig.small(),
                                    protocols=["RCC", "TCW"])
        return run_campaign(runner, seed=5, n_programs=FUZZ_PROGRAMS,
                            executor=executor)

    serial = campaign(None)
    parallel = campaign(SweepExecutor(jobs=2))
    assert table_of(serial.as_experiment()) \
        == table_of(parallel.as_experiment())
    assert serial.programs_failed == parallel.programs_failed


def test_report_byte_identical_and_cache_warm(tmp_path):
    """Acceptance: the CLI's --report output is byte-identical between
    serial, parallel, and cache-warm parallel invocations."""
    argv = ["fig6", "table1", "--quick", "--seed", "7"]
    serial_md = tmp_path / "serial.md"
    par_md = tmp_path / "par.md"
    warm_md = tmp_path / "warm.md"
    cache_dir = str(tmp_path / "cache")

    assert runner_cli.main(argv + ["--no-cache",
                                   "--report", str(serial_md)]) == 0
    assert runner_cli.main(argv + ["--jobs", "4", "--cache-dir", cache_dir,
                                   "--report", str(par_md)]) == 0
    assert runner_cli.main(argv + ["--jobs", "4", "--cache-dir", cache_dir,
                                   "--report", str(warm_md)]) == 0
    assert serial_md.read_bytes() == par_md.read_bytes()
    assert serial_md.read_bytes() == warm_md.read_bytes()


def test_derive_seed_stable_and_distinct():
    """Per-cell seed derivation is deterministic across processes (no
    hash salting) and separates cells."""
    assert derive_seed(1234, "RCC", "bfs") == derive_seed(1234, "RCC", "bfs")
    seeds = {derive_seed(1234, p, w)
             for p in ("RCC", "MESI") for w in ("bfs", "dlb")}
    assert len(seeds) == 4
    assert all(0 <= s < 2 ** 63 for s in seeds)
