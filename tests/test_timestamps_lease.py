"""Unit tests for logical clocks and the RCC lease predictor."""

import pytest

from repro.config import TimestampConfig
from repro.core.lease import LeasePredictor
from repro.core.timestamps import LogicalClock, timestamp_guard_band
from repro.errors import SimulationError
from repro.mem.cache_array import CacheLine
from repro.common.types import L2State


class TestLogicalClock:
    def test_monotone_advance(self):
        clk = LogicalClock(bits=16)
        assert clk.advance_to(10) == 10
        assert clk.advance_to(5) == 10
        assert clk.advance_to(11) == 11

    def test_tick_saturates(self):
        clk = LogicalClock(bits=8)
        clk.advance_to(254)
        clk.tick(10)
        assert clk.value == 255

    def test_overflow_detected(self):
        clk = LogicalClock(bits=8)
        with pytest.raises(SimulationError):
            clk.advance_to(256)

    def test_reset_bumps_epoch(self):
        clk = LogicalClock(bits=8)
        clk.advance_to(200)
        key_before = clk.global_key()
        clk.reset()
        assert clk.value == 0
        assert clk.epoch == 1
        assert clk.global_key() > key_before

    def test_guard_band_covers_one_transaction(self):
        assert timestamp_guard_band(2048) > 2 * 2048


class TestLeasePredictor:
    def make(self, enabled=True):
        cfg = TimestampConfig(predictor_enabled=enabled)
        return LeasePredictor(cfg), CacheLine(0, L2State.V), cfg

    def test_initial_prediction_is_max(self):
        pred, line, cfg = self.make()
        assert pred.lease_for(line) == cfg.lease_max

    def test_write_drops_to_min(self):
        pred, line, cfg = self.make()
        pred.on_write(line)
        assert pred.lease_for(line) == cfg.lease_min

    def test_renew_doubles(self):
        pred, line, cfg = self.make()
        pred.on_write(line)
        pred.on_renew(line)
        assert pred.lease_for(line) == 2 * cfg.lease_min
        pred.on_renew(line)
        assert pred.lease_for(line) == 4 * cfg.lease_min

    def test_renew_capped_at_max(self):
        pred, line, cfg = self.make()
        for _ in range(40):
            pred.on_renew(line)
        assert pred.lease_for(line) == cfg.lease_max

    def test_disabled_predictor_uses_default(self):
        pred, line, cfg = self.make(enabled=False)
        pred.on_write(line)
        pred.on_renew(line)
        assert pred.lease_for(line) == cfg.lease_default

    def test_prediction_lost_with_line(self):
        """The prediction lives in line.meta: a fresh line (e.g. after L2
        eviction + refetch) restarts at the maximum, as the paper intends
        for streaming blocks."""
        pred, line, cfg = self.make()
        pred.on_write(line)
        fresh = CacheLine(line.addr, L2State.V)
        assert pred.lease_for(fresh) == cfg.lease_max
