"""Litmus tests across protocols and physical interleavings.

SC protocols must never exhibit the forbidden outcomes even without
fences; WO protocols must not exhibit them when fully fenced (except IRIW
under TC-weak, which gives up write atomicity — the paper's reason TCW
cannot implement SC).
"""

import pytest

from repro.consistency import litmus as L
from tests.conftest import SC_PROTOCOLS, WO_PROTOCOLS

STAGGERS = [0, 13, 57, 101, 199]

CASES = [
    ("mp", L.mp_program, L.mp_forbidden),
    ("sb", L.sb_program, L.sb_forbidden),
    ("lb", L.lb_program, L.lb_forbidden),
    ("iriw", L.iriw_program, L.iriw_forbidden),
    ("corr", L.corr_program, L.corr_forbidden),
]


@pytest.mark.parametrize("protocol", SC_PROTOCOLS)
@pytest.mark.parametrize("name,program,forbidden", CASES)
def test_sc_protocols_forbid_without_fences(small_cfg, protocol, name,
                                            program, forbidden):
    for stagger in STAGGERS:
        res = L.run_litmus(name, small_cfg, protocol, program(),
                           stagger=stagger)
        assert not forbidden(res), (
            f"{protocol} exhibited forbidden {name} outcome "
            f"(stagger={stagger})")


@pytest.mark.parametrize("protocol", WO_PROTOCOLS)
@pytest.mark.parametrize("name,program,forbidden", [
    c for c in CASES if c[0] != "iriw"
])
def test_wo_protocols_forbid_when_fenced(small_cfg, protocol, name,
                                         program, forbidden):
    for stagger in STAGGERS:
        res = L.run_litmus(name, small_cfg, protocol, program(),
                           use_fences=True, stagger=stagger)
        assert not forbidden(res), (
            f"{protocol} fenced {name} exhibited forbidden outcome "
            f"(stagger={stagger})")


@pytest.mark.parametrize("name,program,forbidden", [
    c for c in CASES if c[0] in ("mp", "corr")
])
def test_rcc_wo_fenced_strong_patterns(small_cfg, name, program, forbidden):
    """RCC-WO keeps write atomicity (unlike TCW): fenced MP/CoRR hold."""
    for stagger in STAGGERS:
        res = L.run_litmus(name, small_cfg, "RCC-WO", program(),
                           use_fences=True, stagger=stagger)
        assert not forbidden(res)


def test_litmus_result_indexing(small_cfg):
    res = L.run_litmus("mp", small_cfg, "RCC", L.mp_program())
    # C0 wrote twice, C1 read twice.
    assert res.wrote(0, 0) != res.wrote(0, 1)
    assert res.read(1, 0) is not None
    assert res.read(1, 1) is not None
