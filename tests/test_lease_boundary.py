"""Lease-boundary semantics: a lease is valid through ``exp`` *inclusive*
(``ver <= now <= exp``), expiry begins at ``exp + 1``. These tests pin the
convention at every site that compares a clock against a lease."""

from types import SimpleNamespace

import pytest

from repro.common.messages import Message
from repro.common.types import L1State, L2State, MemOpKind, MsgKind
from repro.core.lease import lease_expired, lease_valid, post_lease
from repro.gpu.warp import MemOpRecord
from repro.sim.gpusim import GPUSimulator
from tests.conftest import empty_traces


class TestHelpers:
    def test_valid_through_exp_inclusive(self):
        assert lease_valid(0, 0)
        assert lease_valid(5, 5)
        assert not lease_valid(6, 5)
        assert lease_valid(4, 5)

    def test_expired_is_strictly_past(self):
        assert not lease_expired(5, 5)
        assert lease_expired(6, 5)

    def test_post_lease_is_first_free_instant(self):
        assert post_lease(5) == 6
        assert not lease_valid(post_lease(5), 5)
        assert lease_valid(post_lease(5) - 1, 5)


def _stub_core():
    return SimpleNamespace(mem_op_done=lambda *a: None, finished=True)


def _load_record(addr=0):
    return MemOpRecord(MemOpKind.LOAD, addr=addr, core_id=0, warp_id=0,
                       prog_index=0)


class TestRCCBoundary:
    def _l1(self, cfg):
        sim = GPUSimulator(cfg, "RCC", empty_traces(cfg))
        l1 = sim.proto.l1s[0]
        l1.core = _stub_core()
        line = l1.cache.insert(0, L1State.V, l1._on_evict)
        line.exp = 10
        line.value = "tok"
        return l1

    def test_hit_at_now_equals_exp(self, small_cfg):
        l1 = self._l1(small_cfg)
        l1.clock.advance_to(10)
        rec = _load_record()
        l1.access(rec, warp=None)
        assert l1.stats.load_hits == 1
        assert l1.stats.load_expired == 0
        assert rec.read_value == "tok"

    def test_expired_at_exp_plus_one(self, small_cfg):
        l1 = self._l1(small_cfg)
        l1.clock.advance_to(11)
        l1.access(_load_record(), warp=None)
        assert l1.stats.load_hits == 0
        assert l1.stats.load_misses == 1
        assert l1.stats.load_expired == 1


class TestTCBoundary:
    def test_hit_at_now_equals_exp(self, small_cfg):
        sim = GPUSimulator(small_cfg, "TCS", empty_traces(small_cfg))
        l1 = sim.proto.l1s[0]
        l1.core = _stub_core()
        line = l1.cache.insert(0, L1State.V, l1._on_evict)
        line.exp = 0  # engine.now == 0 == exp: still valid
        line.value = "tok"
        rec = _load_record()
        l1.access(rec, warp=None)
        assert l1.stats.load_hits == 1
        assert rec.read_value == "tok"

    def test_expired_one_cycle_later(self, small_cfg):
        sim = GPUSimulator(small_cfg, "TCS", empty_traces(small_cfg))
        l1 = sim.proto.l1s[0]
        l1.core = _stub_core()
        line = l1.cache.insert(0, L1State.V, l1._on_evict)
        line.exp = 4
        line.value = "tok"
        sim.engine.schedule(5, lambda: l1.access(_load_record(), None))
        sim.engine.run(until=5)
        assert l1.stats.load_hits == 0
        assert l1.stats.load_expired == 1


class TestTCSStoreSerialization:
    """A buffered TCS store serializes at ``post_lease(exp)`` at the
    earliest, and read leases granted meanwhile never reach the earliest
    pending store's serialization point (the multi-buffered-store fix)."""

    def _l2_with_line(self, cfg):
        sim = GPUSimulator(cfg, "TCS", empty_traces(cfg))
        l2 = sim.proto.l2s[0]
        line = l2.cache.insert(0, L2State.V, l2._on_evict)
        line.exp = 20
        line.value = "old"
        return sim, l2, line

    @staticmethod
    def _write(value):
        return Message(kind=MsgKind.WRITE, addr=0, src=("core", 0),
                       dst=("l2", 0), now=0, value=value,
                       meta={"record": None, "warp": None})

    def test_ack_at_post_lease(self, small_cfg):
        sim, l2, line = self._l2_with_line(small_cfg)
        l2.on_message(self._write("t1"))
        # engine.now == 0, lease runs through 20 inclusive: the ack waits
        # for post_lease(20) == 21, never 20.
        assert line.meta["pending_acks"] == [21]

    def test_second_store_serializes_after_first(self, small_cfg):
        sim, l2, line = self._l2_with_line(small_cfg)
        l2.on_message(self._write("t1"))
        l2.on_message(self._write("t2"))
        assert line.meta["pending_acks"] == [21, 22]

    def test_grant_capped_below_earliest_pending_store(self, small_cfg):
        sim, l2, line = self._l2_with_line(small_cfg)
        l2.on_message(self._write("t1"))
        l2.on_message(self._write("t2"))
        # Regression: the old code capped at the *latest* pending ack
        # (store_busy_until - 1 == 21), so this grant could cover cycle 21
        # — one cycle after the first store had already serialized, letting
        # a stale L1 hit read the pre-store value.
        gets = Message(kind=MsgKind.GETS, addr=0, src=("core", 1),
                       dst=("l2", 0), now=0, meta={})
        l2.on_message(gets)
        assert line.exp <= min(line.meta["pending_acks"]) - 1 == 20
