#!/usr/bin/env python3
"""Differential litmus fuzzing, end to end.

Three acts:

1. a fuzz campaign — randomized multi-warp programs run under every
   registered protocol, with SC protocols cross-checked against both the
   witness checker and an independent SC interleaving oracle;
2. a demonstration that the machinery actually catches bugs: a toy
   executor with TSO-style store buffering (which claims SC, and lies) is
   flagged and its failing program shrunk to a minimal reproducer;
3. replaying the checked-in regression corpus.

    python examples/fuzz_campaign.py

The same campaign is scriptable as `repro-fuzz --seed 0 --programs 200`
(or `make fuzz`), and exits non-zero on any violation.
"""

import os

from repro import GPUConfig
from repro.fuzz import (
    DifferentialRunner, FuzzKnobs, broken_store_buffer_executor,
    load_corpus, reference_sc_executor, run_campaign,
)


def campaign() -> None:
    print("=== 1. fuzz campaign: every protocol, two validators ===\n")
    runner = DifferentialRunner(cfg=GPUConfig.small())
    knobs = FuzzKnobs(n_cores=4, ops_per_warp=6, n_addrs=2,
                      p_store=0.4, p_atomic=0.1, fence_density=0.2)
    result = run_campaign(runner, seed=0, n_programs=100, knobs=knobs)
    print(result.render())
    assert result.passed


def catch_a_bug() -> None:
    print("\n=== 2. catching an injected bug (TSO store buffering) ===\n")
    runner = DifferentialRunner(executors=[reference_sc_executor(),
                                           broken_store_buffer_executor()])
    knobs = FuzzKnobs(n_cores=2, ops_per_warp=8, n_addrs=2, p_store=0.5)
    result = run_campaign(runner, seed=0, n_programs=40, knobs=knobs,
                          max_shrinks=1)
    assert not result.passed
    report = result.failures[0]
    print(f"{result.programs_failed} failing programs; first reproducer "
          f"shrunk {report.program.n_ops} -> {report.shrunk.n_ops} ops:\n")
    print(report.shrunk.pretty())
    for reason in report.shrunk_reasons:
        print(f"  {reason}")


def replay_corpus() -> None:
    print("\n=== 3. replaying the regression corpus ===\n")
    corpus_dir = os.path.join(os.path.dirname(__file__), os.pardir,
                              "tests", "corpus")
    runner = DifferentialRunner(cfg=GPUConfig.small())
    for name, program in load_corpus(corpus_dir):
        verdict = runner.check_program(program)
        print(f"  {'PASS' if verdict.passed else 'FAIL'} {name} "
              f"({program.n_ops} ops, {len(program.warps)} warps)")
        assert verdict.passed


if __name__ == "__main__":
    campaign()
    catch_a_bug()
    replay_corpus()
