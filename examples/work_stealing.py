#!/usr/bin/env python3
"""Why RCC beats TC-weak on work stealing (the paper's DLB argument).

In a work-stealing runtime, every queue operation must be fenced because a
steal *could* happen at any time — but actual steals are rare. TC-weak
stalls each fence until all prior stores are globally visible in physical
time, paying for sharing that almost never happens. RCC lets cores run in
their own logical epochs until real sharing occurs, and its stores never
stall even when it does.

This example sweeps the steal probability and shows the crossover:

    python examples/work_stealing.py
"""

from repro import GPUConfig, run_simulation
from repro.harness.tables import render_table
from repro.workloads.interwg.dlb import DynamicLoadBalance


def main() -> None:
    cfg = GPUConfig.bench()
    rows = []
    for steal_prob in (0.0, 0.02, 0.05, 0.15, 0.40):
        cycles = {}
        fence_wait = {}
        for protocol in ("RCC", "TCW", "RCC-WO"):
            wl = DynamicLoadBalance(intensity=0.2)
            wl.steal_probability = steal_prob
            r = run_simulation(cfg, protocol, wl.generate(cfg), "dlb")
            cycles[protocol] = r.cycles
            fence_wait[protocol] = r.fence_wait_cycles
        rows.append([
            f"{steal_prob:.2f}",
            f"{cycles['RCC']:,}",
            f"{cycles['TCW']:,}",
            f"{cycles['RCC-WO']:,}",
            f"{cycles['TCW'] / cycles['RCC']:.2f}x",
            f"{fence_wait['TCW']:,}",
            f"{fence_wait['RCC-WO']:,}",
        ])

    print(render_table(
        ["steal prob", "RCC-SC cyc", "TCW cyc", "RCC-WO cyc",
         "RCC-SC vs TCW", "TCW fence wait", "RCC-WO fence wait"],
        rows,
        title="work stealing: fenced queues, varying actual-steal rate",
    ))
    print("\nTCW pays physical fence waits (GWCT) regardless of whether")
    print("anyone actually stole; RCC-WO's fences only join two logical")
    print("clocks, and RCC-SC needs no fences at all.")


if __name__ == "__main__":
    main()
