#!/usr/bin/env python3
"""Demonstrate sequential consistency — and its absence — with litmus tests.

Runs the classical message-passing (MP) and IRIW litmus patterns through
the full simulator under every protocol, then verifies a random program's
execution with the SC witness checker. TC-weak is the interesting case: it
gives up write atomicity, so even fully fenced code cannot recover SC —
the exact reason the paper says TCW cannot implement SC (Table I).

    python examples/sc_verification.py
"""

import random

from repro import GPUConfig, run_simulation
from repro.consistency import litmus as L
from repro.consistency.checker import SCChecker
from repro.gpu.trace import WarpTrace, compute_op, load_op, store_op


def litmus_sweep() -> None:
    cfg = GPUConfig.small()
    print("MP litmus (C0: data=1; flag=1 | C1: r1=flag; r2=data)")
    print("forbidden outcome: r1=1, r2=0 (saw the flag but stale data)\n")
    for protocol in ("MESI", "TCS", "RCC", "TCW", "RCC-WO"):
        seen_forbidden = False
        for stagger in range(0, 300, 23):
            res = L.run_litmus("mp", cfg, protocol, L.mp_program(),
                               use_fences=(protocol in ("TCW", "RCC-WO")),
                               stagger=stagger)
            seen_forbidden |= L.mp_forbidden(res)
        fenced = " (fenced)" if protocol in ("TCW", "RCC-WO") else ""
        verdict = "FORBIDDEN OUTCOME SEEN" if seen_forbidden else "SC-clean"
        print(f"  {protocol + fenced:16s}: {verdict}")


def checker_demo() -> None:
    print("\nSC witness checking a random 3-core program under RCC:")
    cfg = GPUConfig.small().replace(n_cores=3, warps_per_core=2)
    rng = random.Random(42)
    traces = []
    for c in range(cfg.n_cores):
        core = []
        for w in range(cfg.warps_per_core):
            t = WarpTrace(c, w)
            for _ in range(25):
                addr = rng.randrange(8) * 128
                roll = rng.random()
                if roll < 0.5:
                    t.append(load_op(addr))
                elif roll < 0.85:
                    t.append(store_op(addr))
                else:
                    t.append(compute_op(rng.randrange(1, 30)))
            core.append(t)
        traces.append(core)
    res = run_simulation(cfg, "RCC", traces, "random", record_ops=True)
    violations = SCChecker().check(res.op_logs)
    print(f"  {res.mem_ops} memory ops executed, "
          f"{len(violations)} SC violations found")
    assert not violations
    print("  every read observed the latest same-address write in the")
    print("  logical-time witness order -> the execution is SC.")


if __name__ == "__main__":
    litmus_sweep()
    checker_demo()
