#!/usr/bin/env python3
"""Protocol shootout: compare all six protocols on any benchmark.

Useful when deciding what coherence/consistency point a GPU memory system
should implement for a given sharing pattern:

    python examples/protocol_shootout.py stn
    python examples/protocol_shootout.py kmn --intensity 0.4
    python examples/protocol_shootout.py --list
"""

import argparse

from repro import GPUConfig, PROTOCOLS, run_simulation
from repro.harness.tables import render_table
from repro.workloads import WORKLOADS, get_workload


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("workload", nargs="?", default="stn",
                    help="benchmark short name (see --list)")
    ap.add_argument("--intensity", type=float, default=0.2)
    ap.add_argument("--list", action="store_true",
                    help="list available benchmarks and exit")
    args = ap.parse_args()

    if args.list:
        for name, cls in WORKLOADS.items():
            print(f"{name:5s} [{cls.category}] {cls.description}")
        return

    cfg = GPUConfig.bench()
    rows = []
    baseline = None
    for protocol, consistency in PROTOCOLS.items():
        wl = get_workload(args.workload, intensity=args.intensity)
        r = run_simulation(cfg, protocol, wl.generate(cfg), args.workload)
        if baseline is None:
            baseline = r.cycles
        rows.append([
            protocol,
            consistency.upper(),
            f"{r.cycles:,}",
            f"{baseline / r.cycles:.2f}x",
            f"{r.avg_load_latency:.0f}",
            f"{r.avg_store_latency:.0f}",
            f"{r.total_flits:,}",
            f"{r.energy.total:,.0f}",
        ])

    print(render_table(
        ["protocol", "model", "cycles", "speedup", "ld lat", "st lat",
         "flits", "energy"],
        rows,
        title=f"workload '{args.workload}' "
              f"({WORKLOADS[args.workload].category}-workgroup sharing)",
    ))
    print("\nspeedup is relative to the first row (MESI).")


if __name__ == "__main__":
    main()
