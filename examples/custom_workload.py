#!/usr/bin/env python3
"""Author a custom workload against the public API.

Models a producer-consumer pipeline: stage-0 SMs produce tiles into a
shared buffer and bump a ticket with an atomic; stage-1 SMs consume the
tiles. This is the kind of inter-workgroup pattern GPU coherence exists
for — run it under RCC and the baselines to see the cost of each design.

    python examples/custom_workload.py
"""

import random
from typing import List

from repro import GPUConfig, run_simulation
from repro.harness.tables import render_table
from repro.workloads.base import TraceBuilder, Workload

BUFFER_BASE = 1 << 16
TILES = 64
TICKET_BASE = 1 << 19
PRIVATE_BASE = 1 << 20


class PipelineWorkload(Workload):
    """Half the SMs produce tiles, the other half consume them."""

    name = "pipeline"
    category = "inter"
    description = "producer-consumer tile pipeline with atomic tickets"
    base_iterations = 24

    def build_warp(self, b: TraceBuilder, cfg: GPUConfig,
                   rng: random.Random) -> None:
        core = b.trace.core_id
        producer = core < cfg.n_cores // 2
        my_scratch = PRIVATE_BASE + (core * cfg.warps_per_core
                                     + b.trace.warp_id) * 4
        for i in range(self.iterations()):
            tile = BUFFER_BASE + rng.randrange(TILES)
            if producer:
                b.load(my_scratch + i % 4)       # gather private input
                b.compute(20)
                b.store(tile)                    # publish the tile
                b.fence()
                b.atomic(TICKET_BASE + core % 4)  # bump the ticket
            else:
                b.atomic(TICKET_BASE + (core - cfg.n_cores // 2) % 4)
                b.fence()
                b.load(tile)                     # consume the tile
                b.compute(25)
                b.store(my_scratch + i % 4)      # private result
            b.compute(10)


def main() -> None:
    cfg = GPUConfig.bench()
    rows = []
    base = None
    for protocol in ("MESI", "TCS", "RCC", "TCW", "RCC-WO"):
        wl = PipelineWorkload(intensity=0.5)
        r = run_simulation(cfg, protocol, wl.generate(cfg), wl.name)
        base = base or r.cycles
        rows.append([protocol, f"{r.cycles:,}", f"{base / r.cycles:.2f}x",
                     f"{r.avg_store_latency:.0f}",
                     f"{100 * r.l1_expired_fraction:.1f}%"])
    print(render_table(
        ["protocol", "cycles", "speedup", "store lat", "expired loads"],
        rows, title="custom producer-consumer pipeline"))


if __name__ == "__main__":
    main()
