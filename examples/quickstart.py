#!/usr/bin/env python3
"""Quickstart: simulate one GPU workload under two coherence protocols.

Runs the paper's work-stealing benchmark (dlb) on a scaled-down Fermi-class
GPU under the MESI baseline and under RCC, and prints the numbers the paper
cares about: runtime, store latency, SC stall behaviour, and NoC traffic.

    python examples/quickstart.py
"""

from repro import GPUConfig, run_simulation
from repro.workloads import get_workload


def main() -> None:
    cfg = GPUConfig.bench()          # Table III latencies, 8 SMs
    print(f"machine: {cfg.n_cores} SMs x {cfg.warps_per_core} warps, "
          f"L2 round trip >= {cfg.l2_min_round_trip} cycles\n")

    results = {}
    for protocol in ("MESI", "RCC"):
        workload = get_workload("dlb", intensity=0.2)
        traces = workload.generate(cfg)
        results[protocol] = run_simulation(cfg, protocol, traces, "dlb")

    for protocol, r in results.items():
        print(f"--- {protocol} (sequentially consistent) ---")
        print(f"  runtime            : {r.cycles:,} cycles")
        print(f"  avg load latency   : {r.avg_load_latency:8.1f} cycles")
        print(f"  avg store latency  : {r.avg_store_latency:8.1f} cycles")
        print(f"  SC-stalled mem ops : {100 * r.sc_stall_fraction:5.1f} %")
        print(f"  stall resolve time : {r.sc_stall_resolve_latency:8.1f} cycles")
        print(f"  NoC flits          : {r.total_flits:,}")
        print()

    speedup = results["MESI"].cycles / results["RCC"].cycles
    print(f"RCC speedup over MESI on this run: {speedup:.2f}x")
    print("(both runs enforce sequential consistency; RCC's stores acquire")
    print(" write permission instantly in logical time instead of waiting")
    print(" for invalidations)")


if __name__ == "__main__":
    main()
