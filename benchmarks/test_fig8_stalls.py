"""Bench: regenerate Fig. 8 (SC stall cycles and stall-resolve latency of
TCS and RCC, normalized to the MESI baseline)."""

from statistics import geometric_mean

from benchmarks.conftest import run_once


def test_fig8_sc_stalls(benchmark, harness):
    exp = run_once(benchmark, harness.fig8)
    print()
    print(exp.render())

    g_stall_tcs = geometric_mean([r[2] for r in exp.rows])
    g_stall_rcc = geometric_mean([r[3] for r in exp.rows])
    g_res_rcc = geometric_mean([r[5] for r in exp.rows])

    # RCC reduces SC stall cycles vs MESI and vs TCS (paper: -52%, -25%).
    assert g_stall_rcc < 1.0
    assert g_stall_rcc < g_stall_tcs
    # RCC resolves the remaining stalls faster than MESI (paper: -35%).
    assert g_res_rcc < 1.0
