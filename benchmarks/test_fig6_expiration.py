"""Bench: regenerate Fig. 6 (RCC lease expirations and renewability)."""

from benchmarks.conftest import run_once


def test_fig6_expiration(benchmark, harness):
    exp = run_once(benchmark, harness.fig6)
    print()
    print(exp.render())

    inter = [r for r in exp.rows if r[1] == "inter"]

    # Left panel: inter-workgroup sharing produces real expiration rates.
    assert any(r[2] > 0.02 for r in inter)
    # Right panel: a substantial fraction of expired refetches are
    # premature (block unchanged in L2) and can be renewed.
    renewables = [r[3] for r in inter if r[2] > 0.02]
    assert sum(renewables) / len(renewables) > 0.3
    # All values are fractions.
    assert all(0 <= r[2] <= 1 and 0 <= r[3] <= 1 for r in exp.rows)
