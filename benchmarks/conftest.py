"""Shared fixtures for the figure-regeneration benchmarks.

Each benchmark file regenerates one of the paper's tables or figures with
pytest-benchmark timing the full experiment, then asserts the qualitative
*shape* the paper reports (who wins, in which direction). One shared
harness instance caches simulation runs within a session so each figure's
benchmark measures its own incremental work.

The harness routes all simulations through the sweep executor
(:mod:`repro.exec`): set ``RCC_JOBS=N`` to fan independent cells out over
N worker processes, and ``RCC_CACHE_DIR=path`` to replay unchanged cells
from the on-disk result cache — results are identical either way, only
the wall clock moves.

Intensity is kept low so the full suite finishes in minutes; pass
``--benchmark-only`` as usual. For paper-scale runs use the CLI
(``rcc-repro all --intensity 1.0 --jobs 4``).
"""

import os

import pytest

from repro.config import GPUConfig
from repro.exec import ResultCache, SweepExecutor
from repro.harness.experiments import Harness

BENCH_INTENSITY = 0.15


@pytest.fixture(scope="session")
def harness() -> Harness:
    cache_dir = os.environ.get("RCC_CACHE_DIR")
    executor = SweepExecutor(
        cache=ResultCache(cache_dir) if cache_dir else None)
    return Harness(cfg=GPUConfig.bench(), intensity=BENCH_INTENSITY,
                   executor=executor)


def run_once(benchmark, fn):
    """Time one full regeneration of an experiment (no warmup rounds —
    a single run is minutes-scale work, and results are cached anyway)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
