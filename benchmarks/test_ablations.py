"""Ablation benches for the design choices DESIGN.md calls out:

* fixed-lease sweep (paper §III-E: "the performance spread among fixed
  leases was negligible" because RCC operates in logical time);
* renew x predictor cross (both mechanisms compose);
* livelock-tick sensitivity (the periodic now bump is practically free);
* rollover-frequency stress (narrow timestamps still complete correctly).
"""

from statistics import geometric_mean

import pytest

from repro.config import GPUConfig, TimestampConfig
from repro.sim.gpusim import run_simulation
from repro.workloads import get_workload

CFG = GPUConfig.bench()
INTENSITY = 0.12
WORKLOADS = ["dlb", "stn", "bh"]


def run(protocol, wlname, ts=None, cfg=CFG):
    if ts is not None:
        cfg = cfg.replace(ts=ts)
    wl = get_workload(wlname, intensity=INTENSITY)
    return run_simulation(cfg, protocol, wl.generate(cfg), wlname)


def test_fixed_lease_sweep(benchmark):
    """Fixed logical leases of very different sizes perform similarly:
    logical clocks just run at different rates (paper §III-E)."""

    def sweep():
        out = {}
        for lease in (16, 64, 256, 1024):
            ts = TimestampConfig(lease_min=lease, lease_default=lease,
                                 lease_max=lease, predictor_enabled=False)
            out[lease] = geometric_mean(
                [run("RCC", w, ts=ts).cycles for w in WORKLOADS])
        return out

    cycles = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for lease, c in cycles.items():
        print(f"fixed lease {lease:5d}: gmean cycles {c:,.0f}")
    spread = max(cycles.values()) / min(cycles.values())
    print(f"spread: {spread:.2f}x")
    assert spread < 1.35  # "negligible" spread, with scaled-down slack


def test_renew_predictor_cross(benchmark):
    """2x2 cross of the renew mechanism and the lease predictor."""

    def cross():
        out = {}
        for renew in (False, True):
            for pred in (False, True):
                ts = TimestampConfig(renew_enabled=renew,
                                     predictor_enabled=pred)
                res = [run("RCC", w, ts=ts) for w in WORKLOADS]
                out[(renew, pred)] = (
                    geometric_mean([r.cycles for r in res]),
                    sum(r.total_flits for r in res),
                )
        return out

    out = benchmark.pedantic(cross, rounds=1, iterations=1)
    print()
    for (renew, pred), (cycles, flits) in out.items():
        print(f"renew={renew!s:5} predictor={pred!s:5}: "
              f"gmean cycles {cycles:,.0f}, flits {flits:,}")
    # Renew must reduce traffic with the predictor off or on.
    assert out[(True, True)][1] <= out[(False, True)][1]
    assert out[(True, False)][1] <= out[(False, False)][1]


def test_livelock_tick_sensitivity(benchmark):
    """The periodic logical-time bump barely perturbs performance."""

    def sweep():
        out = {}
        for period in (0, 1_000, 10_000):
            ts = TimestampConfig(livelock_tick_cycles=period)
            out[period] = geometric_mean(
                [run("RCC", w, ts=ts).cycles for w in WORKLOADS])
        return out

    cycles = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for period, c in cycles.items():
        print(f"livelock tick {period:6d}: gmean cycles {c:,.0f}")
    assert max(cycles.values()) / min(cycles.values()) < 1.10


def test_rollover_stress(benchmark):
    """Narrow timestamps force rollovers; runs stay correct and the cost
    stays bounded."""

    def stress():
        wide = run("RCC", "vpr")
        # 9-bit clocks: the guard band sits at ~300, and vpr's stores to
        # freshly leased grid blocks advance logical time by ~a lease each.
        ts = TimestampConfig(bits=9, lease_min=8, lease_default=32,
                             lease_max=32, predictor_enabled=False)
        narrow_cfg = CFG.replace(ts=ts)
        wl = get_workload("vpr", intensity=INTENSITY)
        narrow = run_simulation(narrow_cfg, "RCC", wl.generate(narrow_cfg),
                                "vpr")
        return wide, narrow

    wide, narrow = benchmark.pedantic(stress, rounds=1, iterations=1)
    print()
    print(f"32-bit: {wide.cycles:,} cycles, {wide.rollovers} rollovers")
    print(f"9-bit : {narrow.cycles:,} cycles, {narrow.rollovers} rollovers")
    assert narrow.rollovers >= 1
    assert narrow.mem_ops == wide.mem_ops
    assert narrow.cycles < wide.cycles * 3
