"""Bench: regenerate Fig. 7 (the RENEW mechanism's traffic savings and the
lease predictor's expiration savings, inter-workgroup workloads)."""

from statistics import geometric_mean

from benchmarks.conftest import run_once


def test_fig7_renew_and_predictor(benchmark, harness):
    exp = run_once(benchmark, harness.fig7)
    print()
    print(exp.render())

    # Left: +R (renew on) must not increase traffic; it should help on
    # workloads with real expiration rates.
    traffic_ratios = [r[3] for r in exp.rows]
    assert geometric_mean(traffic_ratios) <= 1.005
    assert min(traffic_ratios) < 1.0

    # Right: +P (predictor on) must not inflate expired reads. (Our
    # synthetic traces have a higher truly-shared fraction than the
    # originals, so the measured reduction is far smaller than the paper's
    # -31% — see EXPERIMENTS.md; at bench intensity it can sit at ~1.0.)
    expired_ratios = [r[6] for r in exp.rows]
    assert geometric_mean(expired_ratios) < 1.03
