"""Bench: regenerate Table V (protocol complexity) and check the RCC rows
against the implementation's actual state enums."""

from benchmarks.conftest import run_once
from repro.harness.complexity import PAPER_TABLE_V, implementation_states


def test_table5_states(benchmark, harness):
    exp = run_once(benchmark, harness.table5)
    print()
    print(exp.render())

    impl = implementation_states()["RCC"]
    paper = PAPER_TABLE_V["RCC"]
    assert impl["l1_states"] == paper["l1_states"] == 5
    assert impl["l1_stable"] == paper["l1_stable"] == 2
    assert impl["l2_states"] == paper["l2_states"] == 4
    assert impl["l2_stable"] == paper["l2_stable"] == 2
    # RCC has the fewest L2 states/transitions of all four protocols.
    assert all(paper["l2_transitions"] <= d["l2_transitions"]
               for d in PAPER_TABLE_V.values())
