"""Bench: regenerate Fig. 10 (RCC-WO and TCW speedups over RCC-SC)."""

from statistics import geometric_mean

from benchmarks.conftest import run_once


def test_fig10_weak_ordering_gap(benchmark, harness):
    exp = run_once(benchmark, harness.fig10)
    print()
    print(exp.render())

    inter = [r for r in exp.rows if r[1] == "inter"]
    g_rccwo = geometric_mean([r[2] for r in inter])
    g_tcw = geometric_mean([r[3] for r in inter])

    # Weak ordering buys something over RCC-SC on inter-wg sharing...
    assert g_rccwo >= 1.0
    # ...but the gap is modest (the paper's point: SC comes cheap). Allow
    # generous slack for the scaled-down machine.
    assert g_rccwo < 1.6
    # RCC-WO is at least competitive with TCW (paper: neck-and-neck).
    assert g_rccwo > g_tcw * 0.9

    # DLB: fences are frequent but stealing is rare — RCC-SC should beat
    # or match TCW there (the paper's RCC-over-TCW example).
    dlb = {r[0]: r for r in exp.rows}["dlb"]
    assert dlb[3] < 1.15
