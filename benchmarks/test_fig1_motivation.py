"""Bench: regenerate Fig. 1 (motivation: SC stalls, store latencies, and
the SC-ideal headroom under the MESI-WT baseline)."""

from benchmarks.conftest import run_once


def test_fig1_motivation(benchmark, harness):
    exp = run_once(benchmark, harness.fig1)
    print()
    print(exp.render())

    rows = {r[0]: r for r in exp.rows}
    inter = [r for r in exp.rows if r[1] == "inter"]
    intra = [r for r in exp.rows if r[1] == "intra"]

    # (a) SC stalls exist but most memory ops are covered by TLP for at
    # least some workloads; every value is a valid fraction.
    assert all(0 <= r[2] <= 1 for r in exp.rows)

    # (b) For store-heavy inter-workgroup workloads, stalls are blamed on
    # prior stores; dlb/stn are the paper's canonical examples.
    assert rows["dlb"][3] > 0.5
    assert rows["stn"][3] > 0.5

    # (c) Stores are slower than loads for most inter-wg workloads.
    assert sum(1 for r in inter if r[6] > 1.0) >= 4

    # (d) Idealizing coherence helps inter-wg workloads more than intra.
    from statistics import geometric_mean
    g_inter = geometric_mean([r[7] for r in inter])
    g_intra = geometric_mean([r[7] for r in intra])
    assert g_inter > g_intra
    assert 0.9 < g_intra < 1.15  # intra sees (almost) no benefit
