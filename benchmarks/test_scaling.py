"""Bench: core-count scaling of interconnect energy.

The paper's closing argument for Fig. 9b: "interconnect energy expenditure
is becoming more important as GPU core counts grow." MESI's 5-VC buffers
and invalidation traffic scale with the machine; RCC's 2-VC, inv-free
design scales better. This ablation sweeps the SM count and compares the
MESI/RCC energy ratio.
"""

from repro.config import GPUConfig
from repro.sim.gpusim import run_simulation
from repro.workloads import get_workload


def run(cfg, protocol):
    wl = get_workload("stn", intensity=0.1)
    return run_simulation(cfg, protocol, wl.generate(cfg), "stn")


def test_energy_gap_grows_with_core_count(benchmark):
    def sweep():
        out = {}
        for n_cores in (4, 8, 16):
            cfg = GPUConfig.bench().replace(n_cores=n_cores,
                                            warps_per_core=12)
            mesi = run(cfg, "MESI")
            rcc = run(cfg, "RCC")
            out[n_cores] = (mesi.energy.total, rcc.energy.total,
                            mesi.cycles, rcc.cycles)
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    ratios = {}
    for n, (e_mesi, e_rcc, c_mesi, c_rcc) in out.items():
        ratios[n] = e_mesi / e_rcc
        print(f"{n:3d} SMs: MESI energy {e_mesi:12,.0f}  RCC {e_rcc:12,.0f}"
              f"  MESI/RCC {ratios[n]:.2f}x  (speedup {c_mesi / c_rcc:.2f}x)")
    # RCC spends less interconnect energy at every machine size.
    assert all(r > 1.0 for r in ratios.values())
