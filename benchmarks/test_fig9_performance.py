"""Bench: regenerate Fig. 9 (speedup, interconnect energy, and traffic of
TCS/TCW/RCC normalized to the MESI-WT baseline) — the headline result."""

from statistics import geometric_mean

from benchmarks.conftest import run_once


def _gmeans(exp, col, category):
    return geometric_mean([r[col] for r in exp.rows if r[1] == category])


def test_fig9_performance_energy_traffic(benchmark, harness):
    exp = run_once(benchmark, harness.fig9)
    print()
    print(exp.render())

    # Columns: 2 speed_TCS, 3 speed_TCW, 4 speed_RCC,
    #          5 energy_TCS, 6 energy_TCW, 7 energy_RCC
    rcc_inter = _gmeans(exp, 4, "inter")
    tcs_inter = _gmeans(exp, 2, "inter")
    tcw_inter = _gmeans(exp, 3, "inter")
    rcc_intra = _gmeans(exp, 4, "intra")

    # The paper's headline shape:
    # RCC is the fastest SC design, well ahead of MESI on inter-wg...
    assert rcc_inter > 1.25
    # ...and ahead of TCS (paper: +29%)...
    assert rcc_inter > tcs_inter * 1.1
    # ...and close to (within ~15% of) the best non-SC design, TCW.
    assert rcc_inter > tcw_inter * 0.85
    # Intra-workgroup overhead of always-on SC coherence stays small.
    assert rcc_intra > 0.95

    # Energy: RCC spends less interconnect energy than MESI on inter-wg
    # (less traffic + 2 VCs instead of 5).
    rcc_energy_inter = _gmeans(exp, 7, "inter")
    assert rcc_energy_inter < 1.0
