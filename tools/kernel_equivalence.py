"""Cross-build kernel equivalence probe (CI: the kernel-matrix job).

Runs a fixed sanitized cell grid against whichever flat-kernel build the
environment selects — the compiled ``hot_c`` extension when one is
importable, the interpreted ``hot`` module under
``RCC_KERNEL_COMPILED=0`` — teeing every ``Sanitizer.emit`` call, and
writes one canonical JSON document: per-cell payload SHA-256 plus
event-stream SHA-256 (every transition, cycle, and field folded in).

CI runs it twice, compiled then interpreted, and ``diff``s the two
documents. Byte-equal output proves the mypyc/Cython build changed
nothing observable — not the result payloads, not a single sanitizer
emission. The kernel description is printed to stderr (and checked via
``--expect``), never written to the document, so the diff is exact.

Usage::

    PYTHONPATH=src python tools/kernel_equivalence.py \
        --expect flat+compiled --out eq_compiled.json
    RCC_KERNEL_COMPILED=0 PYTHONPATH=src python tools/kernel_equivalence.py \
        --expect flat --out eq_interp.json
    diff eq_compiled.json eq_interp.json
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import json
import sys
from typing import List, Optional

# The probe compares flat-kernel builds against each other, so the flat
# kernel must be on regardless of the caller's environment.
import os
os.environ["RCC_FLAT_KERNEL"] = "1"

from repro import kernel
from repro.config import GPUConfig
from repro.sanitize.sanitizer import Sanitizer
from repro.sim.gpusim import run_simulation
from repro.workloads import get_workload

#: (protocol, workload, intensity, seed, lease_policy or None) — small
#: machine. Covers the RCC lease path, the write-optimized variant, the
#: MESI directory (inv fanout), and one non-default policy so the fused
#: grant helpers run under both builds.
CELLS = (
    ("RCC", "stn", 0.75, 11, None),
    ("RCC-WO", "bfs", 0.5, 7, None),
    ("MESI", "stn", 0.75, 11, None),
    ("RCC", "dlb", 1.0, 31, "pc-pred"),
)


def _run_cell(protocol: str, workload: str, intensity: float, seed: int,
              policy: Optional[str]):
    events: List[tuple] = []
    real_emit = Sanitizer.emit

    def tee(self, kind, unit, unit_id, cycle, addr, **fields):
        events.append((kind, unit, unit_id, cycle, addr,
                       tuple(sorted(fields.items()))))
        real_emit(self, kind, unit, unit_id, cycle, addr, **fields)

    cfg = GPUConfig.small()
    if policy is not None:
        cfg = dataclasses.replace(
            cfg, ts=dataclasses.replace(cfg.ts, lease_policy=policy))
    wl = get_workload(workload, intensity=intensity, seed=seed)
    Sanitizer.emit = tee
    try:
        result = run_simulation(cfg, protocol, wl.generate(cfg), workload,
                                sanitize=True)
    finally:
        Sanitizer.emit = real_emit
    payload = json.dumps(result.to_payload(), sort_keys=True)
    stream = json.dumps(events, sort_keys=True)
    return {
        "payload_sha256": hashlib.sha256(payload.encode()).hexdigest(),
        "events": len(events),
        "event_stream_sha256": hashlib.sha256(stream.encode()).hexdigest(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--expect", choices=["flat", "flat+compiled"],
                        default=None,
                        help="fail unless the selected kernel matches "
                             "(guards against a silently-skipped build)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write the document here (default: stdout)")
    args = parser.parse_args(argv)

    desc = kernel.kernel_description()
    print(f"kernel under probe: {desc} (compiled={kernel.COMPILED})",
          file=sys.stderr)
    if args.expect is not None and desc != args.expect:
        print(f"expected kernel {args.expect!r}, got {desc!r}",
              file=sys.stderr)
        return 2

    doc = {"kind": "kernel-equivalence", "schema": 1, "cells": {}}
    for protocol, workload, intensity, seed, policy in CELLS:
        key = f"{protocol}/{workload}/{policy or 'default'}@{intensity}"
        doc["cells"][key] = _run_cell(protocol, workload, intensity, seed,
                                      policy)
        print(f"{key}: {doc['cells'][key]['events']} events "
              f"{doc['cells'][key]['event_stream_sha256'][:12]}",
              file=sys.stderr)

    blob = json.dumps(doc, indent=2, sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(blob)
    else:
        sys.stdout.write(blob)
    return 0


if __name__ == "__main__":
    sys.exit(main())
