#!/usr/bin/env python3
"""Build the optional compiled flat-kernel core (``repro.kernel.hot_c``).

``repro/kernel/hot.py`` is written against the compilable subset of
Python — integers, booleans, lists, tuples, no objects — precisely so
this script can translate it to a C extension. The compiled module is a
pure accelerator: ``repro.kernel`` imports ``hot_c`` when present and
silently falls back to the interpreted module when not, so this build
is **always optional** and the repository must keep working without it.

Toolchains are tried in order:

1. **mypyc** (ships with ``mypy``): compiles the annotated module
   as-is.
2. **Cython** (pure-Python mode): compiles the same file with
   ``language_level=3``; no ``.pyx`` fork to keep in sync.

When neither toolchain (or no C compiler) is available the script
prints what it skipped and exits 0 — pass ``--require`` (CI does, after
installing a toolchain) to turn that skip into a failure. After a
successful build the new extension is import-checked and its tables and
scan functions are verified against the interpreted module on random
inputs; a mismatch removes the extension and fails the build, so a
broken toolchain can never leave a divergent kernel behind.

Usage::

    python tools/build_kernel.py            # build if possible
    python tools/build_kernel.py --require  # fail if it cannot build
    python tools/build_kernel.py --clean    # remove any built extension
"""

from __future__ import annotations

import argparse
import glob
import importlib.util
import os
import random
import shutil
import subprocess
import sys
import tempfile

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
KERNEL_DIR = os.path.join(ROOT, "src", "repro", "kernel")
HOT_SRC = os.path.join(KERNEL_DIR, "hot.py")


def have_module(name: str) -> bool:
    try:
        return importlib.util.find_spec(name) is not None
    except (ImportError, ValueError):
        return False


def built_extensions() -> list:
    return sorted(glob.glob(os.path.join(KERNEL_DIR, "hot_c.*.so"))
                  + glob.glob(os.path.join(KERNEL_DIR, "hot_c.so"))
                  + glob.glob(os.path.join(KERNEL_DIR, "hot_c.*.pyd")))


def clean() -> None:
    for path in built_extensions():
        print(f"removing {os.path.relpath(path, ROOT)}")
        os.unlink(path)


def _run_setup(workdir: str, setup_body: str) -> bool:
    """Run a throwaway setup.py build_ext in ``workdir``; True on success."""
    setup_path = os.path.join(workdir, "setup.py")
    with open(setup_path, "w", encoding="utf-8") as f:
        f.write(setup_body)
    proc = subprocess.run(
        [sys.executable, "setup.py", "build_ext", "--inplace"],
        cwd=workdir, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout[-2000:] + proc.stderr[-2000:])
        return False
    return True


def build(toolchain: str) -> bool:
    """Compile ``hot.py`` as module ``hot_c`` with the given toolchain and
    install the extension next to the source. True on success."""
    with tempfile.TemporaryDirectory(prefix="rcc-kernel-build-") as workdir:
        # The module is compiled under its runtime name so the extension
        # self-identifies as hot_c, not as a shadow of hot.
        shutil.copyfile(HOT_SRC, os.path.join(workdir, "hot_c.py"))
        if toolchain == "mypyc":
            setup_body = (
                "from setuptools import setup\n"
                "from mypyc.build import mypycify\n"
                "setup(name='hot_c', ext_modules=mypycify(['hot_c.py']))\n")
        else:
            setup_body = (
                "from setuptools import setup\n"
                "from Cython.Build import cythonize\n"
                "setup(name='hot_c', ext_modules=cythonize(\n"
                "    ['hot_c.py'], language_level=3))\n")
        if not _run_setup(workdir, setup_body):
            return False
        artifacts = (glob.glob(os.path.join(workdir, "hot_c.*.so"))
                     + glob.glob(os.path.join(workdir, "hot_c.*.pyd")))
        if not artifacts:
            sys.stderr.write("build_ext succeeded but produced no "
                             "extension artifact\n")
            return False
        dest = os.path.join(KERNEL_DIR, os.path.basename(artifacts[0]))
        shutil.copyfile(artifacts[0], dest)
        print(f"built {os.path.relpath(dest, ROOT)} ({toolchain})")
        return True


def verify() -> bool:
    """Import the freshly built extension and check it against the
    interpreted module: identical tables/constants, and identical scan
    results on randomized occupancy patterns."""
    sys.path.insert(0, os.path.join(ROOT, "src"))
    for mod in [m for m in list(sys.modules) if m.startswith("repro")]:
        del sys.modules[mod]
    os.environ.pop("RCC_KERNEL_COMPILED", None)
    import repro.kernel as kernel
    import repro.kernel.hot_c as compiled

    if not kernel.COMPILED:
        sys.stderr.write("extension built but repro.kernel did not "
                         "select it\n")
        return False

    # Load the interpreted module directly from its file (the package
    # import may have aliased `repro.kernel.hot` to the extension).
    spec = importlib.util.spec_from_file_location("hot_pure", HOT_SRC)
    pure = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(pure)

    names = [n for n in dir(pure)
             if n.isupper() or n in ("find_free_way", "can_fill",
                                     "pick_slot", "pick_victim")]
    for name in names:
        if not hasattr(compiled, name):
            sys.stderr.write(f"hot_c missing {name}\n")
            return False
        if name.isupper() and getattr(pure, name) != getattr(compiled, name):
            sys.stderr.write(f"hot_c constant {name} diverges\n")
            return False

    rng = random.Random(20260808)
    for _ in range(2000):
        assoc = rng.choice([1, 2, 4, 8])
        n = assoc * 4
        base = rng.randrange(0, 4) * assoc
        used = [rng.random() < 0.8 for _ in range(n)]
        state = [rng.randrange(0, 5) for _ in range(n)]
        lru = rng.sample(range(1000), n)
        pinned = [rng.random() < 0.2 for _ in range(n)]
        inv = rng.randrange(0, 5)
        for fn in ("find_free_way", "can_fill", "pick_slot", "pick_victim"):
            if fn == "find_free_way":
                args = (used, base, assoc)
            elif fn == "can_fill":
                args = (used, pinned, base, assoc)
            else:
                args = (used, state, lru, pinned, base, assoc, inv)
            got = getattr(compiled, fn)(*args)
            want = getattr(pure, fn)(*args)
            if got != want:
                sys.stderr.write(
                    f"{fn} diverges: compiled {got} != pure {want} "
                    f"on {args}\n")
                return False
    print("verified: hot_c matches the interpreted kernel "
          "(tables + 2000 randomized scans)")
    return True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--require", action="store_true",
                        help="fail (exit 1) when no toolchain can build "
                             "the extension")
    parser.add_argument("--clean", action="store_true",
                        help="remove any built extension and exit")
    parser.add_argument("--toolchain", choices=["auto", "mypyc", "cython"],
                        default="auto")
    args = parser.parse_args(argv)

    if args.clean:
        clean()
        return 0

    if args.toolchain == "auto":
        toolchains = [t for t, mod in (("mypyc", "mypyc"),
                                       ("cython", "Cython"))
                      if have_module(mod)]
        if not toolchains:
            msg = ("no compile toolchain available (install `mypy` for "
                   "mypyc, or `cython`); the pure-Python kernel remains "
                   "in use")
            if args.require:
                sys.stderr.write(msg + "\n")
                return 1
            print(f"skipped: {msg}")
            return 0
    else:
        toolchains = [args.toolchain]

    clean()  # never leave a stale extension from an older source tree
    for toolchain in toolchains:
        if build(toolchain):
            if not verify():
                clean()
                return 1
            return 0
    sys.stderr.write("all toolchains failed\n")
    return 1


if __name__ == "__main__":
    sys.exit(main())
