#!/usr/bin/env python3
"""Build the optional compiled flat-kernel core (``repro.kernel.hot_c``).

``repro/kernel/hot.py`` is written against the compilable subset of
Python — integers, booleans, lists, tuples, no objects — precisely so
this script can translate it to a C extension. The compiled module is a
pure accelerator: ``repro.kernel`` imports ``hot_c`` when present and
silently falls back to the interpreted module when not, so this build
is **always optional** and the repository must keep working without it.

Toolchains are tried in order:

1. **mypyc** (ships with ``mypy``): compiles the annotated module
   as-is.
2. **Cython** (pure-Python mode): compiles the same file with
   ``language_level=3``; no ``.pyx`` fork to keep in sync.

When neither toolchain (or no C compiler) is available the script
prints what it skipped and exits 0 — pass ``--require`` (CI does, after
installing a toolchain) to turn that skip into a failure. After a
successful build the new extension is import-checked and verified
against the interpreted module: identical tables/constants, identical
scan results on random occupancy patterns, and — since the whole L1/L2
dispatch moved into the kernel — identical traces (return codes, out
vectors, and full column state after every step) when the fused RCC and
MESI handlers are driven through randomized closed-loop event streams.
A mismatch removes the extension and fails the build, so a broken
toolchain can never leave a divergent kernel behind.

Usage::

    python tools/build_kernel.py            # build if possible
    python tools/build_kernel.py --require  # fail if it cannot build
    python tools/build_kernel.py --clean    # remove any built extension
"""

from __future__ import annotations

import argparse
import glob
import importlib.util
import os
import random
import shutil
import subprocess
import sys
import tempfile

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
KERNEL_DIR = os.path.join(ROOT, "src", "repro", "kernel")
HOT_SRC = os.path.join(KERNEL_DIR, "hot.py")


def have_module(name: str) -> bool:
    try:
        return importlib.util.find_spec(name) is not None
    except (ImportError, ValueError):
        return False


def built_extensions() -> list:
    return sorted(glob.glob(os.path.join(KERNEL_DIR, "hot_c.*.so"))
                  + glob.glob(os.path.join(KERNEL_DIR, "hot_c.so"))
                  + glob.glob(os.path.join(KERNEL_DIR, "hot_c.*.pyd")))


def clean() -> None:
    for path in built_extensions():
        print(f"removing {os.path.relpath(path, ROOT)}")
        os.unlink(path)


def _run_setup(workdir: str, setup_body: str) -> bool:
    """Run a throwaway setup.py build_ext in ``workdir``; True on success."""
    setup_path = os.path.join(workdir, "setup.py")
    with open(setup_path, "w", encoding="utf-8") as f:
        f.write(setup_body)
    proc = subprocess.run(
        [sys.executable, "setup.py", "build_ext", "--inplace"],
        cwd=workdir, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout[-2000:] + proc.stderr[-2000:])
        return False
    return True


def build(toolchain: str) -> bool:
    """Compile ``hot.py`` as module ``hot_c`` with the given toolchain and
    install the extension next to the source. True on success."""
    with tempfile.TemporaryDirectory(prefix="rcc-kernel-build-") as workdir:
        # The module is compiled under its runtime name so the extension
        # self-identifies as hot_c, not as a shadow of hot.
        shutil.copyfile(HOT_SRC, os.path.join(workdir, "hot_c.py"))
        if toolchain == "mypyc":
            setup_body = (
                "from setuptools import setup\n"
                "from mypyc.build import mypycify\n"
                "setup(name='hot_c', ext_modules=mypycify(['hot_c.py']))\n")
        else:
            setup_body = (
                "from setuptools import setup\n"
                "from Cython.Build import cythonize\n"
                "setup(name='hot_c', ext_modules=cythonize(\n"
                "    ['hot_c.py'], language_level=3))\n")
        if not _run_setup(workdir, setup_body):
            return False
        artifacts = (glob.glob(os.path.join(workdir, "hot_c.*.so"))
                     + glob.glob(os.path.join(workdir, "hot_c.*.pyd")))
        if not artifacts:
            sys.stderr.write("build_ext succeeded but produced no "
                             "extension artifact\n")
            return False
        dest = os.path.join(KERNEL_DIR, os.path.basename(artifacts[0]))
        shutil.copyfile(artifacts[0], dest)
        print(f"built {os.path.relpath(dest, ROOT)} ({toolchain})")
        return True


# The full fused-dispatch surface the extension must export. Everything
# here (plus every UPPERCASE constant/table) is checked for presence;
# the handlers are additionally trace-checked by the drivers below.
_HOT_FUNCS = (
    "can_fill", "pick_slot", "pick_victim", "fill_slot", "drain_calls",
    "rcc_l1_load", "rcc_l1_would_stall", "rcc_l1_store",
    "mesi_l1_load", "mesi_l1_would_stall", "mesi_l1_store",
    "rcc_l2_gets", "rcc_l2_write", "rcc_l2_atomic",
    "mesi_l2_gets", "mesi_l2_getx",
)


def _snap(x):
    """Hashable deep snapshot of driver state (sets sorted, dicts by key)."""
    if isinstance(x, dict):
        return tuple(sorted((k, _snap(v)) for k, v in x.items()))
    if isinstance(x, (list, tuple)):
        return tuple(_snap(v) for v in x)
    if isinstance(x, set):
        return tuple(sorted(x))
    return x


def _mk_cols(n):
    return {
        "addr": [0] * n, "state": [0] * n, "exp": [0] * n, "ver": [0] * n,
        "lru": [0] * n, "pin": [False] * n, "used": [False] * n,
        "value": [None] * n, "dirty": [False] * n, "sharers": [None] * n,
        "meta": [None] * n,
    }


def _insert(mod, tag, cols, lru_box, blk, state_code, inv_code,
            assoc, nsets, shift):
    """Driver-side line fill mirroring FlatTagArray.insert_slot: reuse an
    existing mapping, else pick_slot + evict + fill_slot."""
    slot = tag.get(blk, -1)
    if slot < 0:
        base = ((blk >> shift) % nsets) * assoc
        slot = mod.pick_slot(cols["used"], cols["state"], cols["lru"],
                             cols["pin"], base, assoc, inv_code)
        if slot < 0:
            return -1
        if cols["used"][slot]:
            tag.pop(cols["addr"][slot], None)
    mod.fill_slot(tag, cols["used"], cols["addr"], cols["state"],
                  cols["exp"], cols["ver"], cols["dirty"], cols["value"],
                  cols["pin"], cols["sharers"], cols["meta"], cols["lru"],
                  lru_box, blk, slot, state_code)
    return slot


def _drive_l1(mod, C, rcc, seed):
    """Closed-loop random drive of the fused L1 handlers.

    The wrapper's share of the protocol (waiting-list appends, line
    inserts on R_MISS_INSERT, simulated DATA/ACK completions) is
    replicated inline with identical code for both modules, so any trace
    divergence is the kernel's. Returns the full per-step trace."""
    rng = random.Random(seed)
    nsets, assoc, mcap, shift = 2, 2, 3, 6
    cols = _mk_cols(nsets * assoc)
    tag = {}
    lru_box = [0]
    mtag = {}
    mfree = list(range(mcap - 1, -1, -1))
    m_loads = [[] for _ in range(mcap)]
    m_stores = [[] for _ in range(mcap)]
    m_gets = [False] * mcap
    m_peak = [0]
    stats = [0] * 11
    ctx = [tag, cols["state"], cols["exp"], cols["lru"], cols["pin"],
           cols["used"], cols["value"], mtag, mfree, m_loads, m_stores,
           m_gets, m_peak, stats, lru_box, mcap, assoc, nsets, shift]
    out = [0, 0, 0, 0]
    trace = []
    for step in range(400):
        blk = rng.randrange(0, 6) << shift
        rnow = rng.randrange(0, 60)
        is_load = rng.random() < 0.5
        if rcc:
            probe = mod.rcc_l1_would_stall(ctx, blk, rnow, is_load)
        else:
            probe = mod.mesi_l1_would_stall(ctx, blk, is_load)
        op = rng.random()
        res = -99
        if op < 0.45:
            out[0] = out[1] = out[2] = out[3] = 0
            if rcc:
                res = mod.rcc_l1_load(ctx, blk, rnow, out)
            else:
                res = mod.mesi_l1_load(ctx, blk, out)
            if res == C.R_MISS_INSERT:
                slot = _insert(mod, tag, cols, lru_box, blk, C.L1_IV,
                               C.L1_I, assoc, nsets, shift)
                cols["pin"][slot] = True
            if res in (C.R_MISS_MERGE, C.R_MISS_SEND, C.R_MISS_INSERT):
                m_loads[out[0]].append((step, rnow))
        elif op < 0.7:
            atomic = rng.random() < 0.3
            out[0] = out[1] = out[2] = out[3] = 0
            if rcc:
                res = mod.rcc_l1_store(ctx, blk, atomic, out)
            else:
                res = mod.mesi_l1_store(ctx, blk, atomic, out)
            if res == C.R_SEND:
                m_stores[out[0]].append(step)
                if not rcc and out[1]:
                    s = tag.pop(blk)
                    cols["used"][s] = False
        elif op < 0.88:
            # Simulated DATA reply for one outstanding GETS.
            cands = sorted(b for b, ms in mtag.items() if m_gets[ms])
            if cands:
                b = cands[rng.randrange(len(cands))]
                ms = mtag[b]
                s = tag.get(b, -1)
                if s >= 0:
                    cols["state"][s] = C.L1_V
                    cols["exp"][s] = rng.randrange(0, 80)
                    cols["value"][s] = step
                    cols["pin"][s] = False
                m_gets[ms] = False
                del m_loads[ms][:]
                if not m_stores[ms]:
                    del mtag[b]
                    mfree.append(ms)
        else:
            # Simulated write ACK completing one pending store.
            cands = sorted(b for b, ms in mtag.items() if m_stores[ms])
            if cands:
                b = cands[rng.randrange(len(cands))]
                ms = mtag[b]
                m_stores[ms].pop(0)
                s = tag.get(b, -1)
                if s >= 0 and not m_stores[ms]:
                    cols["pin"][s] = False
                if not m_stores[ms] and not m_gets[ms]:
                    del mtag[b]
                    mfree.append(ms)
        trace.append((step, probe, res, tuple(out),
                      _snap((tag, cols, mtag, mfree, m_loads, m_stores,
                             m_gets, m_peak, stats, lru_box))))
    return trace


def _drive_l2(mod, C, mesi, pol, polen, seed):
    """Closed-loop random drive of the fused L2 handlers (one protocol,
    one lease-policy code per run); same identical-driver rule as
    :func:`_drive_l1`."""
    rng = random.Random(seed)
    nsets, assoc, mcap, shift = 2, 2, 3, 6
    n = nsets * assoc
    cols = _mk_cols(n)
    tag = {}
    lru_box = [0]
    mtag = {}
    mfree = list(range(mcap - 1, -1, -1))
    m_lastrd = [0] * mcap
    m_lastwr = [0] * mcap
    m_hasrd = [False] * mcap
    m_haswr = [False] * mcap
    m_store = [None] * mcap
    m_loads = [[] for _ in range(mcap)]
    m_stores = [[] for _ in range(mcap)]
    m_meta = [None] * mcap
    m_peak = [0]
    stats = [0] * 12
    pctable = {}
    ctx = [tag, cols["state"], cols["exp"], cols["ver"], cols["lru"],
           cols["pin"], cols["used"], cols["value"], cols["dirty"],
           cols["meta"], cols["sharers"], mtag, mfree, m_lastrd, m_lastwr,
           m_hasrd, m_haswr, m_store, m_loads, m_stores, m_meta, m_peak,
           stats, lru_box, pctable, mcap, assoc, nsets, shift, pol,
           polen, 8, 64, 32, True]
    out = [0] * 5
    obox = [None]
    scratch = []
    trace = []
    for step in range(400):
        blk = rng.randrange(0, 6) << shift
        m_now = rng.randrange(0, 120)
        op = rng.random()
        res = -99
        extra = None
        for i in range(5):
            out[i] = 0
        if mesi:
            if op < 0.4:
                src = rng.randrange(0, 4)
                res = mod.mesi_l2_gets(ctx, blk, False, src, step, out)
                if res == C.R_FETCH and (blk in mtag or len(mtag) < mcap):
                    slot = _insert(mod, tag, cols, lru_box, blk, C.L2_IV,
                                   C.L2_I, assoc, nsets, shift)
                    if slot >= 0:
                        cols["pin"][slot] = True
                        ms = mod._l2_mshr_alloc(ctx, blk)
                        m_hasrd[ms] = True
                        m_loads[ms].append(step)
            elif op < 0.65:
                del scratch[:]
                atomic = rng.random() < 0.3
                res = mod.mesi_l2_getx(ctx, blk, False, atomic, step,
                                       scratch, out)
                extra = tuple(scratch)
                del scratch[:]
                if res == C.R_APPLY:
                    cols["value"][out[0]] = step
                    cols["dirty"][out[0]] = True
                elif res == C.R_FETCH and (blk in mtag
                                           or len(mtag) < mcap):
                    slot = _insert(mod, tag, cols, lru_box, blk, C.L2_IV,
                                   C.L2_I, assoc, nsets, shift)
                    if slot >= 0:
                        cols["pin"][slot] = True
                        ms = mod._l2_mshr_alloc(ctx, blk)
                        m_haswr[ms] = True
                        m_stores[ms].append((step, atomic))
            elif op < 0.8:
                # Simulated INV_ACK against a pending fan-out.
                slots = [s for s in range(n)
                         if cols["meta"][s] is not None
                         and cols["meta"][s].get("inv_pending") is not None]
                if slots:
                    s = slots[rng.randrange(len(slots))]
                    ip = cols["meta"][s]["inv_pending"]
                    ip["remaining"] -= 1
                    if ip["remaining"] <= 0:
                        cols["meta"][s].pop("inv_pending")
                        cols["pin"][s] = False
                        cols["value"][s] = ip["msg"]
                        cols["dirty"][s] = True
            else:
                op = 2.0  # fall through to the shared DRAM-return case
        else:
            if op < 0.35:
                has_exp = rng.random() < 0.6
                m_exp = rng.randrange(0, 150)
                expired = has_exp and rng.random() < 0.5
                has_pc = rng.random() < 0.7
                pc = rng.randrange(0, 8)
                res = mod.rcc_l2_gets(ctx, blk, m_now, has_exp, m_exp,
                                      False, expired, has_pc, pc, step,
                                      out)
                if res == C.R_NEED_LEASE:
                    # P_OTHER: the wrapper grants through the policy
                    # object; any deterministic stand-in works here.
                    s = out[0]
                    if m_now + 25 > cols["exp"][s]:
                        cols["exp"][s] = m_now + 25
                elif res == C.R_FETCH:
                    slot = _insert(mod, tag, cols, lru_box, blk, C.L2_IV,
                                   C.L2_I, assoc, nsets, shift)
                    cols["pin"][slot] = True
            elif op < 0.6:
                res = mod.rcc_l2_write(ctx, blk, m_now, False, step, out)
                if res == C.R_FETCH_WR:
                    slot = _insert(mod, tag, cols, lru_box, blk, C.L2_IV,
                                   C.L2_I, assoc, nsets, shift)
                    cols["pin"][slot] = True
            elif op < 0.75:
                obox[0] = None
                res = mod.rcc_l2_atomic(ctx, blk, m_now, False, step,
                                        obox, out)
                extra = _snap(obox[0])
                obox[0] = None
                if res == C.R_FETCH_AT:
                    slot = _insert(mod, tag, cols, lru_box, blk, C.L2_IAV,
                                   C.L2_I, assoc, nsets, shift)
                    cols["pin"][slot] = True
                    mm = m_meta[out[0]]
                    if mm is None:
                        mm = {}
                        m_meta[out[0]] = mm
                    mm["atomic_msg"] = step
            else:
                op = 2.0
        if op >= 1.0:
            # Simulated DRAM return: fill the line, release the MSHR.
            cands = sorted(mtag)
            if cands:
                b = cands[rng.randrange(len(cands))]
                ms = mtag[b]
                s = tag.get(b, -1)
                if s >= 0:
                    cols["state"][s] = C.L2_V
                    cols["pin"][s] = False
                    cols["value"][s] = (m_store[ms] if m_haswr[ms]
                                        else ("mem", b))
                    if m_haswr[ms]:
                        cols["ver"][s] = m_lastwr[ms]
                        cols["dirty"][s] = True
                m_lastrd[ms] = m_lastwr[ms] = 0
                m_hasrd[ms] = m_haswr[ms] = False
                m_store[ms] = None
                m_meta[ms] = None
                del m_loads[ms][:]
                del m_stores[ms][:]
                del mtag[b]
                mfree.append(ms)
        trace.append((step, res, tuple(out), extra,
                      _snap((tag, cols, mtag, mfree, m_lastrd, m_lastwr,
                             m_hasrd, m_haswr, m_store, m_loads, m_stores,
                             m_meta, m_peak, stats, lru_box, pctable))))
    return trace


def _drive_drain(mod, seed):
    """Exercise drain_calls: holes, mid-drain appends, a stop() break,
    an Event-appended break, and resume from the reconciled cursor."""
    rng = random.Random(seed)
    log = []
    lst = []
    ctl = [0, 0, 0, 0]

    def mk(i):
        def cb():
            log.append(i)
            if i % 7 == 3:
                lst.append(mk(i + 100))
            if i == 50:
                ctl[0] = 1
            if i == 51:
                ctl[2] = 1
        return cb

    for i in range(40):
        lst.append(mk(i) if rng.random() < 0.8 else None)
    lst.append(mk(50))
    lst.append(mk(51))
    lst.append(mk(52))
    mod.drain_calls(lst, ctl)
    after_stop = (tuple(log), tuple(ctl))
    ctl[0] = 0
    mod.drain_calls(lst, ctl)
    after_break = (tuple(log), tuple(ctl))
    ctl[2] = 0
    mod.drain_calls(lst, ctl)
    return (after_stop, after_break, tuple(log), tuple(ctl),
            tuple(x is None for x in lst))


def verify() -> bool:
    """Import the freshly built extension and check it against the
    interpreted module: identical tables/constants, identical scan
    results on randomized occupancy patterns, and identical traces when
    the fused L1/L2 handlers are driven through randomized closed-loop
    event streams."""
    sys.path.insert(0, os.path.join(ROOT, "src"))
    for mod in [m for m in list(sys.modules) if m.startswith("repro")]:
        del sys.modules[mod]
    os.environ.pop("RCC_KERNEL_COMPILED", None)
    import repro.kernel as kernel
    import repro.kernel.hot_c as compiled

    if not kernel.COMPILED:
        sys.stderr.write("extension built but repro.kernel did not "
                         "select it\n")
        return False

    # Load the interpreted module directly from its file (the package
    # import may have aliased `repro.kernel.hot` to the extension).
    spec = importlib.util.spec_from_file_location("hot_pure", HOT_SRC)
    pure = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(pure)

    names = [n for n in dir(pure) if n.isupper()] + list(_HOT_FUNCS)
    for name in names:
        if not hasattr(compiled, name):
            sys.stderr.write(f"hot_c missing {name}\n")
            return False
        if name.isupper() and getattr(pure, name) != getattr(compiled, name):
            sys.stderr.write(f"hot_c constant {name} diverges\n")
            return False
    for mod_name, mod in (("hot", pure), ("hot_c", compiled)):
        if hasattr(mod, "find_free_way"):
            sys.stderr.write(f"{mod_name} still exports the removed "
                             "find_free_way\n")
            return False

    rng = random.Random(20260808)
    for _ in range(2000):
        assoc = rng.choice([1, 2, 4, 8])
        n = assoc * 4
        base = rng.randrange(0, 4) * assoc
        used = [rng.random() < 0.8 for _ in range(n)]
        state = [rng.randrange(0, 5) for _ in range(n)]
        lru = rng.sample(range(1000), n)
        pinned = [rng.random() < 0.2 for _ in range(n)]
        inv = rng.randrange(0, 5)
        for fn in ("can_fill", "pick_slot", "pick_victim"):
            if fn == "can_fill":
                args = (used, pinned, base, assoc)
            else:
                args = (used, state, lru, pinned, base, assoc, inv)
            got = getattr(compiled, fn)(*args)
            want = getattr(pure, fn)(*args)
            if got != want:
                sys.stderr.write(
                    f"{fn} diverges: compiled {got} != pure {want} "
                    f"on {args}\n")
                return False

    drives = []
    for seed in (1, 2):
        drives.append((f"rcc-l1/{seed}",
                       lambda m, s=seed: _drive_l1(m, pure, True, s)))
        drives.append((f"mesi-l1/{seed}",
                       lambda m, s=seed: _drive_l1(m, pure, False, s)))
        drives.append((f"mesi-l2/{seed}",
                       lambda m, s=seed: _drive_l2(m, pure, True,
                                                   pure.P_FIXED, False, s)))
    for label, pol, polen in (("fixed", pure.P_FIXED, True),
                              ("fixed-off", pure.P_FIXED, False),
                              ("adaptive", pure.P_ADAPTIVE, True),
                              ("pcpred", pure.P_PCPRED, True),
                              ("other", pure.P_OTHER, True)):
        drives.append((f"rcc-l2/{label}",
                       lambda m, p=pol, e=polen: _drive_l2(m, pure, False,
                                                           p, e, 3)))
    drives.append(("drain", lambda m: _drive_drain(m, 4)))
    for name, drive in drives:
        want = drive(pure)
        got = drive(compiled)
        if got != want:
            for i, (w, g) in enumerate(zip(want, got)):
                if w != g:
                    sys.stderr.write(
                        f"handler drive {name} diverges at step {i}:\n"
                        f"  pure:     {w!r}\n  compiled: {g!r}\n")
                    break
            else:
                sys.stderr.write(f"handler drive {name} diverges in "
                                 "length/tail\n")
            return False
    print("verified: hot_c matches the interpreted kernel (tables + "
          f"2000 randomized scans + {len(drives)} fused-dispatch drives)")
    return True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--require", action="store_true",
                        help="fail (exit 1) when no toolchain can build "
                             "the extension")
    parser.add_argument("--clean", action="store_true",
                        help="remove any built extension and exit")
    parser.add_argument("--toolchain", choices=["auto", "mypyc", "cython"],
                        default="auto")
    args = parser.parse_args(argv)

    if args.clean:
        clean()
        return 0

    if args.toolchain == "auto":
        toolchains = [t for t, mod in (("mypyc", "mypyc"),
                                       ("cython", "Cython"))
                      if have_module(mod)]
        if not toolchains:
            msg = ("no compile toolchain available (install `mypy` for "
                   "mypyc, or `cython`); the pure-Python kernel remains "
                   "in use")
            if args.require:
                sys.stderr.write(msg + "\n")
                return 1
            print(f"skipped: {msg}")
            return 0
    else:
        toolchains = [args.toolchain]

    clean()  # never leave a stale extension from an older source tree
    for toolchain in toolchains:
        if build(toolchain):
            if not verify():
                clean()
                return 1
            return 0
    sys.stderr.write("all toolchains failed\n")
    return 1


if __name__ == "__main__":
    sys.exit(main())
