"""Sweep cells: the unit of work the sweep executor schedules.

A :class:`SimCell` is one fully-described, independent simulation —
``(GPUConfig, protocol, workload, intensity, seed, ts_overrides)`` — the
same tuple that names one bar of one figure in the paper's evaluation.
Cells are self-contained and picklable so they can be shipped to worker
processes, and content-hashable (:func:`cell_key`) so results can be
cached on disk and invalidated the moment any input changes.

``run_cell`` is the canonical worker: it performs exactly the same steps
as the serial harness always has (override timestamps, instantiate the
workload at the cell's intensity and seed, run the simulator), so a
parallel sweep is bit-identical to a serial one.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.config import GPUConfig
from repro.sanitize.sanitizer import (sanitize_enabled_from_env,
                                      trace_out_from_env)
from repro.sim.gpusim import run_simulation
from repro.sim.results import SimResult
from repro.workloads import get_workload

#: ts_overrides in canonical form: sorted (name, value) pairs.
Overrides = Tuple[Tuple[str, Any], ...]


def canonical_overrides(ts_overrides: Optional[Dict[str, Any]]) -> Overrides:
    """Normalize a ts-override dict to the sorted tuple form cells carry."""
    return tuple(sorted((ts_overrides or {}).items()))


@dataclass(frozen=True)
class SimCell:
    """One independent simulation in a sweep grid."""

    cfg: GPUConfig = field(compare=True)
    protocol: str = ""
    workload: str = ""
    intensity: float = 0.25
    seed: int = 1234
    ts_overrides: Overrides = ()

    @property
    def label(self) -> str:
        """Short human-readable name for progress/error messages."""
        suffix = "".join(f",{k}={v}" for k, v in self.ts_overrides)
        return f"{self.protocol}/{self.workload}{suffix}"

    @property
    def lease_policy(self) -> str:
        """The lease policy this cell runs (override-aware).

        The policy travels in ``ts_overrides`` like every other timestamp
        knob — so it is already part of :func:`cell_key`'s content hash —
        but ablation drivers and reports want it by name."""
        for k, v in self.ts_overrides:
            if k == "lease_policy":
                return v
        return self.cfg.ts.lease_policy

    def effective_cfg(self) -> GPUConfig:
        """The machine config with this cell's timestamp overrides applied."""
        if not self.ts_overrides:
            return self.cfg
        return self.cfg.replace(
            ts=dataclasses.replace(self.cfg.ts, **dict(self.ts_overrides)))


def cell_key(cell: SimCell, version: Optional[str] = None) -> str:
    """Content hash naming this cell's result in the on-disk cache.

    The hash covers every input that can change the result: the full
    machine configuration, the workload name and intensity, the protocol,
    the seed, the timestamp overrides, and the library version (so a code
    change invalidates the whole cache rather than replaying stale
    results).
    """
    if version is None:
        import repro
        version = repro.__version__
    from repro.kernel import kernel_description
    blob = json.dumps(
        {
            "cfg": dataclasses.asdict(cell.cfg),
            "protocol": cell.protocol,
            "workload": cell.workload,
            "intensity": cell.intensity,
            "seed": cell.seed,
            "ts_overrides": [[k, v] for k, v in cell.ts_overrides],
            "version": version,
            # The kernels are differential-tested bit-identical, but a
            # cached result must never paper over a divergence: the
            # selected kernel is part of the cell's identity.
            "kernel": kernel_description(),
        },
        sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def derive_seed(base: int, *parts: Any) -> int:
    """Deterministic per-cell seed derivation.

    Hashes ``(base, *parts)`` — e.g. ``derive_seed(1234, "RCC", "bfs")`` —
    into a 63-bit seed that is stable across processes and Python runs
    (unlike ``hash()``, which is salted). Use it when a sweep needs
    statistically independent cells; the paper-figure harness instead
    reuses one base seed everywhere so that parallel sweeps reproduce the
    historical serial results exactly.
    """
    digest = hashlib.sha256(repr((base,) + parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def run_cell(cell: SimCell) -> SimResult:
    """Execute one cell (the executor's default worker function).

    The sanitizer rides along via environment toggles (``RCC_SANITIZE`` /
    ``RCC_TRACE_OUT``) rather than cell fields: forked sweep workers
    inherit the runner's environment, and the cell key — hence the result
    cache — stays independent of a checking mode that must not change
    results.
    """
    wl = get_workload(cell.workload, intensity=cell.intensity,
                      seed=cell.seed)
    cfg = cell.effective_cfg()
    return run_simulation(cfg, cell.protocol, wl.generate(cfg),
                          cell.workload,
                          sanitize=sanitize_enabled_from_env(),
                          trace_out=trace_out_from_env())


def sweep_cells(cfg: GPUConfig, protocols: Iterable[str],
                workloads: Iterable[str], intensity: float, seed: int,
                ts_overrides: Optional[Dict[str, Any]] = None
                ) -> List[SimCell]:
    """The full (protocol x workload) grid as a list of cells."""
    overrides = canonical_overrides(ts_overrides)
    return [SimCell(cfg=cfg, protocol=p, workload=w, intensity=intensity,
                    seed=seed, ts_overrides=overrides)
            for w in workloads for p in protocols]
