"""Sweep execution engine: parallel cells + content-keyed result cache.

See :mod:`repro.exec.engine` for the scheduling policy and
:mod:`repro.exec.cache` for the on-disk cache layout.
"""

from repro.exec.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.exec.cells import (
    SimCell, canonical_overrides, cell_key, derive_seed, run_cell,
    sweep_cells,
)
from repro.exec.engine import SweepExecutor, SweepStats

__all__ = [
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "SimCell",
    "SweepExecutor",
    "SweepStats",
    "canonical_overrides",
    "cell_key",
    "derive_seed",
    "run_cell",
    "sweep_cells",
]
