"""Sweep execution engine: parallel cells + content-keyed result cache.

See :mod:`repro.exec.engine` for the scheduling policy and
:mod:`repro.exec.cache` for the on-disk cache layout.
"""

from repro.exec.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.exec.cells import (
    SimCell, canonical_overrides, cell_key, derive_seed, run_cell,
    sweep_cells,
)
from repro.exec.engine import RetryPolicy, SweepExecutor, SweepStats
from repro.exec.journal import (
    CampaignJournal, campaign_id, decode_value, encode_value,
    payload_digest,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "CampaignJournal",
    "ResultCache",
    "RetryPolicy",
    "SimCell",
    "SweepExecutor",
    "SweepStats",
    "campaign_id",
    "canonical_overrides",
    "cell_key",
    "decode_value",
    "derive_seed",
    "encode_value",
    "payload_digest",
    "run_cell",
    "sweep_cells",
]
