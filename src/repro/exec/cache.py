"""On-disk result cache for sweep cells (``.rcc-cache/``).

One JSON file per cell, named by the cell's content hash
(:func:`repro.exec.cells.cell_key`). Because the key covers the whole
``(GPUConfig, workload+intensity, protocol, seed, library version)``
tuple, invalidation is automatic: change any input and the key changes,
so the old entry is simply never read again. Corrupted or truncated
files are detected on read, evicted, and recomputed — a damaged cache can
slow a sweep down but never change its results.

Integrity: each entry embeds a sha256 digest over the canonical JSON
form of its result payload, verified on every read. This catches the
failure the envelope checks cannot: silent in-place corruption (a
flipped bit, a hostile edit) that leaves the file valid JSON with the
right key but a wrong result.

Crash-atomicity: writes go to a temp file in the cache directory and
are published with ``os.replace``, so a crashed or killed run leaves
either the complete new entry or the old state — never a torn file. A
*failed* write (disk full, permissions) is swallowed: ``put`` returns
False, counts it in ``write_errors``, and the computed result flows back
to the caller regardless — a sick cache never loses work. Stale ``.tmp``
files from crashed writers are swept opportunistically.

The deterministic chaos layer (:mod:`repro.chaos`) hooks the commit
path: the ``enospc`` fault makes the write fail, and ``torn-write`` /
``bit-flip`` damage the bytes being committed — which the digest check
must then catch on the next read. With ``RCC_CHAOS`` unset these hooks
are no-ops.

The cache is size-bounded: after each write the directory is trimmed to
at most ``max_entries`` files and ``max_bytes`` total payload,
oldest-mtime entries first (content-addressed entries have no better
recency signal than their write time, and a re-computed cell rewrites
its file, refreshing it). Bounds default to
:data:`DEFAULT_MAX_ENTRIES` / :data:`DEFAULT_MAX_BYTES` and can be set
per-instance or via ``RCC_CACHE_MAX_ENTRIES`` / ``RCC_CACHE_MAX_BYTES``
(``0`` disables a bound). Hit/miss/eviction counters are surfaced in
the sweep summary line (:class:`repro.exec.engine.SweepStats`).
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
import time
from typing import Any, Dict, Optional

from repro.chaos import plan_from_env
from repro.sim.results import SimResult

#: Default cache directory, relative to the working directory.
DEFAULT_CACHE_DIR = ".rcc-cache"

#: Bumped if the cache *file* envelope (not the result payload) changes.
#: Format 2 added the per-entry result digest.
CACHE_FORMAT = 2

#: Default size bounds. A full ``rcc-repro all`` sweep is a few hundred
#: cells of a few tens of KiB each, so these allow many sweeps' worth of
#: distinct configurations before anything is dropped.
DEFAULT_MAX_ENTRIES = 4096
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Leftover ``.tmp`` files older than this are presumed to come from a
#: crashed writer and are swept; younger ones may belong to a concurrent
#: campaign mid-commit.
STALE_TMP_AGE_S = 3600.0


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        return int(raw)
    except ValueError:
        return default


def result_digest(payload: Any) -> str:
    """sha256 over the canonical JSON form of a result payload.

    Canonical = ``sort_keys`` with default separators, which is also
    invariant under a JSON round-trip (int keys stringify, tuples become
    lists *before* hashing), so the digest computed at write time matches
    one recomputed from the loaded entry.
    """
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed store of :class:`SimResult` payloads."""

    def __init__(self, root: Optional[str] = None,
                 max_entries: Optional[int] = None,
                 max_bytes: Optional[int] = None):
        self.root = root or os.environ.get("RCC_CACHE_DIR",
                                           DEFAULT_CACHE_DIR)
        if max_entries is None:
            max_entries = _env_int("RCC_CACHE_MAX_ENTRIES",
                                   DEFAULT_MAX_ENTRIES)
        if max_bytes is None:
            max_bytes = _env_int("RCC_CACHE_MAX_BYTES", DEFAULT_MAX_BYTES)
        #: Maximum entry count / total bytes; ``<= 0`` disables the bound.
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Writes that failed (and were swallowed — see :meth:`put`).
        self.write_errors = 0
        self.sweep_stale_tmp()

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[SimResult]:
        """The cached result for ``key``, or None on miss.

        Any unreadable entry — bad JSON, wrong envelope, mismatched key,
        failed result digest, payload that fails reconstruction — is
        deleted and treated as a miss so the cell is recomputed instead
        of crashing (or corrupting) the sweep.
        """
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as f:
                blob = json.load(f)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, UnicodeDecodeError):
            self._evict(path)
            self.misses += 1
            return None
        try:
            if blob["format"] != CACHE_FORMAT or blob["key"] != key:
                raise ValueError("cache envelope mismatch")
            if result_digest(blob["result"]) != blob["digest"]:
                raise ValueError("cache entry failed its digest")
            result = SimResult.from_payload(blob["result"])
        except (KeyError, TypeError, ValueError, AttributeError):
            self._evict(path)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: SimResult,
            cell: Optional[Dict[str, Any]] = None) -> bool:
        """Store ``result`` under ``key``; returns False when skipped or
        the write failed.

        Results carrying per-op logs (``record_ops`` runs) are not cached:
        the payload deliberately drops op logs, so replaying such an entry
        would silently return less than the original run produced.

        Write failures (``OSError``: disk full, read-only cache, ...) are
        counted and swallowed — the caller already holds the computed
        result, and a cache that cannot persist it must not lose it.
        """
        if result.op_logs:
            return False
        payload = result.to_payload()
        blob = {
            "format": CACHE_FORMAT,
            "key": key,
            "digest": result_digest(payload),
            "cell": cell or {},
            "result": payload,
        }
        data = json.dumps(blob).encode("utf-8")
        plan = plan_from_env()
        tmp = None
        try:
            if plan is not None:
                plan.check_write("cache", key)
                data, _fault = plan.corrupt_bytes(key, data)
            os.makedirs(self.root, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            with os.fdopen(fd, "wb") as f:
                f.write(data)
            os.replace(tmp, self.path_for(key))
            tmp = None
        except OSError:
            self.write_errors += 1
            self._discard_tmp(tmp)
            return False
        except BaseException:
            self._discard_tmp(tmp)
            raise
        self._enforce_bound()
        return True

    def clear(self) -> None:
        """Delete the whole cache directory (``make clean-cache``)."""
        shutil.rmtree(self.root, ignore_errors=True)

    def sweep_stale_tmp(self, max_age_s: float = STALE_TMP_AGE_S) -> int:
        """Remove ``.tmp`` leftovers from crashed writers; returns the
        number removed. Only files older than ``max_age_s`` go (a young
        one may be a concurrent campaign's in-flight commit)."""
        removed = 0
        try:
            it = os.scandir(self.root)
        except OSError:
            return 0
        now = time.time()
        with it:
            for de in it:
                if not de.name.endswith(".tmp"):
                    continue
                try:
                    if now - de.stat().st_mtime < max_age_s:
                        continue
                    os.unlink(de.path)
                    removed += 1
                except OSError:
                    continue
        return removed

    # ------------------------------------------------------------------
    @staticmethod
    def _discard_tmp(tmp: Optional[str]) -> None:
        if tmp:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def _enforce_bound(self) -> None:
        """Trim the cache directory back under its size bounds.

        Entries are dropped oldest mtime first (path as tiebreak, for
        deterministic behavior when a filesystem's timestamps are
        coarse). Runs after every write; the scan is O(entries), which
        is trivial next to the simulation a write represents.
        """
        max_entries = self.max_entries
        max_bytes = self.max_bytes
        if max_entries <= 0 and max_bytes <= 0:
            return
        entries = []  # (mtime_ns, path, size)
        total = 0
        try:
            it = os.scandir(self.root)
        except OSError:
            return
        with it:
            for de in it:
                if not de.name.endswith(".json"):
                    continue
                try:
                    st = de.stat()
                except OSError:
                    continue
                entries.append((st.st_mtime_ns, de.path, st.st_size))
                total += st.st_size
        count = len(entries)
        if not ((max_entries > 0 and count > max_entries)
                or (max_bytes > 0 and total > max_bytes)):
            return
        entries.sort()
        for _, path, size in entries:
            if ((max_entries <= 0 or count <= max_entries)
                    and (max_bytes <= 0 or total <= max_bytes)):
                break
            self._evict(path)
            count -= 1
            total -= size

    def _evict(self, path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass
        self.evictions += 1

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<ResultCache {self.root!r} hits={self.hits} "
                f"misses={self.misses} evictions={self.evictions} "
                f"write_errors={self.write_errors}>")
