"""On-disk result cache for sweep cells (``.rcc-cache/``).

One JSON file per cell, named by the cell's content hash
(:func:`repro.exec.cells.cell_key`). Because the key covers the whole
``(GPUConfig, workload+intensity, protocol, seed, library version)``
tuple, invalidation is automatic: change any input and the key changes,
so the old entry is simply never read again. Corrupted or truncated
files are detected on read, evicted, and recomputed — a damaged cache can
slow a sweep down but never change its results.

Writes are atomic (temp file + ``os.replace``) so a crashed or killed
run cannot leave a half-written entry behind for the next one to trip on.

The cache is size-bounded: after each write the directory is trimmed to
at most ``max_entries`` files and ``max_bytes`` total payload,
oldest-mtime entries first (content-addressed entries have no better
recency signal than their write time, and a re-computed cell rewrites
its file, refreshing it). Bounds default to
:data:`DEFAULT_MAX_ENTRIES` / :data:`DEFAULT_MAX_BYTES` and can be set
per-instance or via ``RCC_CACHE_MAX_ENTRIES`` / ``RCC_CACHE_MAX_BYTES``
(``0`` disables a bound). Hit/miss/eviction counters are surfaced in
the sweep summary line (:class:`repro.exec.engine.SweepStats`).
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from typing import Any, Dict, Optional

from repro.sim.results import SimResult

#: Default cache directory, relative to the working directory.
DEFAULT_CACHE_DIR = ".rcc-cache"

#: Bumped if the cache *file* envelope (not the result payload) changes.
CACHE_FORMAT = 1

#: Default size bounds. A full ``rcc-repro all`` sweep is a few hundred
#: cells of a few tens of KiB each, so these allow many sweeps' worth of
#: distinct configurations before anything is dropped.
DEFAULT_MAX_ENTRIES = 4096
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        return int(raw)
    except ValueError:
        return default


class ResultCache:
    """Content-addressed store of :class:`SimResult` payloads."""

    def __init__(self, root: Optional[str] = None,
                 max_entries: Optional[int] = None,
                 max_bytes: Optional[int] = None):
        self.root = root or os.environ.get("RCC_CACHE_DIR",
                                           DEFAULT_CACHE_DIR)
        if max_entries is None:
            max_entries = _env_int("RCC_CACHE_MAX_ENTRIES",
                                   DEFAULT_MAX_ENTRIES)
        if max_bytes is None:
            max_bytes = _env_int("RCC_CACHE_MAX_BYTES", DEFAULT_MAX_BYTES)
        #: Maximum entry count / total bytes; ``<= 0`` disables the bound.
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[SimResult]:
        """The cached result for ``key``, or None on miss.

        Any unreadable entry — bad JSON, wrong envelope, mismatched key,
        payload that fails reconstruction — is deleted and treated as a
        miss so the cell is recomputed instead of crashing the sweep.
        """
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as f:
                blob = json.load(f)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, UnicodeDecodeError):
            self._evict(path)
            self.misses += 1
            return None
        try:
            if blob["format"] != CACHE_FORMAT or blob["key"] != key:
                raise ValueError("cache envelope mismatch")
            result = SimResult.from_payload(blob["result"])
        except (KeyError, TypeError, ValueError, AttributeError):
            self._evict(path)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: SimResult,
            cell: Optional[Dict[str, Any]] = None) -> bool:
        """Store ``result`` under ``key``; returns False when skipped.

        Results carrying per-op logs (``record_ops`` runs) are not cached:
        the payload deliberately drops op logs, so replaying such an entry
        would silently return less than the original run produced.
        """
        if result.op_logs:
            return False
        os.makedirs(self.root, exist_ok=True)
        blob = {
            "format": CACHE_FORMAT,
            "key": key,
            "cell": cell or {},
            "result": result.to_payload(),
        }
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                json.dump(blob, f)
            os.replace(tmp, self.path_for(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._enforce_bound()
        return True

    def clear(self) -> None:
        """Delete the whole cache directory (``make clean-cache``)."""
        shutil.rmtree(self.root, ignore_errors=True)

    # ------------------------------------------------------------------
    def _enforce_bound(self) -> None:
        """Trim the cache directory back under its size bounds.

        Entries are dropped oldest mtime first (path as tiebreak, for
        deterministic behavior when a filesystem's timestamps are
        coarse). Runs after every write; the scan is O(entries), which
        is trivial next to the simulation a write represents.
        """
        max_entries = self.max_entries
        max_bytes = self.max_bytes
        if max_entries <= 0 and max_bytes <= 0:
            return
        entries = []  # (mtime_ns, path, size)
        total = 0
        try:
            it = os.scandir(self.root)
        except OSError:
            return
        with it:
            for de in it:
                if not de.name.endswith(".json"):
                    continue
                try:
                    st = de.stat()
                except OSError:
                    continue
                entries.append((st.st_mtime_ns, de.path, st.st_size))
                total += st.st_size
        count = len(entries)
        if not ((max_entries > 0 and count > max_entries)
                or (max_bytes > 0 and total > max_bytes)):
            return
        entries.sort()
        for _, path, size in entries:
            if ((max_entries <= 0 or count <= max_entries)
                    and (max_bytes <= 0 or total <= max_bytes)):
                break
            self._evict(path)
            count -= 1
            total -= size

    def _evict(self, path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass
        self.evictions += 1

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<ResultCache {self.root!r} hits={self.hits} "
                f"misses={self.misses} evictions={self.evictions}>")
