"""The sweep execution engine: fan independent cells out over processes.

The paper's evaluation is a grid of independent simulations (12 workloads
x 6 protocols per figure), so sweep throughput — not any single run — is
what bounds iteration time. :class:`SweepExecutor` schedules such grids:

* ``jobs=1`` (the default, or ``RCC_JOBS`` in the environment) runs
  serially in-process, preserving the historical bit-identical behavior;
* ``jobs>1`` fans cells out over a ``ProcessPoolExecutor`` (``fork``
  start method where available, so workers inherit the loaded modules and
  the parent's hash seed — a prerequisite for replaying identical runs);
* when process pools are unavailable (restricted environments, or
  ``RCC_NO_MP=1``) the engine degrades gracefully to in-process serial
  execution rather than failing;
* each cell gets an optional wall-clock ``timeout`` and exactly one
  retry in a fresh single-worker pool; a cell that still fails surfaces
  as :class:`~repro.errors.HarnessError` (never a raw
  ``BrokenProcessPool``), with every other cell's result unaffected;
* results come back in submission order regardless of completion order,
  so downstream aggregation is order-deterministic.

Layered on top is the content-keyed on-disk result cache
(:mod:`repro.exec.cache`): ``run_cells`` consults it before scheduling
and fills it after computing, making warm re-runs near-instant.

Determinism contract: the simulator is a deterministic function of the
cell, and workers are forked replicas evaluating that same function, so
``jobs=N`` produces results identical to serial execution — the
equivalence battery in ``tests/test_exec_parallel.py`` enforces this for
every experiment.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import HarnessError
from repro.exec.cache import ResultCache
from repro.exec.cells import SimCell, cell_key, run_cell
from repro.sim.results import SimResult


def _timed_call(fn: Callable[[Any], Any], item: Any) -> Tuple[float, Any]:
    """Worker-side wrapper: run one item and report its wall time (module
    level so it pickles by reference into worker processes)."""
    t0 = time.perf_counter()
    out = fn(item)
    return time.perf_counter() - t0, out


def _percentile(samples: List[float], p: float) -> float:
    """Nearest-rank percentile of a non-empty, unsorted sample list."""
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1,
                      int(round(p / 100.0 * len(ordered) + 0.5)) - 1))
    return ordered[rank]


@dataclass
class SweepStats:
    """What one ``run_cells``/``map`` invocation did, and how fast."""

    n_cells: int = 0
    n_cached: int = 0
    n_computed: int = 0
    retries: int = 0
    wall: float = 0.0
    mode: str = "serial"
    jobs: int = 1
    #: Result-cache traffic attributable to this sweep (deltas of the
    #: cache's cumulative counters); None when no cache was attached.
    cache_hits: Optional[int] = None
    cache_misses: Optional[int] = None
    cache_evictions: Optional[int] = None
    #: Per computed cell wall time, in submission order.
    cell_times: List[float] = field(default_factory=list)
    #: Per computed cell simulation throughput (engine events per second
    #: of wall time), in submission order; only cells whose result exposes
    #: ``events_fired`` (i.e. ``SimResult``) contribute.
    cell_eps: List[float] = field(default_factory=list)

    @property
    def cells_per_second(self) -> float:
        return self.n_cells / self.wall if self.wall > 0 else 0.0

    def record_cell(self, elapsed: float, value: Any) -> None:
        """Account one computed cell: wall time, and events/sec when the
        result carries an engine event count."""
        self.n_computed += 1
        self.cell_times.append(elapsed)
        fired = getattr(value, "events_fired", None)
        if fired and elapsed > 0:
            self.cell_eps.append(fired / elapsed)

    def render(self) -> str:
        """One-line throughput summary printed after each sweep."""
        parts = [f"{self.n_cells} cells"]
        if self.n_cached:
            parts.append(f"{self.n_cached} cached")
        if self.retries:
            parts.append(f"{self.retries} retried")
        head = ", ".join(parts)
        line = (f"[sweep: {head} in {self.wall:.2f}s — "
                f"{self.cells_per_second:.1f} cells/s")
        if self.cell_times:
            p50 = _percentile(self.cell_times, 50)
            p95 = _percentile(self.cell_times, 95)
            line += f"; per-cell p50 {p50 * 1000:.0f}ms p95 {p95 * 1000:.0f}ms"
        if self.cell_eps:
            p50 = _percentile(self.cell_eps, 50)
            p95 = _percentile(self.cell_eps, 95)
            line += (f"; events/s p50 {p50 / 1000:.0f}k"
                     f" p95 {p95 / 1000:.0f}k")
        if self.cache_hits is not None:
            line += (f"; cache {self.cache_hits} hit"
                     f"/{self.cache_misses} miss")
            if self.cache_evictions:
                line += f"/{self.cache_evictions} evicted"
        line += f"; mode={self.mode} jobs={self.jobs}]"
        return line


class SweepExecutor:
    """Runs batches of independent work items, optionally in parallel and
    optionally through the on-disk result cache."""

    def __init__(self, jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 timeout: Optional[float] = None,
                 worker: Callable[[SimCell], SimResult] = None,
                 on_summary: Optional[Callable[[str], None]] = None):
        if jobs is None:
            jobs = int(os.environ.get("RCC_JOBS", "1") or 1)
        self.jobs = max(1, jobs)
        self.cache = cache
        self.timeout = timeout
        self.worker = worker if worker is not None else run_cell
        self.on_summary = on_summary
        self.last_stats: Optional[SweepStats] = None

    # ------------------------------------------------------------------
    # Cell-level entry point (cache-aware)
    # ------------------------------------------------------------------
    def run_cells(self, cells: Sequence[SimCell]) -> List[SimResult]:
        """Run a batch of cells; results in input order.

        Cached cells are replayed from disk; the rest are scheduled on the
        pool (or serially) and written back to the cache.
        """
        t0 = time.perf_counter()
        cache = self.cache
        counters0 = ((cache.hits, cache.misses, cache.evictions)
                     if cache is not None else None)
        results: List[Optional[SimResult]] = [None] * len(cells)
        keys: List[Optional[str]] = [None] * len(cells)
        pending: List[int] = []
        for i, cell in enumerate(cells):
            if self.cache is not None:
                keys[i] = cell_key(cell)
                hit = self.cache.get(keys[i])
                if hit is not None:
                    results[i] = hit
                    continue
            pending.append(i)

        if pending:
            computed = self._map([cells[i] for i in pending], self.worker,
                                 [cells[i].label for i in pending])
            for i, res in zip(pending, computed):
                results[i] = res
                if self.cache is not None and res is not None:
                    self.cache.put(keys[i], res, cell={
                        "protocol": cells[i].protocol,
                        "workload": cells[i].workload,
                        "intensity": cells[i].intensity,
                        "seed": cells[i].seed,
                        "ts_overrides": list(cells[i].ts_overrides),
                    })
        else:
            self._map([], self.worker, [])

        stats = self.last_stats
        stats.n_cells = len(cells)
        stats.n_cached = len(cells) - len(pending)
        stats.wall = time.perf_counter() - t0
        if counters0 is not None:
            stats.cache_hits = cache.hits - counters0[0]
            stats.cache_misses = cache.misses - counters0[1]
            stats.cache_evictions = cache.evictions - counters0[2]
        if self.on_summary is not None:
            self.on_summary(stats.render())
        return results

    # ------------------------------------------------------------------
    # Generic entry point (the fuzz campaign uses this directly)
    # ------------------------------------------------------------------
    def map(self, fn: Callable[[Any], Any], items: Sequence[Any],
            labels: Optional[Sequence[str]] = None) -> List[Any]:
        """Apply ``fn`` to every item with the engine's scheduling policy
        (pool/serial, timeout, one retry, HarnessError on failure).
        Results are returned in input order."""
        t0 = time.perf_counter()
        out = self._map(items, fn, list(labels) if labels is not None
                        else [f"item[{i}]" for i in range(len(items))])
        self.last_stats.n_cells = len(items)
        self.last_stats.wall = time.perf_counter() - t0
        if self.on_summary is not None:
            self.on_summary(self.last_stats.render())
        return out

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _map(self, items: Sequence[Any], fn: Callable[[Any], Any],
             labels: Sequence[str]) -> List[Any]:
        stats = SweepStats(jobs=self.jobs)
        self.last_stats = stats
        if not items:
            return []
        if self.jobs <= 1:
            return self._map_serial(items, fn, labels, stats)
        pool = self._make_pool(self.jobs)
        if pool is None:
            stats.mode = "serial-fallback"
            return self._map_serial(items, fn, labels, stats)
        stats.mode = "fork-pool"
        return self._map_pool(pool, items, fn, labels, stats)

    def _map_serial(self, items: Sequence[Any], fn: Callable[[Any], Any],
                    labels: Sequence[str], stats: SweepStats) -> List[Any]:
        out: List[Any] = []
        errors: List[str] = []
        for item, label in zip(items, labels):
            try:
                elapsed, value = _timed_call(fn, item)
            except Exception as exc:
                stats.retries += 1
                try:
                    elapsed, value = _timed_call(fn, item)
                except Exception as exc2:
                    errors.append(f"{label}: "
                                  f"{type(exc2).__name__}: {exc2}")
                    out.append(None)
                    continue
            stats.record_cell(elapsed, value)
            out.append(value)
        if errors:
            raise HarnessError(
                f"{len(errors)} cell(s) failed after retry: "
                + "; ".join(errors))
        return out

    def _map_pool(self, pool, items: Sequence[Any],
                  fn: Callable[[Any], Any], labels: Sequence[str],
                  stats: SweepStats) -> List[Any]:
        out: List[Any] = [None] * len(items)
        failed: List[Tuple[int, BaseException]] = []
        wedged = False
        try:
            futures = [pool.submit(_timed_call, fn, item) for item in items]
            for i, fut in enumerate(futures):
                try:
                    elapsed, value = fut.result(timeout=self.timeout)
                except TimeoutError as exc:
                    wedged = True
                    failed.append((i, exc))
                    continue
                except Exception as exc:
                    failed.append((i, exc))
                    continue
                stats.record_cell(elapsed, value)
                out[i] = value
        finally:
            self._shutdown_pool(pool, force=wedged)

        errors: List[str] = []
        for i, first_exc in failed:
            stats.retries += 1
            try:
                elapsed, value = self._run_isolated(fn, items[i])
            except Exception as exc:
                errors.append(
                    f"{labels[i]}: {type(first_exc).__name__}: {first_exc}"
                    f" (retry: {type(exc).__name__}: {exc})")
                continue
            stats.record_cell(elapsed, value)
            out[i] = value
        if errors:
            raise HarnessError(
                f"{len(errors)} cell(s) failed after retry: "
                + "; ".join(errors))
        return out

    def _run_isolated(self, fn: Callable[[Any], Any],
                      item: Any) -> Tuple[float, Any]:
        """Retry one wedged/crashed cell in a fresh single-worker pool so
        a poisoned worker cannot take the retry down with it."""
        pool = self._make_pool(1)
        if pool is None:
            return _timed_call(fn, item)
        wedged = False
        try:
            fut = pool.submit(_timed_call, fn, item)
            try:
                return fut.result(timeout=self.timeout)
            except TimeoutError:
                wedged = True
                raise
        finally:
            self._shutdown_pool(pool, force=wedged)

    @staticmethod
    def _make_pool(workers: int):
        """A fork-context process pool, or None when multiprocessing is
        unusable here (missing primitives, sandboxing, RCC_NO_MP=1)."""
        if os.environ.get("RCC_NO_MP"):
            return None
        try:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor
            if "fork" in multiprocessing.get_all_start_methods():
                ctx = multiprocessing.get_context("fork")
            else:  # pragma: no cover - non-fork platforms
                ctx = multiprocessing.get_context()
            return ProcessPoolExecutor(max_workers=workers, mp_context=ctx)
        except Exception:  # pragma: no cover - restricted environments
            return None

    @staticmethod
    def _shutdown_pool(pool, force: bool = False) -> None:
        """Shut the pool down; with ``force`` (a cell timed out and its
        worker may be wedged) terminate workers first, since a plain
        shutdown would block on the hung cell forever."""
        if force:
            pool.shutdown(wait=False, cancel_futures=True)
            for proc in list(
                    (getattr(pool, "_processes", None) or {}).values()):
                try:
                    if proc.is_alive():
                        proc.terminate()
                except Exception:  # pragma: no cover - best-effort reaping
                    pass
        pool.shutdown(wait=True)
