"""The sweep execution engine: fan independent cells out over processes.

The paper's evaluation is a grid of independent simulations (12 workloads
x 6 protocols per figure), so sweep throughput — not any single run — is
what bounds iteration time. :class:`SweepExecutor` schedules such grids:

* ``jobs=1`` (the default, or ``RCC_JOBS`` in the environment) runs
  serially in-process, preserving the historical bit-identical behavior;
* ``jobs>1`` fans cells out over a ``ProcessPoolExecutor`` (``fork``
  start method where available, so workers inherit the loaded modules and
  the parent's hash seed — a prerequisite for replaying identical runs);
* when process pools are unavailable (restricted environments, or
  ``RCC_NO_MP=1``) the engine degrades gracefully to in-process serial
  execution rather than failing;
* each cell gets an optional wall-clock ``timeout`` and bounded
  exponential-backoff retries (:class:`RetryPolicy`; retries run in a
  fresh single-worker pool so a poisoned worker cannot take them down);
* a worker death breaks the shared pool for every un-collected future —
  the engine rebuilds the pool and *resubmits* the survivors as a batch
  instead of burning one isolated single-worker pool per innocent cell;
* a cell that still fails surfaces inside a
  :class:`~repro.errors.HarnessError` (never a raw
  ``BrokenProcessPool``), carrying one structured
  :class:`~repro.errors.CellFailure` per cell classified under the
  ``timeout`` / ``crash`` / ``poisoned-pool`` / ``cache-corrupt`` /
  ``exception`` taxonomy, with every other cell's result unaffected;
* results come back in submission order regardless of completion order,
  so downstream aggregation is order-deterministic.

Layered on top are the content-keyed on-disk result cache
(:mod:`repro.exec.cache`) — ``run_cells`` consults it before scheduling
and fills it after computing — and the campaign journal
(:mod:`repro.exec.journal`): with ``journal_dir``/``resume`` set, every
finished cell is appended to an fsync'd JSONL journal the moment it
completes, and an interrupted campaign restarts from its last completed
cell. Journal replay must agree with the cache: a digest disagreement is
surfaced as a ``cache-corrupt`` failure, never silently overwritten.

Deterministic fault injection (:mod:`repro.chaos`) hooks the worker
boundary via ``RCC_CHAOS``; with the variable unset the hooks are
no-ops.

Determinism contract: the simulator is a deterministic function of the
cell, and workers are forked replicas evaluating that same function, so
``jobs=N`` produces results identical to serial execution — the
equivalence battery in ``tests/test_exec_parallel.py`` enforces this for
every experiment.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import BrokenExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.chaos import ChaosCrash, arm_parent, plan_from_env
from repro.errors import CellFailure, HarnessError
from repro.exec.cache import ResultCache
from repro.exec.cells import SimCell, cell_key, run_cell
from repro.exec.journal import (
    CampaignJournal, campaign_id, decode_value, encode_value,
    payload_digest,
)
from repro.errors import JournalError
from repro.sim.results import SimResult

_TIMEOUT_EXCS = (TimeoutError, FuturesTimeout)


def _timed_call(fn: Callable[[Any], Any], item: Any,
                label: Optional[str] = None,
                attempt: int = 1) -> Tuple[float, Any]:
    """Worker-side wrapper: run one item and report its wall time (module
    level so it pickles by reference into worker processes).

    This is also the chaos layer's worker boundary: when ``RCC_CHAOS``
    names worker faults, they fire here — in whatever process is about
    to evaluate the cell — keyed deterministically by the cell's label
    and attempt number.
    """
    plan = plan_from_env()
    if plan is not None and label is not None:
        plan.fire_worker(label, attempt)
    t0 = time.perf_counter()
    out = fn(item)
    return time.perf_counter() - t0, out


def classify_exception(exc: BaseException, isolated: bool = True) -> str:
    """File one cell-level exception under the failure taxonomy.

    ``isolated`` says whether the evidence comes from the cell's own
    isolated single-worker pool (or in-process execution): a broken pool
    observed only as shared-pool collateral is ``poisoned-pool``, while
    a pool the cell broke all by itself is a confirmed ``crash``.
    """
    if isinstance(exc, ChaosCrash):
        return "crash"
    if isinstance(exc, _TIMEOUT_EXCS):
        return "timeout"
    if isinstance(exc, BrokenExecutor):
        return "crash" if isolated else "poisoned-pool"
    return "exception"


def _percentile(samples: List[float], p: float) -> float:
    """Nearest-rank percentile of a non-empty, unsorted sample list."""
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1,
                      int(round(p / 100.0 * len(ordered) + 0.5)) - 1))
    return ordered[rank]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential-backoff retry budget for failing cells.

    A cell gets ``max_attempts`` total attempts; before retry ``k``
    (1-based count of failures so far) the engine sleeps
    ``min(max_delay, base_delay * 2**(k-1))``. Defaults give three
    attempts with 50ms/100ms pauses — enough to absorb transient faults
    without stalling a sweep behind a deterministic crasher.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0

    def delay(self, failures: int) -> float:
        return min(self.max_delay, self.base_delay * (2 ** (failures - 1)))

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        raw = os.environ.get("RCC_MAX_ATTEMPTS")
        try:
            max_attempts = max(1, int(raw)) if raw else 3
        except ValueError:
            max_attempts = 3
        return cls(max_attempts=max_attempts)


@dataclass
class SweepStats:
    """What one ``run_cells``/``map`` invocation did, and how fast."""

    n_cells: int = 0
    n_cached: int = 0
    n_computed: int = 0
    #: Cells replayed from a campaign journal instead of re-running.
    n_replayed: int = 0
    retries: int = 0
    #: Shared-pool rebuilds after a worker death broke the pool.
    pool_rebuilds: int = 0
    wall: float = 0.0
    mode: str = "serial"
    jobs: int = 1
    #: Result-cache traffic attributable to this sweep (deltas of the
    #: cache's cumulative counters); None when no cache was attached.
    cache_hits: Optional[int] = None
    cache_misses: Optional[int] = None
    cache_evictions: Optional[int] = None
    #: Per computed cell wall time, in submission order.
    cell_times: List[float] = field(default_factory=list)
    #: Per computed cell simulation throughput (engine events per second
    #: of wall time), in submission order; only cells whose result exposes
    #: ``events_fired`` (i.e. ``SimResult``) contribute.
    cell_eps: List[float] = field(default_factory=list)

    @property
    def cells_per_second(self) -> float:
        return self.n_cells / self.wall if self.wall > 0 else 0.0

    def record_cell(self, elapsed: float, value: Any) -> None:
        """Account one computed cell: wall time, and events/sec when the
        result carries an engine event count."""
        self.n_computed += 1
        self.cell_times.append(elapsed)
        fired = getattr(value, "events_fired", None)
        if fired and elapsed > 0:
            self.cell_eps.append(fired / elapsed)

    def render(self) -> str:
        """One-line throughput summary printed after each sweep."""
        parts = [f"{self.n_cells} cells"]
        if self.n_cached:
            parts.append(f"{self.n_cached} cached")
        if self.n_replayed:
            parts.append(f"{self.n_replayed} replayed")
        if self.retries:
            parts.append(f"{self.retries} retried")
        if self.pool_rebuilds:
            parts.append(f"{self.pool_rebuilds} pool rebuild(s)")
        head = ", ".join(parts)
        line = (f"[sweep: {head} in {self.wall:.2f}s — "
                f"{self.cells_per_second:.1f} cells/s")
        if self.cell_times:
            p50 = _percentile(self.cell_times, 50)
            p95 = _percentile(self.cell_times, 95)
            line += f"; per-cell p50 {p50 * 1000:.0f}ms p95 {p95 * 1000:.0f}ms"
        if self.cell_eps:
            p50 = _percentile(self.cell_eps, 50)
            p95 = _percentile(self.cell_eps, 95)
            line += (f"; events/s p50 {p50 / 1000:.0f}k"
                     f" p95 {p95 / 1000:.0f}k")
        if self.cache_hits is not None:
            line += (f"; cache {self.cache_hits} hit"
                     f"/{self.cache_misses} miss")
            if self.cache_evictions:
                line += f"/{self.cache_evictions} evicted"
        line += f"; mode={self.mode} jobs={self.jobs}]"
        return line


class _NullSink:
    """Per-cell completion callbacks; the default does nothing."""

    divergences: List[CellFailure] = []

    def ok(self, batch_i: int, value: Any, elapsed: float,
           attempts: int) -> None:
        pass

    def fail(self, batch_i: int, failure: CellFailure) -> None:
        pass


class _CellSink(_NullSink):
    """``run_cells`` completion hook: cache fill + journal append, in
    that order (so a journal ``ok`` record implies the cache entry is
    already durable), plus digest cross-checking against any earlier
    journal record for the same cell."""

    def __init__(self, journal: Optional[CampaignJournal],
                 cache: Optional[ResultCache],
                 cells: Sequence[SimCell], seqs: Sequence[int],
                 keys: Sequence[Optional[str]],
                 expected: Dict[int, str]):
        self.journal = journal
        self.cache = cache
        self.cells = cells
        self.seqs = list(seqs)
        self.keys = keys
        self.expected = expected  # seq -> digest an earlier record pinned
        self.divergences: List[CellFailure] = []

    def ok(self, batch_i: int, value: Any, elapsed: float,
           attempts: int) -> None:
        seq = self.seqs[batch_i]
        cell = self.cells[seq]
        key = self.keys[seq] or ""
        payload = value.to_payload() if hasattr(value, "to_payload") \
            else value
        digest = payload_digest(payload)
        want = self.expected.get(seq)
        if want and digest != want:
            # The journal pinned a different result for this cell than
            # the recompute produced: surface it, never overwrite.
            failure = CellFailure(
                cell.label, "cache-corrupt", attempts,
                f"recomputed result digest {digest[:12]}... disagrees "
                f"with the journal's recorded {want[:12]}... for key "
                f"{key[:12]}... — nondeterminism or corruption; rotate "
                f"the journal or clear the cache before resuming")
            self.divergences.append(failure)
            self.fail(batch_i, failure)
            return
        if self.cache is not None:
            self.cache.put(key, value, cell={
                "protocol": cell.protocol,
                "workload": cell.workload,
                "intensity": cell.intensity,
                "seed": cell.seed,
                "ts_overrides": list(cell.ts_overrides),
            })
        if self.journal is not None:
            embedded = (encode_value(payload)
                        if self.cache is None else None)
            self.journal.record_ok(seq, key, cell.label, digest,
                                   elapsed, attempts, payload=embedded)

    def fail(self, batch_i: int, failure: CellFailure) -> None:
        if self.journal is not None:
            seq = self.seqs[batch_i]
            self.journal.record_failure(
                seq, self.keys[seq] or "", failure.label, failure.kind,
                failure.message, failure.attempts)


class _MapSink(_NullSink):
    """``map`` completion hook: journal append with the result embedded
    (generic work items have no content-keyed cache to replay from)."""

    def __init__(self, journal: Optional[CampaignJournal],
                 seqs: Sequence[int], labels: Sequence[str]):
        self.journal = journal
        self.seqs = list(seqs)
        self.labels = labels
        self.divergences: List[CellFailure] = []

    def ok(self, batch_i: int, value: Any, elapsed: float,
           attempts: int) -> None:
        if self.journal is None:
            return
        seq = self.seqs[batch_i]
        embedded = encode_value(value)
        self.journal.record_ok(seq, self.labels[seq], self.labels[seq],
                               embedded["digest"], elapsed, attempts,
                               payload=embedded)

    def fail(self, batch_i: int, failure: CellFailure) -> None:
        if self.journal is None:
            return
        seq = self.seqs[batch_i]
        self.journal.record_failure(seq, self.labels[seq], failure.label,
                                    failure.kind, failure.message,
                                    failure.attempts)


class SweepExecutor:
    """Runs batches of independent work items, optionally in parallel,
    optionally through the on-disk result cache, and optionally under a
    crash-safe campaign journal."""

    def __init__(self, jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 timeout: Optional[float] = None,
                 worker: Callable[[SimCell], SimResult] = None,
                 on_summary: Optional[Callable[[str], None]] = None,
                 retry: Optional[RetryPolicy] = None,
                 journal_dir: Optional[str] = None,
                 resume: Optional[str] = None):
        if jobs is None:
            jobs = int(os.environ.get("RCC_JOBS", "1") or 1)
        self.jobs = max(1, jobs)
        self.cache = cache
        self.timeout = timeout
        self.worker = worker if worker is not None else run_cell
        self.on_summary = on_summary
        self.retry = retry if retry is not None else RetryPolicy.from_env()
        if journal_dir is None:
            journal_dir = os.environ.get("RCC_JOURNAL_DIR") or None
        # --resume pointing at a directory is shorthand for journaling
        # into it (auto-resume is content-keyed, so this just works).
        if resume and os.path.isdir(resume):
            journal_dir, resume = resume, None
        self.journal_dir = journal_dir
        self.resume = resume
        self.last_stats: Optional[SweepStats] = None
        self.last_journal_path: Optional[str] = None
        #: Lifetime count of worker pools this executor constructed —
        #: the crash-amplification regression gate counts these.
        self.pools_built = 0

    # ------------------------------------------------------------------
    # Journal plumbing
    # ------------------------------------------------------------------
    @property
    def journaling(self) -> bool:
        return bool(self.journal_dir or self.resume)

    def _open_journal(self, tokens: Sequence[str], n_cells: int,
                      meta: Optional[Dict[str, Any]],
                      batch_kind: str) -> Optional[CampaignJournal]:
        if not self.journaling or n_cells == 0:
            return None
        full_meta = dict(meta or {})
        full_meta["batch"] = batch_kind
        cid = campaign_id(tokens, full_meta)
        if self.resume:
            path, explicit = self.resume, True
        else:
            path = os.path.join(self.journal_dir,
                                f"campaign-{cid[:16]}.jsonl")
            explicit = False
        journal = CampaignJournal.open(path, cid, n_cells, meta=full_meta,
                                       explicit=explicit,
                                       on_warning=self.on_summary)
        self.last_journal_path = path
        return journal

    # ------------------------------------------------------------------
    # Cell-level entry point (cache- and journal-aware)
    # ------------------------------------------------------------------
    def run_cells(self, cells: Sequence[SimCell],
                  meta: Optional[Dict[str, Any]] = None
                  ) -> List[SimResult]:
        """Run a batch of cells; results in input order.

        Journal-completed cells are replayed (from the cache, or from
        payloads embedded in the journal when no cache is attached);
        cached cells are replayed from disk; the rest are scheduled on
        the pool (or serially), written back to the cache, and journaled
        as they finish. A digest disagreement between journal and cache
        raises a ``cache-corrupt`` :class:`HarnessError` — the two
        stores are never silently reconciled.
        """
        t0 = time.perf_counter()
        cache = self.cache
        counters0 = ((cache.hits, cache.misses, cache.evictions)
                     if cache is not None else None)
        n = len(cells)
        results: List[Optional[SimResult]] = [None] * n
        want_keys = cache is not None or self.journaling
        keys: List[Optional[str]] = (
            [cell_key(c) for c in cells] if want_keys else [None] * n)
        journal = self._open_journal([k or "" for k in keys], n, meta,
                                     "cells")
        try:
            replayed, expected, divergences = self._replay_from_journal(
                journal, cells, keys, results)
            if divergences:
                raise HarnessError.from_failures(divergences)

            cached = set()
            for i in range(n):
                if results[i] is None and cache is not None:
                    hit = cache.get(keys[i])
                    if hit is not None:
                        results[i] = hit
                        cached.add(i)
                        if journal is not None and i not in replayed:
                            # Adopt the foreign cache hit into this
                            # campaign's journal so resume stops
                            # depending on the (evictable) cache alone.
                            self._journal_cache_hit(journal, i, cells[i],
                                                    keys[i], hit,
                                                    expected, divergences)
            if divergences:
                raise HarnessError.from_failures(divergences)

            pending = [i for i in range(n) if results[i] is None
                       and i not in replayed]
            sink = _CellSink(journal, cache, cells, pending, keys,
                             expected)
            if pending:
                computed = self._map([cells[i] for i in pending],
                                     self.worker,
                                     [cells[i].label for i in pending],
                                     sink=sink)
                for i, res in zip(pending, computed):
                    results[i] = res
            else:
                self._map([], self.worker, [], sink=sink)
            if sink.divergences:
                raise HarnessError.from_failures(sink.divergences)
        finally:
            if journal is not None:
                journal.close()

        stats = self.last_stats
        stats.n_cells = n
        stats.n_replayed = len(replayed)
        stats.n_cached = len(cached)
        stats.wall = time.perf_counter() - t0
        if counters0 is not None:
            stats.cache_hits = cache.hits - counters0[0]
            stats.cache_misses = cache.misses - counters0[1]
            stats.cache_evictions = cache.evictions - counters0[2]
        if self.on_summary is not None:
            self.on_summary(stats.render())
        return results

    def _replay_from_journal(self, journal: Optional[CampaignJournal],
                             cells: Sequence[SimCell],
                             keys: Sequence[Optional[str]],
                             results: List[Optional[SimResult]]):
        """Fill ``results`` from the journal's completed records.

        Returns ``(replayed seqs, expected-digest map for cells that
        must recompute, divergence failures)``.
        """
        replayed: set = set()
        expected: Dict[int, str] = {}
        divergences: List[CellFailure] = []
        if journal is None:
            return replayed, expected, divergences
        cache = self.cache
        for seq, rec in sorted(journal.completed().items()):
            if rec.get("key") != keys[seq]:
                continue
            digest = rec.get("digest") or ""
            if cache is not None:
                hit = cache.get(keys[seq])
                if hit is not None:
                    have = payload_digest(hit.to_payload())
                    if digest and have != digest:
                        divergences.append(CellFailure(
                            cells[seq].label, "cache-corrupt", 0,
                            f"journal records digest {digest[:12]}... "
                            f"but the cache holds {have[:12]}... for key "
                            f"{(keys[seq] or '')[:12]}... — refusing to "
                            f"pick a side; rotate the journal or clear "
                            f"the cache entry"))
                        continue
                    results[seq] = hit
                    replayed.add(seq)
                    continue
            embedded = rec.get("payload")
            if embedded is not None:
                try:
                    payload = decode_value(embedded)
                    res = SimResult.from_payload(payload)
                except (JournalError, Exception):
                    # Unusable embed: recompute, but hold the recompute
                    # to the journaled digest.
                    if digest:
                        expected[seq] = digest
                    continue
                results[seq] = res
                replayed.add(seq)
                if cache is not None:
                    # Backfill the evicted cache entry from the journal.
                    self.cache.put(keys[seq], res)
                continue
            # Digest-only record whose cache entry is gone: the cell
            # recomputes, pinned to the recorded digest.
            if digest:
                expected[seq] = digest
        return replayed, expected, divergences

    def _journal_cache_hit(self, journal: CampaignJournal, seq: int,
                           cell: SimCell, key: Optional[str],
                           hit: SimResult, expected: Dict[int, str],
                           divergences: List[CellFailure]) -> None:
        digest = payload_digest(hit.to_payload())
        want = expected.pop(seq, None)
        if want and want != digest:
            divergences.append(CellFailure(
                cell.label, "cache-corrupt", 0,
                f"cache entry digest {digest[:12]}... disagrees with "
                f"the journal's {want[:12]}... for key "
                f"{(key or '')[:12]}..."))
            return
        journal.record_ok(seq, key or "", cell.label, digest, 0.0, 0,
                          payload=None)

    # ------------------------------------------------------------------
    # Generic entry point (the fuzz campaigns use this directly)
    # ------------------------------------------------------------------
    def map(self, fn: Callable[[Any], Any], items: Sequence[Any],
            labels: Optional[Sequence[str]] = None,
            meta: Optional[Dict[str, Any]] = None) -> List[Any]:
        """Apply ``fn`` to every item with the engine's scheduling policy
        (pool/serial, timeout, bounded backoff retries, HarnessError on
        failure). Results are returned in input order.

        With journaling enabled, each completed item's result is
        embedded in the journal (JSON when possible, pickle otherwise)
        and an interrupted campaign resumes from its last completed
        item. ``meta`` distinguishes campaigns whose labels alone would
        collide (seeds, knob sets, protocol lists).
        """
        t0 = time.perf_counter()
        labels = (list(labels) if labels is not None
                  else [f"item[{i}]" for i in range(len(items))])
        n = len(items)
        results: List[Any] = [None] * n
        replayed: set = set()
        journal = self._open_journal(labels, n, meta, "map")
        try:
            if journal is not None:
                for seq, rec in sorted(journal.completed().items()):
                    if rec.get("label") != labels[seq]:
                        continue
                    embedded = rec.get("payload")
                    if embedded is None:
                        continue
                    try:
                        results[seq] = decode_value(embedded)
                    except JournalError:
                        continue
                    replayed.add(seq)
            pending = [i for i in range(n) if i not in replayed]
            sink = _MapSink(journal, pending, labels)
            computed = self._map([items[i] for i in pending], fn,
                                 [labels[i] for i in pending], sink=sink)
            for i, value in zip(pending, computed):
                results[i] = value
        finally:
            if journal is not None:
                journal.close()
        self.last_stats.n_cells = n
        self.last_stats.n_replayed = len(replayed)
        self.last_stats.wall = time.perf_counter() - t0
        if self.on_summary is not None:
            self.on_summary(self.last_stats.render())
        return results

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _map(self, items: Sequence[Any], fn: Callable[[Any], Any],
             labels: Sequence[str],
             sink: Optional[_NullSink] = None) -> List[Any]:
        stats = SweepStats(jobs=self.jobs)
        self.last_stats = stats
        sink = sink if sink is not None else _NullSink()
        if not items:
            return []
        arm_parent()
        if self.jobs <= 1:
            return self._map_serial(items, fn, labels, stats, sink)
        pool = self._make_pool(self.jobs)
        if pool is None:
            stats.mode = "serial-fallback"
            return self._map_serial(items, fn, labels, stats, sink)
        stats.mode = "fork-pool"
        return self._map_pool(pool, items, fn, labels, stats, sink)

    def _map_serial(self, items: Sequence[Any], fn: Callable[[Any], Any],
                    labels: Sequence[str], stats: SweepStats,
                    sink: _NullSink) -> List[Any]:
        out: List[Any] = []
        failures: List[CellFailure] = []
        for idx, (item, label) in enumerate(zip(items, labels)):
            attempts = 0
            last: Optional[BaseException] = None
            done = False
            while attempts < self.retry.max_attempts:
                if attempts:
                    stats.retries += 1
                    time.sleep(self.retry.delay(attempts))
                attempts += 1
                try:
                    elapsed, value = _timed_call(fn, item, label, attempts)
                    done = True
                    break
                except Exception as exc:
                    last = exc
            if done:
                stats.record_cell(elapsed, value)
                out.append(value)
                sink.ok(idx, value, elapsed, attempts)
            else:
                failure = CellFailure(
                    label, classify_exception(last, isolated=True),
                    attempts, f"{type(last).__name__}: {last}")
                failures.append(failure)
                out.append(None)
                sink.fail(idx, failure)
        if failures:
            raise HarnessError.from_failures(failures)
        return out

    def _map_pool(self, pool, items: Sequence[Any],
                  fn: Callable[[Any], Any], labels: Sequence[str],
                  stats: SweepStats, sink: _NullSink) -> List[Any]:
        n = len(items)
        out: List[Any] = [None] * n
        attempts = [0] * n
        broken_rounds = [0] * n
        #: (index, first observed exception) for cells that go to the
        #: isolated retry stage.
        retry_q: List[Tuple[int, BaseException]] = []
        pending = list(range(n))
        current = pool
        wedged = False
        try:
            while pending:
                wedged = False
                futs = []
                broken: List[Tuple[int, BaseException]] = []
                for i in pending:
                    attempts[i] += 1
                    try:
                        futs.append((i, current.submit(
                            _timed_call, fn, items[i], labels[i],
                            attempts[i])))
                    except BrokenExecutor as exc:
                        # A just-submitted cell killed its worker before
                        # the batch finished submitting; the rest of the
                        # batch joins this round's broken set.
                        broken.append((i, exc))
                for i, fut in futs:
                    try:
                        elapsed, value = fut.result(timeout=self.timeout)
                    except _TIMEOUT_EXCS as exc:
                        wedged = True
                        retry_q.append((i, exc))
                        continue
                    except BrokenExecutor as exc:
                        broken.append((i, exc))
                        continue
                    except Exception as exc:
                        retry_q.append((i, exc))
                        continue
                    stats.record_cell(elapsed, value)
                    out[i] = value
                    sink.ok(i, value, elapsed, attempts[i])
                pending = []
                if broken:
                    # A dead worker poisons every un-collected future in
                    # the shared pool. Rebuild the pool ONCE per breakage
                    # and resubmit the survivors as a batch — not one
                    # isolated single-worker pool per innocent cell.
                    self._shutdown_pool(current, force=wedged)
                    current = None
                    wedged = False
                    # Resubmits stop one attempt short of the budget so
                    # a repeat offender still gets one *isolated* attempt
                    # — that is what upgrades "poisoned-pool" (collateral
                    # damage) to a confirmed "crash".
                    resubmit_budget = max(1, self.retry.max_attempts - 1)
                    for i, exc in broken:
                        broken_rounds[i] += 1
                        if broken_rounds[i] >= resubmit_budget:
                            retry_q.append((i, exc))
                        else:
                            stats.retries += 1
                            pending.append(i)
                    if pending:
                        stats.pool_rebuilds += 1
                        current = self._make_pool(self.jobs)
                        if current is None:
                            # Multiprocessing gave out mid-sweep; the
                            # isolated stage (which degrades to
                            # in-process calls) finishes the job.
                            retry_q.extend(
                                (i, broken[0][1]) for i in pending)
                            pending = []
        finally:
            if current is not None:
                self._shutdown_pool(current, force=wedged)

        failures = self._retry_failed(retry_q, items, fn, labels, attempts,
                                      broken_rounds, out, stats, sink)
        if failures:
            raise HarnessError.from_failures(failures)
        return out

    def _retry_failed(self, retry_q, items, fn, labels, attempts,
                      broken_rounds, out, stats: SweepStats,
                      sink: _NullSink) -> List[CellFailure]:
        """The isolated retry stage: each failed cell gets its remaining
        attempt budget, with exponential backoff between attempts, in a
        *shared* single-worker retry pool. Healthy cells that were only
        collateral damage run back-to-back on the same pool (no
        per-innocent pool builds — the crash-amplification fix); a cell
        that crashes or wedges the retry pool costs exactly one rebuild,
        and its failure is then *confirmed* in isolation."""
        failures: List[CellFailure] = []
        pool = None
        try:
            for i, first_exc in sorted(retry_q, key=lambda pair: pair[0]):
                last = first_exc
                done = False
                isolated_ran = False
                while attempts[i] < self.retry.max_attempts:
                    stats.retries += 1
                    time.sleep(self.retry.delay(attempts[i]))
                    attempts[i] += 1
                    isolated_ran = True
                    try:
                        elapsed, value = None, None
                        if pool is None:
                            pool = self._make_pool(1)
                        if pool is None:  # mp unavailable: in-process
                            elapsed, value = _timed_call(
                                fn, items[i], labels[i], attempts[i])
                        else:
                            try:
                                fut = pool.submit(_timed_call, fn,
                                                  items[i], labels[i],
                                                  attempts[i])
                                elapsed, value = fut.result(
                                    timeout=self.timeout)
                            except _TIMEOUT_EXCS:
                                self._shutdown_pool(pool, force=True)
                                pool = None
                                raise
                            except BrokenExecutor:
                                # submit() raises too when the pool broke
                                # under the previous cell; either way the
                                # next attempt gets a fresh pool.
                                self._shutdown_pool(pool)
                                pool = None
                                raise
                        done = True
                        break
                    except Exception as exc:
                        last = exc
                if done:
                    stats.record_cell(elapsed, value)
                    out[i] = value
                    sink.ok(i, value, elapsed, attempts[i])
                    continue
                kind = classify_exception(last, isolated=isolated_ran)
                if (kind == "crash" and not isolated_ran
                        and broken_rounds[i] > 0):
                    kind = "poisoned-pool"
                message = f"{type(last).__name__}: {last}"
                if first_exc is not None and first_exc is not last:
                    message += (f" (first attempt: "
                                f"{type(first_exc).__name__}: {first_exc})")
                failure = CellFailure(labels[i], kind, attempts[i], message)
                failures.append(failure)
                sink.fail(i, failure)
        finally:
            if pool is not None:
                self._shutdown_pool(pool)
        return failures

    def _make_pool(self, workers: int):
        """A fork-context process pool, or None when multiprocessing is
        unusable here (missing primitives, sandboxing, RCC_NO_MP=1)."""
        if os.environ.get("RCC_NO_MP"):
            return None
        try:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor
            if "fork" in multiprocessing.get_all_start_methods():
                ctx = multiprocessing.get_context("fork")
            else:  # pragma: no cover - non-fork platforms
                ctx = multiprocessing.get_context()
            pool = ProcessPoolExecutor(max_workers=workers, mp_context=ctx)
        except Exception:  # pragma: no cover - restricted environments
            return None
        self.pools_built += 1
        return pool

    @staticmethod
    def _shutdown_pool(pool, force: bool = False) -> None:
        """Shut the pool down; with ``force`` (a cell timed out and its
        worker may be wedged) terminate workers first, since a plain
        shutdown would block on the hung cell forever.

        The worker list must be captured *before* ``shutdown()`` —
        ``ProcessPoolExecutor.shutdown`` drops its ``_processes``
        reference even with ``wait=False``, which is exactly how an
        earlier version of this code leaked wedged workers for the
        remainder of their hung cell."""
        procs = list((getattr(pool, "_processes", None) or {}).values())
        if force:
            for proc in procs:
                try:
                    if proc.is_alive():
                        proc.terminate()
                except Exception:  # pragma: no cover - best-effort
                    pass
            for proc in procs:
                try:
                    proc.join(timeout=5.0)
                    if proc.is_alive():
                        proc.kill()
                        proc.join(timeout=5.0)
                except Exception:  # pragma: no cover - best-effort
                    pass
        pool.shutdown(wait=True)
