"""Journaled campaigns: an append-only JSONL record of sweep progress.

A *campaign* is one batch of cells handed to the sweep executor — a
figure grid, a fuzz campaign's program list, an ablation matrix. Its
identity is content-derived: ``campaign_id`` hashes the planned cell
list (content keys for simulation cells, labels for generic work items)
together with the caller's metadata and the library version, so the same
command line names the same campaign and a changed plan names a new one.

The journal is one JSONL file per campaign. Line 1 is the header::

    {"kind": "campaign", "format": 1, "campaign": "<sha256>",
     "n_cells": N, "meta": {...}, "created": <epoch>}

followed by one record per *finished* cell, appended (and fsync'd) the
moment the cell completes::

    {"kind": "cell", "seq": i, "key": "...", "label": "...",
     "status": "ok", "attempts": 1, "wall_s": 0.42,
     "digest": "<sha256 of the canonical result payload>",
     "payload": {"enc": "json"|"pickle", "data": ...} | null}

    {"kind": "cell", "seq": i, ..., "status": "failed",
     "error": {"kind": "timeout", "message": "..."}}

``payload`` is embedded when no content-keyed cache holds the result
(generic ``map`` campaigns, cache-less sweeps); cached sweeps record the
digest only and replay from the cache, with any digest disagreement
**surfaced** as a ``cache-corrupt`` failure rather than silently
resolved in either direction.

Crash-safety properties:

* appends are flushed and fsync'd per record, so a SIGKILL loses at most
  the record being written;
* a torn trailing line (the crash arrived mid-write) is tolerated on
  load and simply dropped;
* re-running a campaign re-opens its journal and *resumes*: completed
  cells are replayed, failed and missing cells re-run, new records
  append after the old ones (the latest record per ``seq`` wins);
* a journal whose header does not match the campaign being run is
  rotated aside atomically (``<path>.1``, ``.2``, ...) — never
  overwritten — unless it was named explicitly via ``--resume``, in
  which case the mismatch is an error;
* journal *write* failures (disk full, permissions) degrade the
  campaign to non-journaled execution with a surfaced warning: results
  are never blocked on bookkeeping.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.chaos import plan_from_env
from repro.errors import JournalError

#: Bumped when the journal file layout changes incompatibly.
JOURNAL_FORMAT = 1


# ----------------------------------------------------------------------
# Canonical digests and payload encoding
# ----------------------------------------------------------------------

def payload_digest(payload: Any) -> str:
    """sha256 over the canonical JSON form of a (JSON-able) payload."""
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def encode_value(value: Any) -> Dict[str, Any]:
    """Encode an arbitrary campaign result for journal embedding.

    JSON-able values are stored canonically as JSON (readable, greppable,
    diffable); anything else falls back to base64-pickle. Both carry a
    digest over the stored representation so bit rot is detected on
    replay.
    """
    try:
        blob = json.dumps(value, sort_keys=True)
    except (TypeError, ValueError):
        raw = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        data = base64.b64encode(raw).decode("ascii")
        return {"enc": "pickle", "data": data,
                "digest": hashlib.sha256(raw).hexdigest()}
    return {"enc": "json", "data": json.loads(blob),
            "digest": hashlib.sha256(blob.encode("utf-8")).hexdigest()}


def decode_value(embedded: Dict[str, Any]) -> Any:
    """Decode :func:`encode_value` output, verifying its digest.

    Raises :class:`JournalError` on any integrity or format problem —
    callers treat that cell as not-completed and recompute it.
    """
    try:
        enc = embedded["enc"]
        data = embedded["data"]
        want = embedded.get("digest")
    except (TypeError, KeyError) as exc:
        raise JournalError(f"malformed embedded payload: {exc}") from None
    if enc == "json":
        blob = json.dumps(data, sort_keys=True)
        got = hashlib.sha256(blob.encode("utf-8")).hexdigest()
        if want and got != want:
            raise JournalError("embedded payload failed its digest")
        return data
    if enc == "pickle":
        try:
            raw = base64.b64decode(data)
        except (TypeError, ValueError) as exc:
            raise JournalError(f"undecodable pickle payload: {exc}") from None
        got = hashlib.sha256(raw).hexdigest()
        if want and got != want:
            raise JournalError("embedded payload failed its digest")
        try:
            return pickle.loads(raw)
        except Exception as exc:
            raise JournalError(f"unpicklable payload: {exc}") from None
    raise JournalError(f"unknown payload encoding {enc!r}")


def campaign_id(cell_tokens: Sequence[str],
                meta: Optional[Dict[str, Any]] = None) -> str:
    """Content hash naming one campaign: the planned cell list (content
    keys or labels, in order) + caller metadata + library version."""
    import repro
    blob = json.dumps(
        {
            "cells": list(cell_tokens),
            "meta": meta or {},
            "version": repro.__version__,
            "format": JOURNAL_FORMAT,
        },
        sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# The journal
# ----------------------------------------------------------------------

class CampaignJournal:
    """Append-only JSONL journal of one campaign's progress."""

    def __init__(self, path: str, campaign: str, n_cells: int,
                 meta: Optional[Dict[str, Any]] = None,
                 on_warning: Optional[Callable[[str], None]] = None):
        self.path = path
        self.campaign = campaign
        self.n_cells = n_cells
        self.meta = dict(meta or {})
        self.on_warning = on_warning
        #: Latest record per seq, split by outcome (loaded on open).
        self._ok: Dict[int, Dict[str, Any]] = {}
        self._failed: Dict[int, Dict[str, Any]] = {}
        #: True once a write failed; further writes are skipped (the
        #: campaign continues un-journaled rather than dying on ENOSPC).
        self.broken = False
        self.write_errors = 0
        self._fh = None
        self._header_written = False

    # ------------------------------------------------------------------
    # Opening / resuming / rotating
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, path: str, campaign: str, n_cells: int,
             meta: Optional[Dict[str, Any]] = None,
             explicit: bool = False,
             on_warning: Optional[Callable[[str], None]] = None
             ) -> "CampaignJournal":
        """Open (creating or resuming) the journal at ``path``.

        An existing file with a matching header is resumed; a mismatched
        one is rotated aside — or, when the user named the file
        explicitly (``--resume``, ``explicit=True``), the mismatch
        raises :class:`JournalError` instead of quietly starting over.
        """
        journal = cls(path, campaign, n_cells, meta=meta,
                      on_warning=on_warning)
        if os.path.exists(path):
            header, records = _load_journal(path)
            if (header is not None
                    and header.get("format") == JOURNAL_FORMAT
                    and header.get("campaign") == campaign
                    and header.get("n_cells") == n_cells):
                for rec in records:
                    journal._absorb(rec)
                journal._header_written = True
                return journal
            if explicit:
                raise JournalError(
                    f"journal {path} belongs to a different campaign "
                    f"(header {header.get('campaign', '?')[:12] if header else 'unreadable'}..., "
                    f"want {campaign[:12]}...); refusing to resume it")
            rotated = _rotate(path)
            journal._warn(f"journal {path} did not match this campaign; "
                          f"rotated old journal to {rotated}")
        return journal

    def _absorb(self, rec: Dict[str, Any]) -> None:
        if rec.get("kind") != "cell":
            return
        seq = rec.get("seq")
        if not isinstance(seq, int) or not 0 <= seq < self.n_cells:
            return
        if rec.get("status") == "ok":
            self._ok[seq] = rec
            self._failed.pop(seq, None)
        elif rec.get("status") == "failed":
            self._failed[seq] = rec
            self._ok.pop(seq, None)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def completed(self) -> Dict[int, Dict[str, Any]]:
        """seq -> latest ``ok`` record (resume replays these)."""
        return dict(self._ok)

    def failed(self) -> Dict[int, Dict[str, Any]]:
        """seq -> latest ``failed`` record (resume re-runs these)."""
        return dict(self._failed)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def record_ok(self, seq: int, key: str, label: str, digest: str,
                  wall_s: float, attempts: int,
                  payload: Optional[Dict[str, Any]] = None) -> None:
        rec = {"kind": "cell", "seq": seq, "key": key, "label": label,
               "status": "ok", "attempts": attempts,
               "wall_s": round(wall_s, 6), "digest": digest,
               "payload": payload}
        self._append(rec)
        self._absorb(rec)
        plan = plan_from_env()
        if plan is not None:
            # The campaign-kill fault: die right after this journaled
            # completion, exactly where a CI SIGKILL would land.
            plan.count_completion()

    def record_failure(self, seq: int, key: str, label: str, kind: str,
                       message: str, attempts: int) -> None:
        rec = {"kind": "cell", "seq": seq, "key": key, "label": label,
               "status": "failed", "attempts": attempts,
               "error": {"kind": kind, "message": message}}
        self._append(rec)
        self._absorb(rec)

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:  # pragma: no cover - close failure is final
                pass
            self._fh = None

    # ------------------------------------------------------------------
    def _append(self, rec: Dict[str, Any]) -> None:
        if self.broken:
            return
        try:
            plan = plan_from_env()
            if plan is not None:
                plan.check_write("journal", f"{self.campaign}:{rec.get('seq')}")
            if self._fh is None:
                parent = os.path.dirname(self.path)
                if parent:
                    os.makedirs(parent, exist_ok=True)
                self._fh = open(self.path, "a", encoding="utf-8")
            if not self._header_written:
                header = {"kind": "campaign", "format": JOURNAL_FORMAT,
                          "campaign": self.campaign,
                          "n_cells": self.n_cells, "meta": self.meta,
                          "created": round(time.time(), 3)}
                self._fh.write(json.dumps(header, sort_keys=True) + "\n")
                self._header_written = True
            self._fh.write(json.dumps(rec, sort_keys=True) + "\n")
            self._fh.flush()
            os.fsync(self._fh.fileno())
        except OSError as exc:
            self.broken = True
            self.write_errors += 1
            self.close()
            self._warn(f"journal write failed ({exc}); campaign continues "
                       f"un-journaled — resume will not cover cells from "
                       f"this point on")

    def _warn(self, message: str) -> None:
        if self.on_warning is not None:
            self.on_warning(f"[journal] {message}")
        else:  # pragma: no cover - default stderr path
            import sys
            print(f"[journal] {message}", file=sys.stderr)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<CampaignJournal {self.path!r} campaign="
                f"{self.campaign[:12]} ok={len(self._ok)} "
                f"failed={len(self._failed)}/{self.n_cells}>")


# ----------------------------------------------------------------------
# File helpers
# ----------------------------------------------------------------------

def _load_journal(path: str):
    """(header, records) from a journal file; torn trailing lines and
    unreadable files are tolerated (header None = unusable)."""
    header = None
    records: List[Dict[str, Any]] = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except ValueError:
                    # A torn line can only be the last one written; stop.
                    break
                if header is None and doc.get("kind") == "campaign":
                    header = doc
                else:
                    records.append(doc)
    except OSError:
        return None, []
    return header, records


def _rotate(path: str) -> str:
    """Atomically move a stale journal aside to the first free
    ``<path>.N``; returns the new name."""
    n = 1
    while os.path.exists(f"{path}.{n}"):
        n += 1
    target = f"{path}.{n}"
    os.replace(path, target)
    return target
