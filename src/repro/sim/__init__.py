"""Top-level simulator: wires cores, caches, NoC, and DRAM, runs a workload
under a protocol, and aggregates results."""

from repro.sim.gpusim import GPUSimulator, run_simulation
from repro.sim.results import SimResult

__all__ = ["GPUSimulator", "SimResult", "run_simulation"]
