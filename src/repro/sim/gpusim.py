"""The assembled GPU memory-system simulator.

``GPUSimulator`` wires together, for one run:

* one :class:`~repro.timing.engine.Engine`,
* ``n_cores`` SMs with their per-core L1 controllers,
* a two-direction crossbar with enough extra pipeline depth to respect the
  configured minimum L2 round trip,
* ``l2_banks`` L2 bank controllers, each fronting a DRAM partition,
* the protocol controllers chosen from the registry (which also decides the
  core's consistency policy — SC or WO).

``run_simulation`` is the one-call convenience wrapper used by tests,
examples, and the benchmark harness.
"""

from __future__ import annotations

import gc

from typing import Any, Dict, List, Optional

from repro.common.addresses import AddressMap
from repro.coherence.registry import build_protocol
from repro.config import GPUConfig
from repro.consistency.model import make_policy
from repro.errors import ConfigError, DeadlockError
from repro.gpu.core import GPUCore
from repro.gpu.trace import WarpTrace
from repro.gpu.warp import reset_op_seq
from repro.mem.dram import DRAMPartition
from repro.noc.crossbar import Crossbar
from repro.sanitize.sanitizer import Sanitizer
from repro.sim.results import SimResult
from repro.timing import make_engine


class GPUSimulator:
    """One configured simulation instance (single-use: build, run, read)."""

    def __init__(self, cfg: GPUConfig, protocol: str,
                 traces: List[List[WarpTrace]],
                 workload_name: str = "custom",
                 record_ops: bool = False,
                 sanitize: bool = False,
                 trace_out: Optional[str] = None):
        cfg.validate()
        if len(traces) != cfg.n_cores:
            raise ConfigError(
                f"need traces for {cfg.n_cores} cores, got {len(traces)}")
        self.cfg = cfg
        self.protocol_name = protocol
        self.workload_name = workload_name
        self.record_ops = record_ops

        reset_op_seq()
        self.engine = make_engine(max_cycles=cfg.max_cycles)
        self.amap = AddressMap(cfg.l1.block_bytes, cfg.l2_banks)
        self.noc = Crossbar(
            self.engine, cfg.noc, block_bytes=cfg.l1.block_bytes,
            extra_latency=self._extra_noc_latency(cfg),
        )
        self.backing: Dict[int, Any] = {}
        self.drams = [
            DRAMPartition(self.engine, cfg.dram, j, cfg.l1.block_bytes)
            for j in range(cfg.l2_banks)
        ]
        self.proto = build_protocol(
            protocol, self.engine, cfg, self.noc, self.amap, self.drams,
            self.backing,
        )
        self.sanitizer: Optional[Sanitizer] = None
        if sanitize:
            self.sanitizer = Sanitizer(protocol, cfg, trace_out=trace_out)
            for ctrl in list(self.proto.l1s) + list(self.proto.l2s):
                ctrl.sanitizer = self.sanitizer
            self.engine.diagnostics = self.sanitizer.diagnostics
        policy_kind = self.proto.consistency
        self._cores_done = 0
        self.cores: List[GPUCore] = []
        for i in range(cfg.n_cores):
            policy = make_policy(policy_kind, cfg.wo_max_outstanding)
            core = GPUCore(i, self.engine, policy, traces[i],
                           on_all_done=self._core_done,
                           record_log=record_ops)
            self.proto.l1s[i].attach_core(core)
            self.cores.append(core)
        self.result: Optional[SimResult] = None

    @staticmethod
    def _extra_noc_latency(cfg: GPUConfig) -> int:
        """Pipeline padding so an uncontended L1<->L2 round trip (control
        request + data response) meets ``l2_min_round_trip``."""
        data_flits = cfg.l1.block_bytes // cfg.noc.flit_bytes + 2
        base = (2 * cfg.noc.link_latency + cfg.l2_per_bank.hit_latency
                + data_flits + 2)
        return max(0, (cfg.l2_min_round_trip - base) // 2)

    # ------------------------------------------------------------------
    def _core_done(self, core_id: int) -> None:
        self._cores_done += 1

    def final_memory(self) -> Dict[int, Any]:
        """Architectural memory after the run: block base address -> the
        data token of the block's last write (blocks never written are
        absent). The DRAM backing store holds written-back values; blocks
        still resident in an L2 are read from the (stable) line there."""
        mem: Dict[int, Any] = dict(self.backing)
        for l2 in self.proto.l2s:
            cache = getattr(l2, "cache", None)
            if cache is None:
                continue
            for line in cache.lines():
                if line.value is None:
                    continue
                if getattr(line.state, "stable", True):
                    mem[line.addr] = line.value
        return mem

    def run(self) -> SimResult:
        for l1 in self.proto.l1s:
            start = getattr(l1, "start", None)
            if start is not None:
                start()
        for core in self.cores:
            core.start()
        # The event loop allocates heavily (records, messages, retry
        # closures), and the cached retry callbacks form reference cycles
        # (msg.meta -> cb -> msg) that keep the generational collector
        # scanning a large, mostly-immortal heap mid-run. One run's garbage
        # fits comfortably in memory, so pause collection for the loop and
        # reclaim the cycles in one sweep afterwards. Purely a wall-clock
        # optimization: allocation order, and hence simulation behavior,
        # is unaffected.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            self.engine.run()
        finally:
            if gc_was_enabled:
                gc.enable()
                gc.collect()
        if self._cores_done != self.cfg.n_cores:
            stuck = [c.core_id for c in self.cores if not c.finished]
            detail = (f"cores {stuck} never finished "
                      f"({self.protocol_name}/{self.workload_name})")
            if self.sanitizer is not None:
                detail += "\n" + self.sanitizer.diagnostics()
            raise DeadlockError(self.engine.now, detail)
        cycles = max(c.stats.done_cycle or 0 for c in self.cores)
        op_logs = ([rec for c in self.cores for rec in c.op_log]
                   if self.record_ops else [])
        self.result = SimResult(
            protocol=self.protocol_name,
            workload=self.workload_name,
            cycles=cycles,
            cores=self.cores,
            l1s=self.proto.l1s,
            l2s=self.proto.l2s,
            noc=self.noc,
            drams=self.drams,
            virtual_channels=self.proto.virtual_channels,
            op_logs=op_logs,
            rollovers=(self.proto.rollover.rollovers
                       if self.proto.rollover else 0),
            final_memory=self.final_memory(),
            events_fired=self.engine.events_fired,
        )
        return self.result


def run_simulation(cfg: GPUConfig, protocol: str,
                   traces: List[List[WarpTrace]],
                   workload_name: str = "custom",
                   record_ops: bool = False,
                   sanitize: bool = False,
                   trace_out: Optional[str] = None) -> SimResult:
    """Build and run one simulation; returns its :class:`SimResult`."""
    sim = GPUSimulator(cfg, protocol, traces, workload_name, record_ops,
                       sanitize=sanitize, trace_out=trace_out)
    return sim.run()
