"""Aggregated results of one simulation run.

Everything the paper's figures need is computed here: runtime, SC stall
rates and attribution, load/store latency averages, L1 expiration and renew
rates, interconnect traffic breakdowns, and energy.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.common.types import MemOpKind
from repro.noc.energy import EnergyBreakdown, EnergyModel
from repro.stats.histogram import Histogram

#: Bumped whenever the payload schema below changes shape, so stale cache
#: entries written by older code are rejected instead of misread.
#: v2: added ``events_fired`` (engine events per run, the benchmark
#: harness's throughput numerator).
PAYLOAD_VERSION = 2

#: Plain-integer attributes copied verbatim by to_payload/from_payload.
_PAYLOAD_SCALARS = (
    "cycles", "events_fired", "virtual_channels", "rollovers",
    "mem_ops", "sc_stalled_ops", "sc_stall_cycles", "structural_stalls",
    "fence_ops", "fence_wait_cycles",
    "l1_loads", "l1_load_hits", "l1_load_expired", "l1_renews",
    "l1_invalidations",
    "l2_gets", "l2_hits", "l2_misses", "l2_gets_expired", "l2_renew_grants",
    "l2_invalidations_sent", "l2_store_lease_wait", "l2_evictions",
    "total_flits", "total_msgs", "dram_reads", "dram_writes",
)

#: Memory-op kinds aggregated per kind in the stat bundle.
_PAYLOAD_KINDS = (MemOpKind.LOAD, MemOpKind.STORE, MemOpKind.ATOMIC)


def _encode_token(value: Any) -> Any:
    """Data tokens are tuples of ints/strings (see ``CacheLine.value``);
    JSON turns tuples into lists, so decoding restores them."""
    return list(value) if isinstance(value, tuple) else value


def _decode_token(value: Any) -> Any:
    return tuple(value) if isinstance(value, list) else value


class SimResult:
    """Stat bundle for one (protocol, workload, config) run."""

    def __init__(self, protocol: str, workload: str, cycles: int,
                 cores: List[Any], l1s: List[Any], l2s: List[Any],
                 noc: Any, drams: List[Any], virtual_channels: int,
                 op_logs: Optional[List[Any]] = None,
                 rollovers: int = 0,
                 final_memory: Optional[Dict[int, Any]] = None,
                 events_fired: int = 0):
        self.protocol = protocol
        self.workload = workload
        self.cycles = cycles
        #: Timing-engine events fired during the run; with wall-clock this
        #: gives the events/sec throughput the perf harness tracks.
        self.events_fired = events_fired
        self.virtual_channels = virtual_channels
        self.op_logs = op_logs or []
        self.rollovers = rollovers
        #: Block base address -> last-written data token (see
        #: :meth:`GPUSimulator.final_memory`); written blocks only.
        self.final_memory = final_memory or {}

        # ---- core-side aggregation ----
        self.mem_ops = sum(c.stats.mem_ops for c in cores)
        self.mem_ops_by_kind = {
            k: sum(c.stats.mem_ops_by_kind[k] for c in cores)
            for k in (MemOpKind.LOAD, MemOpKind.STORE, MemOpKind.ATOMIC)
        }
        self.latency_sum_by_kind = {
            k: sum(c.stats.latency_sum[k] for c in cores)
            for k in (MemOpKind.LOAD, MemOpKind.STORE, MemOpKind.ATOMIC)
        }
        self.latency_hist: Dict[MemOpKind, Histogram] = {}
        for k in (MemOpKind.LOAD, MemOpKind.STORE, MemOpKind.ATOMIC):
            merged = Histogram()
            for c in cores:
                merged.merge(c.stats.latency_hist[k])
            self.latency_hist[k] = merged
        self.sc_stalled_ops = sum(c.stats.sc_stalled_ops for c in cores)
        self.sc_stall_cycles = sum(c.stats.sc_stall_cycles for c in cores)
        self.sc_stall_by_blocker = {
            k: sum(c.stats.sc_stall_by_blocker[k] for c in cores)
            for k in (MemOpKind.LOAD, MemOpKind.STORE, MemOpKind.ATOMIC)
        }
        self.structural_stalls = sum(c.stats.structural_stalls for c in cores)
        self.fence_ops = sum(c.stats.fence_ops for c in cores)
        self.fence_wait_cycles = sum(c.stats.fence_wait_cycles for c in cores)

        # ---- L1 aggregation ----
        self.l1_loads = sum(l1.stats.loads for l1 in l1s)
        self.l1_load_hits = sum(l1.stats.load_hits for l1 in l1s)
        self.l1_load_expired = sum(l1.stats.load_expired for l1 in l1s)
        self.l1_renews = sum(l1.stats.renews_received for l1 in l1s)
        self.l1_invalidations = sum(l1.stats.invalidations_received for l1 in l1s)

        # ---- L2 aggregation ----
        self.l2_gets = sum(l2.stats.gets for l2 in l2s)
        self.l2_hits = sum(l2.stats.hits for l2 in l2s)
        self.l2_misses = sum(l2.stats.misses for l2 in l2s)
        self.l2_gets_expired = sum(l2.stats.gets_expired for l2 in l2s)
        self.l2_renew_grants = sum(l2.stats.renew_grants for l2 in l2s)
        self.l2_invalidations_sent = sum(l2.stats.invalidations_sent for l2 in l2s)
        self.l2_store_lease_wait = sum(
            l2.stats.store_lease_wait_cycles for l2 in l2s)
        self.l2_evictions = sum(l2.stats.evictions for l2 in l2s)

        # ---- NoC / DRAM ----
        self.total_flits = noc.stats.total_flits
        self.total_msgs = noc.stats.total_msgs
        self.traffic_groups = noc.stats.grouped_flits()
        self.energy: EnergyBreakdown = EnergyModel().estimate(
            noc.stats, cycles, virtual_channels)
        self.dram_reads = sum(d.reads for d in drams)
        self.dram_writes = sum(d.writes for d in drams)

    # ------------------------------------------------------------------
    # Derived metrics (the figures' vocabulary)
    # ------------------------------------------------------------------
    @property
    def ipc_proxy(self) -> float:
        """Memory ops per kilocycle — the speedup basis (same workload =>
        same op count, so speedup == cycle ratio)."""
        return 1000.0 * self.mem_ops / max(1, self.cycles)

    def avg_latency(self, kind: MemOpKind) -> float:
        n = self.mem_ops_by_kind[kind]
        return self.latency_sum_by_kind[kind] / n if n else 0.0

    @property
    def avg_load_latency(self) -> float:
        return self.avg_latency(MemOpKind.LOAD)

    @property
    def avg_store_latency(self) -> float:
        """Stores + atomics (the paper groups them)."""
        n = (self.mem_ops_by_kind[MemOpKind.STORE]
             + self.mem_ops_by_kind[MemOpKind.ATOMIC])
        s = (self.latency_sum_by_kind[MemOpKind.STORE]
             + self.latency_sum_by_kind[MemOpKind.ATOMIC])
        return s / n if n else 0.0

    @property
    def sc_stall_fraction(self) -> float:
        """Fraction of memory ops that ever stalled for SC (Fig. 1a)."""
        return self.sc_stalled_ops / max(1, self.mem_ops)

    @property
    def sc_stall_store_fraction(self) -> float:
        """Fraction of SC stall cycles blocked by a prior store/atomic
        (Fig. 1b)."""
        total = self.sc_stall_cycles
        if not total:
            return 0.0
        st = (self.sc_stall_by_blocker[MemOpKind.STORE]
              + self.sc_stall_by_blocker[MemOpKind.ATOMIC])
        return st / total

    @property
    def sc_stall_resolve_latency(self) -> float:
        """Average cycles to resolve one SC stall (Fig. 8 bottom)."""
        return self.sc_stall_cycles / max(1, self.sc_stalled_ops)

    @property
    def l1_expired_fraction(self) -> float:
        """Fraction of loads finding a V-but-expired block (Fig. 6 left)."""
        return self.l1_load_expired / max(1, self.l1_loads)

    @property
    def renewable_fraction(self) -> float:
        """Of expired-copy refetches, how many the L2 could renew
        (Fig. 6 right)."""
        return self.l2_renew_grants / max(1, self.l2_gets_expired)

    # ------------------------------------------------------------------
    # Serialization (the sweep executor's on-disk result cache)
    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """Full JSON-able snapshot of the stat bundle.

        Everything the experiments and benchmarks read survives the round
        trip — scalars, per-kind counters, latency histograms, traffic
        groups, energy, and the architectural final memory. ``op_logs``
        (per-op records from ``record_ops`` runs) are deliberately not
        serialized; callers that need them must not cache.
        """
        payload: Dict[str, Any] = {
            "payload_version": PAYLOAD_VERSION,
            "protocol": self.protocol,
            "workload": self.workload,
        }
        for name in _PAYLOAD_SCALARS:
            payload[name] = getattr(self, name)
        payload["mem_ops_by_kind"] = {
            k.name: self.mem_ops_by_kind[k] for k in _PAYLOAD_KINDS}
        payload["latency_sum_by_kind"] = {
            k.name: self.latency_sum_by_kind[k] for k in _PAYLOAD_KINDS}
        payload["sc_stall_by_blocker"] = {
            k.name: self.sc_stall_by_blocker[k] for k in _PAYLOAD_KINDS}
        payload["latency_hist"] = {
            k.name: self.latency_hist[k].to_dict() for k in _PAYLOAD_KINDS}
        payload["traffic_groups"] = dict(self.traffic_groups)
        payload["energy"] = {
            "router_dynamic": self.energy.router_dynamic,
            "link_dynamic": self.energy.link_dynamic,
            "static": self.energy.static,
        }
        payload["final_memory"] = [
            [addr, _encode_token(value)]
            for addr, value in sorted(self.final_memory.items())]
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "SimResult":
        """Rebuild a result serialized with :meth:`to_payload`."""
        if payload.get("payload_version") != PAYLOAD_VERSION:
            raise ValueError(
                f"unsupported SimResult payload version: "
                f"{payload.get('payload_version')!r}")
        res = cls.__new__(cls)
        res.protocol = payload["protocol"]
        res.workload = payload["workload"]
        for name in _PAYLOAD_SCALARS:
            setattr(res, name, payload[name])
        res.mem_ops_by_kind = {
            k: payload["mem_ops_by_kind"][k.name] for k in _PAYLOAD_KINDS}
        res.latency_sum_by_kind = {
            k: payload["latency_sum_by_kind"][k.name]
            for k in _PAYLOAD_KINDS}
        res.sc_stall_by_blocker = {
            k: payload["sc_stall_by_blocker"][k.name]
            for k in _PAYLOAD_KINDS}
        res.latency_hist = {
            k: Histogram.from_dict(payload["latency_hist"][k.name])
            for k in _PAYLOAD_KINDS}
        res.traffic_groups = dict(payload["traffic_groups"])
        res.energy = EnergyBreakdown(**payload["energy"])
        res.final_memory = {
            int(addr): _decode_token(value)
            for addr, value in payload["final_memory"]}
        res.op_logs = []
        return res

    def as_dict(self) -> Dict[str, Any]:
        """Flat summary for tables / JSON dumps."""
        return {
            "protocol": self.protocol,
            "workload": self.workload,
            "cycles": self.cycles,
            "mem_ops": self.mem_ops,
            "avg_load_latency": round(self.avg_load_latency, 2),
            "avg_store_latency": round(self.avg_store_latency, 2),
            "sc_stall_fraction": round(self.sc_stall_fraction, 4),
            "sc_stall_store_fraction": round(self.sc_stall_store_fraction, 4),
            "sc_stall_resolve_latency": round(self.sc_stall_resolve_latency, 2),
            "l1_expired_fraction": round(self.l1_expired_fraction, 4),
            "renewable_fraction": round(self.renewable_fraction, 4),
            "total_flits": self.total_flits,
            "energy_total": round(self.energy.total, 1),
            "rollovers": self.rollovers,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<SimResult {self.protocol}/{self.workload} "
                f"cycles={self.cycles} memops={self.mem_ops}>")
