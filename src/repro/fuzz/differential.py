"""Differential execution: one program, every protocol, two validators.

For each generated program the runner executes every registered protocol
(RCC, RCC-WO, MESI, TCS, TCW, SC-IDEAL — plus any executor injected for
testing) and validates each run two independent ways:

* protocols that claim SC go through the **witness checker**
  (:class:`~repro.consistency.checker.SCChecker`, timestamps + arrival
  keys) *and* the **interleaving oracle**
  (:mod:`repro.fuzz.oracle`, pure architectural values);
* weakly-ordered protocols are executed for completion (a deadlock or
  simulator error on any protocol fails the program) and their outcomes
  are run through the oracle *informationally* — how often a WO run
  happens to be SC-explainable is a useful tell, but not a failure.

A campaign sweeps many seeded programs, tallies per-protocol results into
an :class:`~repro.harness.experiments.ExperimentResult`-compatible report,
and on failure shrinks the program to a minimal reproducer (see
:mod:`repro.fuzz.shrink`) for the corpus.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.coherence.registry import available_protocols
from repro.config import GPUConfig, consistency_of
from repro.consistency.checker import SCChecker, Violation
from repro.errors import ReproError
from repro.fuzz.generator import FuzzKnobs, FuzzProgram, generate_program
from repro.fuzz.oracle import (
    Observation, OracleExhausted, observation_from_records, sc_explainable,
)
from repro.harness.experiments import ExperimentResult
from repro.sim.gpusim import run_simulation
from repro.stats import Histogram


@dataclass
class ExecutionOutcome:
    """One executor's result for one program."""

    executor: str
    sc: bool
    error: Optional[str] = None
    cycles: int = 0
    observation: Optional[Observation] = None
    records: Optional[List[Any]] = field(default=None, repr=False)
    checker_violations: List[Violation] = field(default_factory=list)
    #: True/False once the oracle ran; None if skipped or exhausted.
    oracle_verdict: Optional[bool] = None
    oracle_exhausted: bool = False

    @property
    def failure_reasons(self) -> List[str]:
        """Reasons this outcome fails the differential check (empty for a
        pass). WO executors only fail on execution errors."""
        reasons: List[str] = []
        if self.error:
            reasons.append(f"execution error: {self.error}")
        if self.sc:
            if self.checker_violations:
                first = self.checker_violations[0]
                reasons.append(
                    f"witness checker: {len(self.checker_violations)} "
                    f"violation(s), first {first!r}")
            if self.oracle_verdict is False:
                reasons.append(
                    "oracle: no SC interleaving explains the observation")
        return reasons


class ProtocolExecutor:
    """Runs programs under one registered coherence protocol via the full
    cycle-accurate simulator."""

    def __init__(self, protocol: str, cfg: Optional[GPUConfig] = None,
                 sanitize: bool = False, trace_out: Optional[str] = None):
        self.name = protocol
        self.protocol = protocol
        self.sc = consistency_of(protocol) == "sc"
        self.base_cfg = cfg or GPUConfig.small()
        self.block_bytes = self.base_cfg.l1.block_bytes
        self.sanitize = sanitize
        self.trace_out = trace_out

    def _shape_cfg(self, program: FuzzProgram) -> GPUConfig:
        """Trim (or grow) the machine to the program's warp grid so tiny
        programs simulate in microseconds."""
        return self.base_cfg.replace(
            n_cores=max(1, program.n_cores),
            warps_per_core=max(1, program.warps_per_core))

    def execute(self, program: FuzzProgram) -> ExecutionOutcome:
        cfg = self._shape_cfg(program)
        try:
            # An InvariantViolation surfaces as an execution error, so a
            # sanitized campaign fails on the program that triggered it.
            res = run_simulation(cfg, self.protocol, program.to_traces(cfg),
                                 workload_name=program.name, record_ops=True,
                                 sanitize=self.sanitize,
                                 trace_out=self.trace_out)
        except ReproError as exc:
            return ExecutionOutcome(executor=self.name, sc=self.sc,
                                    error=f"{type(exc).__name__}: {exc}")
        obs = observation_from_records(program, res.op_logs,
                                       res.final_memory,
                                       block_bytes=cfg.l1.block_bytes)
        return ExecutionOutcome(executor=self.name, sc=self.sc,
                                cycles=res.cycles, observation=obs,
                                records=res.op_logs)


@dataclass
class ProgramVerdict:
    """All executors' outcomes for one program."""

    program: FuzzProgram
    outcomes: Dict[str, ExecutionOutcome]

    @property
    def failures(self) -> List[str]:
        """Flat ``executor: reason`` strings; empty means the program
        passed differential checking."""
        out: List[str] = []
        for name in sorted(self.outcomes):
            for reason in self.outcomes[name].failure_reasons:
                out.append(f"{name}: {reason}")
        return out

    @property
    def passed(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        lines = [f"program {self.program.name} "
                 f"({self.program.n_ops} ops, "
                 f"{len(self.program.warps)} warps, "
                 f"{self.program.n_addrs} addrs)"]
        lines.append(self.program.pretty())
        if self.passed:
            lines.append("PASS under all executors")
        else:
            lines.extend(f"FAIL {f}" for f in self.failures)
        return "\n".join(lines)


class DifferentialRunner:
    """Executes programs under a set of executors and cross-checks."""

    def __init__(self, cfg: Optional[GPUConfig] = None,
                 protocols: Optional[Sequence[str]] = None,
                 executors: Optional[Sequence[Any]] = None,
                 oracle_max_states: int = 500_000,
                 oracle_on_wo: bool = True,
                 sanitize: bool = False,
                 trace_out: Optional[str] = None):
        if executors is None:
            names = list(protocols) if protocols else available_protocols()
            executors = [ProtocolExecutor(p, cfg, sanitize=sanitize,
                                          trace_out=trace_out)
                         for p in names]
        self.executors = list(executors)
        self.oracle_max_states = oracle_max_states
        self.oracle_on_wo = oracle_on_wo

    def check_program(self, program: FuzzProgram) -> ProgramVerdict:
        outcomes: Dict[str, ExecutionOutcome] = {}
        for ex in self.executors:
            out = ex.execute(program)
            if out.observation is not None:
                if out.sc and out.records is not None:
                    bb = getattr(ex, "block_bytes", 128)
                    out.checker_violations = SCChecker(bb).check(out.records)
                if out.sc or self.oracle_on_wo:
                    try:
                        out.oracle_verdict = sc_explainable(
                            program, out.observation,
                            max_states=self.oracle_max_states)
                    except OracleExhausted:
                        out.oracle_exhausted = True
            outcomes[ex.name] = out
        return ProgramVerdict(program=program, outcomes=outcomes)


# ----------------------------------------------------------------------
# Campaigns
# ----------------------------------------------------------------------

@dataclass
class ExecutorTally:
    """Per-executor accumulators over a campaign."""

    name: str
    sc: bool
    runs: int = 0
    errors: int = 0
    witness_failures: int = 0
    oracle_failures: int = 0
    oracle_exhausted: int = 0
    #: WO only: runs whose outcome happened to be SC-explainable anyway.
    sc_explainable_runs: int = 0
    cycles: Histogram = field(default_factory=Histogram)

    def add(self, out: ExecutionOutcome) -> None:
        self.runs += 1
        if out.error:
            self.errors += 1
        if out.checker_violations:
            self.witness_failures += 1
        if out.oracle_exhausted:
            self.oracle_exhausted += 1
        if out.oracle_verdict is False and out.sc:
            self.oracle_failures += 1
        if out.oracle_verdict is True and not out.sc:
            self.sc_explainable_runs += 1
        if out.cycles:
            self.cycles.add(out.cycles)

    @property
    def sc_violations(self) -> int:
        """Programs on which this executor failed an SC requirement."""
        if not self.sc:
            return 0
        return self.witness_failures + self.oracle_failures


@dataclass
class FailureReport:
    """One failing program, before and after shrinking."""

    program: FuzzProgram
    reasons: List[str]
    shrunk: Optional[FuzzProgram] = None
    shrunk_reasons: List[str] = field(default_factory=list)

    def describe(self) -> str:
        lines = [f"failing program {self.program.name}:",
                 self.program.pretty()]
        lines.extend(f"  {r}" for r in self.reasons)
        if self.shrunk is not None:
            lines.append(f"shrunk to {self.shrunk.n_ops} ops:")
            lines.append(self.shrunk.pretty())
            lines.extend(f"  {r}" for r in self.shrunk_reasons)
        return "\n".join(lines)


class CampaignResult:
    """Aggregated result of one fuzz campaign."""

    def __init__(self, seed: int, n_programs: int, knobs: FuzzKnobs):
        self.seed = seed
        self.n_programs = n_programs
        self.knobs = knobs
        self.programs_run = 0
        self.programs_failed = 0
        self.tallies: Dict[str, ExecutorTally] = {}
        self.failures: List[FailureReport] = []
        self.elapsed = 0.0

    @property
    def sc_violations(self) -> int:
        return sum(t.sc_violations for t in self.tallies.values())

    @property
    def passed(self) -> bool:
        return self.programs_failed == 0

    def add_verdict(self, verdict: ProgramVerdict) -> None:
        self.programs_run += 1
        if not verdict.passed:
            self.programs_failed += 1
        for name, out in verdict.outcomes.items():
            tally = self.tallies.get(name)
            if tally is None:
                tally = self.tallies[name] = ExecutorTally(name, out.sc)
            tally.add(out)

    # ------------------------------------------------------------------
    def as_experiment(self) -> ExperimentResult:
        """Report the campaign like any harness experiment."""
        exp = ExperimentResult(
            "fuzz",
            f"Differential fuzz campaign - seed {self.seed}, "
            f"{self.programs_run} programs "
            f"({self.knobs.n_cores}x{self.knobs.warps_per_core} warps, "
            f"{self.knobs.ops_per_warp} ops, {self.knobs.n_addrs} addrs, "
            f"fence density {self.knobs.fence_density})",
            ["executor", "model", "runs", "errors", "witness_fail",
             "oracle_fail", "oracle_exh", "sc_like(wo)", "avg_cycles"],
        )
        for name in sorted(self.tallies):
            t = self.tallies[name]
            exp.add_row(name, "sc" if t.sc else "wo", t.runs, t.errors,
                        t.witness_failures if t.sc else "-",
                        t.oracle_failures if t.sc else "-",
                        t.oracle_exhausted,
                        "-" if t.sc else t.sc_explainable_runs,
                        t.cycles.mean)
        exp.claim("SC protocols preserve SC on random programs",
                  "0 violations (paper: RCC/TCS/MESI implement SC)",
                  f"{self.sc_violations} violation(s) over "
                  f"{self.programs_run} programs")
        if self.failures:
            for f in self.failures[:3]:
                exp.notes.append(f.describe())
        return exp

    def render(self) -> str:
        out = [self.as_experiment().render()]
        out.append(f"[{self.programs_run} programs in {self.elapsed:.1f}s; "
                   f"{self.programs_failed} failing]")
        return "\n".join(out)


def _check_one(args) -> ProgramVerdict:
    """Campaign worker: generate and check program ``i`` (module level so
    the sweep executor can ship it to worker processes)."""
    runner, seed_i, knobs = args
    return runner.check_program(generate_program(seed_i, knobs))


def run_campaign(runner: DifferentialRunner, seed: int, n_programs: int,
                 knobs: Optional[FuzzKnobs] = None,
                 shrink: bool = True,
                 max_shrinks: int = 5,
                 shrink_attempts: int = 300,
                 on_program: Optional[Callable[[int, ProgramVerdict], None]]
                 = None,
                 executor: Optional[Any] = None) -> CampaignResult:
    """Generate and differentially check ``n_programs`` programs seeded
    ``seed .. seed+n_programs-1``; shrink up to ``max_shrinks`` failures.

    With a parallel :class:`~repro.exec.SweepExecutor` (``jobs > 1``) the
    per-program checks fan out over worker processes; each program's seed
    is fixed by its index, so the verdicts — and therefore the campaign
    tallies and failure reports — are identical to a serial run.
    Shrinking always happens in the parent (it is a sequential search).

    A journaling executor (``journal_dir``/``--resume``) also routes the
    serial case through :meth:`SweepExecutor.map`, so each program's
    verdict lands in the campaign journal the moment it is checked and an
    interrupted campaign resumes with zero re-checked programs. The
    streaming generator below is reserved for plain serial runs — the
    nightly 2000-program campaigns rely on never materializing every
    verdict at once.
    """
    from repro.fuzz.shrink import shrink_program

    knobs = knobs or FuzzKnobs()
    result = CampaignResult(seed, n_programs, knobs)
    t0 = time.time()
    if executor is not None and (executor.jobs > 1 or executor.journaling):
        import dataclasses
        verdicts: Any = executor.map(
            _check_one, [(runner, seed + i, knobs)
                         for i in range(n_programs)],
            labels=[f"program[{seed + i}]" for i in range(n_programs)],
            meta={"campaign": "litmus-fuzz", "seed": seed,
                  "n_programs": n_programs,
                  "knobs": dataclasses.asdict(knobs),
                  "protocols": sorted(ex.name
                                      for ex in runner.executors)})
    else:
        verdicts = (runner.check_program(generate_program(seed + i, knobs))
                    for i in range(n_programs))
    for i, verdict in enumerate(verdicts):
        result.add_verdict(verdict)
        if on_program is not None:
            on_program(i, verdict)
        if verdict.passed:
            continue
        report = FailureReport(program=verdict.program,
                               reasons=verdict.failures)
        if shrink and len(result.failures) < max_shrinks:
            def still_fails(p: FuzzProgram) -> bool:
                return not runner.check_program(p).passed

            report.shrunk = shrink_program(verdict.program, still_fails,
                                           max_attempts=shrink_attempts)
            report.shrunk_reasons = \
                runner.check_program(report.shrunk).failures
        result.failures.append(report)
    result.elapsed = time.time() - t0
    return result
