"""``repro-fuzz``: command-line differential and workload-knob fuzzing.

Usage::

    repro-fuzz --seed 0 --programs 200            # default campaign
    repro-fuzz --programs 50 --fence-density 0.5  # fence-heavy mix
    repro-fuzz --protocols RCC,MESI --addrs 1     # single-block contention
    repro-fuzz --replay tests/corpus              # replay a corpus
    repro-fuzz --programs 1000 --save-failing out/  # archive reproducers

    repro-fuzz --workloads --runs 25              # hostile-lab campaign
    repro-fuzz --workloads --regimes storm,thrash --save-cells tests/corpus

With ``--workloads`` the fuzzer mutates hostile-workload knobs instead of
litmus programs, hunting invariant violations and performance cliffs
against ``benchmarks/perf_baseline.json`` (see :mod:`repro.fuzz.workloads`).
``--replay`` accepts both corpus formats: ``*.trace`` litmus programs and
``*.cell`` hostile-run reproducers.

Exit status is non-zero when any program fails differential checking or
any hostile run violates an invariant, so the command slots straight into
CI. Cliffs are report-only unless ``--fail-on-cliff``. ``make fuzz`` runs
a long campaign.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.coherence.registry import available_protocols
from repro.config import NAMED_CONFIGS, named_config
from repro.core.lease_policy import available_lease_policies
from repro.errors import ReproError
from repro.exec import SweepExecutor
from repro.fuzz.cellfile import cell_files, replay_cell, save_cell
from repro.fuzz.corpus import corpus_files, load_program, save_program
from repro.fuzz.differential import (
    DifferentialRunner, run_campaign,
)
from repro.fuzz.generator import FuzzKnobs
from repro.fuzz.workloads import DEFAULT_PROTOCOLS, run_hostile_campaign

DEFAULT_BASELINE = os.path.join("benchmarks", "perf_baseline.json")


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-fuzz",
        description="Differential litmus fuzzing: run randomized programs "
                    "under every coherence protocol and cross-check SC "
                    "protocols against the witness checker and an SC "
                    "interleaving oracle.")
    p.add_argument("--seed", type=int, default=0,
                   help="base seed; program i uses seed+i (default 0)")
    p.add_argument("--programs", type=int, default=200,
                   help="number of programs to generate (default 200)")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes for the campaign (default: "
                        "RCC_JOBS or 1; progress lines then print after "
                        "the parallel phase)")
    p.add_argument("--protocols", default="all",
                   help="comma-separated protocol list, or 'all' "
                        f"({', '.join(available_protocols())})")
    p.add_argument("--config", choices=sorted(NAMED_CONFIGS),
                   default="small",
                   help="base machine configuration (default small)")
    p.add_argument("--lease-policy", default=None,
                   choices=available_lease_policies(),
                   help="pin one RCC lease policy for every run (litmus "
                        "mode: sets the base config; --workloads: forces "
                        "the policy on every mutation draw instead of "
                        "sampling it)")
    # Generator knobs.
    p.add_argument("--cores", type=int, default=2)
    p.add_argument("--warps", type=int, default=1,
                   help="warps per core (default 1)")
    p.add_argument("--ops", type=int, default=6,
                   help="memory ops per warp (default 6)")
    p.add_argument("--addrs", type=int, default=2,
                   help="address-pool size in blocks (default 2)")
    p.add_argument("--p-store", type=float, default=0.35)
    p.add_argument("--p-atomic", type=float, default=0.05)
    p.add_argument("--fence-density", type=float, default=0.0,
                   help="P(fence after each mem op), 0..1 (default 0)")
    p.add_argument("--sharing", choices=["uniform", "hot", "private"],
                   default="uniform")
    p.add_argument("--p-compute", type=float, default=0.0,
                   help="P(compute padding before each mem op)")
    # Failure handling.
    p.add_argument("--no-shrink", action="store_true",
                   help="keep failing programs at full size")
    p.add_argument("--save-failing", metavar="DIR",
                   help="write shrunk reproducers as corpus files to DIR")
    # Replay mode.
    p.add_argument("--replay", metavar="PATH", nargs="+",
                   help="replay corpus files/directories instead of "
                        "generating programs")
    p.add_argument("--verbose", "-v", action="store_true",
                   help="print a line per program")
    p.add_argument("--sanitize", action="store_true",
                   help="run every simulation with the coherence-invariant "
                        "sanitizer; a violation fails the program")
    p.add_argument("--trace-out", metavar="FILE",
                   help="with --sanitize: dump the last coherence events "
                        "as JSON lines to FILE on a violation")
    # Workload-knob fuzzing (the hostile lab).
    p.add_argument("--workloads", action="store_true",
                   help="fuzz hostile-workload knobs instead of litmus "
                        "programs (sanitizer always on; see --runs, "
                        "--regimes, --baseline)")
    p.add_argument("--runs", type=int, default=10,
                   help="with --workloads: mutation draws, round-robined "
                        "across regimes (default 10)")
    p.add_argument("--regimes", default="all",
                   help="with --workloads: comma-separated hostile regimes "
                        "or 'all' (storm, pingpong, rwext, bursty, thrash)")
    p.add_argument("--baseline", metavar="FILE", default=DEFAULT_BASELINE,
                   help="perf baseline for cliff detection (default "
                        f"{DEFAULT_BASELINE}; 'none' disables)")
    p.add_argument("--cliff-ratio", type=float, default=0.125,
                   help="throughput cliff: normalized events/s below this "
                        "fraction of the baseline median (default 0.125)")
    p.add_argument("--stall-factor", type=float, default=20.0,
                   help="stall cliff: SC stall cycles/op above this "
                        "multiple of the reference median (default 20)")
    p.add_argument("--report", metavar="FILE",
                   help="with --workloads: write the full campaign report "
                        "as JSON to FILE")
    p.add_argument("--save-cells", metavar="DIR",
                   help="with --workloads: write violation/cliff "
                        "reproducers as .cell files to DIR")
    p.add_argument("--fail-on-cliff", action="store_true",
                   help="with --workloads: exit non-zero on performance "
                        "cliffs too, not just violations")
    # Crash safety: campaign journaling and the chaos battery.
    p.add_argument("--journal-dir", metavar="DIR", default=None,
                   help="journal the campaign as an append-only JSONL "
                        "file in DIR; re-running the same command resumes "
                        "from the last completed program/cell "
                        "(default: RCC_JOURNAL_DIR)")
    p.add_argument("--resume", metavar="PATH", default=None,
                   help="resume from a specific campaign journal file "
                        "(errors if it belongs to a different campaign), "
                        "or from a journal directory (same as "
                        "--journal-dir)")
    p.add_argument("--chaos", metavar="SPEC", nargs="?", const="battery",
                   help="with a SPEC (e.g. 'flaky:0.5;seed=7'): run this "
                        "campaign under the deterministic fault plan "
                        "(same as RCC_CHAOS=SPEC); with no SPEC: run the "
                        "chaos battery instead — the executor-contract "
                        "plan matrix plus kill-and-resume round-trips "
                        "for every campaign kind")
    p.add_argument("--chaos-resume-kinds", default="all", metavar="KINDS",
                   help="with bare --chaos: comma-separated campaign "
                        "kinds for the kill-and-resume battery, 'all' "
                        "(cells, litmus, hostile, ablation) or 'none'")
    return p


def _knobs(args) -> FuzzKnobs:
    return FuzzKnobs(
        n_cores=args.cores, warps_per_core=args.warps,
        ops_per_warp=args.ops, n_addrs=args.addrs,
        p_store=args.p_store, p_atomic=args.p_atomic,
        fence_density=args.fence_density, sharing=args.sharing,
        p_compute=args.p_compute)


def _runner(args) -> DifferentialRunner:
    cfg = named_config(args.config)
    if args.lease_policy:
        import dataclasses
        cfg = cfg.replace(
            ts=dataclasses.replace(cfg.ts, lease_policy=args.lease_policy))
    protocols = (available_protocols() if args.protocols == "all"
                 else [s.strip() for s in args.protocols.split(",") if s.strip()])
    return DifferentialRunner(cfg=cfg, protocols=protocols,
                              sanitize=args.sanitize,
                              trace_out=args.trace_out)


def _replay(args, runner: DifferentialRunner) -> int:
    """Replay a mixed corpus: litmus ``.trace`` programs through the
    differential runner, hostile ``.cell`` reproducers through the
    sanitized simulator."""
    paths: List[str] = []
    for p in args.replay:
        if os.path.isdir(p):
            paths.extend(corpus_files(p))
            paths.extend(cell_files(p))
        else:
            paths.append(p)
    if not paths:
        print("no corpus files found", file=sys.stderr)
        return 2
    failed = 0
    for path in sorted(paths):
        if path.endswith(".cell"):
            replay = replay_cell(path)
            print(replay.describe())
            if not replay.passed:
                failed += 1
            continue
        program = load_program(path)
        verdict = runner.check_program(program)
        status = "PASS" if verdict.passed else "FAIL"
        print(f"{status} {path} ({program.n_ops} ops, "
              f"{len(program.warps)} warps)")
        if not verdict.passed:
            failed += 1
            for reason in verdict.failures:
                print(f"  {reason}")
        elif args.verbose:
            print(program.pretty())
    print(f"[replayed {len(paths)} corpus entries, {failed} failing]")
    return 1 if failed else 0


def _workloads_main(args) -> int:
    """The ``--workloads`` mode: one hostile-lab fuzz campaign."""
    protocols = (list(DEFAULT_PROTOCOLS) if args.protocols == "all"
                 else [s.strip() for s in args.protocols.split(",")
                       if s.strip()])
    baseline = None if args.baseline.lower() == "none" else args.baseline

    def progress(i, run):
        if args.verbose:
            status = run.status.upper() if not run.ok else (
                "CLIFF" if run.cliffs else "OK")
            print(f"[{i + 1}] {status} {run.regime} {run.cell.label} "
                  f"seed={run.cell.seed}")

    result = run_hostile_campaign(
        config_name=args.config, regimes=args.regimes, runs=args.runs,
        seed=args.seed, protocols=protocols, baseline_path=baseline,
        cliff_ratio=args.cliff_ratio, stall_factor=args.stall_factor,
        executor=_executor(args), on_run=progress,
        lease_policy=args.lease_policy)
    print(result.render())
    if args.report:
        with open(args.report, "w") as fh:
            json.dump(result.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"campaign report written to {args.report}")
    interesting = result.violations + result.errors + result.cliff_runs
    if args.save_cells and interesting:
        os.makedirs(args.save_cells, exist_ok=True)
        for run in interesting:
            reason = (run.record["message"] if not run.ok
                      else "; ".join(run.cliffs))
            expect = ({"mem_ops": run.record["mem_ops"]} if run.ok else {})
            stem = f"hostile_{run.regime}_{run.cell.protocol.lower()}_" \
                   f"{run.cell.seed % 100000:05d}"
            path = os.path.join(args.save_cells, f"{stem}.cell")
            save_cell(path, run.cell, run.config_name, reason=reason,
                      expect=expect)
            print(f"reproducer written to {path}")
    if not result.passed:
        return 1
    if args.fail_on_cliff and result.cliff_runs:
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _main(args)
    except (ReproError, ValueError, OSError) as exc:
        # User-input errors (bad protocol, bad knob, missing corpus file)
        # deserve one line, not a traceback.
        print(f"repro-fuzz: {exc}", file=sys.stderr)
        return 2


def _chaos_battery_main(args) -> int:
    """Bare ``--chaos``: the contract battery + kill-and-resume trips."""
    from repro.chaos.campaign import CHILD_KINDS, run_chaos_campaign

    raw = args.chaos_resume_kinds
    if raw == "all":
        kinds: List[str] = list(CHILD_KINDS)
    elif raw == "none":
        kinds = []
    else:
        kinds = [s.strip() for s in raw.split(",") if s.strip()]
        unknown = [k for k in kinds if k not in CHILD_KINDS]
        if unknown:
            print(f"repro-fuzz: unknown resume kind(s) {unknown}; choose "
                  f"from {', '.join(CHILD_KINDS)}", file=sys.stderr)
            return 2
    outcomes = run_chaos_campaign(kill_resume=kinds)
    failed = [o for o in outcomes if not o.ok]
    print(f"[chaos battery: {len(outcomes)} scenario(s), "
          f"{len(failed)} failing]")
    return 1 if failed else 0


def _executor(args) -> SweepExecutor:
    return SweepExecutor(jobs=args.jobs, journal_dir=args.journal_dir,
                         resume=args.resume)


def _main(args) -> int:
    if args.chaos == "battery":
        return _chaos_battery_main(args)
    if args.chaos:
        os.environ["RCC_CHAOS"] = args.chaos
    if args.workloads:
        return _workloads_main(args)
    runner = _runner(args)
    if args.replay:
        return _replay(args, runner)

    knobs = _knobs(args)
    knobs.validate()

    def progress(i, verdict):
        if args.verbose:
            status = "PASS" if verdict.passed else "FAIL"
            print(f"[{i + 1}/{args.programs}] {status} "
                  f"{verdict.program.name}")

    result = run_campaign(runner, seed=args.seed, n_programs=args.programs,
                          knobs=knobs, shrink=not args.no_shrink,
                          on_program=progress,
                          executor=_executor(args))
    print(result.render())
    for report in result.failures:
        print()
        print(report.describe())
    if args.save_failing and result.failures:
        os.makedirs(args.save_failing, exist_ok=True)
        for report in result.failures:
            program = report.shrunk or report.program
            path = os.path.join(args.save_failing, f"{program.name}.trace")
            save_program(path, program,
                         comments=[f"reasons: {'; '.join(report.reasons)}"])
            print(f"reproducer written to {path}")
    return 0 if result.passed else 1


if __name__ == "__main__":
    sys.exit(main())
