"""Workload-knob fuzzing: the hostile-lab campaign driver.

Where the litmus fuzzer mutates *programs*, this mode mutates *workload
knobs*: each run draws one point from a hostile regime's knob/timestamp
space (:meth:`HostileRegime.sample_cell_inputs`), names it as an ordinary
:class:`~repro.exec.cells.SimCell` (knobs ride in the workload spec
string, machine conditions in ``ts_overrides``), and executes it through
the existing :class:`~repro.exec.engine.SweepExecutor` with the
coherence sanitizer armed. The hunt is for two failure classes:

* **invariant violations** — the sanitizer fires mid-simulation; and
* **performance cliffs** — calibration-normalized simulator throughput
  (events/s) collapsing below, or SC stall cycles per memory op blowing
  up above, what ``benchmarks/perf_baseline.json`` says this host
  sustains on the benign suite.

Both are archived as replayable ``.cell`` reproducers (see
:mod:`repro.fuzz.cellfile`) suitable for checking into ``tests/corpus/``.

Cliff thresholds are deliberately loose (default 8x down on throughput,
20x up on stalls vs the benign median): hostile workloads are *supposed*
to be slower — the lab flags collapse, not degradation.
"""

from __future__ import annotations

import json
import statistics
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import os

from repro.config import GPUConfig, named_config
from repro.errors import InvariantViolation, ReproError
from repro.exec.cells import SimCell, canonical_overrides, derive_seed, \
    run_cell
from repro.exec.engine import SweepExecutor
from repro.perf.bench import calibrate
from repro.sanitize.sanitizer import ENV_SANITIZE
from repro.workloads.hostile import HostileRegime, select_regimes

CAMPAIGN_SCHEMA = 1

#: Protocols a campaign sweeps by default: every timing protocol family
#: (SC-IDEAL is excluded — an idealized machine has no cliffs to find).
DEFAULT_PROTOCOLS = ("MESI", "TCS", "TCW", "RCC", "RCC-WO")

#: Intensity ladder mutation draws cycle through; hostile behavior often
#: only shows at scale, but every run must stay unit-test sized.
_INTENSITIES = (0.25, 0.5, 1.0)


def _execute_hostile(cell: SimCell) -> Dict[str, Any]:
    """Worker: run one hostile cell, fold failures into the record.

    Violations and simulator errors are *results* of a fuzz campaign, not
    infrastructure failures, so they are caught here inside the worker —
    returning a record instead of raising keeps the executor's
    retry/HarnessError machinery out of the loop and the record picklable
    across the fork boundary.
    """
    t0 = time.perf_counter()
    try:
        res = run_cell(cell)
    except InvariantViolation as exc:
        return {"status": "violation", "wall_s": time.perf_counter() - t0,
                "message": f"{type(exc).__name__}: {exc}"}
    except ReproError as exc:
        return {"status": "error", "wall_s": time.perf_counter() - t0,
                "message": f"{type(exc).__name__}: {exc}"}
    wall = time.perf_counter() - t0
    return {
        "status": "ok",
        "wall_s": round(wall, 6),
        "message": "",
        "events": res.events_fired,
        "cycles": res.cycles,
        "mem_ops": res.mem_ops,
        "sc_stall_cycles": res.sc_stall_cycles,
        "rollovers": res.rollovers,
        "events_per_s": round(res.events_fired / wall, 1) if wall > 0
        else 0.0,
    }


@dataclass
class HostileRun:
    """One executed (regime, protocol, mutated cell) point."""

    regime: str
    cell: SimCell
    config_name: str
    record: Dict[str, Any]
    #: Cliff reasons attached during analysis (empty = within band).
    cliffs: List[str] = field(default_factory=list)

    @property
    def status(self) -> str:
        return self.record["status"]

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def stall_per_op(self) -> float:
        ops = self.record.get("mem_ops") or 0
        return self.record.get("sc_stall_cycles", 0) / ops if ops else 0.0

    def to_json(self) -> Dict[str, Any]:
        doc = {
            "regime": self.regime,
            "config": self.config_name,
            "protocol": self.cell.protocol,
            "workload": self.cell.workload,
            "intensity": self.cell.intensity,
            "seed": self.cell.seed,
            "ts_overrides": [[k, v] for k, v in self.cell.ts_overrides],
            "cliffs": list(self.cliffs),
        }
        doc.update(self.record)
        if self.ok:
            doc["stall_per_op"] = round(self.stall_per_op, 3)
        return doc


@dataclass
class HostileCampaignResult:
    """Everything one ``repro-fuzz --workloads`` campaign produced."""

    config_name: str
    runs: List[HostileRun]
    calibration: float
    baseline_path: Optional[str]
    baseline_norm_median: Optional[float]
    baseline_stall_median: Optional[float]
    cliff_ratio: float
    stall_factor: float
    #: False when the campaign ran parallel and wall-clock throughput
    #: was therefore not judged (stall cliffs were still checked).
    throughput_judged: bool = True

    @property
    def violations(self) -> List[HostileRun]:
        return [r for r in self.runs if r.status == "violation"]

    @property
    def errors(self) -> List[HostileRun]:
        return [r for r in self.runs if r.status == "error"]

    @property
    def cliff_runs(self) -> List[HostileRun]:
        return [r for r in self.runs if r.ok and r.cliffs]

    @property
    def passed(self) -> bool:
        """Violations and simulator errors fail a campaign; cliffs are
        report-only unless the caller opts in (``--fail-on-cliff``)."""
        return not self.violations and not self.errors

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": CAMPAIGN_SCHEMA,
            "kind": "hostile-campaign",
            "config": self.config_name,
            "calibration_loops_per_s": round(self.calibration, 1),
            "baseline": {
                "path": self.baseline_path,
                "events_per_s_normalized_median": self.baseline_norm_median,
                "stall_cycles_per_op_median": self.baseline_stall_median,
                "cliff_ratio": self.cliff_ratio,
                "stall_factor": self.stall_factor,
                "throughput_judged": self.throughput_judged,
            },
            "totals": {
                "runs": len(self.runs),
                "violations": len(self.violations),
                "errors": len(self.errors),
                "cliffs": len(self.cliff_runs),
            },
            "runs": [r.to_json() for r in self.runs],
        }

    def render(self) -> str:
        by_regime: Dict[str, int] = {}
        for r in self.runs:
            by_regime[r.regime] = by_regime.get(r.regime, 0) + 1
        lines = [
            f"[hostile campaign: {len(self.runs)} runs over "
            f"{len(by_regime)} regimes ("
            + ", ".join(f"{k}:{v}" for k, v in sorted(by_regime.items()))
            + f"), {len(self.violations)} violations, "
            f"{len(self.errors)} errors, {len(self.cliff_runs)} cliffs]"
        ]
        if not self.throughput_judged:
            lines.append("  note: parallel campaign — wall-clock "
                         "throughput not judged (rerun with --jobs 1 "
                         "for cliff detection); stall cliffs checked")
        if self.baseline_norm_median is not None:
            lines.append(
                f"  baseline: normalized events/s median "
                f"{self.baseline_norm_median:.6f} (cliff below "
                f"{self.cliff_ratio:g}x), stall/op median "
                f"{self.baseline_stall_median if self.baseline_stall_median is not None else 0:.3f}"
                f" (cliff above {self.stall_factor:g}x)")
        else:
            lines.append("  baseline: none loaded; stall cliffs judged "
                         "against the campaign's own per-protocol medians")
        for r in self.runs:
            if r.status != "ok":
                lines.append(f"  {r.status.upper()} {r.regime} "
                             f"{r.cell.label} seed={r.cell.seed}: "
                             f"{r.record['message']}")
        for r in self.cliff_runs:
            lines.append(f"  CLIFF {r.regime} {r.cell.label} "
                         f"seed={r.cell.seed}")
            for reason in r.cliffs:
                lines.append(f"    {reason}")
        return "\n".join(lines)


def load_baseline(path: str) -> Optional[Dict[str, Any]]:
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


def _baseline_medians(baseline: Optional[Dict[str, Any]]
                      ) -> Tuple[Optional[float], Optional[float]]:
    """(normalized events/s median, stall-cycles-per-op median) from a
    perf baseline report; each is ``None`` if the field set is absent
    (pre-stall-field baselines lack the second)."""
    if not baseline:
        return None, None
    cells = baseline.get("cells", {})
    norms = [c["events_per_s_normalized"] for c in cells.values()
             if c.get("events_per_s_normalized")]
    stalls = [c["stall_cycles_per_op"] for c in cells.values()
              if "stall_cycles_per_op" in c]
    return (statistics.median(norms) if norms else None,
            statistics.median(stalls) if stalls else None)


def plan_cells(regimes: Sequence[HostileRegime], runs: int, seed: int,
               cfg: GPUConfig, protocols: Sequence[str],
               ts_pins: Optional[Dict[str, Any]] = None
               ) -> List[Tuple[HostileRegime, SimCell]]:
    """The campaign grid: ``runs`` mutation draws round-robined across
    regimes, each paired with a protocol and intensity from the ladder.

    Draw ``i`` is fully determined by ``(seed, regime, i)`` — the knob
    sample, the protocol, and the cell seed all derive from it — so a
    campaign is reproducible from its command line alone. Draw 0 of each
    regime is the *unmutated* center point, guaranteeing the five
    canonical regimes themselves are always covered.

    ``ts_pins`` force timestamp fields on every planned cell *after* the
    mutation draw (``--lease-policy`` pins the policy campaign-wide this
    way); the draw stream itself is unaffected, so a pinned campaign
    visits the same knob points as an unpinned one.
    """
    import random

    planned: List[Tuple[HostileRegime, SimCell]] = []
    for i in range(runs):
        regime = regimes[i % len(regimes)]
        draw = i // len(regimes)
        rng = random.Random(derive_seed(seed, "hostile", regime.name, draw))
        if draw == 0:
            spec, ts = regime.default_cell_inputs()
        else:
            spec, ts = regime.sample_cell_inputs(rng)
        if ts_pins:
            ts.update(ts_pins)
        protocol = protocols[rng.randrange(len(protocols))]
        intensity = _INTENSITIES[rng.randrange(len(_INTENSITIES))]
        cell = SimCell(cfg=cfg, protocol=protocol, workload=spec,
                       intensity=intensity,
                       seed=derive_seed(seed, "cell", regime.name, draw),
                       ts_overrides=canonical_overrides(ts))
        planned.append((regime, cell))
    return planned


def _attach_cliffs(result: HostileCampaignResult,
                   trust_wall_clock: bool = True) -> None:
    """Mark throughput/stall cliffs on each ok run, in place.

    With ``trust_wall_clock=False`` (a parallel campaign: workers share
    the CPU while calibration ran alone, deflating measured events/s by
    roughly the jobs count) throughput cliffs are skipped entirely —
    stall cliffs still apply, being deterministic simulated-machine
    quantities that no host-load skew can touch.
    """
    norm_med = result.baseline_norm_median if trust_wall_clock else None
    stall_med = result.baseline_stall_median
    ok_runs = [r for r in result.runs if r.ok]
    if stall_med is None and ok_runs:
        # Grid-median fallback: without baseline stall data, judge each
        # run against its own protocol's median across the campaign (a
        # cliff is then a knob point far outside its protocol's norm).
        per_proto: Dict[str, List[float]] = {}
        for r in ok_runs:
            per_proto.setdefault(r.cell.protocol, []).append(r.stall_per_op)
        proto_medians = {p: statistics.median(v)
                         for p, v in per_proto.items()}
    else:
        proto_medians = {}
    for r in ok_runs:
        wall = r.record.get("wall_s") or 0.0
        events = r.record.get("events") or 0
        norm = (events / wall / result.calibration) if wall > 0 else 0.0
        r.record["events_per_s_normalized"] = round(norm, 6)
        if norm_med is not None and norm > 0:
            floor = norm_med * result.cliff_ratio
            if norm < floor:
                r.cliffs.append(
                    f"throughput cliff: normalized events/s {norm:.6f} is "
                    f"{norm_med / norm:.1f}x below the benign-suite median "
                    f"{norm_med:.6f} (threshold {result.cliff_ratio:g}x)")
        ref_stall = stall_med if stall_med is not None \
            else proto_medians.get(r.cell.protocol)
        if ref_stall is not None and ref_stall > 0:
            ceiling = ref_stall * result.stall_factor
            if r.stall_per_op > ceiling:
                r.cliffs.append(
                    f"stall cliff: {r.stall_per_op:.1f} SC stall cycles "
                    f"per op vs reference median {ref_stall:.2f} "
                    f"(threshold {result.stall_factor:g}x)")


def run_hostile_campaign(
        config_name: str = "small",
        regimes: str = "all",
        runs: int = 10,
        seed: int = 0,
        protocols: Sequence[str] = DEFAULT_PROTOCOLS,
        baseline_path: Optional[str] = None,
        cliff_ratio: float = 1 / 8,
        stall_factor: float = 20.0,
        executor: Optional[SweepExecutor] = None,
        calibration: Optional[float] = None,
        on_run: Optional[Callable[[int, "HostileRun"], None]] = None,
        lease_policy: Optional[str] = None,
) -> HostileCampaignResult:
    """Run one workload-knob fuzz campaign; see the module docstring.

    The sanitizer env toggle is set in the parent around the executor
    call so forked workers inherit it — every hostile run executes with
    invariant checking on, whatever the jobs count. ``lease_policy``
    pins one policy on every run (otherwise each draw samples a policy
    from the regime's ``ts_choices``).
    """
    regime_list = select_regimes(regimes)
    cfg = named_config(config_name)
    ts_pins = {"lease_policy": lease_policy} if lease_policy else None
    planned = plan_cells(regime_list, runs, seed, cfg, protocols, ts_pins)
    executor = executor or SweepExecutor(jobs=1)
    if calibration is None:
        calibration = calibrate()

    prev = os.environ.get(ENV_SANITIZE)
    os.environ[ENV_SANITIZE] = "1"
    try:
        records = executor.map(
            _execute_hostile, [cell for _, cell in planned],
            labels=[f"{reg.name}:{cell.label}" for reg, cell in planned],
            meta={"campaign": "hostile-workloads", "config": config_name,
                  "regimes": regimes, "runs": runs, "seed": seed,
                  "protocols": list(protocols),
                  "lease_policy": lease_policy})
    finally:
        if prev is None:
            os.environ.pop(ENV_SANITIZE, None)
        else:
            os.environ[ENV_SANITIZE] = prev

    hostile_runs = [
        HostileRun(regime=reg.name, cell=cell, config_name=config_name,
                   record=record)
        for (reg, cell), record in zip(planned, records)
    ]
    baseline = load_baseline(baseline_path) if baseline_path else None
    norm_med, stall_med = _baseline_medians(baseline)
    result = HostileCampaignResult(
        config_name=config_name, runs=hostile_runs,
        calibration=calibration,
        baseline_path=baseline_path if baseline else None,
        baseline_norm_median=norm_med, baseline_stall_median=stall_med,
        cliff_ratio=cliff_ratio, stall_factor=stall_factor,
        throughput_judged=executor.jobs <= 1)
    _attach_cliffs(result, trust_wall_clock=result.throughput_judged)
    if on_run:
        for i, r in enumerate(result.runs):
            on_run(i, r)
    return result
