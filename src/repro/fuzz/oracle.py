"""Reference SC oracle: is an observed execution explainable by *any*
sequentially consistent interleaving?

The witness checker (:mod:`repro.consistency.checker`) validates a run
against the protocol's own timestamps; this oracle is independent of them.
It takes only the *architectural observation* — the value every load (and
every atomic's read half) returned, plus the final memory state — and
searches the space of SC interleavings of the program for one that
reproduces the observation exactly. If none exists, the execution is not
SC, full stop — no protocol metadata can excuse it. Running both checkers
differentially means a protocol bug must fool two unrelated validators to
slip through.

Values are *normalized*: a store is identified by ``(core, warp,
prog_index)`` and the initial value by :data:`INIT`, so observations from
different protocols (whose raw data tokens differ) are comparable.

The search is a memoized DFS over interleaving states ``(per-warp pcs,
per-slot last writer)``. Load observations prune aggressively — a load can
only be scheduled when memory holds exactly the value it returned — so
correct observations are explained almost immediately; proving a violation
exhausts the (small) reachable state space. A state budget bounds
pathological cases: exceeding it raises :class:`OracleExhausted` rather
than mislabeling the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.common.types import MemOpKind
from repro.consistency.checker import is_init_value
from repro.errors import ReproError
from repro.fuzz.generator import FuzzProgram

#: Normalized "initial value" marker.
INIT = "init"

#: Normalized "value of unknown provenance" marker — never explainable.
UNKNOWN = "?"

WarpKey = Tuple[int, int]
#: A store's normalized identity.
StoreId = Tuple[int, int, int]


class OracleExhausted(ReproError):
    """The oracle hit its state budget before proving either way."""


@dataclass
class Observation:
    """Architectural outcome of one execution, normalized for comparison.

    ``reads`` lists, per warp in program order, the value every load and
    atomic read half returned; ``final`` maps address slots to the
    identity of their last writer (slots still holding their initial
    value may be absent or map to :data:`INIT`).
    """

    reads: Dict[WarpKey, List[Any]] = field(default_factory=dict)
    final: Dict[int, Any] = field(default_factory=dict)

    def final_of(self, slot: int) -> Any:
        return self.final.get(slot, INIT)


def observation_from_records(
        program: FuzzProgram, records: Iterable[Any],
        final_memory: Optional[Dict[int, Any]] = None,
        block_bytes: int = 128) -> Observation:
    """Normalize a simulator run (``MemOpRecord`` list + final memory)
    into an :class:`Observation` for ``program``.

    Store data tokens are mapped back to ``(core, warp, prog_index)``
    through the store records themselves; tokens that match no store
    become :data:`UNKNOWN` (and thus guaranteed oracle failures).
    """
    records = [r for r in records if r.kind.is_global_mem]
    ident: Dict[Any, StoreId] = {}
    for r in records:
        if r.kind.is_write and r.value is not None:
            ident[r.value] = (r.core_id, r.warp_id, r.prog_index)

    def norm(v: Any) -> Any:
        if is_init_value(v):
            return INIT
        return ident.get(v, UNKNOWN)

    per_warp: Dict[WarpKey, List[Tuple[int, Any]]] = {}
    for r in records:
        if r.kind in (MemOpKind.LOAD, MemOpKind.ATOMIC):
            per_warp.setdefault((r.core_id, r.warp_id), []).append(
                (r.prog_index, norm(r.read_value)))
    reads = {k: [v for _, v in sorted(vals)] for k, vals in per_warp.items()}

    final: Dict[int, Any] = {}
    if final_memory is not None:
        slot_of = {program.addr_of_slot(s, block_bytes): s
                   for s in range(program.n_addrs)}
        for block, token in final_memory.items():
            slot = slot_of.get(block)
            if slot is not None:
                final[slot] = norm(token)
    return Observation(reads=reads, final=final)


# ----------------------------------------------------------------------
# The interleaving search
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class _SemOp:
    """One op with SC semantics (fences/compute are skipped up front)."""

    kind: MemOpKind
    slot: int
    ident: StoreId          # identity if this op writes
    read_cursor: int        # index into the warp's observed reads, or -1


def _semantic_ops(program: FuzzProgram) -> Dict[WarpKey, List[_SemOp]]:
    out: Dict[WarpKey, List[_SemOp]] = {}
    for key in sorted(program.warps):
        sem: List[_SemOp] = []
        cursor = 0
        for i, op in enumerate(program.warps[key]):
            if not op.is_mem:
                continue
            rc = -1
            if op.kind in (MemOpKind.LOAD, MemOpKind.ATOMIC):
                rc = cursor
                cursor += 1
            sem.append(_SemOp(op.kind, op.slot, (key[0], key[1], i), rc))
        out[key] = sem
    return out


def explain(program: FuzzProgram, obs: Observation,
            max_states: int = 500_000
            ) -> Optional[List[Tuple[WarpKey, _SemOp]]]:
    """Search for an SC interleaving reproducing ``obs``.

    Returns the interleaving as a list of ``(warp key, op)`` steps, or
    ``None`` if the observation is not sequentially consistent. Raises
    :class:`OracleExhausted` past ``max_states`` explored states.
    """
    sem = _semantic_ops(program)
    keys = sorted(sem)
    ops = [sem[k] for k in keys]
    expected = [list(obs.reads.get(k, [])) for k in keys]

    # An observation with the wrong number of read values can never be
    # explained (an op was dropped or duplicated by the execution).
    for i, k in enumerate(keys):
        want = sum(1 for o in ops[i]
                   if o.kind in (MemOpKind.LOAD, MemOpKind.ATOMIC))
        if len(expected[i]) != want:
            return None

    n_slots = program.n_addrs
    goal = tuple(obs.final_of(s) for s in range(n_slots))
    init_mem = tuple([INIT] * n_slots)
    start = (tuple([0] * len(keys)), init_mem)
    dead: set = set()
    visited = 0

    def dfs(pcs: Tuple[int, ...], mem: Tuple[Any, ...],
            path: List[Tuple[WarpKey, _SemOp]]
            ) -> Optional[List[Tuple[WarpKey, _SemOp]]]:
        nonlocal visited
        if all(pc >= len(ops[i]) for i, pc in enumerate(pcs)):
            return list(path) if mem == goal else None
        state = (pcs, mem)
        if state in dead:
            return None
        visited += 1
        if visited > max_states:
            raise OracleExhausted(
                f"oracle exceeded {max_states} states on {program.name}")
        for i in range(len(keys)):
            pc = pcs[i]
            if pc >= len(ops[i]):
                continue
            op = ops[i][pc]
            if op.kind is MemOpKind.LOAD:
                if mem[op.slot] != expected[i][op.read_cursor]:
                    continue
                new_mem = mem
            elif op.kind is MemOpKind.STORE:
                new_mem = mem[:op.slot] + (op.ident,) + mem[op.slot + 1:]
            else:  # ATOMIC: read half must match, then write
                if mem[op.slot] != expected[i][op.read_cursor]:
                    continue
                new_mem = mem[:op.slot] + (op.ident,) + mem[op.slot + 1:]
            new_pcs = pcs[:i] + (pc + 1,) + pcs[i + 1:]
            path.append((keys[i], op))
            found = dfs(new_pcs, new_mem, path)
            if found is not None:
                return found
            path.pop()
        dead.add(state)
        return None

    return dfs(start[0], start[1], [])


def sc_explainable(program: FuzzProgram, obs: Observation,
                   max_states: int = 500_000) -> bool:
    """True iff some SC interleaving of ``program`` reproduces ``obs``."""
    return explain(program, obs, max_states=max_states) is not None
