"""Differential litmus fuzzing.

Randomized cross-protocol SC checking: generate seeded multi-warp litmus
programs (:mod:`~repro.fuzz.generator`), execute them under every
registered coherence protocol (:mod:`~repro.fuzz.differential`), validate
SC protocols against both the timestamp witness checker and an
independent SC interleaving oracle (:mod:`~repro.fuzz.oracle`), and
shrink any failure to a minimal, corpus-ready reproducer
(:mod:`~repro.fuzz.shrink`, :mod:`~repro.fuzz.corpus`). The ``repro-fuzz``
CLI (:mod:`~repro.fuzz.cli`) drives campaigns.
"""

from repro.fuzz.corpus import (
    load_corpus, load_program, program_from_text, program_to_text,
    save_program,
)
from repro.fuzz.differential import (
    CampaignResult, DifferentialRunner, ExecutionOutcome, ProgramVerdict,
    ProtocolExecutor, run_campaign,
)
from repro.fuzz.generator import (
    FuzzKnobs, FuzzOp, FuzzProgram, generate_program,
)
from repro.fuzz.oracle import (
    INIT, Observation, OracleExhausted, explain, observation_from_records,
    sc_explainable,
)
from repro.fuzz.shrink import shrink_program
from repro.fuzz.toy import (
    ToyExecutor, broken_store_buffer_executor, reference_sc_executor,
)

__all__ = [
    "FuzzKnobs", "FuzzOp", "FuzzProgram", "generate_program",
    "Observation", "OracleExhausted", "INIT", "explain", "sc_explainable",
    "observation_from_records",
    "DifferentialRunner", "ProtocolExecutor", "ExecutionOutcome",
    "ProgramVerdict", "CampaignResult", "run_campaign",
    "shrink_program",
    "ToyExecutor", "broken_store_buffer_executor", "reference_sc_executor",
    "save_program", "load_program", "load_corpus", "program_to_text",
    "program_from_text",
]
