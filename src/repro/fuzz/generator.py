"""Random litmus-program generation for differential fuzzing.

A :class:`FuzzProgram` is a small multi-warp program over a pool of
*address slots* (each slot lowers to its own cache block). Programs are
symbolic — ops name slots, not byte addresses — so the shrinker can merge
addresses and the same program can be lowered against any block size.

:func:`generate_program` is the seeded generator: the same ``(seed,
knobs)`` pair always yields the identical program, byte for byte. Knobs
control the shape of the search space — how many warps race, how many
blocks they share, how write-heavy the mix is, how often fences appear,
and which sharing pattern (uniform / hot-block / mostly-private) picks the
slot of each access. These are the dimensions along which GPU coherence
protocols historically break: single-block contention stresses store
serialization, hot-block sharing stresses lease renewal, and fence density
stresses the WO drain paths.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.types import MemOpKind
from repro.config import GPUConfig
from repro.gpu.trace import (
    TraceOp, WarpTrace, atomic_op, compute_op, fence_op, load_op, store_op,
)

#: Base byte address of slot 0; slots occupy consecutive blocks from here,
#: which also spreads them across L2 banks.
FUZZ_BASE_ADDR = 0x1000

#: Sharing patterns the generator understands.
SHARING_PATTERNS = ("uniform", "hot", "private")


@dataclass(frozen=True)
class FuzzOp:
    """One symbolic program op: a memory access to an address slot, a
    fence, or compute padding (timing noise to vary interleavings)."""

    kind: MemOpKind
    slot: Optional[int] = None
    cycles: int = 0

    def __post_init__(self):
        if self.kind.is_global_mem and (self.slot is None or self.slot < 0):
            raise ValueError(f"{self.kind} op requires a slot")
        if self.kind is MemOpKind.COMPUTE and self.cycles <= 0:
            raise ValueError("COMPUTE op requires positive cycles")

    @property
    def is_mem(self) -> bool:
        return self.kind.is_global_mem


@dataclass
class FuzzProgram:
    """A symbolic multi-warp program over ``n_addrs`` address slots."""

    n_addrs: int
    warps: Dict[Tuple[int, int], List[FuzzOp]] = field(default_factory=dict)
    name: str = "fuzz"
    seed: Optional[int] = None

    # ------------------------------------------------------------------
    @property
    def n_cores(self) -> int:
        return max((c for c, _ in self.warps), default=-1) + 1

    @property
    def warps_per_core(self) -> int:
        return max((w for _, w in self.warps), default=-1) + 1

    @property
    def n_ops(self) -> int:
        return sum(len(ops) for ops in self.warps.values())

    @property
    def n_mem_ops(self) -> int:
        return sum(1 for _, _, op in self.iter_ops() if op.is_mem)

    def iter_ops(self) -> Iterator[Tuple[Tuple[int, int], int, FuzzOp]]:
        """Yields (warp key, prog_index, op) over all warps in order."""
        for key in sorted(self.warps):
            for i, op in enumerate(self.warps[key]):
                yield key, i, op

    def used_slots(self) -> List[int]:
        return sorted({op.slot for _, _, op in self.iter_ops() if op.is_mem})

    # ------------------------------------------------------------------
    # Lowering to / from concrete warp traces
    # ------------------------------------------------------------------
    def addr_of_slot(self, slot: int, block_bytes: int = 128) -> int:
        return FUZZ_BASE_ADDR + slot * block_bytes

    def _lower_op(self, op: FuzzOp, block_bytes: int) -> TraceOp:
        if op.kind is MemOpKind.LOAD:
            return load_op(self.addr_of_slot(op.slot, block_bytes))
        if op.kind is MemOpKind.STORE:
            return store_op(self.addr_of_slot(op.slot, block_bytes))
        if op.kind is MemOpKind.ATOMIC:
            return atomic_op(self.addr_of_slot(op.slot, block_bytes))
        if op.kind is MemOpKind.FENCE:
            return fence_op()
        if op.kind is MemOpKind.COMPUTE:
            return compute_op(op.cycles)
        raise ValueError(f"fuzz programs cannot contain {op.kind}")

    def to_traces(self, cfg: GPUConfig) -> List[List[WarpTrace]]:
        """Lower to a dense trace grid shaped for ``cfg``. Ops map 1:1 to
        trace slots, so a :class:`MemOpRecord`'s ``prog_index`` equals the
        op's index in its warp's op list."""
        if self.n_cores > cfg.n_cores or self.warps_per_core > cfg.warps_per_core:
            raise ValueError(
                f"program needs {self.n_cores}x{self.warps_per_core} "
                f"(cores x warps), config has "
                f"{cfg.n_cores}x{cfg.warps_per_core}")
        bb = cfg.l1.block_bytes
        traces = [[WarpTrace(c, w) for w in range(cfg.warps_per_core)]
                  for c in range(cfg.n_cores)]
        for (core, warp), ops in self.warps.items():
            traces[core][warp].extend(self._lower_op(op, bb) for op in ops)
        return traces

    @staticmethod
    def from_traces(traces: List[List[WarpTrace]],
                    block_bytes: int = 128,
                    name: str = "replay") -> "FuzzProgram":
        """Reconstruct a symbolic program from lowered traces (slots are
        assigned to distinct blocks in ascending address order)."""
        blocks = sorted({b for row in traces for t in row
                         for b in t.mem_blocks(block_bytes)})
        slot_of = {b: i for i, b in enumerate(blocks)}
        warps: Dict[Tuple[int, int], List[FuzzOp]] = {}
        for row in traces:
            for t in row:
                if not t.ops:
                    continue
                ops: List[FuzzOp] = []
                for op in t.ops:
                    if op.kind.is_global_mem:
                        block = (op.addr // block_bytes) * block_bytes
                        ops.append(FuzzOp(op.kind, slot=slot_of[block]))
                    elif op.kind is MemOpKind.FENCE:
                        ops.append(FuzzOp(MemOpKind.FENCE))
                    elif op.kind is MemOpKind.COMPUTE:
                        ops.append(FuzzOp(MemOpKind.COMPUTE,
                                          cycles=op.cycles))
                    else:
                        raise ValueError(
                            f"fuzz programs cannot contain {op.kind}")
                warps[(t.core_id, t.warp_id)] = ops
        return FuzzProgram(n_addrs=max(len(blocks), 1), warps=warps,
                           name=name)

    # ------------------------------------------------------------------
    def normalized(self) -> "FuzzProgram":
        """Copy with empty warps dropped, warp ids repacked densely, and
        slots renumbered to 0..k-1 in first-use order (the canonical form
        the shrinker converges to)."""
        used = self.used_slots()
        slot_map = {s: i for i, s in enumerate(used)}
        keys = [k for k in sorted(self.warps) if self.warps[k]]
        core_map = {c: i for i, c in enumerate(sorted({c for c, _ in keys}))}
        warps: Dict[Tuple[int, int], List[FuzzOp]] = {}
        next_warp: Dict[int, int] = {}
        for core, warp in keys:
            nc = core_map[core]
            nw = next_warp.get(nc, 0)
            next_warp[nc] = nw + 1
            warps[(nc, nw)] = [
                replace(op, slot=slot_map[op.slot]) if op.is_mem else op
                for op in self.warps[(core, warp)]
            ]
        return FuzzProgram(n_addrs=max(len(used), 1), warps=warps,
                           name=self.name, seed=self.seed)

    def pretty(self) -> str:
        """Human-readable listing (one column per warp)."""
        keys = sorted(self.warps)
        cols = []
        for key in keys:
            rows = [f"c{key[0]}w{key[1]}"]
            for op in self.warps[key]:
                if op.is_mem:
                    rows.append(f"{op.kind.value} a{op.slot}")
                elif op.kind is MemOpKind.COMPUTE:
                    rows.append(f"C {op.cycles}")
                else:
                    rows.append(op.kind.value)
            cols.append(rows)
        height = max((len(c) for c in cols), default=0)
        width = [max(len(r) for r in c) for c in cols]
        lines = []
        for i in range(height):
            cells = [(c[i] if i < len(c) else "").ljust(w)
                     for c, w in zip(cols, width)]
            lines.append(" | ".join(cells).rstrip())
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Knobs + generator
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FuzzKnobs:
    """Shape of the random programs a campaign draws."""

    n_cores: int = 2
    warps_per_core: int = 1
    ops_per_warp: int = 6
    n_addrs: int = 2
    #: Op mix: P(store) and P(atomic); loads take the rest.
    p_store: float = 0.35
    p_atomic: float = 0.05
    #: Probability of a FENCE after each memory op (0 = never, 1 = always).
    fence_density: float = 0.0
    #: Slot-selection pattern: "uniform", "hot" (~60% of accesses hit slot
    #: 0), or "private" (each warp favors its own slot, racing on slot 0).
    sharing: str = "uniform"
    #: Probability of COMPUTE padding before each memory op, and its
    #: maximum duration (varies physical interleavings).
    p_compute: float = 0.0
    compute_max: int = 32

    def validate(self) -> None:
        if self.n_cores < 1 or self.warps_per_core < 1:
            raise ValueError("need at least one core and one warp")
        if self.ops_per_warp < 1:
            raise ValueError("ops_per_warp must be positive")
        if self.n_addrs < 1:
            raise ValueError("n_addrs must be positive")
        if not 0.0 <= self.p_store + self.p_atomic <= 1.0:
            raise ValueError("p_store + p_atomic must be within [0, 1]")
        if not 0.0 <= self.fence_density <= 1.0:
            raise ValueError("fence_density must be within [0, 1]")
        if self.sharing not in SHARING_PATTERNS:
            raise ValueError(f"sharing must be one of {SHARING_PATTERNS}")


def _pick_slot(rng: random.Random, knobs: FuzzKnobs, warp_index: int) -> int:
    n = knobs.n_addrs
    if n == 1:
        return 0
    if knobs.sharing == "hot" and rng.random() < 0.6:
        return 0
    if knobs.sharing == "private" and rng.random() < 0.5:
        return 1 + warp_index % (n - 1)
    return rng.randrange(n)


def _pick_kind(rng: random.Random, knobs: FuzzKnobs) -> MemOpKind:
    r = rng.random()
    if r < knobs.p_store:
        return MemOpKind.STORE
    if r < knobs.p_store + knobs.p_atomic:
        return MemOpKind.ATOMIC
    return MemOpKind.LOAD


def generate_program(seed: int, knobs: Optional[FuzzKnobs] = None,
                     name: Optional[str] = None) -> FuzzProgram:
    """Deterministically generate one program from ``seed`` and ``knobs``."""
    knobs = knobs or FuzzKnobs()
    knobs.validate()
    rng = random.Random(seed)
    warps: Dict[Tuple[int, int], List[FuzzOp]] = {}
    warp_index = 0
    for core in range(knobs.n_cores):
        for warp in range(knobs.warps_per_core):
            ops: List[FuzzOp] = []
            for _ in range(knobs.ops_per_warp):
                if knobs.p_compute and rng.random() < knobs.p_compute:
                    ops.append(FuzzOp(MemOpKind.COMPUTE,
                                      cycles=rng.randint(1, knobs.compute_max)))
                kind = _pick_kind(rng, knobs)
                slot = _pick_slot(rng, knobs, warp_index)
                ops.append(FuzzOp(kind, slot=slot))
                if knobs.fence_density and rng.random() < knobs.fence_density:
                    ops.append(FuzzOp(MemOpKind.FENCE))
            warps[(core, warp)] = ops
            warp_index += 1
    return FuzzProgram(n_addrs=knobs.n_addrs, warps=warps,
                       name=name or f"fuzz-{seed}", seed=seed)
