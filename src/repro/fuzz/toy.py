"""Toy program interpreters: a fast SC reference executor and the
deliberately broken variants the fuzzer's own tests fuzz against.

These bypass the cycle-accurate simulator entirely: a seeded scheduler
interleaves the warps of a :class:`FuzzProgram` one op at a time against a
flat memory. With ``store_buffer_depth=0`` every op is globally visible
the moment it executes, so *any* schedule is sequentially consistent —
that is the reference executor used to validate the oracle (everything it
produces must be SC-explainable).

With ``store_buffer_depth > 0`` each warp gets a private FIFO store
buffer: stores become visible only when drained (after ``depth`` younger
ops, at a fence/atomic, or at warp end), while the warp's own loads
forward from the buffer. That is precisely TSO-style store buffering — the
classic way real hardware gives up SC — and produces store-buffering (SB)
outcomes a correct SC machine must never show. The differential fuzzer
must flag these runs, and the shrinker must reduce them to the minimal
4-op SB core; that closed loop is what certifies the fuzzer can actually
catch a broken protocol.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Tuple

from repro.common.types import MemOpKind
from repro.fuzz.generator import FuzzProgram
from repro.fuzz.oracle import INIT, Observation, WarpKey


class ToyExecutor:
    """Interpreter-backed executor, pluggable into the differential
    runner next to the real protocol executors."""

    def __init__(self, name: str = "TOY-SC", sc: bool = True,
                 store_buffer_depth: int = 0, schedule_seed: int = 0,
                 schedule: str = "random"):
        self.name = name
        #: Whether this executor *claims* sequential consistency (and so
        #: must survive the oracle). The broken fixture claims SC and lies.
        self.sc = sc
        self.store_buffer_depth = store_buffer_depth
        self.schedule_seed = schedule_seed
        #: "random" (seeded per program) or "roundrobin" (one op per warp
        #: in turn — the most adversarial schedule for store buffering,
        #: and stable under shrinking since it ignores program shape).
        if schedule not in ("random", "roundrobin"):
            raise ValueError(f"unknown schedule {schedule!r}")
        self.schedule = schedule

    # ------------------------------------------------------------------
    def run_program(self, program: FuzzProgram) -> Observation:
        """Interpret ``program`` once under the configured schedule."""
        rng = random.Random(
            f"{self.schedule_seed}/{program.seed}/{program.n_ops}")
        keys = sorted(program.warps)
        pcs = {k: 0 for k in keys}
        buffers: Dict[WarpKey, List[Tuple[int, Any]]] = {k: [] for k in keys}
        mem: Dict[int, Any] = {}
        reads: Dict[WarpKey, List[Any]] = {k: [] for k in keys}

        def drain_one(key: WarpKey) -> None:
            slot, val = buffers[key].pop(0)
            mem[slot] = val

        def drain_all(key: WarpKey) -> None:
            while buffers[key]:
                drain_one(key)

        def read(key: WarpKey, slot: int) -> Any:
            for s, val in reversed(buffers[key]):  # own-buffer forwarding
                if s == slot:
                    return val
            return mem.get(slot, INIT)

        live = [k for k in keys if program.warps[k]]
        rr = 0
        while live:
            if self.schedule == "roundrobin":
                key = live[rr % len(live)]
                rr += 1
            else:
                key = live[rng.randrange(len(live))]
            i = pcs[key]
            op = program.warps[key][i]
            ident = (key[0], key[1], i)
            if op.kind is MemOpKind.LOAD:
                reads[key].append(read(key, op.slot))
            elif op.kind is MemOpKind.STORE:
                if self.store_buffer_depth > 0:
                    buffers[key].append((op.slot, ident))
                    if len(buffers[key]) > self.store_buffer_depth:
                        drain_one(key)
                else:
                    mem[op.slot] = ident
            elif op.kind is MemOpKind.ATOMIC:
                # Atomics drain the buffer and act on memory directly, so
                # the *only* defect of the broken variant is plain-store
                # buffering (as on real TSO hardware).
                drain_all(key)
                reads[key].append(mem.get(op.slot, INIT))
                mem[op.slot] = ident
            elif op.kind is MemOpKind.FENCE:
                drain_all(key)
            # COMPUTE: timing-only, no memory semantics.
            pcs[key] = i + 1
            if pcs[key] >= len(program.warps[key]):
                drain_all(key)
                live.remove(key)

        final = {slot: val for slot, val in mem.items() if val != INIT}
        return Observation(reads=reads, final=final)

    # ------------------------------------------------------------------
    def execute(self, program: FuzzProgram):
        """Differential-runner entry point (records-free execution)."""
        from repro.fuzz.differential import ExecutionOutcome
        try:
            obs = self.run_program(program)
        except Exception as exc:  # defensive: report, don't abort campaign
            return ExecutionOutcome(executor=self.name, sc=self.sc,
                                    error=f"{type(exc).__name__}: {exc}")
        return ExecutionOutcome(executor=self.name, sc=self.sc,
                                observation=obs)


def broken_store_buffer_executor(depth: int = 2,
                                 schedule_seed: int = 0,
                                 schedule: str = "roundrobin") -> ToyExecutor:
    """The known-bad fixture: claims SC, buffers stores like TSO."""
    return ToyExecutor(name=f"TOY-TSO{depth}", sc=True,
                       store_buffer_depth=depth,
                       schedule_seed=schedule_seed,
                       schedule=schedule)


def reference_sc_executor(schedule_seed: int = 0) -> ToyExecutor:
    """A correct (if timing-free) SC executor for oracle validation."""
    return ToyExecutor(name="TOY-SC", sc=True, store_buffer_depth=0,
                       schedule_seed=schedule_seed)
