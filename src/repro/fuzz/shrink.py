"""Automatic failure minimization (delta debugging for litmus programs).

Given a failing program and a ``still_fails`` predicate (typically "the
differential runner still reports a failure"), the shrinker greedily
applies reductions, keeping any candidate that still fails:

1. **drop warps** — remove whole warps, largest first;
2. **drop ops** — per warp, remove chunks of ops, halving the chunk size
   down to single ops (classic ddmin);
3. **merge addresses** — rewrite a higher slot onto a lower one, shrinking
   the address pool.

Passes repeat until a full sweep makes no progress (or the attempt budget
runs out — each attempt re-executes the program under every protocol, so
the budget bounds campaign time). The result is :meth:`normalized
<repro.fuzz.generator.FuzzProgram.normalized>`: dense warp ids, slots
renumbered in first-use order — the canonical form checked into the
regression corpus.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.fuzz.generator import FuzzOp, FuzzProgram


class _Budget:
    def __init__(self, n: int):
        self.left = n

    def spend(self) -> bool:
        if self.left <= 0:
            return False
        self.left -= 1
        return True


def _with_warps(program: FuzzProgram,
                warps: Dict[Tuple[int, int], List[FuzzOp]]) -> FuzzProgram:
    return FuzzProgram(n_addrs=program.n_addrs, warps=warps,
                       name=program.name, seed=program.seed)


def _try(candidate: FuzzProgram, still_fails: Callable[[FuzzProgram], bool],
         budget: _Budget) -> Optional[FuzzProgram]:
    if candidate.n_mem_ops == 0:
        return None
    if not budget.spend():
        return None
    return candidate if still_fails(candidate) else None


def _drop_warps(program: FuzzProgram, still_fails, budget) -> FuzzProgram:
    changed = True
    while changed and budget.left > 0:
        changed = False
        if len(program.warps) <= 1:
            break
        # Try removing the largest warp first: biggest win per attempt.
        for key in sorted(program.warps,
                          key=lambda k: -len(program.warps[k])):
            warps = {k: v for k, v in program.warps.items() if k != key}
            kept = _try(_with_warps(program, warps), still_fails, budget)
            if kept is not None:
                program = kept
                changed = True
                break
    return program


def _drop_ops(program: FuzzProgram, still_fails, budget) -> FuzzProgram:
    for key in sorted(program.warps):
        ops = program.warps[key]
        chunk = max(1, len(ops) // 2)
        while chunk >= 1 and budget.left > 0:
            i = 0
            ops = program.warps[key]
            while i < len(ops) and budget.left > 0:
                candidate_ops = ops[:i] + ops[i + chunk:]
                warps = dict(program.warps)
                if candidate_ops:
                    warps[key] = candidate_ops
                else:
                    warps.pop(key)
                    if not warps:
                        i += chunk
                        continue
                kept = _try(_with_warps(program, warps), still_fails, budget)
                if kept is not None:
                    program = kept
                    ops = program.warps.get(key, [])
                else:
                    i += chunk
            chunk //= 2
    return program


def _merge_slots(program: FuzzProgram, still_fails, budget) -> FuzzProgram:
    for hi in sorted(program.used_slots(), reverse=True):
        for lo in sorted(program.used_slots()):
            if lo >= hi or budget.left <= 0:
                break
            warps = {
                k: [FuzzOp(op.kind, slot=lo, cycles=op.cycles)
                    if op.is_mem and op.slot == hi else op
                    for op in ops]
                for k, ops in program.warps.items()
            }
            kept = _try(_with_warps(program, warps), still_fails, budget)
            if kept is not None:
                program = kept
                break
    return program


def shrink_program(program: FuzzProgram,
                   still_fails: Callable[[FuzzProgram], bool],
                   max_attempts: int = 300) -> FuzzProgram:
    """Minimize ``program`` while ``still_fails`` holds; returns the
    normalized minimal reproducer (at worst the input, normalized)."""
    budget = _Budget(max_attempts)
    best = program
    while budget.left > 0:
        before = (best.n_ops, len(best.warps), len(best.used_slots()))
        best = _drop_warps(best, still_fails, budget)
        best = _drop_ops(best, still_fails, budget)
        best = _merge_slots(best, still_fails, budget)
        if (best.n_ops, len(best.warps), len(best.used_slots())) == before:
            break
    shrunk = best.normalized()
    shrunk.name = f"{program.name}-shrunk"
    return shrunk
