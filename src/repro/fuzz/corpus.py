"""Regression corpus: shrunk reproducers saved as replayable trace files.

Corpus files use the repository's existing ``repro-trace v1`` text format
(:mod:`repro.workloads.tracefile`), with extra ``#`` comment headers for
provenance, so any corpus entry can also be fed straight into the
simulator as a workload. Loading reverses the lowering: distinct blocks
become address slots again (ascending address order), giving back a
symbolic :class:`~repro.fuzz.generator.FuzzProgram` the shrinker and
oracle can work with.

``tests/corpus/`` holds the checked-in regression set; every file in it
is replayed under all registered protocols on every test run.
"""

from __future__ import annotations

import io
import os
from typing import Dict, Iterable, List, Optional, Tuple

from repro.gpu.trace import WarpTrace
from repro.fuzz.generator import FuzzProgram
from repro.workloads.tracefile import MAGIC, load_traces, save_traces


def program_to_text(program: FuzzProgram, block_bytes: int = 128,
                    comments: Optional[Iterable[str]] = None) -> str:
    """Serialize ``program`` to repro-trace text with provenance headers."""
    traces: List[List[WarpTrace]] = [
        [WarpTrace(c, w) for w in range(max(1, program.warps_per_core))]
        for c in range(max(1, program.n_cores))
    ]
    for (core, warp), ops in program.warps.items():
        traces[core][warp].extend(
            program._lower_op(op, block_bytes) for op in ops)
    buf = io.StringIO()
    save_traces(buf, traces)
    body = buf.getvalue()
    assert body.startswith(MAGIC)
    header = [MAGIC, f"# fuzz program: {program.name}"]
    if program.seed is not None:
        header.append(f"# seed: {program.seed}")
    header.append(f"# addrs: {program.n_addrs}  ops: {program.n_ops}")
    for line in comments or ():
        header.append(f"# {line}")
    return "\n".join(header) + "\n" + body[len(MAGIC) + 1:]


def program_from_text(text: str, block_bytes: int = 128,
                      name: str = "replay") -> FuzzProgram:
    traces = load_traces(io.StringIO(text))
    program = FuzzProgram.from_traces(traces, block_bytes=block_bytes,
                                      name=name)
    for line in text.splitlines():
        if line.startswith("# seed:"):
            try:
                program.seed = int(line.split(":", 1)[1].strip())
            except ValueError:
                pass
    return program


def save_program(path: str, program: FuzzProgram, block_bytes: int = 128,
                 comments: Optional[Iterable[str]] = None) -> None:
    with open(path, "w") as f:
        f.write(program_to_text(program, block_bytes, comments))


def load_program(path: str, block_bytes: int = 128) -> FuzzProgram:
    name = os.path.splitext(os.path.basename(path))[0]
    with open(path) as f:
        return program_from_text(f.read(), block_bytes=block_bytes,
                                 name=name)


def corpus_files(directory: str) -> List[str]:
    """All corpus entries (``*.trace``) in ``directory``, sorted."""
    return sorted(
        os.path.join(directory, fn) for fn in os.listdir(directory)
        if fn.endswith(".trace"))


def load_corpus(directory: str,
                block_bytes: int = 128) -> List[Tuple[str, FuzzProgram]]:
    """Load every corpus entry; returns (filename, program) pairs."""
    return [(os.path.basename(p), load_program(p, block_bytes))
            for p in corpus_files(directory)]
