"""Corpus cell files: replayable hostile-run reproducers.

The litmus corpus (``*.trace``) pins *programs*; the hostile lab's unit
of reproduction is a *cell* — (named config, protocol, workload spec,
intensity, seed, ts overrides) — so cliffs and invariant violations it
discovers are archived as ``*.cell`` JSON files next to the traces in
``tests/corpus/``. A cell file names its base machine by canned-config
name (``small``/``bench``/``paper``) rather than serializing the whole
config, keeping reproducers readable and robust as the config schema
evolves.

Replaying a cell re-runs the exact simulation under the sanitizer and
checks the recorded expectations: zero invariant violations, and the
``mem_ops`` count (a pure function of the trace, stable across timing
changes — unlike cycles, which later engine work may legitimately move).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.config import GPUConfig, named_config
from repro.errors import ReproError
from repro.exec.cells import SimCell, canonical_overrides
from repro.sim.gpusim import run_simulation
from repro.workloads import get_workload

CELL_SCHEMA = 1


def cell_to_json(cell: SimCell, config_name: str, reason: str = "",
                 expect: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """The JSON document a ``.cell`` file holds.

    The lease policy, though it travels inside ``ts_overrides`` like any
    other timestamp knob, is promoted to an optional top-level
    ``lease_policy`` field so reproducer files state the policy they were
    found under at a glance. Files without the field (every pre-policy
    corpus entry) parse unchanged.
    """
    overrides = dict(cell.ts_overrides)
    policy = overrides.pop("lease_policy", None)
    doc = {
        "schema": CELL_SCHEMA,
        "kind": "hostile-cell",
        "config": config_name,
        "protocol": cell.protocol,
        "workload": cell.workload,
        "intensity": cell.intensity,
        "seed": cell.seed,
        "ts_overrides": [[k, v] for k, v in sorted(overrides.items())],
        "reason": reason,
        "expect": expect or {},
    }
    if policy is not None:
        doc["lease_policy"] = policy
    return doc


def save_cell(path: str, cell: SimCell, config_name: str,
              reason: str = "",
              expect: Optional[Dict[str, Any]] = None) -> None:
    with open(path, "w") as fh:
        json.dump(cell_to_json(cell, config_name, reason, expect), fh,
                  indent=2, sort_keys=True)
        fh.write("\n")


def load_cell(path: str) -> Tuple[SimCell, Dict[str, Any]]:
    """Rebuild (cell, metadata) from a ``.cell`` file."""
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema") != CELL_SCHEMA or doc.get("kind") != "hostile-cell":
        raise ReproError(
            f"{path}: not a v{CELL_SCHEMA} hostile-cell file "
            f"(schema={doc.get('schema')!r}, kind={doc.get('kind')!r})")
    cfg: GPUConfig = named_config(doc["config"])
    overrides = {k: v for k, v in doc.get("ts_overrides", [])}
    # Optional since schema 1: the promoted lease-policy field folds back
    # into the timestamp overrides it came from.
    if "lease_policy" in doc:
        overrides["lease_policy"] = doc["lease_policy"]
    cell = SimCell(
        cfg=cfg,
        protocol=doc["protocol"],
        workload=doc["workload"],
        intensity=float(doc["intensity"]),
        seed=int(doc["seed"]),
        ts_overrides=canonical_overrides(overrides),
    )
    return cell, doc


@dataclass
class CellReplay:
    """Outcome of replaying one corpus cell."""

    path: str
    cell: Optional[SimCell] = None
    reasons: List[str] = field(default_factory=list)
    mem_ops: int = 0
    cycles: int = 0

    @property
    def passed(self) -> bool:
        return not self.reasons

    def describe(self) -> str:
        head = "PASS" if self.passed else "FAIL"
        label = self.cell.label if self.cell is not None else "?"
        line = f"{head} {self.path} ({label})"
        for reason in self.reasons:
            line += f"\n  {reason}"
        return line


def replay_cell(path: str) -> CellReplay:
    """Re-run one cell under the sanitizer and check its expectations."""
    replay = CellReplay(path=path)
    try:
        cell, doc = load_cell(path)
    except (ReproError, OSError, ValueError, KeyError) as exc:
        replay.reasons.append(f"unreadable cell: {type(exc).__name__}: {exc}")
        return replay
    replay.cell = cell
    cfg = cell.effective_cfg()
    wl = get_workload(cell.workload, intensity=cell.intensity,
                      seed=cell.seed)
    try:
        res = run_simulation(cfg, cell.protocol, wl.generate(cfg),
                             cell.workload, sanitize=True)
    except ReproError as exc:
        replay.reasons.append(f"{type(exc).__name__}: {exc}")
        return replay
    replay.mem_ops = res.mem_ops
    replay.cycles = res.cycles
    expect = doc.get("expect") or {}
    if "mem_ops" in expect and res.mem_ops != expect["mem_ops"]:
        replay.reasons.append(
            f"mem_ops drifted: expected {expect['mem_ops']}, "
            f"got {res.mem_ops} (the workload generator changed under "
            "this corpus entry)")
    return replay


def cell_files(directory: str) -> List[str]:
    """All cell entries (``*.cell``) in ``directory``, sorted."""
    return sorted(
        os.path.join(directory, fn) for fn in os.listdir(directory)
        if fn.endswith(".cell"))
