"""Flit-based crossbar interconnect.

The paper's NoC (Table III) is one crossbar per direction moving one 32-bit
flit per cycle per port. We model each direction's per-source injection port
as a serializing resource: a message occupies its port for ``flits`` cycles,
then traverses a fixed pipeline (``link_latency``) before delivery. This
captures the first-order contention effect — data-heavy protocols serialize
behind their own traffic — while remaining cheap enough to simulate hundreds
of thousands of messages in Python.

Traffic is accounted per message kind (Fig. 9c's breakdown) and handed to the
energy model per flit-hop.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Dict, Tuple

from repro.common.messages import Message
from repro.common.types import Direction, MsgKind
from repro.config import NoCConfig
from repro.timing.engine import Engine

DeliverCb = Callable[[Message], None]


class TrafficStats:
    """Flit and message counts broken down by message kind."""

    def __init__(self) -> None:
        self.flits_by_kind: Dict[MsgKind, int] = defaultdict(int)
        self.msgs_by_kind: Dict[MsgKind, int] = defaultdict(int)

    def record(self, msg: Message, flits: int) -> None:
        self.flits_by_kind[msg.kind] += flits
        self.msgs_by_kind[msg.kind] += 1

    @property
    def total_flits(self) -> int:
        return sum(self.flits_by_kind.values())

    @property
    def total_msgs(self) -> int:
        return sum(self.msgs_by_kind.values())

    def grouped_flits(self) -> Dict[str, int]:
        """Paper-style traffic classes: load data, store data, control."""
        groups = {"load_data": 0, "store_data": 0, "control": 0, "renew": 0}
        for kind, flits in self.flits_by_kind.items():
            if kind in (MsgKind.DATA, MsgKind.MEMDATA):
                groups["load_data"] += flits
            elif kind in (MsgKind.WRITE, MsgKind.ATOMIC, MsgKind.WBACK, MsgKind.GETX):
                groups["store_data"] += flits
            elif kind is MsgKind.RENEW:
                groups["renew"] += flits
            else:
                groups["control"] += flits
        return groups


class Crossbar:
    """Both directions of the GPU's core<->L2 interconnect."""

    def __init__(self, engine: Engine, cfg: NoCConfig, block_bytes: int = 128,
                 extra_latency: int = 0):
        self.engine = engine
        self.cfg = cfg
        self.block_bytes = block_bytes
        #: Extra per-hop pipeline depth so that the no-contention L1->L2
        #: round trip matches the configured minimum (paper: 340 cycles,
        #: from microbenchmarking real hardware).
        self.extra_latency = extra_latency
        self.stats = TrafficStats()
        #: Per source-endpoint injection-port next-free cycle (each source
        #: endpoint feeds exactly one direction's crossbar).
        self._port_free: Dict[Any, int] = defaultdict(int)
        self._endpoints: Dict[Any, DeliverCb] = {}
        #: Flit counts — and hence port-serialization cycles — depend only
        #: on the message kind (given the fixed block/flit sizes), so both
        #: are computed once per kind.
        self._flit_info: Dict[MsgKind, Tuple[int, int]] = {}
        self._hop_latency = cfg.link_latency + extra_latency

    # ------------------------------------------------------------------
    def register(self, endpoint: Any, deliver: DeliverCb) -> None:
        """Attach an endpoint id (e.g. ``("l2", 0)``) to its handler."""
        self._endpoints[endpoint] = deliver

    @staticmethod
    def direction_of(src: Any) -> Direction:
        return Direction.CORE_TO_L2 if src[0] == "core" else Direction.L2_TO_CORE

    # ------------------------------------------------------------------
    def send(self, msg: Message) -> int:
        """Inject ``msg``; returns the delivery cycle.

        The message serializes on its source port (1 flit/cycle), then takes
        ``link_latency`` cycles to cross the switch.
        """
        kind = msg.kind
        info = self._flit_info.get(kind)
        if info is None:
            flits = msg.flits(self.block_bytes, self.cfg.flit_bytes)
            per_cycle = self.cfg.flits_per_cycle_per_port
            info = (flits, (flits + per_cycle - 1) // per_cycle)
            self._flit_info[kind] = info
        flits, serialize = info
        stats = self.stats
        stats.flits_by_kind[kind] += flits
        stats.msgs_by_kind[kind] += 1
        # The direction is a function of the source endpoint, so the source
        # alone keys the injection port (``(direction, src)`` and ``src``
        # are in bijection; the tuple build and extra hash were pure
        # overhead in this hot path).
        key = msg.src
        port_free = self._port_free
        start = port_free[key]
        now = self.engine.now
        if now > start:
            start = now
        port_free[key] = start + serialize
        arrival = start + serialize + self._hop_latency

        handler = self._endpoints.get(msg.dst)
        if handler is None:
            raise KeyError(f"message to unregistered endpoint {msg.dst!r}: {msg!r}")
        self.engine.schedule_call(arrival, lambda: handler(msg))
        return arrival
