"""Interconnect energy model (ORION-2.0-style, simplified).

The paper uses ORION 2.0 to estimate NoC energy and reports a breakdown by
component (Fig. 9b). We keep the structure of that estimate — per-flit
dynamic energy split between router crossbar/buffers and links, plus static
(leakage) energy proportional to runtime and to the number of virtual
channels provisioned — without ORION's technology tables. Only *relative*
energies matter for the paper's claims (MESI needs 5 VCs and moves more
flits; timestamp protocols need 2), and those relations are preserved.

All values are in arbitrary energy units (aeu); figures normalize to MESI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.noc.crossbar import TrafficStats


@dataclass
class EnergyParams:
    """Per-event energy costs (arbitrary units)."""

    router_per_flit: float = 1.0      # buffer write/read + xbar traversal
    link_per_flit: float = 0.6        # wire toggling per hop
    #: Buffer leakage + clocking scales with provisioned VC buffers per
    #: port; at GPU NoC utilizations this static share is comparable to
    #: the dynamic one (ORION 2.0's main correction over ORION 1.0), which
    #: is what makes MESI's five virtual networks expensive.
    static_per_cycle_per_vc: float = 0.35
    hops: int = 2                     # core->xbar->bank (both directions alike)


@dataclass
class EnergyBreakdown:
    """Energy split the way Fig. 9b plots it."""

    router_dynamic: float = 0.0
    link_dynamic: float = 0.0
    static: float = 0.0

    @property
    def total(self) -> float:
        return self.router_dynamic + self.link_dynamic + self.static

    def as_dict(self) -> Dict[str, float]:
        return {
            "router_dynamic": self.router_dynamic,
            "link_dynamic": self.link_dynamic,
            "static": self.static,
            "total": self.total,
        }


class EnergyModel:
    """Computes an :class:`EnergyBreakdown` from traffic stats and runtime."""

    def __init__(self, params: EnergyParams = None):
        self.params = params or EnergyParams()

    def estimate(self, traffic: TrafficStats, cycles: int,
                 virtual_channels: int) -> EnergyBreakdown:
        p = self.params
        flits = traffic.total_flits
        return EnergyBreakdown(
            router_dynamic=flits * p.router_per_flit,
            link_dynamic=flits * p.link_per_flit * p.hops,
            static=cycles * p.static_per_cycle_per_vc * virtual_channels,
        )
