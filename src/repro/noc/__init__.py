"""On-chip interconnect: flit-based crossbar and energy model."""

from repro.noc.crossbar import Crossbar, TrafficStats
from repro.noc.energy import EnergyModel, EnergyBreakdown

__all__ = ["Crossbar", "TrafficStats", "EnergyModel", "EnergyBreakdown"]
