"""Banked DRAM partition model.

Each L2 bank fronts one memory partition (paper Table III: 8 partitions of
GDDR). The model captures the two effects the paper's evaluation depends on:
a large minimum latency (~460 cycles) and bank/row-buffer contention under
load. Requests queue per bank; a request to an open row costs
``row_hit_cycles`` of bank occupancy, a row change costs ``row_miss_cycles``
(FR-FCFS is approximated by letting row hits overtake at the queue head
within a small window).

Each partition also owns the RCC "memory time" ``mnow`` — the maximum
``ver``/``exp`` of any block evicted from the L2 to this partition (paper
§III-D) — because that is architecturally where it lives.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.config import DRAMConfig
from repro.timing.engine import Engine

#: Completion callback invoked with the originating request token.
DoneCb = Callable[[Any], None]


class _Bank:
    __slots__ = ("open_row", "busy_until")

    def __init__(self) -> None:
        self.open_row: Optional[int] = None
        self.busy_until: int = 0


class DRAMPartition:
    """One memory partition: queue + banks + ``mnow``."""

    def __init__(self, engine: Engine, cfg: DRAMConfig, partition_id: int,
                 block_bytes: int = 128):
        self.engine = engine
        self.cfg = cfg
        self.partition_id = partition_id
        self.block_bytes = block_bytes
        self.banks = [_Bank() for _ in range(cfg.banks_per_partition)]
        #: RCC memory time: max(exp, ver) over all blocks evicted to DRAM.
        self.mnow: int = 0
        # stats
        self.reads = 0
        self.writes = 0
        self.row_hits = 0
        self.row_misses = 0
        self._queued = 0

    # ------------------------------------------------------------------
    def _bank_and_row(self, addr: int) -> Tuple[_Bank, int]:
        blk = addr // self.block_bytes
        bank_idx = blk % len(self.banks)
        row = addr // self.cfg.row_bytes
        return self.banks[bank_idx], row

    def access(self, addr: int, is_write: bool, token: Any, done: DoneCb) -> None:
        """Issue a block read/write; ``done(token)`` fires at completion.

        Writebacks (``is_write``) complete for accounting purposes but the
        caller typically ignores their completion.
        """
        if is_write:
            self.writes += 1
        else:
            self.reads += 1
        bank, row = self._bank_and_row(addr)
        now = self.engine.now
        start = max(now, bank.busy_until)
        if bank.open_row == row:
            service = self.cfg.row_hit_cycles
            self.row_hits += 1
        else:
            service = self.cfg.row_miss_cycles
            self.row_misses += 1
            bank.open_row = row
        bank.busy_until = start + service
        # The fixed pipeline (command queues, GDDR interface, return path)
        # dominates the minimum latency; bank occupancy adds contention.
        finish = max(start + service, now + self.cfg.min_latency)
        self._queued += 1

        def _complete() -> None:
            self._queued -= 1
            done(token)

        self.engine.schedule_call(finish, _complete)

    # ------------------------------------------------------------------
    def bump_mnow(self, value: int) -> None:
        """Fold an evicted block's max(exp, ver) into the memory time."""
        if value > self.mnow:
            self.mnow = value

    def reset_timestamps(self) -> None:
        """Rollover support: clear the partition's memory time."""
        self.mnow = 0

    @property
    def outstanding(self) -> int:
        return self._queued
