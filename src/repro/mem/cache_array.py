"""Set-associative tag array with LRU replacement.

The array is protocol-agnostic: each :class:`CacheLine` carries generic
coherence fields (``state``, ``exp``, ``ver``, ``sharers``, ``dirty``,
``value``) that each protocol uses as it sees fit. Victim selection never
evicts lines a protocol has pinned (transient states with outstanding
requests).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.config import CacheConfig
from repro.errors import SimulationError

#: Global LRU clock, boxed in a one-element list so the compilable flat
#: kernel (``repro.kernel.hot``) can consume ticks from the same sequence
#: without a Python function call: both kernels share this box, keeping
#: victim selection bit-identical across object/flat/compiled paths.
_lru_clock: List[int] = [0]


def _next_lru() -> int:
    t = _lru_clock[0] + 1
    _lru_clock[0] = t
    return t


class CacheLine:
    """One cache block's tag-array entry."""

    __slots__ = ("addr", "state", "exp", "ver", "dirty", "value", "sharers",
                 "pinned", "_lru", "meta")

    def __init__(self, addr: int, state: Any):
        self.addr = addr                # block-aligned base address
        self.state = state              # protocol-specific state enum
        self.exp: int = 0               # lease expiration (RCC/TC)
        self.ver: int = 0               # write version (RCC L2)
        self.dirty: bool = False        # write-back L2 only
        self.value: Any = None          # opaque data token (for SC checking)
        self.sharers: set = set()       # MESI directory sharer list
        self.pinned: bool = False       # ineligible for eviction (transient)
        self.meta: Dict[str, Any] = {}  # protocol-private extras
        self._lru = _next_lru()

    def touch(self) -> None:
        self._lru = _next_lru()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Line 0x{self.addr:x} {self.state} ver={self.ver} "
                f"exp={self.exp}{' dirty' if self.dirty else ''}>")


class CacheArray:
    """LRU set-associative array keyed by block-aligned addresses.

    ``invalid_state`` is the protocol's I state; lines in that state are
    preferred victims and `lookup` treats them as absent unless asked.
    """

    def __init__(self, cfg: CacheConfig, invalid_state: Any):
        cfg.validate()
        self.cfg = cfg
        self.invalid_state = invalid_state
        self.n_sets = cfg.n_sets
        self.assoc = cfg.assoc
        self._block_shift = cfg.block_bytes.bit_length() - 1
        self._sets: List[Dict[int, CacheLine]] = [dict() for _ in range(self.n_sets)]
        #: Flat base-address -> line mirror of ``_sets``. Lookups by block
        #: address are the single hottest operation in the simulator; one
        #: dict probe here replaces the shift/modulo/set-indexing dance (and
        #: hot protocol paths read ``_map`` directly, skipping the call).
        self._map: Dict[int, CacheLine] = {}

    # ------------------------------------------------------------------
    def set_index(self, addr: int) -> int:
        return (addr >> self._block_shift) % self.n_sets

    def block_of(self, addr: int) -> int:
        return (addr >> self._block_shift) << self._block_shift

    # ------------------------------------------------------------------
    # The address arithmetic is inlined (rather than routed through
    # ``block_of``/``set_index``) in the methods below: lookups run a few
    # hundred thousand times per simulation and the extra call frames were
    # measurable.
    def lookup(self, addr: int) -> Optional[CacheLine]:
        """Return the line holding ``addr`` (any state), or None."""
        blk = addr >> self._block_shift
        return self._map.get(blk << self._block_shift)

    def insert(
        self,
        addr: int,
        state: Any,
        evict_cb: Optional[Callable[[CacheLine], None]] = None,
    ) -> CacheLine:
        """Insert (or reset) a line for ``addr``; evicting an LRU victim if
        the set is full. ``evict_cb`` is called with the victim *before*
        removal so protocols can issue writebacks / update ``mnow``.

        Raises :class:`SimulationError` if every line in the set is pinned —
        callers must check :meth:`can_allocate` first and stall instead.
        """
        blk = addr >> self._block_shift
        base = blk << self._block_shift
        s = self._sets[blk % self.n_sets]
        line = s.get(base)
        if line is not None:
            line.state = state
            line.touch()
            return line
        if len(s) >= self.assoc:
            victim = self._pick_victim(s)
            if victim is None:
                raise SimulationError(
                    f"no evictable line in set {self.set_index(addr)} "
                    f"(all {self.assoc} ways pinned)"
                )
            if evict_cb is not None:
                evict_cb(victim)
            del s[victim.addr]
            del self._map[victim.addr]
        line = CacheLine(base, state)
        s[base] = line
        self._map[base] = line
        return line

    def can_allocate(self, addr: int) -> bool:
        """True if a line for ``addr`` exists or a victim is available."""
        blk = addr >> self._block_shift
        s = self._sets[blk % self.n_sets]
        if blk << self._block_shift in s or len(s) < self.assoc:
            return True
        return self._pick_victim(s) is not None

    def remove(self, addr: int) -> Optional[CacheLine]:
        blk = addr >> self._block_shift
        base = blk << self._block_shift
        self._map.pop(base, None)
        return self._sets[blk % self.n_sets].pop(base, None)

    def _pick_victim(self, s: Dict[int, CacheLine]) -> Optional[CacheLine]:
        # Prefer invalid lines, then LRU. Single pass; ties keep the first
        # candidate in set-dict order, exactly like the historical
        # ``min(invalid or candidates, key=lru)`` over filtered lists.
        inv_state = self.invalid_state
        best = best_inv = None
        best_lru = best_inv_lru = 0
        for ln in s.values():
            if ln.pinned:
                continue
            lru = ln._lru
            if ln.state is inv_state:
                if best_inv is None or lru < best_inv_lru:
                    best_inv = ln
                    best_inv_lru = lru
            elif best is None or lru < best_lru:
                best = ln
                best_lru = lru
        return best_inv if best_inv is not None else best

    def set_lines(self, addr: int) -> List[CacheLine]:
        """All lines in the set that ``addr`` maps to."""
        return list(self._sets[self.set_index(addr)].values())

    # ------------------------------------------------------------------
    def lines(self) -> Iterator[CacheLine]:
        for s in self._sets:
            yield from s.values()

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def clear(self) -> None:
        """Drop every line (rollover flash-clear)."""
        for s in self._sets:
            s.clear()
        self._map.clear()
