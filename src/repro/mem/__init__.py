"""Memory-system substrates: cache arrays, MSHRs, and the DRAM model."""

from repro.mem.cache_array import CacheArray, CacheLine
from repro.mem.mshr import MSHRFile, MSHREntry
from repro.mem.dram import DRAMPartition

__all__ = ["CacheArray", "CacheLine", "MSHRFile", "MSHREntry", "DRAMPartition"]
