"""Miss Status Holding Registers.

One MSHR entry tracks all outstanding traffic for one cache block. The L1
uses entries to merge loads to the same block and to queue store acks; the
RCC L2 additionally tracks ``lastrd``/``lastwr`` — the latest logical ``now``
of any reading/writing core observed while the block was being fetched from
DRAM (paper §III-D) — so that stores can be acknowledged *before* the DRAM
response arrives.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.errors import SimulationError


class MSHREntry:
    """Per-block outstanding-miss bookkeeping."""

    __slots__ = ("addr", "waiting_loads", "pending_stores", "lastrd", "lastwr",
                 "has_read", "has_write", "store_value", "meta")

    def __init__(self, addr: int):
        self.addr = addr
        #: Core-side ops blocked on this line (L1) or requester messages (L2).
        self.waiting_loads: List[Any] = []
        #: Outstanding store/atomic ops awaiting ACK (L1) or merged writes (L2).
        self.pending_stores: List[Any] = []
        self.lastrd: int = 0          # latest now of any reading core (L2, RCC)
        self.lastwr: int = 0          # latest now of any writing core (L2, RCC)
        self.has_read: bool = False
        self.has_write: bool = False
        self.store_value: Any = None  # newest merged store token (L2)
        self.meta: Dict[str, Any] = {}

    @property
    def empty(self) -> bool:
        return not self.waiting_loads and not self.pending_stores

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<MSHR 0x{self.addr:x} loads={len(self.waiting_loads)} "
                f"stores={len(self.pending_stores)}>")


class MSHRFile:
    """Fixed-capacity file of :class:`MSHREntry`, keyed by block address."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise SimulationError("MSHR capacity must be positive")
        self.capacity = capacity
        self._entries: Dict[int, MSHREntry] = {}
        self.peak_occupancy = 0

    def get(self, addr: int) -> Optional[MSHREntry]:
        return self._entries.get(addr)

    def has_free(self) -> bool:
        return len(self._entries) < self.capacity

    def allocate(self, addr: int) -> MSHREntry:
        """Get-or-create the entry for ``addr``; caller must have checked
        :meth:`has_free` when creating new entries."""
        entry = self._entries.get(addr)
        if entry is None:
            if not self.has_free():
                raise SimulationError("MSHR allocation with no free entry")
            entry = MSHREntry(addr)
            self._entries[addr] = entry
            self.peak_occupancy = max(self.peak_occupancy, len(self._entries))
        return entry

    def release(self, addr: int) -> None:
        entry = self._entries.get(addr)
        if entry is None:
            raise SimulationError(f"releasing absent MSHR entry 0x{addr:x}")
        if not entry.empty:
            # Refuse *without* dropping the entry: the outstanding requests
            # it tracks must stay reachable for whoever handles the error.
            raise SimulationError(
                f"releasing non-empty MSHR entry 0x{addr:x}: {entry!r}"
            )
        del self._entries[addr]

    def release_if_empty(self, addr: int) -> bool:
        entry = self._entries.get(addr)
        if entry is not None and entry.empty:
            del self._entries[addr]
            return True
        return False

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, addr: int) -> bool:
        return addr in self._entries

    def entries(self):
        return list(self._entries.values())

    def clear(self) -> None:
        self._entries.clear()
