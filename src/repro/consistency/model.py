"""Core-side consistency enforcement.

The paper evaluates two core issue policies:

* **SC ("naive SC")** — a warp may have at most one outstanding global
  memory operation; the next memory operation (and fences, trivially)
  stall until the previous one completes. This is the policy the paper's
  SC configurations (MESI, TCS, RCC) use.

* **WO (weak ordering)** — a warp may have several outstanding memory
  operations; only FENCE ops stall, draining the warp's outstanding
  accesses and additionally waiting for whatever the protocol requires
  for global visibility (TCW's GWCT; nothing extra for RCC-WO, whose
  fence merely joins the read/write logical views).

The policy object answers, for the issue stage, "may this warp issue its
next global memory op / fence now, and if not, which outstanding op is
blocking it?" — the blocker's kind is what Fig. 1b attributes stalls to.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.common.types import MemOpKind
from repro.errors import ConfigError
from repro.gpu.warp import MemOpRecord, Warp


class ConsistencyPolicy:
    """Interface: per-core issue gating for global memory ops and fences."""

    name = "base"

    def can_issue_mem(self, warp: Warp) -> Tuple[bool, Optional[MemOpRecord]]:
        """May ``warp`` issue its next global memory op? On refusal, also
        return the outstanding op responsible (for stall attribution)."""
        raise NotImplementedError

    def fence_done(self, warp: Warp) -> bool:
        """May the FENCE at the head of ``warp`` retire now?"""
        raise NotImplementedError


class SCPolicy(ConsistencyPolicy):
    """At most one outstanding global memory op per warp."""

    name = "sc"

    def can_issue_mem(self, warp: Warp) -> Tuple[bool, Optional[MemOpRecord]]:
        blocker = warp.oldest_outstanding
        if blocker is None:
            return True, None
        return False, blocker

    def fence_done(self, warp: Warp) -> bool:
        # Under SC, fences are hardware no-ops (the paper leaves them in
        # traces only to stop compiler reordering); with one outstanding op
        # per warp the pipeline is already ordered. Retire immediately.
        return True

    def mem_stall_blocker(self, warp: Warp) -> Optional[MemOpRecord]:
        return warp.oldest_outstanding


class WOPolicy(ConsistencyPolicy):
    """Weak ordering: multiple outstanding ops; fences drain the warp."""

    name = "wo"

    def __init__(self, max_outstanding: int = 8):
        if max_outstanding < 1:
            raise ConfigError("max_outstanding must be >= 1")
        self.max_outstanding = max_outstanding

    def can_issue_mem(self, warp: Warp) -> Tuple[bool, Optional[MemOpRecord]]:
        if warp.fence_pending:
            return False, warp.oldest_outstanding
        if len(warp.outstanding) >= self.max_outstanding:
            # Structural, not an ordering stall; attribute to the oldest op.
            return False, warp.oldest_outstanding
        return True, None

    def fence_done(self, warp: Warp) -> bool:
        # The fence retires once the warp's outstanding accesses drain; the
        # protocol may impose an additional visibility wait (TCW's GWCT),
        # which the core queries separately via the L1 controller.
        return not warp.outstanding


def make_policy(consistency: str, max_outstanding: int = 8) -> ConsistencyPolicy:
    if consistency == "sc":
        return SCPolicy()
    if consistency == "wo":
        return WOPolicy(max_outstanding)
    raise ConfigError(f"unknown consistency model {consistency!r}")
