"""Litmus tests: tiny multi-core programs with enumerable SC outcomes.

Each litmus test builds warp traces by hand (one warp per core), runs them
through the full simulator, and checks that the observed read values form an
outcome allowed by sequential consistency. These are the classical patterns:

* **MP** (message passing): the paper's §II example — seeing the flag but
  stale data is forbidden under SC;
* **SB** (store buffering / Dekker): both cores reading 0 is forbidden;
* **LB** (load buffering): both loads seeing the other's later store is
  forbidden;
* **IRIW** (independent reads of independent writes): the two reader cores
  must agree on the order of the two writes — this requires write atomicity,
  the property TC-weak gives up;
* **CoRR** (coherence read-read): two reads of one location must not see
  writes out of coherence order.

Under SC protocols (RCC, TCS, MESI, SC-IDEAL) the forbidden outcomes must
never appear — with or without fences. Under WO protocols, properly fenced
versions must also forbid them, except where the protocol fundamentally
cannot (TCW loses write atomicity, so IRIW can fail even fully fenced —
exactly why the paper says TCW cannot implement SC).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from repro.config import GPUConfig
from repro.consistency.checker import is_init_value as _is_init
from repro.gpu.trace import WarpTrace, compute_op, fence_op, load_op, store_op
from repro.sim.gpusim import run_simulation

DATA = 0x1000
FLAG = 0x2000
X = 0x3000
Y = 0x4000


def _empty_traces(cfg: GPUConfig) -> List[List[WarpTrace]]:
    return [[WarpTrace(c, w) for w in range(cfg.warps_per_core)]
            for c in range(cfg.n_cores)]


class LitmusResult:
    """Observed values of one litmus run.

    Reads and writes are indexed *per core, in program order of that kind*:
    ``read(core, n)`` is the n-th load the core executed, regardless of any
    fences interleaved into the trace.
    """

    def __init__(self, name: str):
        self.name = name
        self._reads: Dict[int, List] = defaultdict(list)
        self._writes: Dict[int, List] = defaultdict(list)

    def add(self, rec) -> None:
        if rec.kind.name == "LOAD":
            self._reads[rec.core_id].append((rec.prog_index, rec.read_value))
        elif rec.kind.is_write:
            self._writes[rec.core_id].append((rec.prog_index, rec.value))

    def finalize(self) -> None:
        for d in (self._reads, self._writes):
            for core in d:
                d[core].sort()

    def read(self, core: int, n: int):
        return self._reads[core][n][1]

    def wrote(self, core: int, n: int):
        return self._writes[core][n][1]


def run_litmus(name: str, cfg: GPUConfig, protocol: str,
               program: Dict[int, List], use_fences: bool = False,
               stagger: int = 0) -> LitmusResult:
    """Run a hand-built litmus ``program`` (core -> op list).

    ``use_fences`` inserts a FENCE after every memory op (the fully fenced
    variant a WO programmer would write); ``stagger`` delays each core by a
    different amount to vary the physical interleaving.
    """
    traces = _empty_traces(cfg)
    for core, ops in program.items():
        t = traces[core][0]
        if stagger and core > 0:
            t.append(compute_op(stagger * core))
        for op in ops:
            t.append(op)
            if use_fences:
                t.append(fence_op())
    sim_result = run_simulation(cfg, protocol, traces, f"litmus-{name}",
                                record_ops=True)
    res = LitmusResult(name)
    for rec in sim_result.op_logs:
        res.add(rec)
    res.finalize()
    return res


# ----------------------------------------------------------------------
# The classical programs (one warp per core; extra cores stay idle)
# ----------------------------------------------------------------------

def mp_program() -> Dict[int, List]:
    """Message passing: C0 writes data then flag; C1 reads flag then data."""
    return {
        0: [store_op(DATA), store_op(FLAG)],
        1: [load_op(FLAG), load_op(DATA)],
    }


def mp_forbidden(res: LitmusResult) -> bool:
    """True if C1 saw the flag set but stale data (SC-forbidden)."""
    saw_flag = not _is_init(res.read(1, 0))
    saw_data = not _is_init(res.read(1, 1))
    return saw_flag and not saw_data


def sb_program() -> Dict[int, List]:
    """Store buffering: both cores store then load the other's location."""
    return {
        0: [store_op(X), load_op(Y)],
        1: [store_op(Y), load_op(X)],
    }


def sb_forbidden(res: LitmusResult) -> bool:
    """True if both loads read the initial value (SC-forbidden)."""
    return _is_init(res.read(0, 0)) and _is_init(res.read(1, 0))


def lb_program() -> Dict[int, List]:
    """Load buffering: both cores load then store the other's location."""
    return {
        0: [load_op(X), store_op(Y)],
        1: [load_op(Y), store_op(X)],
    }


def lb_forbidden(res: LitmusResult) -> bool:
    """True if both loads observed the other core's (later) store."""
    return (not _is_init(res.read(0, 0))) and (not _is_init(res.read(1, 0)))


def iriw_program() -> Dict[int, List]:
    """IRIW: C0 writes X, C1 writes Y; C2 reads X,Y; C3 reads Y,X."""
    return {
        0: [store_op(X)],
        1: [store_op(Y)],
        2: [load_op(X), load_op(Y)],
        3: [load_op(Y), load_op(X)],
    }


def iriw_forbidden(res: LitmusResult) -> bool:
    """True if the two reader cores disagree on the write order — forbidden
    whenever writes are atomic."""
    c2_x, c2_y = res.read(2, 0), res.read(2, 1)
    c3_y, c3_x = res.read(3, 0), res.read(3, 1)
    return (not _is_init(c2_x) and _is_init(c2_y)
            and not _is_init(c3_y) and _is_init(c3_x))


def corr_program() -> Dict[int, List]:
    """CoRR: C0 writes X twice; C1 reads X twice."""
    return {
        0: [store_op(X), store_op(X)],
        1: [load_op(X), load_op(X)],
    }


def corr_forbidden(res: LitmusResult) -> bool:
    """True if C1's two reads of X went backwards in coherence order."""
    rank = {res.wrote(0, 0): 1, res.wrote(0, 1): 2}

    def r(v):
        return 0 if _is_init(v) else rank.get(v, -1)

    return r(res.read(1, 1)) < r(res.read(1, 0))
