"""Sequential-consistency witness checking.

Every completed memory operation carries a *witness key*: a timestamp
(``logical_ts`` — logical time for RCC, physical completion time for
MESI/TC) and a physical tie-break (``order_key`` — the L2 bank's arrival
counter, or -1 for L1 hits that never visited the bank). Because all
operations on one address are serviced by one bank, keys of same-address
operations are totally comparable.

An execution is sequentially consistent if some total order exists that
(a) respects each warp's program order and (b) makes every load return the
value of the most recent earlier store. Given the witness keys, we verify
the standard sufficient per-axiom decomposition:

1. **program order**: each warp's completed global memory ops have
   non-decreasing timestamps (completions are in program order under the
   SC issue policy, so this checks the protocol's clock management);
2. **coherence**: stores to one address are totally ordered by
   ``(ts, arrival)`` — last writer's value is the architectural value;
3. **reads-from**: every load (and every atomic's read half) returns the
   value of the latest same-address store at or before the load's witness
   position — never a value from the future, never a skipped store;
4. **atomicity**: an atomic's read half observes exactly its coherence-order
   predecessor (or the initial value when the atomic is the first write in
   coherence order).

Every axiom checker *returns* a structured list of :class:`Violation`
objects — no axiom path raises. The only raising entry point is
:meth:`SCChecker.check_or_raise`, which wraps the collected violations in a
:class:`~repro.errors.ConsistencyViolation` (and attaches them as its
``violations`` attribute). The checker is meaningful for the SC protocols
(RCC, TCS, MESI, SC-IDEAL); weakly-ordered runs (TCW, RCC-WO) legitimately
fail axiom 1 and parts of 3.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.common.types import MemOpKind
from repro.errors import ConsistencyViolation
from repro.gpu.warp import MemOpRecord

INIT = "init"

#: Axiom names, as reported in :attr:`Violation.axiom`.
AXIOM_PROGRAM_ORDER = "program-order"
AXIOM_COHERENCE = "coherence"
AXIOM_READS_FROM = "reads-from"
AXIOM_ATOMICITY = "atomicity"

AXIOMS = (AXIOM_PROGRAM_ORDER, AXIOM_COHERENCE, AXIOM_READS_FROM,
          AXIOM_ATOMICITY)


def _init_value(addr: int) -> Tuple[str, int]:
    return (INIT, addr)


def is_init_value(v: Any) -> bool:
    """True for the ("init", addr) token blocks start with."""
    return isinstance(v, tuple) and len(v) == 2 and v[0] == INIT


@dataclass
class Violation:
    """One detected consistency violation."""

    axiom: str
    detail: str
    op: Optional[MemOpRecord] = field(default=None, repr=False)

    def __repr__(self) -> str:
        return f"<Violation {self.axiom}: {self.detail}>"

    def as_dict(self) -> Dict[str, Any]:
        """Flat summary for reports / JSON dumps."""
        d: Dict[str, Any] = {"axiom": self.axiom, "detail": self.detail}
        if self.op is not None:
            d.update(core=self.op.core_id, warp=self.op.warp_id,
                     prog_index=self.op.prog_index, kind=self.op.kind.value)
        return d


class SCChecker:
    """Checks an execution log (list of :class:`MemOpRecord`) for SC."""

    def __init__(self, block_bytes: int = 128):
        self.block_bytes = block_bytes

    def _block(self, addr: int) -> int:
        return (addr // self.block_bytes) * self.block_bytes

    # ------------------------------------------------------------------
    def check(self, ops: Iterable[MemOpRecord]) -> List[Violation]:
        """Run all axioms; returns the concatenated violation list."""
        ops = [op for op in ops if op.kind.is_global_mem]
        violations: List[Violation] = []
        violations.extend(self.check_program_order(ops))
        store_order, coh_violations = self.coherence_order(ops)
        violations.extend(coh_violations)
        violations.extend(self.check_reads_from(ops, store_order))
        return violations

    def check_or_raise(self, ops: Iterable[MemOpRecord]) -> None:
        violations = self.check(ops)
        if violations:
            head = "; ".join(repr(v) for v in violations[:5])
            exc = ConsistencyViolation(
                f"{len(violations)} violation(s), first: {head}")
            exc.violations = violations
            raise exc

    # ------------------------------------------------------------------
    # Axiom 1: per-warp program order embeds into the witness order
    # ------------------------------------------------------------------
    def check_program_order(self,
                            ops: List[MemOpRecord]) -> List[Violation]:
        out: List[Violation] = []
        per_warp: Dict[Tuple[int, int], List[MemOpRecord]] = defaultdict(list)
        for op in ops:
            per_warp[(op.core_id, op.warp_id)].append(op)
        for key, warp_ops in per_warp.items():
            warp_ops.sort(key=lambda o: o.prog_index)
            last_ts = -1
            for op in warp_ops:
                if op.logical_ts < last_ts:
                    out.append(Violation(
                        AXIOM_PROGRAM_ORDER,
                        f"warp {key}: op #{op.prog_index} ts={op.logical_ts}"
                        f" < previous ts={last_ts}", op))
                last_ts = max(last_ts, op.logical_ts)
        return out

    # ------------------------------------------------------------------
    # Axiom 2: per-address store serialization
    # ------------------------------------------------------------------
    def coherence_order(
        self, ops: List[MemOpRecord],
    ) -> Tuple[Dict[int, List[MemOpRecord]], List[Violation]]:
        """Build the per-block store order; returns (order, violations).

        The order — block base address to stores sorted by witness key —
        is also the architectural memory state: the last entry of each
        list is the block's final value.
        """
        violations: List[Violation] = []
        stores: Dict[int, List[MemOpRecord]] = defaultdict(list)
        for op in ops:
            if not op.kind.is_write:
                continue
            if op.value is None:
                # The data token is assigned at issue, so a completed
                # write without one never serialized a value at all.
                violations.append(Violation(
                    AXIOM_COHERENCE,
                    f"write {op!r} completed with no value token", op))
                continue
            stores[self._block(op.addr)].append(op)
        for block, ss in stores.items():
            ss.sort(key=lambda s: (s.logical_ts, s.order_key, s.seq))
            seen_arrivals = set()
            for s in ss:
                if s.order_key < 0:
                    violations.append(Violation(
                        AXIOM_COHERENCE,
                        f"store {s!r} has no L2 arrival key", s))
                elif s.order_key in seen_arrivals:
                    violations.append(Violation(
                        AXIOM_COHERENCE,
                        f"duplicate arrival key {s.order_key} at block "
                        f"0x{block:x}", s))
                seen_arrivals.add(s.order_key)
        return dict(stores), violations

    # ------------------------------------------------------------------
    # Axioms 3+4: reads-from and atomic adjacency
    # ------------------------------------------------------------------
    def check_reads_from(
        self, ops: List[MemOpRecord],
        store_order: Optional[Dict[int, List[MemOpRecord]]] = None,
    ) -> List[Violation]:
        if store_order is None:
            store_order, _ = self.coherence_order(ops)
        out: List[Violation] = []
        value_index: Dict[int, Dict[Any, int]] = {}
        for block, ss in store_order.items():
            value_index[block] = {s.value: i for i, s in enumerate(ss)}

        for op in ops:
            if op.kind is MemOpKind.STORE:
                continue
            block = self._block(op.addr)
            ss = store_order.get(block, [])
            idx = value_index.get(block, {})
            v = op.read_value
            if v is None:
                out.append(Violation(
                    AXIOM_READS_FROM, f"{op!r} read nothing", op))
                continue
            if is_init_value(v):
                src_i = -1  # read the initial value
            elif v in idx:
                src_i = idx[v]
            else:
                out.append(Violation(
                    AXIOM_READS_FROM, f"{op!r} read unknown value {v!r}", op))
                continue

            # (a) never read from the logical future.
            if src_i >= 0:
                src = ss[src_i]
                if src.logical_ts > op.logical_ts:
                    out.append(Violation(
                        AXIOM_READS_FROM,
                        f"{op!r} (ts={op.logical_ts}) read store "
                        f"{src!r} from the future (ts={src.logical_ts})", op))
            # (b) never skip a store that is witness-before the read.
            nxt_i = src_i + 1
            if nxt_i < len(ss):
                nxt = ss[nxt_i]
                stale = False
                if nxt.logical_ts < op.logical_ts:
                    stale = True
                elif (nxt.logical_ts == op.logical_ts and op.order_key >= 0
                      and nxt.order_key < op.order_key):
                    stale = True
                if stale:
                    out.append(Violation(
                        AXIOM_READS_FROM,
                        f"{op!r} (ts={op.logical_ts},ak={op.order_key}) "
                        f"skipped later store {nxt!r} "
                        f"(ts={nxt.logical_ts},ak={nxt.order_key})", op))
            # (c) atomics read exactly their coherence predecessor. The
            # read half of the first atomic in coherence order (co-index
            # 0) must therefore observe the initial value (src_i == -1).
            if op.kind is MemOpKind.ATOMIC:
                my_i = idx.get(op.value)
                if my_i is None:
                    out.append(Violation(
                        AXIOM_ATOMICITY,
                        f"{op!r} not in coherence order", op))
                elif my_i - 1 != src_i:
                    out.append(Violation(
                        AXIOM_ATOMICITY,
                        f"{op!r} at co-index {my_i} read co-index {src_i}, "
                        f"not its predecessor", op))
        return out
