"""Sequential-consistency witness checking.

Every completed memory operation carries a *witness key*: a timestamp
(``logical_ts`` — logical time for RCC, physical completion time for
MESI/TC) and a physical tie-break (``order_key`` — the L2 bank's arrival
counter, or -1 for L1 hits that never visited the bank). Because all
operations on one address are serviced by one bank, keys of same-address
operations are totally comparable.

An execution is sequentially consistent if some total order exists that
(a) respects each warp's program order and (b) makes every load return the
value of the most recent earlier store. Given the witness keys, we verify
the standard sufficient per-axiom decomposition:

1. **program order**: each warp's completed global memory ops have
   non-decreasing timestamps (completions are in program order under the
   SC issue policy, so this checks the protocol's clock management);
2. **coherence**: stores to one address are totally ordered by
   ``(ts, arrival)`` — last writer's value is the architectural value;
3. **reads-from**: every load (and every atomic's read half) returns the
   value of the latest same-address store at or before the load's witness
   position — never a value from the future, never a skipped store;
4. **atomicity**: an atomic's read half observes exactly its coherence-order
   predecessor.

Any violation raises :class:`~repro.errors.ConsistencyViolation` (or is
returned as a list for inspection). The checker is meaningful for the SC
protocols (RCC, TCS, MESI, SC-IDEAL); weakly-ordered runs (TCW, RCC-WO)
legitimately fail axiom 1 and parts of 3.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.common.types import MemOpKind
from repro.errors import ConsistencyViolation
from repro.gpu.warp import MemOpRecord

INIT = "init"


def _init_value(addr: int) -> Tuple[str, int]:
    return (INIT, addr)


class Violation:
    """One detected consistency violation."""

    def __init__(self, axiom: str, detail: str, op: Optional[MemOpRecord] = None):
        self.axiom = axiom
        self.detail = detail
        self.op = op

    def __repr__(self) -> str:
        return f"<Violation {self.axiom}: {self.detail}>"


class SCChecker:
    """Checks an execution log (list of :class:`MemOpRecord`) for SC."""

    def __init__(self, block_bytes: int = 128):
        self.block_bytes = block_bytes

    def _block(self, addr: int) -> int:
        return (addr // self.block_bytes) * self.block_bytes

    # ------------------------------------------------------------------
    def check(self, ops: Iterable[MemOpRecord]) -> List[Violation]:
        ops = [op for op in ops if op.kind.is_global_mem]
        violations: List[Violation] = []
        violations.extend(self._check_program_order(ops))
        store_order = self._build_coherence_order(ops, violations)
        violations.extend(self._check_reads(ops, store_order))
        return violations

    def check_or_raise(self, ops: Iterable[MemOpRecord]) -> None:
        violations = self.check(ops)
        if violations:
            head = "; ".join(repr(v) for v in violations[:5])
            raise ConsistencyViolation(
                f"{len(violations)} violation(s), first: {head}")

    # ------------------------------------------------------------------
    # Axiom 1: per-warp program order embeds into the witness order
    # ------------------------------------------------------------------
    def _check_program_order(self, ops: List[MemOpRecord]) -> List[Violation]:
        out: List[Violation] = []
        per_warp: Dict[Tuple[int, int], List[MemOpRecord]] = defaultdict(list)
        for op in ops:
            per_warp[(op.core_id, op.warp_id)].append(op)
        for key, warp_ops in per_warp.items():
            warp_ops.sort(key=lambda o: o.prog_index)
            last_ts = -1
            for op in warp_ops:
                if op.logical_ts < last_ts:
                    out.append(Violation(
                        "program-order",
                        f"warp {key}: op #{op.prog_index} ts={op.logical_ts}"
                        f" < previous ts={last_ts}", op))
                last_ts = max(last_ts, op.logical_ts)
        return out

    # ------------------------------------------------------------------
    # Axiom 2: per-address store serialization
    # ------------------------------------------------------------------
    def _build_coherence_order(
        self, ops: List[MemOpRecord], violations: List[Violation],
    ) -> Dict[int, List[MemOpRecord]]:
        stores: Dict[int, List[MemOpRecord]] = defaultdict(list)
        for op in ops:
            if op.kind.is_write:
                stores[self._block(op.addr)].append(op)
        for block, ss in stores.items():
            ss.sort(key=lambda s: (s.logical_ts, s.order_key, s.seq))
            seen_arrivals = set()
            for s in ss:
                if s.order_key < 0:
                    violations.append(Violation(
                        "coherence",
                        f"store {s!r} has no L2 arrival key", s))
                elif s.order_key in seen_arrivals:
                    violations.append(Violation(
                        "coherence",
                        f"duplicate arrival key {s.order_key} at block "
                        f"0x{block:x}", s))
                seen_arrivals.add(s.order_key)
        return stores

    # ------------------------------------------------------------------
    # Axioms 3+4: reads-from and atomic adjacency
    # ------------------------------------------------------------------
    def _check_reads(
        self, ops: List[MemOpRecord],
        store_order: Dict[int, List[MemOpRecord]],
    ) -> List[Violation]:
        out: List[Violation] = []
        value_index: Dict[int, Dict[Any, int]] = {}
        for block, ss in store_order.items():
            value_index[block] = {s.value: i for i, s in enumerate(ss)}

        for op in ops:
            if op.kind is MemOpKind.STORE:
                continue
            block = self._block(op.addr)
            ss = store_order.get(block, [])
            idx = value_index.get(block, {})
            v = op.read_value
            if v is None:
                out.append(Violation("reads-from", f"{op!r} read nothing", op))
                continue
            if isinstance(v, tuple) and v and v[0] == INIT:
                src_i = -1  # read the initial value
            elif v in idx:
                src_i = idx[v]
            else:
                out.append(Violation(
                    "reads-from", f"{op!r} read unknown value {v!r}", op))
                continue

            # (a) never read from the logical future.
            if src_i >= 0:
                src = ss[src_i]
                if src.logical_ts > op.logical_ts:
                    out.append(Violation(
                        "reads-from",
                        f"{op!r} (ts={op.logical_ts}) read store "
                        f"{src!r} from the future (ts={src.logical_ts})", op))
            # (b) never skip a store that is witness-before the read.
            nxt_i = src_i + 1
            if nxt_i < len(ss):
                nxt = ss[nxt_i]
                stale = False
                if nxt.logical_ts < op.logical_ts:
                    stale = True
                elif (nxt.logical_ts == op.logical_ts and op.order_key >= 0
                      and nxt.order_key < op.order_key):
                    stale = True
                if stale:
                    out.append(Violation(
                        "reads-from",
                        f"{op!r} (ts={op.logical_ts},ak={op.order_key}) "
                        f"skipped later store {nxt!r} "
                        f"(ts={nxt.logical_ts},ak={nxt.order_key})", op))
            # (c) atomics read exactly their coherence predecessor.
            if op.kind is MemOpKind.ATOMIC:
                my_i = idx.get(op.value)
                if my_i is None:
                    out.append(Violation(
                        "atomicity", f"{op!r} not in coherence order", op))
                elif my_i - 1 != src_i:
                    out.append(Violation(
                        "atomicity",
                        f"{op!r} at co-index {my_i} read co-index {src_i}, "
                        f"not its predecessor", op))
        return out
