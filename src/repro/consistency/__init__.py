"""Memory-consistency enforcement (core issue policy) and SC verification."""

from repro.consistency.checker import (
    AXIOMS, SCChecker, Violation, is_init_value,
)
from repro.consistency.model import ConsistencyPolicy, SCPolicy, WOPolicy, make_policy

__all__ = ["ConsistencyPolicy", "SCPolicy", "WOPolicy", "make_policy",
           "SCChecker", "Violation", "AXIOMS", "is_init_value"]
