"""Memory-consistency enforcement (core issue policy) and SC verification."""

from repro.consistency.model import ConsistencyPolicy, SCPolicy, WOPolicy, make_policy

__all__ = ["ConsistencyPolicy", "SCPolicy", "WOPolicy", "make_policy"]
