"""Exception hierarchy for the RCC reproduction library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An invalid or inconsistent simulation configuration."""


class ProtocolError(ReproError):
    """A coherence controller reached a state/event pair it cannot handle.

    In hardware this would be a protocol bug; in the simulator it aborts the
    run so that FSM holes are found by tests rather than silently mis-ordered.
    """

    def __init__(self, component: str, state: str, event: str, detail: str = ""):
        self.component = component
        self.state = state
        self.event = event
        self.detail = detail
        msg = f"{component}: no transition for event {event!r} in state {state!r}"
        if detail:
            msg += f" ({detail})"
        super().__init__(msg)


class SimulationError(ReproError):
    """The simulation engine detected an internal inconsistency."""


class DeadlockError(SimulationError):
    """The simulation made no forward progress (no events, work remaining)."""

    def __init__(self, cycle: int, detail: str = ""):
        self.cycle = cycle
        msg = f"deadlock detected at cycle {cycle}"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)


#: The sweep executor's failure taxonomy. Every failed cell is filed
#: under exactly one class:
#:
#: - ``timeout``       — the cell exceeded its wall-clock budget and its
#:                       worker was reaped;
#: - ``crash``         — the worker process evaluating the cell died
#:                       (confirmed in an isolated single-worker pool);
#: - ``poisoned-pool`` — the cell failed only because a *sibling* cell
#:                       broke the shared pool and it could never be
#:                       confirmed in isolation;
#: - ``cache-corrupt`` — the journal's recorded result digest disagrees
#:                       with the content-keyed cache (or an embedded
#:                       journal payload failed integrity checks);
#: - ``exception``     — the worker function raised an ordinary Python
#:                       exception.
FAILURE_KINDS = ("timeout", "crash", "poisoned-pool", "cache-corrupt",
                 "exception")


class CellFailure:
    """Structured description of one failed sweep cell.

    Carried on :attr:`HarnessError.failures` so callers can triage
    programmatically instead of parsing the message string.
    """

    __slots__ = ("label", "kind", "attempts", "message")

    def __init__(self, label: str, kind: str, attempts: int, message: str):
        assert kind in FAILURE_KINDS, kind
        self.label = label
        self.kind = kind
        self.attempts = attempts
        self.message = message

    def describe(self) -> str:
        return (f"{self.label} [{self.kind}, {self.attempts} attempt(s)]: "
                f"{self.message}")

    def to_json(self) -> dict:
        return {"label": self.label, "kind": self.kind,
                "attempts": self.attempts, "message": self.message}

    def __repr__(self) -> str:  # pragma: no cover
        return f"<CellFailure {self.describe()}>"


class HarnessError(ReproError):
    """One or more sweep cells failed in the execution engine after
    exhausting their retry budget (worker crash, timeout, or broken
    process pool).

    Raised instead of executor internals such as ``BrokenProcessPool`` so
    the CLI and tests see one stable, library-owned failure type.
    ``failures`` holds one :class:`CellFailure` per failed cell, each
    classified under the :data:`FAILURE_KINDS` taxonomy.
    """

    def __init__(self, message: str, failures=None):
        super().__init__(message)
        self.failures = list(failures or [])

    @classmethod
    def from_failures(cls, failures) -> "HarnessError":
        failures = list(failures)
        msg = (f"{len(failures)} cell(s) failed: "
               + "; ".join(f.describe() for f in failures))
        return cls(msg, failures=failures)


class JournalError(ReproError):
    """A campaign journal could not be used: wrong campaign id on an
    explicit ``--resume``, an unreadable header, or an embedded payload
    that failed its integrity digest."""


class ConsistencyViolation(ReproError):
    """The SC witness checker found an execution that is not sequentially
    consistent (or violates coherence's per-location write serialization)."""


class InvariantViolation(ReproError):
    """The runtime sanitizer caught a coherence-invariant break mid-flight.

    Unlike :class:`ConsistencyViolation` (an end-state SC check), this names
    the exact protocol step that broke and the paper rule it violates, and
    points at the JSONL trace dump when one was written.
    """

    def __init__(self, invariant: str, event, detail: str, citation: str,
                 trace_path=None):
        self.invariant = invariant
        self.event = event
        self.detail = detail
        self.citation = citation
        self.trace_path = trace_path
        msg = f"invariant {invariant!r} violated: {detail}\n  at {event!r}"
        if citation:
            msg += f"\n  rule: {citation}"
        if trace_path:
            msg += f"\n  trace: {trace_path}"
        super().__init__(msg)


class TraceError(ReproError):
    """A malformed workload trace (bad op, misaligned barrier, ...)."""
