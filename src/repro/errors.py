"""Exception hierarchy for the RCC reproduction library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An invalid or inconsistent simulation configuration."""


class ProtocolError(ReproError):
    """A coherence controller reached a state/event pair it cannot handle.

    In hardware this would be a protocol bug; in the simulator it aborts the
    run so that FSM holes are found by tests rather than silently mis-ordered.
    """

    def __init__(self, component: str, state: str, event: str, detail: str = ""):
        self.component = component
        self.state = state
        self.event = event
        self.detail = detail
        msg = f"{component}: no transition for event {event!r} in state {state!r}"
        if detail:
            msg += f" ({detail})"
        super().__init__(msg)


class SimulationError(ReproError):
    """The simulation engine detected an internal inconsistency."""


class DeadlockError(SimulationError):
    """The simulation made no forward progress (no events, work remaining)."""

    def __init__(self, cycle: int, detail: str = ""):
        self.cycle = cycle
        msg = f"deadlock detected at cycle {cycle}"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)


class HarnessError(ReproError):
    """A sweep cell failed in the execution engine after exhausting its
    retry budget (worker crash, timeout, or broken process pool).

    Raised instead of executor internals such as ``BrokenProcessPool`` so
    the CLI and tests see one stable, library-owned failure type.
    """


class ConsistencyViolation(ReproError):
    """The SC witness checker found an execution that is not sequentially
    consistent (or violates coherence's per-location write serialization)."""


class InvariantViolation(ReproError):
    """The runtime sanitizer caught a coherence-invariant break mid-flight.

    Unlike :class:`ConsistencyViolation` (an end-state SC check), this names
    the exact protocol step that broke and the paper rule it violates, and
    points at the JSONL trace dump when one was written.
    """

    def __init__(self, invariant: str, event, detail: str, citation: str,
                 trace_path=None):
        self.invariant = invariant
        self.event = event
        self.detail = detail
        self.citation = citation
        self.trace_path = trace_path
        msg = f"invariant {invariant!r} violated: {detail}\n  at {event!r}"
        if citation:
            msg += f"\n  rule: {citation}"
        if trace_path:
            msg += f"\n  trace: {trace_path}"
        super().__init__(msg)


class TraceError(ReproError):
    """A malformed workload trace (bad op, misaligned barrier, ...)."""
