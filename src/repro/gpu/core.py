"""The SM (streaming multiprocessor) model.

Each core buffers many warps and issues at most one warp-instruction per
cycle, selected by loose round-robin (as in the paper's Table III). Warps
execute in order. Memory consistency is enforced at issue by a
:class:`~repro.consistency.model.ConsistencyPolicy`:

* under SC, a warp's next global memory op stalls until its previous one has
  completed — these are the paper's *SC stalls*, and the core attributes each
  stall to the kind of the blocking (preceding) operation, which is exactly
  the data behind the paper's Fig. 1a/1b and Fig. 8;
* under WO, several memory ops may be outstanding and only fences drain the
  warp (plus any protocol-specific visibility wait, e.g. TC-weak's GWCT).

The core is event-driven: it ticks every cycle only while at least one warp
can issue, then sleeps until a memory response, compute completion, or
barrier release wakes it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.common.types import AccessOutcome, MemOpKind
from repro.consistency.model import ConsistencyPolicy
from repro.errors import SimulationError
from repro.gpu.trace import WarpTrace
from repro.gpu.warp import MemOpRecord, Warp
from repro.stats.histogram import Histogram
from repro.timing.engine import Engine


class CoreStats:
    """Per-core counters aggregated by the harness."""

    def __init__(self) -> None:
        self.mem_ops = 0
        self.mem_ops_by_kind: Dict[MemOpKind, int] = {
            MemOpKind.LOAD: 0, MemOpKind.STORE: 0, MemOpKind.ATOMIC: 0,
        }
        self.latency_sum: Dict[MemOpKind, int] = {
            MemOpKind.LOAD: 0, MemOpKind.STORE: 0, MemOpKind.ATOMIC: 0,
        }
        #: Full latency distributions (log-bucketed) per op kind.
        self.latency_hist: Dict[MemOpKind, Histogram] = {
            MemOpKind.LOAD: Histogram(), MemOpKind.STORE: Histogram(),
            MemOpKind.ATOMIC: Histogram(),
        }
        self.sc_stalled_ops = 0
        self.sc_stall_cycles = 0
        #: Stall cycles attributed to the kind of the *blocking* op (Fig 1b).
        self.sc_stall_by_blocker: Dict[MemOpKind, int] = {
            MemOpKind.LOAD: 0, MemOpKind.STORE: 0, MemOpKind.ATOMIC: 0,
        }
        self.structural_stalls = 0
        self.fence_ops = 0
        self.fence_wait_cycles = 0
        self.issued_instructions = 0
        self.done_cycle: Optional[int] = None


class GPUCore:
    """One SM: warps + issue stage + barrier unit."""

    def __init__(self, core_id: int, engine: Engine,
                 policy: ConsistencyPolicy,
                 traces: List[WarpTrace],
                 on_all_done: Optional[Callable[[int], None]] = None,
                 record_log: bool = False):
        self.core_id = core_id
        self.engine = engine
        self.policy = policy
        self.warps = [Warp(t) for t in traces]
        for t in traces:
            t.validate(len(traces))
        self.l1 = None  # attached by the simulator after construction
        self.stats = CoreStats()
        self.record_log = record_log
        self.op_log: List[MemOpRecord] = []
        self._on_all_done = on_all_done
        self._rr_next = 0
        self._tick_scheduled = False
        self._finished = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach_l1(self, l1) -> None:
        self.l1 = l1

    def start(self) -> None:
        if self.l1 is None:
            raise SimulationError(f"core {self.core_id} has no L1 attached")
        self._schedule_tick(self.engine.now)

    @property
    def finished(self) -> bool:
        return self._finished

    # ------------------------------------------------------------------
    # Tick / issue stage
    # ------------------------------------------------------------------
    def _schedule_tick(self, cycle: int) -> None:
        if not self._tick_scheduled and not self._finished:
            self._tick_scheduled = True
            self.engine.schedule(cycle, self._tick)

    def wake(self) -> None:
        """Called by memory responses / compute completions / timers."""
        self._schedule_tick(self.engine.now)

    def _tick(self) -> None:
        self._tick_scheduled = False
        if self._finished:
            return
        now = self.engine.now
        issued = False
        more_ready = False
        n = len(self.warps)
        for i in range(n):
            warp = self.warps[(self._rr_next + i) % n]
            ready = self._consider(warp, now, can_issue=not issued)
            if ready == "issued":
                issued = True
                self._rr_next = (self._rr_next + i + 1) % n
            elif ready == "ready":
                more_ready = True
        self._check_done(now)
        if self._finished:
            return
        if issued or more_ready:
            self._schedule_tick(now + 1)

    def _consider(self, warp: Warp, now: int, can_issue: bool) -> str:
        """Examine one warp; returns 'issued', 'ready', or 'blocked'."""
        if warp.done:
            return "blocked"
        if warp.busy_until > now or warp.at_barrier is not None:
            return "blocked"
        op = warp.next_op()
        kind = op.kind

        if kind is MemOpKind.COMPUTE:
            if not can_issue:
                return "ready"
            warp.pc += 1
            warp.busy_until = now + op.cycles
            self.stats.issued_instructions += 1
            self.engine.schedule(warp.busy_until, self.wake)
            return "issued"

        if kind is MemOpKind.BARRIER:
            if not can_issue:
                return "ready"
            warp.pc += 1
            warp.at_barrier = op.barrier_id
            self.stats.issued_instructions += 1
            self._maybe_release_barrier(op.barrier_id)
            return "issued"

        if kind is MemOpKind.FENCE:
            return self._consider_fence(warp, now, can_issue)

        # Global memory op: gate through the consistency policy.
        ok, blocker = self.policy.can_issue_mem(warp)
        if not ok:
            if warp.stall_start is None:
                warp.stall_start = now
                warp.stall_blocker = blocker.kind if blocker else None
            return "blocked"
        if not can_issue:
            return "ready"
        return self._issue_mem(warp, now)

    def _consider_fence(self, warp: Warp, now: int, can_issue: bool) -> str:
        if not warp.fence_pending:
            warp.fence_pending = True
            warp.stall_start = now
            self.stats.fence_ops += 1
        if not self.policy.fence_done(warp):
            return "blocked"  # waiting for outstanding accesses to drain
        block_until = self.l1.fence_block_until(warp)
        if block_until > now:
            # Protocol-imposed visibility wait (TC-weak's GWCT).
            warp.busy_until = block_until
            self.engine.schedule(block_until, self.wake)
            return "blocked"
        if not can_issue:
            return "ready"
        # Fence retires.
        if warp.stall_start is not None:
            self.stats.fence_wait_cycles += now - warp.stall_start
            warp.stall_start = None
        warp.fence_pending = False
        warp.pc += 1
        self.stats.issued_instructions += 1
        self.l1.on_fence_retire(warp)
        return "issued"

    def _issue_mem(self, warp: Warp, now: int) -> str:
        op = warp.next_op()
        record = MemOpRecord(op.kind, op.addr, self.core_id, warp.warp_id,
                             warp.pc)
        record.issue_cycle = now
        if op.kind.is_write:
            record.value = (self.core_id, warp.warp_id, record.seq)
        outcome = self.l1.access(record, warp)
        if outcome is AccessOutcome.STALL:
            # Structural stall (MSHR full, set conflict); retry, don't
            # consume the issue slot or advance the pc.
            self.stats.structural_stalls += 1
            return "blocked"
        # Issued: close out any SC-stall interval for this op.
        if warp.stall_start is not None:
            stall = now - warp.stall_start
            if stall > 0 and warp.stall_blocker is not None:
                record.sc_stalled = True
                record.sc_stall_cycles = stall
                record.sc_stall_blocker = warp.stall_blocker
                self.stats.sc_stalled_ops += 1
                self.stats.sc_stall_cycles += stall
                self.stats.sc_stall_by_blocker[warp.stall_blocker] += stall
            warp.stall_start = None
            warp.stall_blocker = None
        warp.pc += 1
        warp.outstanding.append(record)
        self.stats.issued_instructions += 1
        self.stats.mem_ops += 1
        self.stats.mem_ops_by_kind[op.kind] += 1
        return "issued"

    # ------------------------------------------------------------------
    # Completion paths
    # ------------------------------------------------------------------
    def mem_op_done(self, record: MemOpRecord, warp: Warp) -> None:
        """Called by the L1 controller when a memory op completes."""
        record.complete_cycle = self.engine.now
        try:
            warp.outstanding.remove(record)
        except ValueError:
            raise SimulationError(f"completion for op not outstanding: {record!r}")
        self.stats.latency_sum[record.kind] += record.latency
        self.stats.latency_hist[record.kind].add(record.latency)
        if self.record_log:
            self.op_log.append(record)
        self.wake()

    # ------------------------------------------------------------------
    # Barrier unit (workgroup == core in this model)
    # ------------------------------------------------------------------
    def _maybe_release_barrier(self, barrier_id: int) -> None:
        for w in self.warps:
            if w.done:
                continue
            if w.at_barrier != barrier_id:
                return  # someone has not arrived yet
        for w in self.warps:
            w.at_barrier = None

    # ------------------------------------------------------------------
    def _check_done(self, now: int) -> None:
        if self._finished:
            return
        for w in self.warps:
            if not w.done or w.outstanding or w.fence_pending:
                return
        self._finished = True
        self.stats.done_cycle = now
        for w in self.warps:
            w.done_cycle = now
        if self._on_all_done is not None:
            self._on_all_done(self.core_id)
