"""The SM (streaming multiprocessor) model.

Each core buffers many warps and issues at most one warp-instruction per
cycle, selected by loose round-robin (as in the paper's Table III). Warps
execute in order. Memory consistency is enforced at issue by a
:class:`~repro.consistency.model.ConsistencyPolicy`:

* under SC, a warp's next global memory op stalls until its previous one has
  completed — these are the paper's *SC stalls*, and the core attributes each
  stall to the kind of the blocking (preceding) operation, which is exactly
  the data behind the paper's Fig. 1a/1b and Fig. 8;
* under WO, several memory ops may be outstanding and only fences drain the
  warp (plus any protocol-specific visibility wait, e.g. TC-weak's GWCT).

The core is event-driven: it ticks every cycle only while at least one warp
can issue, then sleeps until a memory response, compute completion, or
barrier release wakes it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.common.types import AccessOutcome, MemOpKind
from repro.consistency.model import ConsistencyPolicy, SCPolicy, WOPolicy
from repro.errors import SimulationError
from repro.gpu.trace import WarpTrace
from repro.gpu import warp as _warp_mod
from repro.gpu.warp import MemOpRecord, Warp
from repro.stats.histogram import Histogram
from repro.timing.engine import Engine

#: Park sentinel in the core's flat ``_busy`` column: far beyond any
#: reachable cycle. Set when a warp finishes its trace or parks at a
#: barrier, so the issue scan rejects it with a single list load + compare.
_NEVER = 1 << 62

#: Policy-park sentinel: the warp is blocked on its own outstanding access
#: under an inlined (SC/WO) consistency gate, with the stall interval
#: already stamped — rescanning it every cycle until the access completes
#: would re-derive the same "blocked" answer, so it parks and the next
#: ``mem_op_done`` unparks it. Distinct from ``_NEVER`` so a completion
#: never un-parks a compute-busy, barrier-parked, or finished warp.
_BLOCKED = _NEVER + 1


class CoreStats:
    """Per-core counters aggregated by the harness."""

    def __init__(self) -> None:
        self.mem_ops = 0
        self.mem_ops_by_kind: Dict[MemOpKind, int] = {
            MemOpKind.LOAD: 0, MemOpKind.STORE: 0, MemOpKind.ATOMIC: 0,
        }
        self.latency_sum: Dict[MemOpKind, int] = {
            MemOpKind.LOAD: 0, MemOpKind.STORE: 0, MemOpKind.ATOMIC: 0,
        }
        #: Full latency distributions (log-bucketed) per op kind.
        self.latency_hist: Dict[MemOpKind, Histogram] = {
            MemOpKind.LOAD: Histogram(), MemOpKind.STORE: Histogram(),
            MemOpKind.ATOMIC: Histogram(),
        }
        self.sc_stalled_ops = 0
        self.sc_stall_cycles = 0
        #: Stall cycles attributed to the kind of the *blocking* op (Fig 1b).
        self.sc_stall_by_blocker: Dict[MemOpKind, int] = {
            MemOpKind.LOAD: 0, MemOpKind.STORE: 0, MemOpKind.ATOMIC: 0,
        }
        self.structural_stalls = 0
        self.fence_ops = 0
        self.fence_wait_cycles = 0
        self.issued_instructions = 0
        self.done_cycle: Optional[int] = None


class GPUCore:
    """One SM: warps + issue stage + barrier unit."""

    def __init__(self, core_id: int, engine: Engine,
                 policy: ConsistencyPolicy,
                 traces: List[WarpTrace],
                 on_all_done: Optional[Callable[[int], None]] = None,
                 record_log: bool = False):
        self.core_id = core_id
        self.engine = engine
        self.policy = policy
        self.warps = [Warp(t) for t in traces]
        for idx, w in enumerate(self.warps):
            w.idx = idx
        #: Flat busy/park column, indexed by ``warp.idx``: the cycle until
        #: which the warp cannot issue (``_NEVER`` = parked). Owned by the
        #: core so the per-cycle scan rejects on a list load instead of a
        #: warp attribute chain.
        self._busy = [0 if w.n_ops else _NEVER for w in self.warps]
        for t in traces:
            t.validate(len(traces))
        self.l1 = None  # attached by the simulator after construction
        self.stats = CoreStats()
        self.record_log = record_log
        self.op_log: List[MemOpRecord] = []
        self._on_all_done = on_all_done
        self._rr_next = 0
        self._tick_scheduled = False
        self._finished = False
        #: Exactly SCPolicy / exactly WOPolicy (not subclasses): their
        #: issue gates are inlined into the scan; subclasses fall back to
        #: the virtual call so overridden policies keep working.
        self._sc_fast = type(policy) is SCPolicy
        self._wo_fast = type(policy) is WOPolicy
        self._wo_max = getattr(policy, "max_outstanding", 0)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach_l1(self, l1) -> None:
        self.l1 = l1

    def start(self) -> None:
        if self.l1 is None:
            raise SimulationError(f"core {self.core_id} has no L1 attached")
        self._schedule_tick(self.engine.now)

    @property
    def finished(self) -> bool:
        return self._finished

    # ------------------------------------------------------------------
    # Tick / issue stage
    # ------------------------------------------------------------------
    def _schedule_tick(self, cycle: int) -> None:
        # schedule_call registers the tick in the engine's cycle bucket —
        # the shared per-cycle dispatch list for every core active in that
        # cycle. Each core's registration keeps its own (cycle, seq) slot,
        # so the firing order is identical to the historical one-event-per-
        # core schedule() (see DESIGN.md Appendix D for why a merged
        # single-callback dispatcher would NOT be: completions scheduled
        # between two cores' registrations must fire between their ticks).
        if not self._tick_scheduled and not self._finished:
            self._tick_scheduled = True
            self.engine.schedule_call(cycle, self._tick)

    def wake(self) -> None:
        """Called by memory responses / compute completions / timers."""
        self._schedule_tick(self.engine.now)

    def _tick(self) -> None:
        """The per-cycle issue stage.

        This is the simulator's hottest function — it scans every warp
        once per active cycle — so the per-warp rejection tests and the
        SC-policy gate are inlined rather than delegated (the historical
        ``_consider`` helper). The scan's observable behavior is pinned by
        the differential battery: same issue choice, same round-robin
        update, same stall bookkeeping, cycle for cycle.
        """
        self._tick_scheduled = False
        if self._finished:
            return
        now = self.engine.now
        issued = False
        more_ready = False
        warps = self.warps
        n = len(warps)
        # ``rr`` mirrors the historical live read of ``self._rr_next``
        # inside the loop: once a warp issues, the scan base shifts, so the
        # remaining iterations index from the *updated* round-robin pointer.
        rr = self._rr_next
        sc_fast = self._sc_fast
        wo_fast = self._wo_fast
        wo_max = self._wo_max
        stats = self.stats
        busy = self._busy
        schedule_call = self.engine.schedule_call
        compute_kind = MemOpKind.COMPUTE
        barrier_kind = MemOpKind.BARRIER
        fence_kind = MemOpKind.FENCE
        for i in range(n):
            j = rr + i
            if j >= n:
                j -= n
            # The flat busy column is the scan's single park gate: finished,
            # barrier-parked, and policy-blocked warps hold a sentinel, so
            # the common rejection is one list load + compare without ever
            # touching the warp object. The pc/barrier tests remain as the
            # authoritative (and historically ordered) conditions; all are
            # pure reads, so evaluating busy first is unobservable.
            if busy[j] > now:
                continue
            warp = warps[j]
            pc = warp.pc
            if pc >= warp.n_ops or warp.at_barrier is not None:
                continue
            op = warp.ops[pc]
            kind = op.kind

            if kind is compute_kind:
                if issued:
                    more_ready = True
                    continue
                warp.pc = pc + 1
                until = now + op.cycles
                busy[j] = until
                stats.issued_instructions += 1
                schedule_call(until, self.wake)
                if warp.pc >= warp.n_ops:
                    busy[j] = _NEVER
                issued = True
                self._rr_next = rr = j + 1 if j + 1 < n else 0
                continue

            if kind is barrier_kind:
                if issued:
                    more_ready = True
                    continue
                warp.pc = pc + 1
                warp.at_barrier = op.barrier_id
                busy[j] = _NEVER  # parked until the barrier releases
                stats.issued_instructions += 1
                self._maybe_release_barrier(op.barrier_id)
                issued = True
                self._rr_next = rr = j + 1 if j + 1 < n else 0
                continue

            if kind is fence_kind:
                ready = self._consider_fence(warp, now, not issued)
                if ready == "issued":
                    issued = True
                    self._rr_next = rr = j + 1 if j + 1 < n else 0
                elif ready == "ready":
                    more_ready = True
                continue

            # Global memory op: gate through the consistency policy. The
            # gate runs (and stamps the stall interval) even when the issue
            # slot is taken — stall attribution must start the cycle the
            # warp first became blocked, not the cycle it got a slot. Under
            # the inlined SC/WO gates a blocked warp then parks: the gate
            # cannot reopen before one of its own accesses completes, and
            # ``mem_op_done`` unparks it that cycle, so the re-scan it
            # skips would have re-derived "blocked" every time.
            if sc_fast:
                outstanding = warp.outstanding
                if outstanding:
                    if warp.stall_start is None:
                        warp.stall_start = now
                        warp.stall_blocker = outstanding[0].kind
                    busy[j] = _BLOCKED
                    continue
            elif wo_fast:
                outstanding = warp.outstanding
                if warp.fence_pending or len(outstanding) >= wo_max:
                    if warp.stall_start is None:
                        warp.stall_start = now
                        warp.stall_blocker = (outstanding[0].kind
                                              if outstanding else None)
                    if outstanding:
                        busy[j] = _BLOCKED
                    continue
            else:
                ok, blocker = self.policy.can_issue_mem(warp)
                if not ok:
                    if warp.stall_start is None:
                        warp.stall_start = now
                        warp.stall_blocker = blocker.kind if blocker else None
                    continue
            if issued:
                more_ready = True
                continue
            if self._issue_mem(warp, now, op) == "issued":
                issued = True
                self._rr_next = rr = j + 1 if j + 1 < n else 0
        self._check_done(now)
        if self._finished:
            return
        if issued or more_ready:
            self._schedule_tick(now + 1)

    def _consider_fence(self, warp: Warp, now: int, can_issue: bool) -> str:
        if not warp.fence_pending:
            warp.fence_pending = True
            warp.stall_start = now
            self.stats.fence_ops += 1
        # Inline fence gates for the two exact policy types (SC: fences
        # retire immediately; WO: once the warp's accesses drain).
        if self._sc_fast:
            done = True
        elif self._wo_fast:
            done = not warp.outstanding
        else:
            done = self.policy.fence_done(warp)
        if not done:
            return "blocked"  # waiting for outstanding accesses to drain
        block_until = self.l1.fence_block_until(warp)
        if block_until > now:
            # Protocol-imposed visibility wait (TC-weak's GWCT).
            self._busy[warp.idx] = block_until
            self.engine.schedule_call(block_until, self.wake)
            return "blocked"
        if not can_issue:
            return "ready"
        # Fence retires.
        if warp.stall_start is not None:
            self.stats.fence_wait_cycles += now - warp.stall_start
            warp.stall_start = None
        warp.fence_pending = False
        warp.pc += 1
        if warp.pc >= warp.n_ops:
            self._busy[warp.idx] = _NEVER
        self.stats.issued_instructions += 1
        self.l1.on_fence_retire(warp)
        return "issued"

    def _issue_mem(self, warp: Warp, now: int, op) -> str:
        if self.l1.would_stall(op.kind, op.addr):
            # Structural stall (MSHR full, set conflict), detected without
            # building the record. The op-id stream still advances one per
            # attempt — write tokens embed ``record.seq``, so elided
            # attempts must consume the id the constructor would have.
            next(_warp_mod._op_seq)
            self.stats.structural_stalls += 1
            return "blocked"
        record = MemOpRecord(op.kind, op.addr, self.core_id, warp.warp_id,
                             warp.pc)
        record.issue_cycle = now
        if op.kind.is_write:
            record.value = (self.core_id, warp.warp_id, record.seq)
        outcome = self.l1.access(record, warp)
        if outcome is AccessOutcome.STALL:
            # Structural stall the probe missed (conservative False); same
            # handling — the record (and its seq) is simply discarded.
            self.stats.structural_stalls += 1
            return "blocked"
        # Issued: close out any SC-stall interval for this op.
        if warp.stall_start is not None:
            stall = now - warp.stall_start
            if stall > 0 and warp.stall_blocker is not None:
                record.sc_stalled = True
                record.sc_stall_cycles = stall
                record.sc_stall_blocker = warp.stall_blocker
                self.stats.sc_stalled_ops += 1
                self.stats.sc_stall_cycles += stall
                self.stats.sc_stall_by_blocker[warp.stall_blocker] += stall
            warp.stall_start = None
            warp.stall_blocker = None
        warp.pc += 1
        if warp.pc >= warp.n_ops:
            self._busy[warp.idx] = _NEVER
        warp.outstanding.append(record)
        self.stats.issued_instructions += 1
        self.stats.mem_ops += 1
        self.stats.mem_ops_by_kind[op.kind] += 1
        return "issued"

    # ------------------------------------------------------------------
    # Completion paths
    # ------------------------------------------------------------------
    def mem_op_done(self, record: MemOpRecord, warp: Warp) -> None:
        """Called by the L1 controller when a memory op completes."""
        now = self.engine.now
        record.complete_cycle = now
        try:
            warp.outstanding.remove(record)
        except ValueError:
            raise SimulationError(f"completion for op not outstanding: {record!r}")
        kind = record.kind
        latency = now - record.issue_cycle
        stats = self.stats
        stats.latency_sum[kind] += latency
        stats.latency_hist[kind].add(latency)
        if self.record_log:
            self.op_log.append(record)
        # The completion is what re-opens an inlined SC/WO policy gate, so
        # it owns the unpark. Only the policy-park sentinel is cleared —
        # compute-busy, barrier-parked, and finished warps stay put.
        if self._busy[warp.idx] == _BLOCKED:
            self._busy[warp.idx] = 0
        # wake(), inlined (hot: one call per completed memory op).
        if not self._tick_scheduled and not self._finished:
            self._tick_scheduled = True
            self.engine.schedule_call(now, self._tick)

    # ------------------------------------------------------------------
    # Barrier unit (workgroup == core in this model)
    # ------------------------------------------------------------------
    def _maybe_release_barrier(self, barrier_id: int) -> None:
        for w in self.warps:
            if w.done:
                continue
            if w.at_barrier != barrier_id:
                return  # someone has not arrived yet
        busy = self._busy
        for w in self.warps:
            w.at_barrier = None
            # Un-park released warps; finished ones keep the done sentinel.
            # (A warp at a barrier cannot be mid-compute, so its real
            # busy cycle was already <= now — 0 is equivalent to the scan.)
            if w.pc < w.n_ops:
                busy[w.idx] = 0

    # ------------------------------------------------------------------
    def _check_done(self, now: int) -> None:
        if self._finished:
            return
        for w in self.warps:
            if w.pc < w.n_ops or w.outstanding or w.fence_pending:
                return
        self._finished = True
        self.stats.done_cycle = now
        for w in self.warps:
            w.done_cycle = now
        if self._on_all_done is not None:
            self._on_all_done(self.core_id)
