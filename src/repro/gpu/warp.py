"""Warp state and in-flight memory-operation records."""

from __future__ import annotations

import itertools
from typing import Any, List, Optional

from repro.common.types import MemOpKind
from repro.gpu.trace import TraceOp, WarpTrace

_op_seq = itertools.count()


def reset_op_seq() -> None:
    """Restart the op-record id counter (one simulation at a time runs per
    process, and :class:`~repro.sim.gpusim.GPUSimulator` resets at build
    time). Run-local ids make every run — and its written data tokens —
    a pure function of its inputs, so replaying the same cell in another
    process or from the result cache is byte-identical."""
    global _op_seq
    _op_seq = itertools.count()


class MemOpRecord:
    """An in-flight (or completed) global memory operation.

    This is the object handed to the L1 controller, threaded through the
    memory system, and returned to the core on completion. It doubles as the
    execution-log record consumed by the SC witness checker.
    """

    __slots__ = ("kind", "addr", "core_id", "warp_id", "prog_index", "seq",
                 "issue_cycle", "complete_cycle", "value", "read_value",
                 "logical_ts", "order_key", "sc_stalled", "sc_stall_cycles",
                 "sc_stall_blocker")

    def __init__(self, kind: MemOpKind, addr: int, core_id: int, warp_id: int,
                 prog_index: int):
        self.kind = kind
        self.addr = addr
        self.core_id = core_id
        self.warp_id = warp_id
        self.prog_index = prog_index       # position in the warp's trace
        self.seq = next(_op_seq)           # global unique id
        self.issue_cycle: int = -1
        self.complete_cycle: int = -1
        #: For stores/atomics: the unique data token this op writes.
        self.value: Any = None
        #: For loads/atomics: the data token observed.
        self.read_value: Any = None
        #: Logical (RCC) or physical (MESI/TC) timestamp of the access, used
        #: by the consistency checker to build a witness order.
        self.logical_ts: int = 0
        #: Secondary tiebreak (physical L2 arrival order).
        self.order_key: int = 0
        # SC stall bookkeeping (filled in by the core's issue stage).
        self.sc_stalled: bool = False
        self.sc_stall_cycles: int = 0
        self.sc_stall_blocker: Optional[MemOpKind] = None

    @property
    def latency(self) -> int:
        return self.complete_cycle - self.issue_cycle

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<{self.kind.value} 0x{self.addr:x} c{self.core_id}w{self.warp_id}"
                f"#{self.prog_index}>")


class Warp:
    """Execution state of one warp: program counter plus blocking state."""

    __slots__ = ("core_id", "warp_id", "idx", "trace", "ops", "n_ops", "pc",
                 "outstanding", "at_barrier", "fence_pending",
                 "stall_start", "stall_blocker", "stall_record",
                 "done_cycle", "completed_ops")

    def __init__(self, trace: WarpTrace):
        self.core_id = trace.core_id
        self.warp_id = trace.warp_id
        #: Position in the owning core's warp list, assigned by the core.
        #: Indexes the core's flat ``_busy`` park/busy column (the
        #: ``busy_until`` field lives there, not on the warp — the issue
        #: scan rejects parked warps on one list load without touching
        #: the warp object).
        self.idx = 0
        self.trace = trace
        #: Direct references for the issue stage's per-cycle scan, which is
        #: hot enough that even the ``trace.ops`` attribute hop and the
        #: ``done`` property call showed up in profiles.
        self.ops = trace.ops
        self.n_ops = len(trace.ops)
        self.pc = 0
        #: In-flight global memory ops, oldest first.
        self.outstanding: List[MemOpRecord] = []
        self.at_barrier: Optional[int] = None
        self.fence_pending = False
        # SC-stall bookkeeping for the op currently blocked at issue.
        self.stall_start: Optional[int] = None
        self.stall_blocker: Optional[MemOpKind] = None
        self.stall_record: Optional[MemOpRecord] = None
        self.done_cycle: Optional[int] = None
        self.completed_ops: List[MemOpRecord] = []

    @property
    def done(self) -> bool:
        return self.pc >= self.n_ops

    def next_op(self) -> Optional[TraceOp]:
        if self.done:
            return None
        return self.ops[self.pc]

    @property
    def oldest_outstanding(self) -> Optional[MemOpRecord]:
        return self.outstanding[0] if self.outstanding else None

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Warp c{self.core_id}w{self.warp_id} pc={self.pc}/"
                f"{len(self.trace.ops)} out={len(self.outstanding)}>")
