"""Workload traces: the instruction stream each warp executes.

Traces are *post-coalescing*: one LOAD/STORE/ATOMIC op represents one memory
transaction issued by a warp's load-store unit (the unit of coherence
traffic). COMPUTE ops model the ALU work between memory instructions as a
cycle count; BARRIER ops synchronize all warps within one core (a workgroup
in our model maps to one SM); FENCE ops order memory under weak consistency
(under SC they are no-ops in hardware, exactly as the paper treats them, but
are kept in traces).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Set

from repro.common.types import MemOpKind
from repro.errors import TraceError


@dataclass(frozen=True)
class TraceOp:
    """One trace instruction.

    ``addr`` is a byte address for memory ops, ``cycles`` the duration of a
    COMPUTE op, ``barrier_id`` distinguishes successive barriers.
    """

    kind: MemOpKind
    addr: Optional[int] = None
    cycles: int = 0
    barrier_id: int = 0

    def __post_init__(self):
        if self.kind.is_global_mem and self.addr is None:
            raise TraceError(f"{self.kind} op requires an address")
        if self.kind is MemOpKind.COMPUTE and self.cycles <= 0:
            raise TraceError("COMPUTE op requires positive cycle count")
        if self.addr is not None and self.addr < 0:
            raise TraceError(f"negative address {self.addr}")


def load_op(addr: int) -> TraceOp:
    return TraceOp(MemOpKind.LOAD, addr=addr)


def store_op(addr: int) -> TraceOp:
    return TraceOp(MemOpKind.STORE, addr=addr)


def atomic_op(addr: int) -> TraceOp:
    return TraceOp(MemOpKind.ATOMIC, addr=addr)


def compute_op(cycles: int) -> TraceOp:
    return TraceOp(MemOpKind.COMPUTE, cycles=cycles)


def fence_op() -> TraceOp:
    return TraceOp(MemOpKind.FENCE)


def barrier_op(barrier_id: int = 0) -> TraceOp:
    return TraceOp(MemOpKind.BARRIER, barrier_id=barrier_id)


@dataclass
class WarpTrace:
    """The full instruction stream for one warp."""

    core_id: int
    warp_id: int
    ops: List[TraceOp] = field(default_factory=list)

    def append(self, op: TraceOp) -> None:
        self.ops.append(op)

    def extend(self, ops: Iterable[TraceOp]) -> None:
        self.ops.extend(ops)

    def __len__(self) -> int:
        return len(self.ops)

    @property
    def n_mem_ops(self) -> int:
        return sum(1 for op in self.ops if op.kind.is_global_mem)

    def mem_blocks(self, block_bytes: int) -> Set[int]:
        """Block base addresses this warp's global memory ops touch."""
        return {(op.addr // block_bytes) * block_bytes
                for op in self.ops if op.kind.is_global_mem}

    def validate(self, n_warps_in_core: int) -> None:
        """Sanity-check barrier matching: every warp in a core must reach
        barriers in the same order; we check ids are non-decreasing."""
        last = -1
        for op in self.ops:
            if op.kind is MemOpKind.BARRIER:
                if op.barrier_id < last:
                    raise TraceError(
                        f"barrier ids must be non-decreasing in warp "
                        f"{self.core_id}.{self.warp_id}"
                    )
                last = op.barrier_id
