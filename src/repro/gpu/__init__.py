"""GPU core (SM) model: warps, traces, scheduler, and the issue pipeline."""

from repro.gpu.trace import TraceOp, WarpTrace, load_op, store_op, atomic_op, \
    compute_op, fence_op, barrier_op
from repro.gpu.warp import Warp, MemOpRecord
from repro.gpu.core import GPUCore

__all__ = [
    "GPUCore",
    "MemOpRecord",
    "TraceOp",
    "Warp",
    "WarpTrace",
    "atomic_op",
    "barrier_op",
    "compute_op",
    "fence_op",
    "load_op",
    "store_op",
]
