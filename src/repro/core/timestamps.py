"""Logical clocks with finite-width rollover detection.

Hardware timestamps are fixed-width (32 bits in the paper; on average they
advanced once per ~1073 cycles, about one rollover per hour). Rather than
wrapping silently, RCC detects an impending overflow at the L2 — the only
agent that ever *increases* timestamps — and runs a global reset protocol
(see :mod:`repro.core.rollover`). The clock here tracks the current rollover
``epoch`` so the simulator's consistency checker can keep a globally
monotonic key ``(epoch << bits) | value`` across resets.
"""

from __future__ import annotations

from repro.errors import SimulationError


def timestamp_guard_band(lease_max: int) -> int:
    """How far below the max a timestamp may grow before rollover triggers.

    One L2 transaction can advance a timestamp by at most ``lease_max``
    (a new lease) plus one (rule 3's ``exp + 1``); a few transactions may be
    in flight per block. A 4x margin keeps every in-flight computation
    representable.
    """
    return 4 * lease_max + 64


class LogicalClock:
    """A core's (or block's) logical time with bounded width.

    >>> clk = LogicalClock(bits=8)
    >>> clk.advance_to(10); clk.value
    10
    >>> clk.advance_to(5); clk.value   # never moves backwards
    10
    """

    __slots__ = ("bits", "max_value", "value", "epoch")

    def __init__(self, bits: int = 32, value: int = 0):
        self.bits = bits
        self.max_value = (1 << bits) - 1
        self.value = value
        self.epoch = 0

    def advance_to(self, target: int) -> int:
        """Monotonic advance; returns the new value."""
        if target > self.max_value:
            raise SimulationError(
                f"logical clock overflow: {target} > {self.max_value}; "
                "rollover should have triggered earlier"
            )
        if target > self.value:
            self.value = target
        return self.value

    def tick(self, amount: int = 1) -> int:
        """Livelock-avoidance bump (saturates at the width limit)."""
        self.value = min(self.value + amount, self.max_value)
        return self.value

    def reset(self) -> None:
        """Rollover: back to zero, next epoch."""
        self.value = 0
        self.epoch += 1

    def global_key(self) -> int:
        """Globally monotonic key across rollovers (checker use only)."""
        return (self.epoch << self.bits) | self.value

    def __repr__(self) -> str:  # pragma: no cover
        return f"<LogicalClock {self.value} (epoch {self.epoch})>"
