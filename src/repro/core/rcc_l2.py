"""RCC L2 bank controller (paper Fig. 5, right table).

States: **I**, **V** (stable); **IV** (miss outstanding, mergeable MSHR);
**IAV** (atomic received in I: stalls all other requests for the block until
the line returns from DRAM and the RMW completes).

Responsibilities beyond the FSM proper:

* **instant write permission** — a WRITE in V is acknowledged after the bank
  access latency with ``ver = max(M.now, D.ver, D.exp + 1)``; no sharer
  invalidation, no lease wait (this is the paper's headline mechanism);
* **lease extension** — a GETS carrying the requester's old ``exp`` gets a
  data-less RENEW when the block hasn't been written since (``M.exp >
  D.ver``), shaded additions of Fig. 5;
* **lease prediction** — per-block lease sizing (max on fill, min on write,
  double on renew), §III-E;
* **L2 evictions** — fold ``max(exp + 1, ver)`` into the memory partition's
  ``mnow`` so reloaded blocks can never be read before their last write or
  written under an outstanding lease (§III-D). We fold ``exp + 1`` (not the
  paper's ``exp``) so a post-reload write's version strictly exceeds every
  lease granted before the eviction; with the paper's ``max(exp, ver)`` a
  write acknowledged from the IV state at ``ver == mnow`` could tie exactly
  with an outstanding lease boundary;
* **MSHR write merging** — writes that miss are acknowledged immediately
  with ``ver = max(lastwr, mnow)``; newest-``now`` data wins the merge;
* **rollover** — detects impending timestamp overflow and defers to the
  global :class:`~repro.core.rollover.RolloverManager`.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Dict, List, Optional

from repro.common.messages import Message
from repro.common.types import L2State, MsgKind
from repro.coherence.base import L2ControllerBase
from repro.core.lease import post_lease
from repro.core.lease_policy import make_lease_policy
from repro.mem.cache_array import CacheLine
from repro.sanitize.events import EventKind as EV
from repro.timing.engine import _MASK as _RING_MASK

#: Delay before re-presenting a request that hit a stalling state (IAV, or a
#: set with every way pinned). Models the request sitting in the bank's
#: input queue.
RETRY_DELAY = 8


class RCCL2Controller(L2ControllerBase):
    """Logical-timestamp L2 bank for RCC (shared by RCC-SC and RCC-WO)."""

    protocol_name = "RCC"

    def __init__(self, bank_id, engine, cfg, noc, amap, dram, backing,
                 rollover):
        super().__init__(bank_id, engine, cfg, noc, amap, dram, backing,
                         L2State.I)
        self.rollover = rollover
        #: The pluggable lease-sizing strategy (``cfg.ts.lease_policy``).
        #: Kept under the historical ``predictor`` name: every policy
        #: implements the predictor interface plus the observation hooks.
        self.predictor = make_lease_policy(cfg.ts)
        self.renew_enabled = cfg.ts.renew_enabled
        self._lease_max2 = cfg.ts.lease_max + 2
        self.frozen = False
        self._frozen_queue: List[Message] = []

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def on_message(self, msg: Message) -> None:
        if self.frozen:
            self._frozen_queue.append(msg)
            return
        if self.rollover.maybe_trigger(self._projected_ts(msg), self.bank_id):
            self._frozen_queue.append(msg)
            return
        epoch = msg.meta.get("epoch", self.rollover.epoch)
        m_now = self.rollover.clamp(msg.now, epoch)
        m_exp = (self.rollover.clamp(msg.exp, epoch)
                 if msg.exp is not None and epoch == self.rollover.epoch
                 else None)
        if msg.kind is MsgKind.GETS:
            self._on_gets(msg, m_now, m_exp)
        elif msg.kind is MsgKind.WRITE:
            self._on_write(msg, m_now)
        elif msg.kind is MsgKind.ATOMIC:
            self._on_atomic(msg, m_now)
        else:
            raise self.unhandled("-", msg.kind, f"addr=0x{msg.addr:x}")

    def _projected_ts(self, msg: Message) -> int:
        """Upper bound on any timestamp this transaction could produce."""
        m = self.dram.mnow
        n = msg.now or 0
        if n > m:
            m = n
        line = self.cache._map.get(msg.addr)
        if line is not None:
            if line.exp > m:
                m = line.exp
            if line.ver > m:
                m = line.ver
        return m + self._lease_max2

    def _retry(self, msg: Message) -> None:
        # The retry re-enters ``on_message`` in full whenever rollover could
        # be in play: the frozen/trigger checks and epoch clamping must be
        # re-evaluated at fire time. Away from the guard band that entry
        # sequence is side-effect-free (``maybe_trigger``'s no-trigger path
        # is a pure read, and the clamped timestamps cannot affect whether
        # the request blocks), so the poll re-checks the blocking condition
        # with pure reads — the in-line projected-timestamp computation is
        # ``_projected_ts`` verbatim — and re-arms itself while it holds,
        # conservatively falling back to the full path for the
        # ``can_allocate`` fail case. Built once per message; never
        # cancelled -> the engine's no-handle path, which preserves
        # (cycle, seq) firing order exactly.
        meta = msg.meta
        cb = meta.get("_retry_cb")
        if cb is None:
            block = msg.addr
            cache_map = self.cache._map
            entries = self.mshr._entries
            capacity = self.mshr.capacity
            engine = self.engine
            rollover = self.rollover
            dram = self.dram
            threshold = rollover.threshold
            lease_max2 = self._lease_max2
            n = msg.now or 0
            atomic = msg.kind is MsgKind.ATOMIC
            valid = L2State.V
            iav = L2State.IAV

            ring = getattr(engine, "_ring", None)  # None under the legacy engine

            def cb() -> None:
                if not self.frozen and not rollover.in_progress:
                    line = cache_map.get(block)
                    m = dram.mnow
                    if n > m:
                        m = n
                    if line is not None:
                        if line.exp > m:
                            m = line.exp
                        if line.ver > m:
                            m = line.ver
                    if m + lease_max2 < threshold:
                        if line is not None:
                            blocked = (line.state is not valid if atomic
                                       else line.state is iav)
                        elif atomic:
                            blocked = len(entries) >= capacity
                        else:
                            blocked = (len(entries) >= capacity
                                       and block not in entries)
                        if blocked:
                            # schedule_call's in-window bare-callback path,
                            # inlined (see the TC retry for the rationale).
                            cyc = engine.now + RETRY_DELAY
                            if ring is not None and cyc < engine._horizon:
                                engine._live += 1
                                b = ring[cyc & _RING_MASK]
                                if not b:
                                    heappush(engine._ring_cycles, cyc)
                                b.append(cb)
                            else:
                                engine.schedule_call(cyc, cb)
                            return
                self.on_message(msg)
            meta["_retry_cb"] = cb
        engine = self.engine
        engine.schedule_call(engine.now + RETRY_DELAY, cb)

    # ------------------------------------------------------------------
    # GETS
    # ------------------------------------------------------------------
    def _on_gets(self, msg: Message, m_now: int, m_exp: Optional[int]) -> None:
        if not msg.meta.get("_counted"):
            msg.meta["_counted"] = True
            self.stats.gets += 1
            if msg.meta.get("expired"):
                self.stats.gets_expired += 1
        block = msg.addr
        line = self.cache._map.get(block)

        if line is not None and line.state is L2State.V:
            self.stats.hits += 1
            self._grant_lease(msg, line, m_now, m_exp)
            return
        if line is not None and line.state is L2State.IAV:
            self._retry(msg)
            return
        if line is not None and line.state is L2State.IV:
            entry = self.mshr.allocate(block)
            entry.lastrd = max(entry.lastrd, m_now)
            entry.has_read = True
            entry.waiting_loads.append(msg)
            return
        # Miss: fetch from DRAM.
        if not (self.mshr.has_free() or block in self.mshr) \
                or not self.cache.can_allocate(block):
            self._retry(msg)
            return
        self.stats.misses += 1
        line = self.cache.insert(block, L2State.IV, self._on_evict)
        line.pinned = True
        entry = self.mshr.allocate(block)
        entry.lastrd = max(entry.lastrd, m_now)
        entry.has_read = True
        entry.waiting_loads.append(msg)
        self.fetch_from_dram(block, self._on_dram_data)

    def _grant_lease(self, msg: Message, line: CacheLine, m_now: int,
                     m_exp: Optional[int]) -> None:
        pc = msg.meta.get("pc")
        lease = self.predictor.lease_for(line, m_now, pc)
        prev_exp = line.exp
        line.exp = max(line.exp, line.ver + lease, m_now + lease)
        line.touch()
        arrival = self.next_arrival()
        renewing = (self.renew_enabled and m_exp is not None
                    and m_exp > line.ver)
        if m_exp is not None and m_exp <= line.ver:
            # The requester's lease outlived the data (written since):
            # the policy's mispredict signal, independent of renew_enabled.
            self.predictor.on_expired_miss(line, pc)
        if self.sanitizer is not None:
            self._emit(EV.L2_RENEW_GRANT if renewing else EV.L2_READ_GRANT,
                       msg.addr, ver=line.ver, exp=line.exp, m_now=m_now,
                       prev_exp=prev_exp, lease=lease,
                       peer=msg.src[1], epoch=self.rollover.epoch)
        if renewing:
            # The requester's copy is still current: extend, don't resend.
            self.stats.renew_grants += 1
            self.predictor.on_renew(line, pc)
            self.send(msg.src, MsgKind.RENEW, msg.addr, exp=line.exp,
                      meta={"epoch": self.rollover.epoch, "arrival": arrival},
                      delay=self.cfg.l2_per_bank.hit_latency)
        else:
            self.send(msg.src, MsgKind.DATA, msg.addr, exp=line.exp,
                      ver=line.ver, value=line.value,
                      meta={"epoch": self.rollover.epoch, "arrival": arrival},
                      delay=self.cfg.l2_per_bank.hit_latency)

    # ------------------------------------------------------------------
    # WRITE
    # ------------------------------------------------------------------
    def _on_write(self, msg: Message, m_now: int) -> None:
        if not msg.meta.get("_counted"):
            msg.meta["_counted"] = True
            self.stats.writes += 1
        block = msg.addr
        line = self.cache._map.get(block)

        if line is not None and line.state is L2State.V:
            self.stats.hits += 1
            arrival = self.next_arrival()
            # Rules 2+3: past the writer's now, the last write, and every
            # outstanding lease — computed locally, acknowledged instantly.
            prev_ver, prev_exp = line.ver, line.exp
            line.ver = max(m_now, line.ver, post_lease(line.exp))
            line.value = msg.value
            line.dirty = True
            line.touch()
            self.predictor.on_write(line)
            if self.sanitizer is not None:
                self._emit(EV.L2_WRITE_APPLY, block, ver=line.ver,
                           prev_ver=prev_ver, prev_exp=prev_exp,
                           m_now=m_now, arrival=arrival,
                           epoch=self.rollover.epoch)
            self._send_ack(msg, line.ver, arrival)
            return
        if line is not None and line.state is L2State.IAV:
            self._retry(msg)
            return
        if line is not None and line.state is L2State.IV:
            self._merge_write(msg, m_now)
            return
        # Miss: allocate, ack against lastwr/mnow, fetch in the background.
        if not (self.mshr.has_free() or block in self.mshr) \
                or not self.cache.can_allocate(block):
            self._retry(msg)
            return
        self.stats.misses += 1
        line = self.cache.insert(block, L2State.IV, self._on_evict)
        line.pinned = True
        self.mshr.allocate(block)
        self._merge_write(msg, m_now)
        self.fetch_from_dram(block, self._on_dram_data)

    def _merge_write(self, msg: Message, m_now: int) -> None:
        """IV-state write: merge into the MSHR and ack without DRAM.

        The block's final version will be ``max(lastwr, mnow)``. For the
        *data*, the last write to arrive wins — the same resolution the V
        state applies — because the SC order of stores sharing a version is
        their physical arrival order at the L2 (paper footnote 2).
        """
        entry = self.mshr.allocate(msg.addr)
        entry.lastwr = max(entry.lastwr, m_now)
        entry.store_value = msg.value
        entry.has_write = True
        arrival = self.next_arrival()
        ver = max(entry.lastwr, self.dram.mnow)
        if self.sanitizer is not None:
            self._emit(EV.L2_WRITE_MERGE, msg.addr, ver=ver,
                       lastwr=entry.lastwr, mnow=self.dram.mnow,
                       arrival=arrival, epoch=self.rollover.epoch)
        self._send_ack(msg, ver, arrival)

    def _send_ack(self, msg: Message, ver: int, arrival: int) -> None:
        self.send(msg.src, MsgKind.ACK, msg.addr, ver=ver,
                  meta={"record": msg.meta.get("record"),
                        "warp": msg.meta.get("warp"),
                        "epoch": self.rollover.epoch, "arrival": arrival},
                  delay=self.cfg.l2_per_bank.hit_latency)

    # ------------------------------------------------------------------
    # ATOMIC
    # ------------------------------------------------------------------
    def _on_atomic(self, msg: Message, m_now: int) -> None:
        if not msg.meta.get("_counted"):
            msg.meta["_counted"] = True
            self.stats.atomics += 1
        block = msg.addr
        line = self.cache._map.get(block)

        if line is not None and line.state is L2State.V:
            self.stats.hits += 1
            arrival = self.next_arrival()
            prev_ver, prev_exp = line.ver, line.exp
            line.ver = max(m_now, line.ver, post_lease(line.exp))
            old_value = line.value
            line.value = msg.value
            line.dirty = True
            line.touch()
            self.predictor.on_write(line)
            if self.sanitizer is not None:
                self._emit(EV.L2_ATOMIC_APPLY, block, ver=line.ver,
                           prev_ver=prev_ver, prev_exp=prev_exp,
                           m_now=m_now, arrival=arrival,
                           epoch=self.rollover.epoch)
            self.send(msg.src, MsgKind.DATA, block, exp=line.exp,
                      ver=line.ver, value=old_value,
                      meta={"atomic": True, "record": msg.meta.get("record"),
                            "warp": msg.meta.get("warp"),
                            "epoch": self.rollover.epoch, "arrival": arrival},
                      delay=self.cfg.l2_per_bank.hit_latency)
            return
        if line is not None:  # IV or IAV: stall all further requests
            self._retry(msg)
            return
        # Miss in I: fetch and run the RMW when data arrives (IAV).
        if not self.mshr.has_free() or not self.cache.can_allocate(block):
            self._retry(msg)
            return
        self.stats.misses += 1
        line = self.cache.insert(block, L2State.IAV, self._on_evict)
        line.pinned = True
        entry = self.mshr.allocate(block)
        entry.lastwr = max(entry.lastwr, m_now)
        entry.has_write = True
        entry.meta["atomic_msg"] = msg
        self.fetch_from_dram(block, self._on_dram_data)

    # ------------------------------------------------------------------
    # DRAM fills
    # ------------------------------------------------------------------
    def _on_dram_data(self, block: int) -> None:
        if self.frozen:
            # Rollover in progress: complete the fill afterwards.
            self.engine.schedule_call(self.engine.now + RETRY_DELAY,
                                      lambda: self._on_dram_data(block))
            return
        line = self.cache._map.get(block)
        entry = self.mshr.get(block)
        if line is None or entry is None:
            raise self.unhandled("I", "MEMDATA", f"orphan fill 0x{block:x}")
        mnow = self.dram.mnow

        atomic_msg = entry.meta.pop("atomic_msg", None)
        if atomic_msg is not None:  # IAV resolution
            line.exp = mnow
            line.ver = max(entry.lastwr, mnow)
            old_value = self.read_backing(block)
            line.value = atomic_msg.value
            line.dirty = True
            self.predictor.on_write(line)
            arrival = self.next_arrival()
            if self.sanitizer is not None:
                self._emit(EV.L2_FILL, block, ver=line.ver, exp=line.exp,
                           mnow=mnow, has_read=False, has_write=True,
                           lastwr=entry.lastwr, epoch=self.rollover.epoch)
                self._emit(EV.L2_ATOMIC_APPLY, block, ver=line.ver,
                           m_now=entry.lastwr, arrival=arrival,
                           epoch=self.rollover.epoch)
            self.send(atomic_msg.src, MsgKind.DATA, block, exp=line.ver,
                      ver=line.ver, value=old_value,
                      meta={"atomic": True,
                            "record": atomic_msg.meta.get("record"),
                            "warp": atomic_msg.meta.get("warp"),
                            "epoch": self.rollover.epoch, "arrival": arrival})
            line.state = L2State.V
            line.pinned = False
            entry.has_write = False
            self.mshr.release_if_empty(block)
            return

        # IV resolution: merge writes, compute lease for readers.
        line.exp = mnow
        line.ver = mnow
        if entry.has_write:
            line.ver = max(entry.lastwr, mnow)
            line.value = entry.store_value
            line.dirty = True
            self.predictor.on_write(line)
        else:
            line.value = self.read_backing(block)
        if entry.has_read:
            pc = next((m.meta.get("pc") for m in entry.waiting_loads
                       if m.meta.get("pc") is not None), None)
            lease = self.predictor.lease_for(line, entry.lastrd, pc)
            line.exp = max(line.ver + lease, entry.lastrd + lease)
        if self.sanitizer is not None:
            self._emit(EV.L2_FILL, block, ver=line.ver, exp=line.exp,
                       mnow=mnow, has_read=entry.has_read,
                       has_write=entry.has_write, lastrd=entry.lastrd,
                       lastwr=entry.lastwr, epoch=self.rollover.epoch)
        for req in entry.waiting_loads:
            arrival = self.next_arrival()
            self.send(req.src, MsgKind.DATA, block, exp=line.exp,
                      ver=line.ver, value=line.value,
                      meta={"epoch": self.rollover.epoch, "arrival": arrival})
        entry.waiting_loads.clear()
        entry.has_read = entry.has_write = False
        line.state = L2State.V
        line.pinned = False
        self.mshr.release_if_empty(block)

    # ------------------------------------------------------------------
    # Evictions and rollover
    # ------------------------------------------------------------------
    def _on_evict(self, line: CacheLine) -> None:
        self.stats.evictions += 1
        # post_lease (exp + 1, not the paper's exp): see the module docstring.
        self.dram.bump_mnow(max(post_lease(line.exp), line.ver))
        if self.sanitizer is not None:
            self._emit(EV.L2_EVICT, line.addr, ver=line.ver, exp=line.exp,
                       mnow_after=self.dram.mnow, epoch=self.rollover.epoch)
        if line.dirty:
            self.writeback_to_dram(line.addr, line.value)

    def freeze(self) -> None:
        self.frozen = True

    def unfreeze(self) -> None:
        self.frozen = False
        queued, self._frozen_queue = self._frozen_queue, []
        for msg in queued:
            self.on_message(msg)

    def rollover_reset(self) -> None:
        """Zero every timestamp this bank holds (queued message timestamps
        are neutralized by epoch clamping on dequeue)."""
        self.stats.rollovers += 1
        if self.sanitizer is not None:
            self._emit(EV.L2_ROLLOVER, 0, epoch=self.rollover.epoch)
        for line in self.cache.lines():
            line.ver = 0
            line.exp = 0
        for entry in self.mshr.entries():
            entry.lastrd = 0
            entry.lastwr = 0
