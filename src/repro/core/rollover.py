"""Timestamp rollover (paper §III-D).

The L2 is the only coherence actor that increases timestamps, so an L2 bank
is the first to notice that a timestamp computation is about to overflow the
hardware width. The rollover protocol:

1. the detecting bank circulates a *stall* flit on a unidirectional ring
   among L2 partitions; every partition stalls request processing and zeroes
   its timestamps (block ``ver``/``exp``, MSHR ``lastrd``/``lastwr``, and the
   memory partitions' ``mnow``);
2. the detecting bank sends *flush* requests to every L1; each L1 zeroes its
   logical ``now`` and invalidates all entries (blocks with outstanding
   MSHR traffic conceptually enter II; the rest go to I), then acks;
3. a *resume* flit releases all partitions; queued requests are processed
   with their carried timestamps clamped to zero.

Responses that were already in flight when rollover began carry timestamps
from the previous epoch; the simulator tags every timestamp-bearing message
with its epoch and receivers clamp stale-epoch timestamps to zero — the same
effect as the paper's "all timestamps reset to 0" for retained queue entries.

The manager is shared by all banks; concurrent triggers collapse into one
rollover (the paper's "lowest partition id wins" arbitration).
"""

from __future__ import annotations

from typing import List

from repro.timing.engine import Engine


class RolloverManager:
    """Coordinates a global logical-time reset across L1s, L2s, and DRAM."""

    def __init__(self, engine: Engine, threshold: int):
        self.engine = engine
        #: Timestamps at or above this value trigger a rollover.
        self.threshold = threshold
        self.epoch = 0
        self.in_progress = False
        self.rollovers = 0
        self._l1s: List = []
        self._l2s: List = []
        self._drams: List = []

    # ------------------------------------------------------------------
    def wire(self, l1s: List, l2s: List, drams: List) -> None:
        self._l1s = list(l1s)
        self._l2s = list(l2s)
        self._drams = list(drams)

    # ------------------------------------------------------------------
    def needs_rollover(self, projected_ts: int) -> bool:
        return projected_ts >= self.threshold

    def maybe_trigger(self, projected_ts: int, bank_id: int) -> bool:
        """Called by an L2 bank before a timestamp computation. Starts a
        rollover if ``projected_ts`` is in the guard band. Returns True if a
        rollover is (now) in progress and the caller must defer its work."""
        if self.in_progress:
            return True
        if not self.needs_rollover(projected_ts):
            return False
        self._begin(bank_id)
        return True

    # ------------------------------------------------------------------
    def _begin(self, bank_id: int) -> None:
        self.in_progress = True
        self.rollovers += 1
        # Stall every L2 partition immediately (ring flit, ~1 hop/bank) and
        # request L1 flushes; model the whole exchange as one latency.
        for l2 in self._l2s:
            l2.freeze()
        ring_latency = max(1, len(self._l2s))
        noc = self._l1s[0].noc if self._l1s else None
        flush_round_trip = 2 * (noc.cfg.link_latency if noc else 8) + 4
        total = ring_latency + flush_round_trip
        self.engine.schedule_in(total, self._finish)

    def _finish(self) -> None:
        for l1 in self._l1s:
            l1.rollover_flush()
        for l2 in self._l2s:
            l2.rollover_reset()
        for dram in self._drams:
            dram.reset_timestamps()
        self.epoch += 1
        self.in_progress = False
        for l2 in self._l2s:
            l2.unfreeze()

    # ------------------------------------------------------------------
    def clamp(self, ts, msg_epoch: int) -> int:
        """Clamp a message timestamp from a previous epoch to zero."""
        if ts is None:
            return 0
        if msg_epoch != self.epoch:
            return 0
        return ts
