"""Per-block lease prediction (paper §III-E).

Intuition: read-only (and streaming) data should get long leases so copies
never expire; frequently-written shared data (locks, work queues) should get
short leases so a write does not have to advance logical time far past
everyone's ``now`` (which would expire unrelated L1 blocks).

The paper's predictor: start every block at the **maximum** lease (2048);
drop to the **minimum** (8) whenever the block is written; **double** every
time a read lease is successfully renewed. The prediction is stored with the
L2 line (it is lost on eviction, so blocks that miss in L2 — e.g. streaming
reads — restart at the maximum, exactly as the paper wants).
"""

from __future__ import annotations

from repro.core.lease_policy import FixedLeasePolicy

_PRED_KEY = "lease_pred"


def lease_valid(now: int, exp: int) -> bool:
    """The single lease-boundary convention, shared by RCC and TC: a copy
    is readable **through** its expiry cycle (``now == exp`` still hits)."""
    return now <= exp


def lease_expired(now: int, exp: int) -> bool:
    """Complement of :func:`lease_valid`: expired strictly past ``exp``."""
    return now > exp


def post_lease(exp: int) -> int:
    """The first instant strictly after a lease — where writes serialize
    (RCC rule 3's ``D.exp + 1``; a TCS store's earliest ack time)."""
    return exp + 1


class LeasePredictor(FixedLeasePolicy):
    """Backward-compatible name for the paper's predictor.

    The predictor is now the ``fixed`` strategy of the pluggable
    lease-policy layer (:mod:`repro.core.lease_policy`); this subclass
    keeps the historical import path and behaviour (it adds nothing).
    """
