"""RCC L1 controller (paper Fig. 5, left table).

States: **I**, **V** (stable); **IV** (load fetch outstanding), **II**
(store/atomic outstanding, no readable copy), **VI** (store outstanding but
the pre-store copy remains readable — the GPU-specific optimization).

Representation: the tag array holds data-bearing states only (V, IV); store
transients live in the MSHR, as in real write-no-allocate L1s:

* line in V, no pending stores            -> V
* line in V, pending stores in MSHR       -> VI
* line in IV (load fetch in flight)       -> IV  (II if stores also pending)
* no line, pending stores in MSHR         -> II
* otherwise                               -> I

A V line whose lease has expired (``now > exp``) is treated exactly like I
for reads, but its stale data and tag are kept so the L2 can grant a RENEW
(data-less lease extension) instead of resending the whole block.

The core's logical clock ``now`` lives here. It advances on DATA/ACK
responses (rules 1–3 are enforced at the L2, which computes the returned
``ver``) and through the periodic livelock-avoidance tick.
"""

from __future__ import annotations

from typing import Optional

from repro.common.messages import Message
from repro.common.types import AccessOutcome, L1State, MemOpKind, MsgKind
from repro.coherence.base import L1ControllerBase
from repro.core.lease import lease_expired, lease_valid
from repro.core.timestamps import LogicalClock
from repro.gpu.warp import MemOpRecord, Warp
from repro.mem.cache_array import CacheLine
from repro.sanitize.events import EventKind as EV


class RCCL1Controller(L1ControllerBase):
    """Logical-timestamp L1 for RCC (sequentially consistent variant)."""

    protocol_name = "RCC"

    def __init__(self, core_id, engine, cfg, noc, amap, rollover):
        super().__init__(core_id, engine, cfg, noc, amap, L1State.I)
        self.rollover = rollover
        self.clock = LogicalClock(bits=cfg.ts.bits)
        self._livelock_period = cfg.ts.livelock_tick_cycles

    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        return self.clock.value

    def _read_now(self) -> int:
        """Logical time consulted/advanced by loads (split in RCC-WO)."""
        return self.clock.value

    def _write_now(self) -> int:
        """Logical time sent with stores (split in RCC-WO)."""
        return self.clock.value

    def _advance_read(self, ts: int) -> None:
        self.clock.advance_to(ts)

    def _advance_write(self, ts: int) -> None:
        self.clock.advance_to(ts)

    def _ts_key(self, value: int) -> int:
        """Globally monotonic checker key for a timestamp in this epoch."""
        return (self.rollover.epoch << self.clock.bits) | value

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the periodic livelock-avoidance tick (paper §III-E)."""
        if self._livelock_period > 0:
            self.engine.schedule_in(self._livelock_period, self._livelock_tick)

    def _livelock_tick(self) -> None:
        if self.core is not None and self.core.finished:
            return  # let the event queue drain once the core is done
        self.clock.tick(1)
        self.engine.schedule_in(self._livelock_period, self._livelock_tick)

    # ------------------------------------------------------------------
    # Core-side events
    # ------------------------------------------------------------------
    def access(self, record: MemOpRecord, warp: Warp) -> AccessOutcome:
        if record.kind is MemOpKind.LOAD:
            return self._load(record, warp)
        return self._store_or_atomic(record, warp)

    def would_stall(self, kind: MemOpKind, addr: int) -> bool:
        # Mirrors the STALL exits of _load/_store_or_atomic below — keep in
        # sync (True must imply access() would STALL; see the base class).
        # _read_now() is a pure read in both RCC and RCC-WO, so probing a
        # load's hit predicate here advances nothing.
        shift = self.amap._block_shift
        block = (addr >> shift) << shift
        mshr = self.mshr
        entry = mshr._entries.get(block)
        if kind is MemOpKind.LOAD:
            line = self.cache._map.get(block)
            if (line is not None and line.state is L1State.V
                    and lease_valid(self._read_now(), line.exp)):
                return False
            if entry is None and len(mshr._entries) >= mshr.capacity:
                return True
            return line is None and not self.cache.can_allocate(block)
        return entry is None and len(mshr._entries) >= mshr.capacity

    def _load(self, record: MemOpRecord, warp: Warp) -> AccessOutcome:
        block = self.block_of(record.addr)
        line = self.cache._map.get(block)
        rnow = self._read_now()

        if (line is not None and line.state is L1State.V
                and lease_valid(rnow, line.exp)):
            # V (or VI) hit within the lease.
            self.stats.loads += 1
            self.stats.load_hits += 1
            if self.sanitizer is not None:
                self._emit(EV.L1_LOAD_HIT, block, now=rnow, exp=line.exp,
                           view="read", epoch=self.rollover.epoch)
            record.read_value = line.value
            record.logical_ts = self._ts_key(rnow)
            record.order_key = -1  # L1 hit: never visited the L2
            line.touch()
            self.complete(record, warp, delay=self.cfg.l1.hit_latency)
            return AccessOutcome.HIT

        expired = (line is not None and line.state is L1State.V
                   and lease_expired(rnow, line.exp))

        entries = self.mshr._entries
        entry = entries.get(block)
        if entry is None and len(entries) >= self.mshr.capacity:
            return AccessOutcome.STALL
        if line is None and not self.cache.can_allocate(block):
            return AccessOutcome.STALL  # all ways pinned by transients
        # Count only after the stall exits: a stalled access is replayed, and
        # counting it on every retry inflated loads/load_expired.
        self.stats.loads += 1
        if expired:
            self.stats.load_expired += 1
        self.stats.load_misses += 1
        if self.sanitizer is not None:
            self._emit(EV.L1_LOAD_MISS, block, now=rnow, expired=expired,
                       view="read", epoch=self.rollover.epoch)
        entry = self.mshr.allocate(block)
        # Snapshot the read view at issue: the fill satisfies this load only
        # if the granted lease covers the snapshot (a warp that is already
        # logically past the lease must refetch, not consume stale data).
        entry.waiting_loads.append((record, warp, rnow))

        if entry.meta.get("gets_out"):
            return AccessOutcome.MISS  # merge into the outstanding GETS

        old_exp: Optional[int] = None
        if line is None:
            line = self.cache.insert(block, L1State.IV, self._on_evict)
        else:
            old_exp = line.exp if line.value is not None else None
            line.state = L1State.IV
        line.pinned = True
        entry.meta["gets_out"] = True
        self.send_to_l2(
            MsgKind.GETS, block, now=rnow, exp=old_exp,
            meta={"expired": expired, "epoch": self.rollover.epoch,
                  "pc": record.prog_index},
        )
        return AccessOutcome.MISS

    def _store_or_atomic(self, record: MemOpRecord, warp: Warp) -> AccessOutcome:
        block = self.block_of(record.addr)
        entries = self.mshr._entries
        entry = entries.get(block)
        if entry is None and len(entries) >= self.mshr.capacity:
            return AccessOutcome.STALL
        self.count_access(record)  # after the stall exit, so replays count once
        if self.sanitizer is not None:
            vline = self.cache._map.get(block)
            self._emit(EV.L1_STORE_ISSUE, block, now=self._write_now(),
                       view="write", epoch=self.rollover.epoch,
                       atomic=record.kind is MemOpKind.ATOMIC,
                       op=record.seq,
                       copy_exp=(vline.exp if vline is not None
                                 and vline.state is L1State.V else None))
        entry = self.mshr.allocate(block)
        entry.pending_stores.append((record, warp))
        line = self.cache._map.get(block)
        if line is not None:
            line.pinned = True  # VI/II transients are not evictable
        kind = (MsgKind.ATOMIC if record.kind is MemOpKind.ATOMIC
                else MsgKind.WRITE)
        self.send_to_l2(
            kind, block, now=self._write_now(), value=record.value,
            meta={"record": record, "warp": warp,
                  "epoch": self.rollover.epoch},
        )
        return AccessOutcome.MISS

    def _on_evict(self, line: CacheLine) -> None:
        # Write-through L1: evicting a V line (valid or expired) is silent.
        self.stats.evictions += 1
        if self.sanitizer is not None:
            self._emit(EV.L1_EVICT, line.addr, state=line.state.name,
                       exp=line.exp)

    # ------------------------------------------------------------------
    # L2 responses
    # ------------------------------------------------------------------
    def on_message(self, msg: Message) -> None:
        epoch = msg.meta.get("epoch", self.rollover.epoch)
        if msg.kind is MsgKind.DATA:
            self._on_data(msg, epoch)
        elif msg.kind is MsgKind.RENEW:
            self._on_renew(msg, epoch)
        elif msg.kind is MsgKind.ACK:
            self._on_ack(msg, epoch)
        elif msg.kind is MsgKind.FLUSH:
            self.rollover_flush()
        else:
            raise self.unhandled("-", msg.kind, f"addr=0x{msg.addr:x}")

    def _on_data(self, msg: Message, epoch: int) -> None:
        block = msg.addr
        ver = self.rollover.clamp(msg.ver, epoch)
        exp = self.rollover.clamp(msg.exp, epoch)
        self._advance_read(ver)  # rule 1: don't observe values from the future
        entry = self.mshr.get(block)

        if msg.meta.get("atomic"):
            # Atomic completion: behaves like an ACK that also returns data;
            # the local copy (if any) is stale past the atomic's version.
            self._advance_write(ver)
            self._complete_store(msg, ver)
            return

        line = self.cache._map.get(block)
        if line is not None:
            line.state = L1State.V
            line.exp = exp
            line.value = msg.value
        if self.sanitizer is not None:
            self._emit(EV.L1_FILL, block, ver=ver, exp=exp,
                       now_after=self._read_now(), view="read",
                       epoch=self.rollover.epoch,
                       installed=line is not None)
        if entry is not None:
            self._deliver_loads(block, entry, msg.value, ver, exp,
                                msg.meta.get("arrival", -1))

    def _deliver_loads(self, block: int, entry, value, ver: int, exp: int,
                       arrival: int) -> None:
        """Complete waiting loads covered by the granted lease; refetch for
        loads whose issue-time read view is already past it."""
        satisfied_any = False
        keep = []
        for record, warp, snapshot in entry.waiting_loads:
            if snapshot <= exp:
                record.read_value = value
                # Witness position: within the lease, at or after both the
                # block's version and the warp's issue-time view.
                record.logical_ts = self._ts_key(max(ver, snapshot))
                record.order_key = arrival
                self.complete(record, warp)
                satisfied_any = True
            else:
                keep.append((record, warp, self._read_now()))
        entry.waiting_loads = keep
        if keep:
            # Refetch for the uncovered loads. The line keeps its (valid)
            # data so sibling warps still within the lease can hit, and so
            # the L2 may answer with a data-less RENEW.
            line = self.cache._map.get(block)
            renewable = line is not None and line.value is not None
            entry.meta["gets_out"] = True
            self.send_to_l2(
                MsgKind.GETS, block, now=self._read_now(),
                exp=exp if renewable else None,
                meta={"expired": renewable, "epoch": self.rollover.epoch,
                      "pc": keep[0][0].prog_index},
            )
        else:
            entry.meta["gets_out"] = False
            self._maybe_release(block)

    def _on_renew(self, msg: Message, epoch: int) -> None:
        block = msg.addr
        self.stats.renews_received += 1
        exp = self.rollover.clamp(msg.exp, epoch)
        if self.sanitizer is not None:
            self._emit(EV.L1_RENEW, block, exp=exp,
                       epoch=self.rollover.epoch)
        line = self.cache._map.get(block)
        if line is None or line.value is None:
            # A RENEW raced a rollover flush and the stale copy is gone:
            # fall back to refetching the whole block.
            entry = self.mshr.get(block)
            if entry is not None and entry.waiting_loads:
                self.send_to_l2(
                    MsgKind.GETS, block, now=self._read_now(), exp=None,
                    meta={"expired": False, "epoch": self.rollover.epoch,
                          "pc": entry.waiting_loads[0][0].prog_index},
                )
                entry.meta["gets_out"] = True
            return
        line.state = L1State.V
        line.exp = exp
        entry = self.mshr.get(block)
        if entry is not None:
            self._deliver_loads(block, entry, line.value, 0, exp,
                                msg.meta.get("arrival", -1))

    def _on_ack(self, msg: Message, epoch: int) -> None:
        ver = self.rollover.clamp(msg.ver, epoch)
        self._advance_write(ver)  # rules 2-3: the writer moves to the write's time
        self._complete_store(msg, ver)

    def _complete_store(self, msg: Message, ver: int) -> None:
        block = msg.addr
        record: MemOpRecord = msg.meta["record"]
        warp: Warp = msg.meta["warp"]
        entry = self.mshr.get(block)
        if entry is None or (record, warp) not in entry.pending_stores:
            raise self.unhandled("II", msg.kind, f"no pending store {record!r}")
        entry.pending_stores.remove((record, warp))
        record.logical_ts = self._ts_key(ver)
        record.order_key = msg.meta.get("arrival", -1)
        if record.kind is MemOpKind.ATOMIC:
            record.read_value = msg.value  # the value the RMW observed
        self.complete(record, warp)
        line = self.cache._map.get(block)
        if self.sanitizer is not None:
            copy_exp = (line.exp if line is not None
                        and line.state is L1State.V else None)
            self._emit(EV.L1_STORE_ACK, block, ver=ver,
                       now_after=self._write_now(), copy_exp=copy_exp,
                       view="write", op=record.seq,
                       epoch=msg.meta.get("epoch", self.rollover.epoch),
                       cur_epoch=self.rollover.epoch)
        if not entry.pending_stores:
            # Final ack: the cached copy (if any) is now logically expired
            # (the write's ver exceeded the block's last lease), so VI -> I.
            if (line is not None and line.state is L1State.V
                    and not entry.waiting_loads):
                self.cache.remove(block)
                self.stats.self_invalidations += 1
                if self.sanitizer is not None:
                    self._emit(EV.L1_SELF_INVAL, block,
                               reason="post_store_vi")
        self._maybe_release(block)

    def _maybe_release(self, block: int) -> None:
        entry = self.mshr.get(block)
        if entry is not None and entry.empty:
            self.mshr.release(block)
            line = self.cache._map.get(block)
            if line is not None:
                line.pinned = False
                if line.state is L1State.IV:
                    # A transient with no requests left can only result from
                    # a rollover flush; drop the placeholder.
                    self.cache.remove(block)

    # ------------------------------------------------------------------
    # Rollover (paper §III-D)
    # ------------------------------------------------------------------
    def rollover_flush(self) -> None:
        """Zero the logical clock and invalidate every entry; blocks with
        outstanding MSHR traffic keep their entries (conceptual II)."""
        self.stats.flushes += 1
        if self.sanitizer is not None:
            self._emit(EV.L1_ROLLOVER, 0, epoch=self.rollover.epoch,
                       now=self.now)
        self.clock.reset()
        for line in list(self.cache.lines()):
            if line.addr in self.mshr:
                line.value = None      # stale data must not satisfy RENEWs
                line.exp = 0
                line.state = L1State.IV
            else:
                self.cache.remove(line.addr)
                self.stats.self_invalidations += 1
