"""RCC-WO: the weakly ordered variant of RCC (paper §III-F).

The core keeps **two** logical times instead of one:

* the **read view**, consulted and updated by loads, and
* the **write view**, consulted and updated by stores.

Loads and stores may then be reordered with respect to each other: a store's
version only advances the write view, so it no longer expires the core's own
read leases on unrelated blocks. A full FENCE sets both views to
``max(read view, write view)`` — nothing more, so fences never wait on
physical time (unlike TC-weak's GWCT wait). Atomics are read-modify-writes
and operate on the join of both views. The consistency model is WO.

The L2 controller is *unchanged* — the paper's point that one RCC
implementation supports both strong and weak consistency (the only
microarchitectural deltas are the warp scheduler signal and this split).
"""

from __future__ import annotations

from repro.common.types import AccessOutcome, MemOpKind
from repro.core.rcc_l1 import RCCL1Controller
from repro.core.timestamps import LogicalClock
from repro.gpu.warp import MemOpRecord, Warp


class RCCWOL1Controller(RCCL1Controller):
    """RCC L1 with split read/write logical views."""

    protocol_name = "RCC-WO"

    def __init__(self, core_id, engine, cfg, noc, amap, rollover):
        super().__init__(core_id, engine, cfg, noc, amap, rollover)
        # ``self.clock`` is the read view; add a separate write view.
        self.write_clock = LogicalClock(bits=cfg.ts.bits)

    # ------------------------------------------------------------------
    # View plumbing (overrides of the SC variant's single-clock accessors)
    # ------------------------------------------------------------------
    def _read_now(self) -> int:
        return self.clock.value

    def _write_now(self) -> int:
        return self.write_clock.value

    def _advance_read(self, ts: int) -> None:
        self.clock.advance_to(ts)

    def _advance_write(self, ts: int) -> None:
        self.write_clock.advance_to(ts)

    # ------------------------------------------------------------------
    def access(self, record: MemOpRecord, warp: Warp) -> AccessOutcome:
        if record.kind is MemOpKind.ATOMIC:
            # RMW: operates on the join of both views.
            joined = max(self.clock.value, self.write_clock.value)
            self.clock.advance_to(joined)
            self.write_clock.advance_to(joined)
        return super().access(record, warp)

    def on_message(self, msg) -> None:
        if msg.meta.get("atomic"):
            # Atomic responses advance both views (handled in _on_data via
            # _advance_read + _advance_write, but join afterwards too).
            super().on_message(msg)
            joined = max(self.clock.value, self.write_clock.value)
            self.clock.advance_to(joined)
            self.write_clock.advance_to(joined)
            return
        super().on_message(msg)

    # ------------------------------------------------------------------
    def on_fence_retire(self, warp: Warp) -> None:
        """Full fence: join the two views (paper §III-F) — instantaneous."""
        joined = max(self.clock.value, self.write_clock.value)
        self.clock.advance_to(joined)
        self.write_clock.advance_to(joined)

    def _livelock_tick(self) -> None:
        if self.core is not None and self.core.finished:
            return
        self.clock.tick(1)
        self.write_clock.tick(1)
        self.engine.schedule_in(self._livelock_period, self._livelock_tick)

    def rollover_flush(self) -> None:
        super().rollover_flush()
        self.write_clock.reset()
