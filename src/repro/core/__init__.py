"""Relativistic Cache Coherence (RCC) — the paper's contribution.

RCC keeps coherence in *logical* time (Lamport): each core owns a logical
clock ``now``; the L2 tracks a per-block write version ``ver`` and read-lease
expiration ``exp``. The three ordering rules of paper §III-A:

1. a core reading block B advances ``now`` to ``B.ver`` if ``B.ver > now``;
2. a core writing B advances ``B.ver`` to ``now`` (and vice versa, whichever
   is larger);
3. a write to B also advances both the writer's ``now`` and the new ``B.ver``
   past the last outstanding lease ``exp`` for B,

together yield a sequentially consistent global order while letting stores
acquire "write permission" instantly — no invalidations, no lease waits.
"""

from repro.core.timestamps import LogicalClock, timestamp_guard_band
from repro.core.lease import LeasePredictor
from repro.core.lease_policy import (
    LeasePolicy,
    available_lease_policies,
    make_lease_policy,
    register_lease_policy,
    unregister_lease_policy,
)
from repro.core.rcc_l1 import RCCL1Controller
from repro.core.rcc_l2 import RCCL2Controller
from repro.core.rcc_wo import RCCWOL1Controller
from repro.core.rollover import RolloverManager

__all__ = [
    "LeasePolicy",
    "LeasePredictor",
    "LogicalClock",
    "available_lease_policies",
    "make_lease_policy",
    "register_lease_policy",
    "unregister_lease_policy",
    "RCCL1Controller",
    "RCCL2Controller",
    "RCCWOL1Controller",
    "RolloverManager",
    "timestamp_guard_band",
]
