"""Pluggable lease policies for RCC's logical-timestamp leases.

The L2 bank decides, at every read grant, how far past ``max(ver, M.now)``
the block's lease should reach. The original paper fixes that decision in
one predictor (§III-E: max on fill, min on write, double on renew); Tardis
2.0 shows lease *prediction* and renewal tuning materially change
timestamp-coherence behaviour. This module makes the decision a strategy
object so policies × protocols × workloads sweep through the executor,
fuzzer, and sanitizer unchanged.

A policy consumes an **observation stream** — the per-block events the L2
already sees — and answers one question:

======================  ==================================================
hook                    observation / decision
======================  ==================================================
``lease_for``           a read of ``line`` by a requester at logical
                        ``now`` from instruction slot ``pc``: return the
                        lease length to grant (clamped to
                        ``[lease_min, lease_max]``)
``on_write``            the block was written (version jumped past every
                        lease)
``on_renew``            an expired copy turned out to be still current and
                        was extended data-lessly (the profitable case)
``on_expired_miss``     an expired copy had been *written* since its lease
                        was granted, so the lease outlived the data (the
                        mispredicted case; renewal was impossible)
======================  ==================================================

Policies must be **deterministic** functions of that stream (no wall
clock, no RNG): the sweep cache keys results by configuration only, and
the differential battery replays identical streams expecting identical
decisions. Any decision must stay within ``[lease_min, lease_max]`` —
``lease_max`` feeds the rollover guard band (§III-D) and the sanitizer's
policy-ceiling invariant, so exceeding it is a correctness bug, not a
tuning choice.

Shipped policies:

* ``fixed`` — the default, byte-identical to the historical
  :class:`~repro.core.lease.LeasePredictor` (including its
  ``predictor_enabled`` toggle), pinned by the golden-payload battery;
* ``adaptive`` — per-block lease sized from the observed logical re-read
  distance, tracked as a decaying integer average in the L2 line's meta
  (lost on eviction, exactly like the paper's per-line prediction);
* ``pc-pred`` — a PC-indexed renew predictor generalizing the paper's
  Fig. 7 predictor: the prediction lives with the requesting *instruction*
  rather than the block, doubling on successful renews and halving when a
  granted lease outlives the data.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.config import TimestampConfig
from repro.errors import ConfigError
from repro.mem.cache_array import CacheLine

#: Meta key of the fixed policy's per-line prediction (the historical
#: ``LeasePredictor`` key, kept verbatim for byte-identical behaviour).
_PRED_KEY = "lease_pred"

#: Meta keys of the adaptive policy's per-line observation state.
_ADAPT_LAST = "lease_adapt_last"    # logical time of the last read grant
_ADAPT_DIST = "lease_adapt_dist"    # decayed average re-read distance


class LeasePolicy:
    """Base strategy: decides the lease granted with each L2 read.

    Subclasses override the hooks; the base provides clamping and the
    shared config. Policy state may live per-policy-instance (one per L2
    bank, e.g. a PC table) or per-line (``line.meta``, lost on eviction).
    """

    name = "base"

    def __init__(self, cfg: TimestampConfig):
        self.cfg = cfg

    # -- decision ------------------------------------------------------
    def lease_for(self, line: CacheLine, now: int = 0,
                  pc: int = None) -> int:
        """Lease to grant for a read of ``line`` by a requester whose
        logical clock reads ``now``, issued from instruction slot ``pc``
        (``None`` when the requester is anonymous, e.g. a DRAM fill)."""
        raise NotImplementedError

    # -- observations --------------------------------------------------
    def on_write(self, line: CacheLine) -> None:
        """The block was written."""

    def on_renew(self, line: CacheLine, pc: int = None) -> None:
        """An expired copy was successfully renewed (still current)."""

    def on_expired_miss(self, line: CacheLine, pc: int = None) -> None:
        """An expired copy could not be renewed: the block was written
        inside the granted lease window, so the lease was too long."""

    # -- inspection ----------------------------------------------------
    def prediction(self, line: CacheLine) -> int:
        """Current per-line prediction (tests/inspection)."""
        return self.cfg.lease_default

    # -- helpers -------------------------------------------------------
    def clamp(self, lease: int) -> int:
        """Force a decision into the configured ``[min, max]`` band."""
        if lease < self.cfg.lease_min:
            return self.cfg.lease_min
        if lease > self.cfg.lease_max:
            return self.cfg.lease_max
        return lease


class FixedLeasePolicy(LeasePolicy):
    """Today's behaviour, verbatim (paper §III-E).

    With ``predictor_enabled``: start every block at ``lease_max``, drop
    to ``lease_min`` on a write, double on every successful renew, store
    the prediction with the L2 line. With the predictor off: always
    ``lease_default``. This class must stay byte-identical to the
    historical ``LeasePredictor`` — the golden-payload regression battery
    (``tests/test_lease_golden.py``) pins it against pre-refactor payload
    hashes.
    """

    name = "fixed"

    def __init__(self, cfg: TimestampConfig):
        super().__init__(cfg)
        self.enabled = cfg.predictor_enabled

    def lease_for(self, line: CacheLine, now: int = 0,
                  pc: int = None) -> int:
        if not self.enabled:
            return self.cfg.lease_default
        return line.meta.get(_PRED_KEY, self.cfg.lease_max)

    def on_write(self, line: CacheLine) -> None:
        if self.enabled:
            line.meta[_PRED_KEY] = self.cfg.lease_min

    def on_renew(self, line: CacheLine, pc: int = None) -> None:
        if not self.enabled:
            return
        current = line.meta.get(_PRED_KEY, self.cfg.lease_max)
        line.meta[_PRED_KEY] = min(current * 2, self.cfg.lease_max)

    def prediction(self, line: CacheLine) -> int:
        if not self.enabled:
            return self.cfg.lease_default
        return line.meta.get(_PRED_KEY, self.cfg.lease_max)


class AdaptiveLeasePolicy(LeasePolicy):
    """Per-block lease sized from the observed logical re-read distance.

    Each read grant records the requester's logical position
    ``max(now, ver)``; the gap to the previous grant is folded into a
    decaying integer average (3/4 old + 1/4 new — pure integer
    arithmetic, so decisions are bit-stable across hosts). The granted
    lease is twice the average distance: long enough that a steady reader
    renews rarely, short enough that a block whose readers left does not
    pin logical time. Writes halve the average (shared-mutable data wants
    short leases); state lives in ``line.meta`` and is lost on L2
    eviction, restarting streaming blocks at ``lease_default`` exactly
    like the paper's per-line prediction.
    """

    name = "adaptive"

    def lease_for(self, line: CacheLine, now: int = 0,
                  pc: int = None) -> int:
        meta = line.meta
        point = now if now > line.ver else line.ver
        last = meta.get(_ADAPT_LAST)
        if last is not None:
            dist = point - last
            if dist < 0:
                dist = 0
            avg = meta.get(_ADAPT_DIST)
            meta[_ADAPT_DIST] = (dist if avg is None
                                 else (3 * avg + dist) // 4)
        meta[_ADAPT_LAST] = point
        return self.clamp(self.prediction(line))

    def on_write(self, line: CacheLine) -> None:
        avg = line.meta.get(_ADAPT_DIST)
        if avg is not None:
            line.meta[_ADAPT_DIST] = avg // 2

    def on_expired_miss(self, line: CacheLine, pc: int = None) -> None:
        # The lease outlived the data: shrink toward the minimum faster
        # than the write-halving alone would.
        avg = line.meta.get(_ADAPT_DIST)
        if avg is not None:
            line.meta[_ADAPT_DIST] = avg // 2

    def prediction(self, line: CacheLine) -> int:
        avg = line.meta.get(_ADAPT_DIST)
        if avg is None:
            return self.clamp(self.cfg.lease_default)
        return self.clamp(2 * avg)


class PCPredLeasePolicy(LeasePolicy):
    """PC-indexed renew predictor (the paper's Fig. 7 idea, generalized).

    The paper predicts per *block*; this policy predicts per requesting
    *instruction slot*: the same load in a kernel tends to exhibit the
    same re-use behaviour across every block it touches, so the table
    warms up once per instruction instead of once per block and survives
    L2 evictions. Each PC starts at ``lease_max`` (optimistic, like the
    paper's fill rule), doubles on a successful renew observed for that
    PC, and halves when a lease granted to that PC outlives the data (an
    expired copy that could not be renewed). Requests with no PC (DRAM
    fills merging anonymous readers) fall back to ``lease_default``.

    The table lives per L2 bank — banks see disjoint block sets, and a
    per-bank table keeps the policy deterministic under any bank
    interleaving.
    """

    name = "pc-pred"

    def __init__(self, cfg: TimestampConfig):
        super().__init__(cfg)
        self.table: Dict[int, int] = {}

    def lease_for(self, line: CacheLine, now: int = 0,
                  pc: int = None) -> int:
        if pc is None:
            return self.clamp(self.cfg.lease_default)
        return self.clamp(self.table.get(pc, self.cfg.lease_max))

    def on_renew(self, line: CacheLine, pc: int = None) -> None:
        if pc is None:
            return
        current = self.table.get(pc, self.cfg.lease_max)
        self.table[pc] = min(current * 2, self.cfg.lease_max)

    def on_expired_miss(self, line: CacheLine, pc: int = None) -> None:
        if pc is None:
            return
        current = self.table.get(pc, self.cfg.lease_max)
        self.table[pc] = max(current // 2, self.cfg.lease_min)

    def prediction(self, line: CacheLine) -> int:
        # Per-line inspection has no PC; report the optimistic default.
        return self.clamp(self.cfg.lease_max)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

LEASE_POLICIES: Dict[str, Type[LeasePolicy]] = {
    FixedLeasePolicy.name: FixedLeasePolicy,
    AdaptiveLeasePolicy.name: AdaptiveLeasePolicy,
    PCPredLeasePolicy.name: PCPredLeasePolicy,
}


def available_lease_policies() -> List[str]:
    """All registered policy names, in a stable order."""
    return sorted(LEASE_POLICIES)


def register_lease_policy(cls: Type[LeasePolicy],
                          replace: bool = False) -> None:
    """Register a custom policy class under ``cls.name``.

    Used by tests to inject probe policies; every registered policy is
    automatically swept by the property battery and the cross-policy
    differential fuzz test.
    """
    if cls.name in LEASE_POLICIES and not replace:
        raise ConfigError(f"lease policy {cls.name!r} is already registered")
    LEASE_POLICIES[cls.name] = cls


def unregister_lease_policy(name: str) -> None:
    """Remove a policy added by :func:`register_lease_policy`."""
    if name in ("fixed", "adaptive", "pc-pred"):
        raise ConfigError(f"refusing to unregister built-in {name!r}")
    LEASE_POLICIES.pop(name, None)


def make_lease_policy(cfg: TimestampConfig) -> LeasePolicy:
    """Instantiate the policy ``cfg.lease_policy`` names."""
    cls = LEASE_POLICIES.get(cfg.lease_policy)
    if cls is None:
        raise ConfigError(
            f"unknown lease policy {cfg.lease_policy!r}; choose from "
            f"{available_lease_policies()}")
    return cls(cfg)
