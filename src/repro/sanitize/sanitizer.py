"""The sanitizer core: event intake, invariant dispatch, trace dump.

One :class:`Sanitizer` is attached per simulation (``GPUSimulator(...,
sanitize=True)``). Controllers emit through the ``_emit`` helper on their
base class, which forwards here; each event is appended to the trace ring
and run through the protocol's invariant suites. The first violation dumps
the ring (when ``trace_out`` is set) and raises
:class:`~repro.errors.InvariantViolation` — simulation state at that moment
is the state that broke the invariant, frozen for inspection.

When the sanitizer is *not* attached, ``ctrl.sanitizer`` is ``None`` and
every emission site is a single attribute test — the disabled path does no
allocation, no formatting, nothing observable (byte-identical reports).
"""

from __future__ import annotations

import os
from typing import Any, Optional

from repro.errors import InvariantViolation
from repro.sanitize.events import CoherenceEvent, TraceRing
from repro.sanitize.invariants import suites_for

#: Environment toggles honoured by worker cells (exec/cells.py), so the
#: sweep executor's forked workers inherit the runner's --sanitize flag.
ENV_SANITIZE = "RCC_SANITIZE"
ENV_TRACE_OUT = "RCC_TRACE_OUT"

_TRUTHY = {"1", "true", "yes", "on"}


def sanitize_enabled_from_env(environ=None) -> bool:
    """Is the ``RCC_SANITIZE`` toggle set to a truthy value?"""
    env = os.environ if environ is None else environ
    return env.get(ENV_SANITIZE, "").strip().lower() in _TRUTHY


def trace_out_from_env(environ=None) -> Optional[str]:
    env = os.environ if environ is None else environ
    return env.get(ENV_TRACE_OUT) or None


class Sanitizer:
    """Checks the event stream of one simulation against its protocol's
    invariant suites."""

    def __init__(self, protocol: str, cfg, trace_out: Optional[str] = None,
                 ring_depth: int = 256):
        self.protocol = protocol
        self.trace_out = trace_out
        self.ring = TraceRing(ring_depth)
        self.suites = suites_for(protocol, ts_bits=cfg.ts.bits,
                                 lease_max=cfg.ts.lease_max)
        self.events_seen = 0
        self._seq = 0

    def emit(self, kind: str, unit: str, unit_id: int, cycle: int,
             addr: int, **fields: Any) -> None:
        """Record one protocol step and check every suite against it."""
        self._seq += 1
        ev = CoherenceEvent(self._seq, cycle, kind, unit, unit_id, addr,
                            fields)
        self.ring.append(ev)
        self.events_seen += 1
        for suite in self.suites:
            violation = suite.check(ev)
            if violation is not None:
                self._fail(violation, ev)

    def _fail(self, violation, ev: CoherenceEvent) -> None:
        trace_path = None
        if self.trace_out:
            trace_path = self.ring.dump_jsonl(self.trace_out)
        raise InvariantViolation(
            invariant=violation.invariant,
            event=ev,
            detail=violation.detail,
            citation=violation.citation,
            trace_path=trace_path,
        )

    def diagnostics(self) -> str:
        """Recent-event tail for deadlock reports (engine/simulator hook)."""
        return (f"sanitizer[{self.protocol}] saw {self.events_seen} events; "
                f"most recent:\n{self.ring.tail_text()}")
