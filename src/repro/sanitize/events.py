"""Structured coherence-event stream (sanitizer tentpole).

Every L1/L2 state transition of interest emits one :class:`CoherenceEvent`
into the active :class:`~repro.sanitize.sanitizer.Sanitizer`. An event is a
flat, JSON-able record — who (unit + id), when (cycle + global sequence
number), what (kind + block address), plus the protocol state the invariant
suites need (clocks, versions, lease expiries, sharer counts, ...).

Event kinds are dotted strings (``l1.load.hit``, ``l2.write.apply``); the
:class:`EventKind` namespace enumerates them so suites and tests never match
against typos. Kinds are shared across protocols — an RCC ``l2.write.apply``
carries ``ver``/``prev_exp`` while a MESI one carries ``completed_at``; each
suite only reads the fields its protocol emits.

The :class:`TraceRing` keeps the last N events so a violation (or a deadlock
diagnostic) arrives with the exact protocol steps that led up to it, and can
dump them as JSON-lines for offline inspection (``--trace-out``).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional


class EventKind:
    """Namespace of event-kind strings (not an enum: kinds stay plain
    strings so events serialize to JSON without adapters)."""

    # L1-side transitions.
    L1_LOAD_HIT = "l1.load.hit"
    L1_LOAD_MISS = "l1.load.miss"
    L1_STORE_ISSUE = "l1.store.issue"
    L1_FILL = "l1.fill"
    L1_RENEW = "l1.renew"
    L1_STORE_ACK = "l1.store.ack"
    L1_SELF_INVAL = "l1.self_invalidate"
    L1_INV = "l1.inv"
    L1_EVICT = "l1.evict"
    L1_ROLLOVER = "l1.rollover_flush"

    # L2-side transitions.
    L2_READ_GRANT = "l2.read.grant"
    L2_RENEW_GRANT = "l2.renew.grant"
    L2_WRITE_APPLY = "l2.write.apply"
    L2_WRITE_MERGE = "l2.write.merge"
    L2_WRITE_BUFFER = "l2.write.buffer"
    L2_ATOMIC_APPLY = "l2.atomic.apply"
    L2_FILL = "l2.fill"
    L2_EVICT = "l2.evict"
    L2_ROLLOVER = "l2.rollover_reset"


class CoherenceEvent:
    """One observed protocol step."""

    __slots__ = ("seq", "cycle", "kind", "unit", "unit_id", "addr", "fields")

    def __init__(self, seq: int, cycle: int, kind: str, unit: str,
                 unit_id: int, addr: int, fields: Dict[str, Any]):
        self.seq = seq          # global emission order (1-based)
        self.cycle = cycle      # engine cycle at emission
        self.kind = kind        # one of the EventKind strings
        self.unit = unit        # "L1" or "L2"
        self.unit_id = unit_id  # core id (L1) or bank id (L2)
        self.addr = addr        # block base address
        self.fields = fields    # protocol-specific payload

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)

    def to_dict(self) -> Dict[str, Any]:
        d = {"seq": self.seq, "cycle": self.cycle, "kind": self.kind,
             "unit": self.unit, "unit_id": self.unit_id, "addr": self.addr}
        d.update(self.fields)
        return d

    def __repr__(self) -> str:
        where = f"{self.unit}[{self.unit_id}]"
        extra = " ".join(f"{k}={v}" for k, v in sorted(self.fields.items()))
        return (f"<{self.kind} @{self.cycle} #{self.seq} {where} "
                f"addr=0x{self.addr:x}{' ' + extra if extra else ''}>")


class TraceRing:
    """Fixed-depth ring buffer of the most recent events."""

    def __init__(self, depth: int = 256):
        if depth <= 0:
            raise ValueError(f"trace ring depth must be positive: {depth}")
        self.depth = depth
        self._buf: List[Optional[CoherenceEvent]] = [None] * depth
        self._next = 0
        self.total = 0

    def append(self, ev: CoherenceEvent) -> None:
        self._buf[self._next] = ev
        self._next = (self._next + 1) % self.depth
        self.total += 1

    def events(self) -> List[CoherenceEvent]:
        """Buffered events, oldest first."""
        if self.total < self.depth:
            out = self._buf[:self._next]
        else:
            out = self._buf[self._next:] + self._buf[:self._next]
        return [ev for ev in out if ev is not None]

    def dump_jsonl(self, path: str) -> str:
        """Write the buffered events as JSON lines; returns the path
        actually written (suffixed if ``path`` already exists, so dumps
        from multiple violations or worker processes never clobber)."""
        target = path
        suffix = 0
        while True:
            try:
                with open(target, "x") as f:
                    for ev in self.events():
                        f.write(json.dumps(ev.to_dict(), default=str) + "\n")
                return target
            except FileExistsError:
                suffix += 1
                target = f"{path}.{suffix}"

    def tail_text(self, n: int = 8) -> str:
        """The last ``n`` events as readable lines (deadlock diagnostics)."""
        evs = self.events()[-n:]
        if not evs:
            return "(no coherence events recorded)"
        return "\n".join(repr(ev) for ev in evs)
