"""Per-protocol invariant suites checked on every coherence event.

Each suite is a small state machine fed the event stream of one simulation;
``check(event)`` returns ``None`` (fine) or a :class:`Violation` naming the
broken invariant, a human-readable detail, and the paper passage the
invariant encodes. Suites keep *shadow* state (per-core clocks, per-block
versions, shadow sharer sets) rebuilt purely from events, so a violation
always means the controllers disagree with the protocol's own rules — not
with some parallel implementation of them.

Suites and their invariants:

* :class:`RCCInvariants` — RCC / RCC-WO (paper §III-B..E): reads stay
  within their lease (``ver <= now <= exp``), granted leases satisfy
  ``ver <= exp`` and cover the requester, write versions strictly exceed
  every outstanding lease and never regress, per-core logical clocks are
  monotone within an epoch, the VI optimization only drops copies that the
  store's version actually expired, L2 evictions fold ``max(exp+1, ver)``
  into ``mnow``, and every timestamp fits the configured hardware width.
* :class:`TCInvariants` — TC-strong / TC-weak (Singh et al., HPCA 2013):
  physical-lease hits satisfy ``now <= exp``; TCS buffered stores serialize
  strictly after every lease (and new read leases never reach past the
  earliest pending store's serialization point); TCW per-warp GWCTs are
  monotone and cover the write's application time.
* :class:`MESIInvariants` — MESI / SC-IDEAL: directory sharer tracking
  covers every live L1 copy (an L1 hit from a core the directory is not
  tracking means a missable invalidation), and a write applies only when
  the shadow copy set is empty (single-writer / write atomicity).
* :class:`CrossProtocolInvariants` — every protocol: per-block write
  serialization is a total order — physical arrival keys strictly increase
  and serialization timestamps never decrease, so no two writes share a
  logical instant (single-writer-per-logical-instant).
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Set, Tuple

from repro.sanitize.events import CoherenceEvent, EventKind as EV


class Violation(NamedTuple):
    """One broken invariant, ready to wrap in an exception."""

    invariant: str   # dotted invariant name, e.g. "rcc.read.within_lease"
    detail: str      # human-readable explanation with the observed values
    citation: str    # paper passage the invariant encodes


class InvariantSuite:
    """Base: a stateful checker fed one event at a time."""

    name = "base"

    def check(self, ev: CoherenceEvent) -> Optional[Violation]:
        raise NotImplementedError


# ----------------------------------------------------------------------
# RCC (logical timestamps)
# ----------------------------------------------------------------------

class RCCInvariants(InvariantSuite):
    """RCC / RCC-WO lease, clock, and rollover invariants."""

    name = "rcc"

    def __init__(self, ts_bits: int, lease_max: Optional[int] = None):
        self.ts_limit = 1 << ts_bits
        #: Configured lease ceiling; ``None`` (e.g. a directly constructed
        #: suite) skips the policy-ceiling check on grants.
        self.lease_max = lease_max
        #: (core, view) -> (epoch, last observed logical now)
        self._clock: Dict[Tuple[int, str], Tuple[int, int]] = {}
        #: block -> (epoch, last observed version at the L2)
        self._ver: Dict[int, Tuple[int, int]] = {}
        #: (core, block) -> {store op seq: (epoch, exp)} of the *pre-store*
        #: copy: a valid copy that existed when that store issued (the VI
        #: state). Keyed per store op — several stores to one block can be
        #: outstanding at once, and an ack for a store that issued with NO
        #: copy (e.g. one merged at the L2 before any lease existed) must
        #: not be judged against a copy a *later* store snapshotted. A
        #: fill replaces the copy with the L2's post-write value, so it
        #: clears the whole entry — the VI legality rule only constrains
        #: acks against copies that predate their own store.
        self._vi: Dict[Tuple[int, int], Dict[int, Tuple[int, int]]] = {}

    # -- helpers -------------------------------------------------------
    def _bounds(self, ev: CoherenceEvent) -> Optional[Violation]:
        for key in ("now", "exp", "ver", "now_after", "mnow", "mnow_after",
                    "prev_ver", "prev_exp", "m_now", "lastwr", "lastrd"):
            val = ev.get(key)
            if val is not None and val >= self.ts_limit:
                return Violation(
                    "rcc.rollover.bounds",
                    f"{key}={val} exceeds the {self.ts_limit - 1} hardware "
                    f"timestamp limit in {ev!r}",
                    "§III-D: rollover must fire before any timestamp "
                    "computation overflows the hardware width")
        return None

    def _clock_monotone(self, core: int, view: str, epoch: int, now: int,
                        ev: CoherenceEvent) -> Optional[Violation]:
        prev = self._clock.get((core, view))
        if prev is not None and prev[0] == epoch and now < prev[1]:
            return Violation(
                "rcc.clock.monotone",
                f"core {core} {view} view went backwards "
                f"{prev[1]} -> {now} in epoch {epoch} at {ev!r}",
                "§III-B: a core's logical now only advances (rules 1-3)")
        self._clock[(core, view)] = (epoch, now)
        return None

    def _ver_monotone(self, addr: int, epoch: int, ver: int,
                      ev: CoherenceEvent) -> Optional[Violation]:
        prev = self._ver.get(addr)
        if prev is not None and (epoch, ver) < prev:
            return Violation(
                "rcc.block.ver_monotone",
                f"block 0x{addr:x} version regressed {prev} -> "
                f"({epoch}, {ver}) at {ev!r}",
                "§III-B rule 3: a block's version never decreases")
        self._ver[addr] = (epoch, ver)
        return None

    # -- dispatch ------------------------------------------------------
    def check(self, ev: CoherenceEvent) -> Optional[Violation]:
        v = self._bounds(ev)
        if v is not None:
            return v
        kind = ev.kind
        if kind == EV.L1_LOAD_HIT:
            return self._on_hit(ev)
        if kind == EV.L1_FILL:
            return self._on_fill(ev)
        if kind == EV.L1_STORE_ISSUE:
            copy_exp = ev.get("copy_exp")
            if copy_exp is not None:
                self._vi.setdefault((ev.unit_id, ev.addr), {})[
                    ev.get("op")] = (ev.get("epoch", 0), copy_exp)
            return None
        if kind == EV.L1_RENEW:
            # A RENEW extends the (pre-store) copy's lease in place; every
            # outstanding store snapshotted that same physical copy.
            entry = self._vi.get((ev.unit_id, ev.addr))
            if entry:
                epoch, exp = ev.get("epoch", 0), ev.get("exp")
                for op in entry:
                    entry[op] = (epoch, exp)
            return None
        if kind in (EV.L1_SELF_INVAL, EV.L1_EVICT):
            self._vi.pop((ev.unit_id, ev.addr), None)
            return None
        if kind == EV.L1_ROLLOVER:
            for key in [k for k in self._vi if k[0] == ev.unit_id]:
                del self._vi[key]
            return None
        if kind == EV.L1_STORE_ACK:
            return self._on_store_ack(ev)
        if kind in (EV.L2_READ_GRANT, EV.L2_RENEW_GRANT):
            return self._on_grant(ev)
        if kind in (EV.L2_WRITE_APPLY, EV.L2_ATOMIC_APPLY):
            return self._on_write_apply(ev)
        if kind == EV.L2_WRITE_MERGE:
            return self._on_write_merge(ev)
        if kind == EV.L2_FILL:
            return self._on_l2_fill(ev)
        if kind == EV.L2_EVICT:
            return self._on_l2_evict(ev)
        return None

    # -- L1 ------------------------------------------------------------
    def _on_hit(self, ev: CoherenceEvent) -> Optional[Violation]:
        now, exp = ev.get("now"), ev.get("exp")
        if now > exp:
            return Violation(
                "rcc.read.within_lease",
                f"L1[{ev.unit_id}] load hit on block 0x{ev.addr:x} with "
                f"now={now} past the lease exp={exp}",
                "§III-B rule 1 / Fig. 5: a V copy is readable only while "
                "ver <= now <= exp; past exp it must self-invalidate")
        return self._clock_monotone(ev.unit_id, ev.get("view", "read"),
                                    ev.get("epoch", 0), now, ev)

    def _on_fill(self, ev: CoherenceEvent) -> Optional[Violation]:
        # Any fill carries the L2's current value (merged writes included),
        # so the copy it installs is no longer a pre-store copy.
        self._vi.pop((ev.unit_id, ev.addr), None)
        ver, exp = ev.get("ver"), ev.get("exp")
        if ver > exp:
            return Violation(
                "rcc.grant.ver_le_exp",
                f"fill for block 0x{ev.addr:x} grants ver={ver} > exp={exp}",
                "§III-C: a granted lease always satisfies ver <= exp")
        now_after = ev.get("now_after")
        if now_after < ver:
            return Violation(
                "rcc.clock.covers_version",
                f"L1[{ev.unit_id}] read view {now_after} below the "
                f"observed version {ver} after fill of 0x{ev.addr:x}",
                "§III-B rule 1: observing a value advances the reader to "
                "at least its version")
        return self._clock_monotone(ev.unit_id, ev.get("view", "read"),
                                    ev.get("epoch", 0), now_after, ev)

    def _on_store_ack(self, ev: CoherenceEvent) -> Optional[Violation]:
        ver = ev.get("ver")
        entry = self._vi.get((ev.unit_id, ev.addr))
        vi = entry.pop(ev.get("op"), None) if entry else None
        # Only meaningful when every epoch involved is current: a
        # stale-epoch ack clamps to ver=0 and conservatively drops the
        # (valid) new copy.
        cur = ev.get("cur_epoch")
        if (vi is not None and ev.get("epoch") == cur and vi[0] == cur
                and ver <= vi[1]):
            return Violation(
                "rcc.vi.store_past_lease",
                f"L1[{ev.unit_id}] store ack ver={ver} does not exceed the "
                f"pre-store copy's lease exp={vi[1]} on 0x{ev.addr:x}",
                "§III-B rules 2-3: the write's version exceeds every lease, "
                "which is what makes the VI pre-store copy legal to read "
                "before (and only before) the ack")
        now_after = ev.get("now_after")
        if now_after < ver:
            return Violation(
                "rcc.clock.covers_version",
                f"L1[{ev.unit_id}] write view {now_after} below the acked "
                f"version {ver} on 0x{ev.addr:x}",
                "§III-B rules 2-3: the writer moves to the write's time")
        return self._clock_monotone(ev.unit_id, ev.get("view", "write"),
                                    ev.get("cur_epoch", ev.get("epoch", 0)),
                                    now_after, ev)

    # -- L2 ------------------------------------------------------------
    def _on_grant(self, ev: CoherenceEvent) -> Optional[Violation]:
        ver, exp, m_now = ev.get("ver", 0), ev.get("exp"), ev.get("m_now")
        if ver > exp:
            return Violation(
                "rcc.grant.ver_le_exp",
                f"L2[{ev.unit_id}] grant on 0x{ev.addr:x} with ver={ver} > "
                f"exp={exp}",
                "§III-C: a granted lease always satisfies ver <= exp")
        if exp < m_now:
            return Violation(
                "rcc.grant.covers_reader",
                f"L2[{ev.unit_id}] grant exp={exp} on 0x{ev.addr:x} does "
                f"not cover the requester's now={m_now}",
                "§III-C: the extended lease covers the reader "
                "(exp >= max(ver, M.now) + lease)")
        prev_exp = ev.get("prev_exp")
        if self.lease_max is not None and prev_exp is not None:
            # Any *extension* this grant performed is bounded by the
            # configured lease ceiling. The comparison is against
            # max(prev_exp, ...) — not the fresh window alone — because a
            # previous grant to a higher-clock requester can legally leave
            # exp beyond a later low-clock requester's own window.
            ceiling = max(prev_exp, max(ver, m_now) + self.lease_max)
            if exp > ceiling:
                return Violation(
                    "rcc.grant.policy_ceiling",
                    f"L2[{ev.unit_id}] grant on 0x{ev.addr:x} stretched "
                    f"exp to {exp}, past prev_exp={prev_exp} and "
                    f"max(ver={ver}, m_now={m_now}) + lease_max="
                    f"{self.lease_max}",
                    "§III-D/E: every lease decision stays within "
                    "lease_max — the rollover guard band is sized from "
                    "it, so a longer grant can overflow the timestamp "
                    "width between rollover checks")
        return None

    def _on_write_apply(self, ev: CoherenceEvent) -> Optional[Violation]:
        ver = ev.get("ver")
        prev_ver, prev_exp = ev.get("prev_ver"), ev.get("prev_exp")
        m_now = ev.get("m_now")
        if prev_exp is not None and ver <= prev_exp:
            return Violation(
                "rcc.write.past_lease",
                f"L2[{ev.unit_id}] write on 0x{ev.addr:x} applied at "
                f"ver={ver} under an outstanding lease exp={prev_exp}",
                "§III-B rule 3: ver = max(M.now, D.ver, D.exp + 1) — the "
                "write serializes strictly after every granted lease")
        if prev_ver is not None and ver < prev_ver:
            return Violation(
                "rcc.write.past_lease",
                f"L2[{ev.unit_id}] write on 0x{ev.addr:x} regressed the "
                f"version {prev_ver} -> {ver}",
                "§III-B rule 3: versions never decrease")
        if m_now is not None and ver < m_now:
            return Violation(
                "rcc.write.past_lease",
                f"L2[{ev.unit_id}] write on 0x{ev.addr:x} acked at "
                f"ver={ver} before the writer's now={m_now}",
                "§III-B rule 2: the write happens at or after the "
                "writer's logical now")
        return self._ver_monotone(ev.addr, ev.get("epoch", 0), ver, ev)

    def _on_write_merge(self, ev: CoherenceEvent) -> Optional[Violation]:
        ver, lastwr, mnow = ev.get("ver"), ev.get("lastwr"), ev.get("mnow")
        if ver < lastwr or ver < mnow:
            return Violation(
                "rcc.write.merge_monotone",
                f"L2[{ev.unit_id}] merged-write ack ver={ver} on "
                f"0x{ev.addr:x} below lastwr={lastwr} / mnow={mnow}",
                "§III-D: early acks carry ver = max(lastwr, mnow), past "
                "every merged writer and the partition's fold of evicted "
                "leases")
        return self._ver_monotone(ev.addr, ev.get("epoch", 0), ver, ev)

    def _on_l2_fill(self, ev: CoherenceEvent) -> Optional[Violation]:
        ver, exp, mnow = ev.get("ver"), ev.get("exp"), ev.get("mnow")
        if ver < mnow:
            return Violation(
                "rcc.fill.covers_mnow",
                f"L2[{ev.unit_id}] fill of 0x{ev.addr:x} set ver={ver} "
                f"below mnow={mnow}",
                "§III-D: a reloaded block's version starts at mnow so it "
                "cannot be read before its last (evicted) write")
        if ev.get("has_read"):
            lastrd = ev.get("lastrd")
            if exp < lastrd or ver > exp:
                return Violation(
                    "rcc.fill.covers_readers",
                    f"L2[{ev.unit_id}] fill of 0x{ev.addr:x} grants "
                    f"exp={exp} (ver={ver}) not covering lastrd={lastrd}",
                    "§III-D: the fill's lease covers every reader merged "
                    "while the block was in flight")
        return self._ver_monotone(ev.addr, ev.get("epoch", 0), ver, ev)

    def _on_l2_evict(self, ev: CoherenceEvent) -> Optional[Violation]:
        ver, exp = ev.get("ver"), ev.get("exp")
        mnow_after = ev.get("mnow_after")
        if mnow_after < exp + 1 or mnow_after < ver:
            return Violation(
                "rcc.evict.folds_lease",
                f"L2[{ev.unit_id}] evicted 0x{ev.addr:x} (ver={ver}, "
                f"exp={exp}) but mnow only reached {mnow_after}",
                "§III-D: eviction folds max(exp + 1, ver) into mnow so a "
                "reloaded block can neither be read before its last write "
                "nor written under a surviving lease")
        return None


# ----------------------------------------------------------------------
# TC-strong / TC-weak (physical timestamps)
# ----------------------------------------------------------------------

class TCInvariants(InvariantSuite):
    """Singh et al. lease-expiry and GWCT invariants."""

    name = "tc"

    def __init__(self, strong: bool):
        self.strong = strong
        #: block -> ack times of buffered (not yet applied) TCS stores.
        self._pending: Dict[int, List[int]] = {}
        #: (core, warp) -> last observed accumulated GWCT (TCW).
        self._gwct: Dict[Tuple[int, int], int] = {}

    def check(self, ev: CoherenceEvent) -> Optional[Violation]:
        kind = ev.kind
        if kind == EV.L1_LOAD_HIT:
            if ev.cycle > ev.get("exp"):
                return Violation(
                    "tc.read.within_lease",
                    f"L1[{ev.unit_id}] hit on 0x{ev.addr:x} at cycle "
                    f"{ev.cycle} past the physical lease exp={ev.get('exp')}",
                    "Singh et al. §III: a TC copy self-invalidates once the "
                    "global clock passes its lease")
            return None
        if kind == EV.L2_WRITE_BUFFER:
            return self._on_buffer(ev)
        if kind in (EV.L2_WRITE_APPLY, EV.L2_ATOMIC_APPLY):
            return self._on_apply(ev)
        if kind == EV.L2_READ_GRANT:
            return self._on_grant(ev)
        if kind == EV.L2_EVICT:
            if self.strong and self._pending.get(ev.addr):
                return Violation(
                    "tcs.evict.buffered_store",
                    f"L2[{ev.unit_id}] evicted 0x{ev.addr:x} with "
                    f"{len(self._pending[ev.addr])} buffered store(s)",
                    "TCS: a line with a buffered store is pinned until the "
                    "store applies")
            return None
        if kind == EV.L1_STORE_ACK and not self.strong:
            return self._on_weak_ack(ev)
        return None

    def _on_buffer(self, ev: CoherenceEvent) -> Optional[Violation]:
        ack_at, exp = ev.get("ack_at"), ev.get("exp")
        self._pending.setdefault(ev.addr, []).append(ack_at)
        if ack_at <= exp:
            return Violation(
                "tcs.store.past_leases",
                f"L2[{ev.unit_id}] buffered store on 0x{ev.addr:x} acks at "
                f"{ack_at}, inside the outstanding lease exp={exp}",
                "Singh et al. §IV (TC-strong): a store is acknowledged "
                "only once every outstanding lease has expired")
        return None

    def _on_apply(self, ev: CoherenceEvent) -> Optional[Violation]:
        completed_at = ev.get("completed_at")
        pending = self._pending.get(ev.addr)
        if pending and completed_at in pending:
            pending.remove(completed_at)
        if not self.strong:
            gwct = ev.get("gwct")
            if gwct is not None and gwct < completed_at:
                return Violation(
                    "tcw.gwct.covers_apply",
                    f"L2[{ev.unit_id}] TCW write on 0x{ev.addr:x} returned "
                    f"gwct={gwct} before its application at {completed_at}",
                    "Singh et al. §V (TC-weak): the GWCT is the time the "
                    "write becomes globally visible — never before it "
                    "applies")
            return None
        exp = ev.get("exp")
        if exp is not None and completed_at <= exp:
            return Violation(
                "tcs.store.past_leases",
                f"L2[{ev.unit_id}] buffered store on 0x{ev.addr:x} applied "
                f"at {completed_at} while a lease ran to exp={exp}",
                "Singh et al. §IV (TC-strong): write atomicity requires "
                "the store to serialize strictly after every lease on the "
                "old value")
        return None

    def _on_grant(self, ev: CoherenceEvent) -> Optional[Violation]:
        if not self.strong:
            return None
        pending = self._pending.get(ev.addr)
        if pending and ev.get("exp") >= min(pending):
            return Violation(
                "tcs.grant.under_pending_store",
                f"L2[{ev.unit_id}] granted a lease on 0x{ev.addr:x} to "
                f"exp={ev.get('exp')} reaching past the earliest pending "
                f"store's serialization at {min(pending)}",
                "Singh et al. §IV (TC-strong): while a store waits, reads "
                "of the old value must not stay valid past the store's "
                "serialization point — else a stale copy outlives the "
                "write and write atomicity breaks")
        return None

    def _on_weak_ack(self, ev: CoherenceEvent) -> Optional[Violation]:
        gwct, warp = ev.get("gwct"), ev.get("warp")
        if gwct is None:
            return None
        key = (ev.unit_id, warp)
        prev = self._gwct.get(key, 0)
        if gwct < prev:
            return Violation(
                "tcw.gwct.monotone",
                f"core {ev.unit_id} warp {warp} GWCT regressed "
                f"{prev} -> {gwct} at {ev!r}",
                "Singh et al. §V (TC-weak): the per-warp GWCT accumulates "
                "as a running max; a fence waits for all of it")
        self._gwct[key] = gwct
        return None


# ----------------------------------------------------------------------
# MESI / SC-IDEAL (directory)
# ----------------------------------------------------------------------

class MESIInvariants(InvariantSuite):
    """Directory agreement and single-writer invariants.

    Shadow state from events alone: ``_copies`` is the set of cores whose
    L1 demonstrably holds a valid copy (installed by a fill, dropped by
    INV / self-invalidation / eviction); ``_granted`` over-approximates the
    directory's sharer list (grants add, write application clears).
    """

    name = "mesi"

    def __init__(self) -> None:
        self._copies: Dict[int, Set[int]] = {}
        self._granted: Dict[int, Set[int]] = {}

    def check(self, ev: CoherenceEvent) -> Optional[Violation]:
        kind, addr = ev.kind, ev.addr
        if kind == EV.L1_FILL:
            if ev.get("installed"):
                self._copies.setdefault(addr, set()).add(ev.unit_id)
            else:
                self._copies.get(addr, set()).discard(ev.unit_id)
            return None
        if kind in (EV.L1_INV, EV.L1_SELF_INVAL):
            self._copies.get(addr, set()).discard(ev.unit_id)
            return None
        if kind == EV.L1_EVICT:
            if ev.get("state") == "V":
                self._copies.get(addr, set()).discard(ev.unit_id)
            return None
        if kind == EV.L1_LOAD_HIT:
            granted = self._granted.get(addr, set())
            if ev.unit_id not in granted:
                return Violation(
                    "mesi.directory.covers_copy",
                    f"L1[{ev.unit_id}] hit on 0x{addr:x} but the directory "
                    f"never granted (or already revoked) its copy "
                    f"(tracked sharers: {sorted(granted)})",
                    "paper §II / Fig. 1c: an inclusive directory must track "
                    "every L1 copy or a store's invalidations miss it")
            return None
        if kind == EV.L2_READ_GRANT:
            self._granted.setdefault(addr, set()).add(ev.get("peer"))
            return None
        if kind == EV.L2_WRITE_APPLY:
            holders = self._copies.get(addr, set())
            if holders:
                return Violation(
                    "mesi.write.single_writer",
                    f"L2[{ev.unit_id}] applied a write to 0x{addr:x} while "
                    f"core(s) {sorted(holders)} still hold valid copies",
                    "paper §II: the directory collects every INV ack "
                    "before the store applies — write atomicity, the "
                    "property SC rests on")
            self._granted.get(addr, set()).clear()
            return None
        return None


# ----------------------------------------------------------------------
# Cross-protocol
# ----------------------------------------------------------------------

class CrossProtocolInvariants(InvariantSuite):
    """Write-serialization order shared by every protocol.

    Each applied/merged write carries a serialization timestamp (logical
    version for RCC, application cycle for MESI/TC) and a per-bank arrival
    key. Per block, arrivals must strictly increase and (epoch, timestamp)
    must never decrease — i.e. writes to a block form a total order and no
    two distinct writes share a logical instant.
    """

    name = "xp"

    _WRITE_KINDS = (EV.L2_WRITE_APPLY, EV.L2_WRITE_MERGE, EV.L2_ATOMIC_APPLY)

    def __init__(self) -> None:
        #: block -> (epoch, serialization ts, arrival) of the last write.
        self._last: Dict[int, Tuple[int, int, int]] = {}

    def check(self, ev: CoherenceEvent) -> Optional[Violation]:
        if ev.kind not in self._WRITE_KINDS:
            return None
        arrival = ev.get("arrival")
        if arrival is None:
            return None
        ts = ev.get("ver")
        if ts is None:
            ts = ev.get("completed_at", ev.cycle)
        epoch = ev.get("epoch", 0)
        prev = self._last.get(ev.addr)
        if prev is not None:
            p_epoch, p_ts, p_arrival = prev
            if arrival <= p_arrival:
                return Violation(
                    "xp.write.serialization_order",
                    f"writes to 0x{ev.addr:x} arrived out of order: "
                    f"arrival {arrival} after {p_arrival} at {ev!r}",
                    "paper footnote 2: per-block writes serialize in "
                    "physical L2 arrival order — the tiebreak that keeps "
                    "equal-version writes a total order")
            if (epoch, ts) < (p_epoch, p_ts):
                return Violation(
                    "xp.write.serialization_order",
                    f"writes to 0x{ev.addr:x} regressed in serialization "
                    f"time: ({epoch}, {ts}) after ({p_epoch}, {p_ts})",
                    "§III-B rule 3 / §II: later writes never serialize "
                    "before earlier ones — single writer per logical "
                    "instant")
        self._last[ev.addr] = (epoch, ts, arrival)
        return None


# ----------------------------------------------------------------------
# Suite selection
# ----------------------------------------------------------------------

def suites_for(protocol: str, ts_bits: int, strong_tc: bool = True,
               lease_max: Optional[int] = None) -> List[InvariantSuite]:
    """The invariant suites to run for ``protocol``. Unknown (test-injected)
    protocols get the cross-protocol suite only."""
    suites: List[InvariantSuite] = []
    if protocol in ("RCC", "RCC-WO"):
        suites.append(RCCInvariants(ts_bits, lease_max=lease_max))
    elif protocol in ("TCS", "TCW"):
        suites.append(TCInvariants(strong=protocol == "TCS"))
    elif protocol in ("MESI", "SC-IDEAL"):
        suites.append(MESIInvariants())
    suites.append(CrossProtocolInvariants())
    return suites
