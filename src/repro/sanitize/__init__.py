"""Runtime coherence-invariant sanitizer (see DESIGN.md appendix)."""

from repro.sanitize.events import CoherenceEvent, EventKind, TraceRing
from repro.sanitize.invariants import (
    CrossProtocolInvariants,
    InvariantSuite,
    MESIInvariants,
    RCCInvariants,
    TCInvariants,
    Violation,
    suites_for,
)
from repro.sanitize.sanitizer import (
    ENV_SANITIZE,
    ENV_TRACE_OUT,
    Sanitizer,
    sanitize_enabled_from_env,
    trace_out_from_env,
)

__all__ = [
    "CoherenceEvent",
    "EventKind",
    "TraceRing",
    "InvariantSuite",
    "Violation",
    "RCCInvariants",
    "TCInvariants",
    "MESIInvariants",
    "CrossProtocolInvariants",
    "suites_for",
    "Sanitizer",
    "sanitize_enabled_from_env",
    "trace_out_from_env",
    "ENV_SANITIZE",
    "ENV_TRACE_OUT",
]
