"""Performance benchmark harness and regression gate.

``repro-perf`` measures simulator throughput (events/sec, cycles/sec,
wall-clock) on a fixed set of representative sweep cells, writes the
measurements to a ``BENCH_<date>.json`` report, and can check them
against a stored baseline with a tolerance band — the CI perf-smoke
gate that keeps the fast-path event queue fast.
"""

from repro.perf.bench import (
    BENCH_SCHEMA, calibrate, compare_to_baseline, quick_cells, full_cells,
    run_bench,
)

__all__ = [
    "BENCH_SCHEMA",
    "calibrate",
    "compare_to_baseline",
    "quick_cells",
    "full_cells",
    "run_bench",
]
