"""``repro-perf`` — benchmark the simulator and gate regressions.

Typical uses::

    repro-perf                         # full suite, writes BENCH_<date>.json
    repro-perf --quick                 # CI smoke subset on the small machine
    repro-perf --compare-legacy        # also time the pre-optimization engine
    repro-perf --quick --profile 10    # per-cell cProfile top-10 in the report
    repro-perf --baseline benchmarks/perf_baseline.json --check
    repro-perf --baseline benchmarks/perf_baseline.json --update-baseline
"""

from __future__ import annotations

import argparse
import datetime
import json
import sys
from typing import List, Optional

from repro.perf.bench import (compare_to_baseline, render_ablation,
                              run_bench, run_lease_ablation)


def _default_out() -> str:
    return f"BENCH_{datetime.date.today().isoformat()}.json"


def _render(report: dict) -> str:
    lines = [f"repro-perf ({report['mode']} mode, calibration "
             f"{report['calibration_loops_per_s'] / 1e6:.2f}M loops/s)"]
    prov = report.get("provenance")
    if prov:
        dirty = "+dirty" if prov.get("git_dirty") else ""
        lines.append(
            f"  provenance: {prov.get('git_sha', 'unknown')[:12]}{dirty}  "
            f"kernel={prov.get('kernel')}  "
            f"python={prov.get('python')}")
    for label, cell in report["cells"].items():
        line = (f"  {label:<12} {cell['wall_s']:8.3f}s  "
                f"{cell['events']:>9} events  "
                f"{cell['events_per_s'] / 1e3:8.1f}k ev/s")
        if "speedup_vs_legacy" in cell:
            line += f"  ({cell['speedup_vs_legacy']:.2f}x vs legacy)"
        lines.append(line)
        for row in cell.get("profile", []):
            lines.append(
                f"      {row['cumtime_s']:8.3f}s cum  "
                f"{row['tottime_s']:8.3f}s self  "
                f"{row['ncalls']:>9}x  {row['func']}")
    totals = report["totals"]
    line = (f"  {'total':<12} {totals['wall_s']:8.3f}s  "
            f"{totals['events']:>9} events  "
            f"{totals['events_per_s'] / 1e3:8.1f}k ev/s")
    if "speedup_vs_legacy" in totals:
        line += f"  ({totals['speedup_vs_legacy']:.2f}x vs legacy)"
    lines.append(line)
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-perf",
        description="Simulator throughput benchmark and regression gate.")
    parser.add_argument("--quick", action="store_true",
                        help="small-machine smoke subset (CI)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="report path (default: BENCH_<date>.json)")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="stored baseline report to compare against")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero if throughput regresses vs "
                             "--baseline beyond --tolerance")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed normalized-throughput drop "
                             "(default 0.20)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="write this run's report to --baseline")
    parser.add_argument("--compare-legacy", action="store_true",
                        help="re-run each cell on the legacy heap engine "
                             "and report the speedup (asserts identical "
                             "result payloads)")
    parser.add_argument("--profile", nargs="?", type=int, const=15,
                        default=0, metavar="N",
                        help="re-run each cell under cProfile and report "
                             "the top N functions by cumulative time "
                             "(default N=15; timing numbers stay "
                             "profiler-free)")
    parser.add_argument("--lease-ablation", action="store_true",
                        help="run the lease-policy ablation instead of the "
                             "throughput suite: every registered policy x "
                             "RCC/RCC-WO x three workloads, reporting "
                             "renew traffic, stall cycles/op, and events/s "
                             "(Fig. 9-style; --quick for the small machine)")
    parser.add_argument("--intensity", type=float, default=None,
                        help="with --lease-ablation: workload scale factor "
                             "(default: the cells' own, 0.25)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="with --lease-ablation: worker processes for "
                             "the grid (default: RCC_JOBS or 1)")
    parser.add_argument("--journal-dir", metavar="DIR", default=None,
                        help="with --lease-ablation: journal the campaign "
                             "to DIR; re-running the same command resumes "
                             "from the last completed cell")
    parser.add_argument("--resume", metavar="PATH", default=None,
                        help="with --lease-ablation: resume from a journal "
                             "file (or directory, same as --journal-dir)")
    args = parser.parse_args(argv)

    if (args.check or args.update_baseline) and not args.baseline:
        parser.error("--check/--update-baseline require --baseline")
    if args.lease_ablation and (args.check or args.update_baseline
                                or args.compare_legacy or args.profile):
        parser.error("--lease-ablation does not combine with baseline, "
                     "legacy-engine, or profile modes")

    if args.lease_ablation:
        executor = None
        if args.jobs or args.journal_dir or args.resume:
            from repro.exec import SweepExecutor
            executor = SweepExecutor(jobs=args.jobs,
                                     journal_dir=args.journal_dir,
                                     resume=args.resume, on_summary=print)
        report = run_lease_ablation(quick=args.quick,
                                    intensity=args.intensity,
                                    executor=executor)
        print(render_ablation(report))
        out = args.out or f"ABLATION_{datetime.date.today().isoformat()}.json"
        with open(out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report written to {out}")
        return 0

    report = run_bench(quick=args.quick, compare_legacy=args.compare_legacy,
                       profile_top=args.profile)
    print(_render(report))

    out = args.out or _default_out()
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"report written to {out}")

    if args.update_baseline:
        with open(args.baseline, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    if args.check:
        try:
            with open(args.baseline) as fh:
                baseline = json.load(fh)
        except FileNotFoundError:
            print(f"baseline {args.baseline} not found; run with "
                  "--update-baseline to create it", file=sys.stderr)
            return 2
        failures = compare_to_baseline(report, baseline,
                                       tolerance=args.tolerance)
        if failures:
            print("perf regression check FAILED:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"perf regression check passed "
              f"(tolerance {args.tolerance * 100:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
