"""Benchmark definitions and the baseline comparison policy.

Throughput is measured per cell as engine events fired per wall-clock
second. Absolute events/sec varies across machines, so every report also
carries a *calibration score* — the throughput of a fixed pure-Python
loop on the same interpreter — and regression checks compare
calibration-normalized throughput. That makes a stored baseline
meaningful on a different host as long as the tolerance band is wide
enough to absorb residual machine skew (the CI gate runs baseline and
candidate on the same runner class, where the band mostly absorbs
scheduler noise).
"""

from __future__ import annotations

import os
import platform
import subprocess
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.config import GPUConfig
from repro.core.lease_policy import available_lease_policies
from repro.exec import SimCell, run_cell

BENCH_SCHEMA = 2

ABLATION_SCHEMA = 2


def provenance() -> Dict[str, Any]:
    """Where a report's numbers came from: git revision, the kernel that
    actually ran (flat vs object, compiled vs interpreted), and the
    interpreter. Stamped into every BENCH_*/ABLATION_* report so a
    committed artifact is self-describing — a compiled-kernel CI number
    can never be mistaken for an interpreted local one."""
    from repro import kernel

    here = os.path.dirname(os.path.abspath(__file__))
    sha = "unknown"
    dirty = False
    try:
        proc = subprocess.run(["git", "rev-parse", "HEAD"], cwd=here,
                              capture_output=True, text=True, timeout=10)
        if proc.returncode == 0:
            sha = proc.stdout.strip()
        proc = subprocess.run(["git", "status", "--porcelain"], cwd=here,
                              capture_output=True, text=True, timeout=10)
        dirty = proc.returncode == 0 and bool(proc.stdout.strip())
    except (OSError, subprocess.SubprocessError):
        pass
    return {
        "git_sha": sha,
        "git_dirty": dirty,
        "kernel": kernel.kernel_description(),
        "kernel_compiled": kernel.COMPILED,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
    }

#: Protocols × workloads of the lease-policy ablation: both RCC variants
#: (the only protocols a lease policy can affect) on workloads spanning
#: the sharing spectrum — graph traversal (bfs), stencil (stn), and the
#: lock-heavy dynamic load balancer (dlb), the paper's renew-pressure
#: extremes in Fig. 9.
_ABLATION_PROTOCOLS = ("RCC", "RCC-WO")
_ABLATION_WORKLOADS = ("bfs", "stn", "dlb")

#: Cells for ``--quick`` mode (CI smoke): the small machine keeps each
#: cell under a second while still exercising all four protocol families
#: and both timestamp designs (logical RCC, physical TC).
_QUICK = [
    ("MESI", "bfs"),
    ("TCS", "dlb"),
    ("TCW", "lud"),
    ("RCC", "bfs"),
    ("RCC-WO", "stn"),
]

#: Cells for full mode: the paper's bench machine on the workloads that
#: dominate the Fig. 9 sweep's runtime, including the lease-pressure
#: cases (TCS/TCW on bfs) that stress the L2 retry path.
_FULL = [
    ("MESI", "bfs"),
    ("TCS", "bfs"),
    ("TCW", "bfs"),
    ("RCC", "bfs"),
    ("RCC-WO", "stn"),
    ("MESI", "kmn"),
    ("TCW", "lud"),
    ("RCC", "sr"),
]


def quick_cells() -> List[SimCell]:
    cfg = GPUConfig.small()
    return [SimCell(cfg=cfg, protocol=p, workload=w) for p, w in _QUICK]


def full_cells() -> List[SimCell]:
    cfg = GPUConfig.bench()
    return [SimCell(cfg=cfg, protocol=p, workload=w) for p, w in _FULL]


def calibrate(iters: int = 300_000, repeats: int = 3) -> float:
    """Machine-speed score: iterations/sec of a fixed arithmetic loop.

    Best-of-N wall time so that a context switch mid-repeat cannot
    deflate the score (which would *inflate* normalized throughput).
    """
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        acc = 0
        for i in range(iters):
            acc += i * i
        best = min(best, time.perf_counter() - t0)
    return iters / best


def _measure(cell: SimCell) -> Tuple[Dict[str, Any], Any]:
    t0 = time.perf_counter()
    result = run_cell(cell)
    wall = time.perf_counter() - t0
    fired = getattr(result, "events_fired", 0) or 0
    cycles = getattr(result, "cycles", 0) or 0
    mem_ops = getattr(result, "mem_ops", 0) or 0
    stall = getattr(result, "sc_stall_cycles", 0) or 0
    return (
        {
            "wall_s": round(wall, 6),
            "events": fired,
            "cycles": cycles,
            "events_per_s": round(fired / wall, 1) if wall > 0 else 0.0,
            "cycles_per_s": round(cycles / wall, 1) if wall > 0 else 0.0,
            # Simulated-machine stall pressure: deterministic per cell,
            # the reference the hostile lab's stall-cliff check is
            # priced against.
            "sc_stall_cycles": stall,
            "stall_cycles_per_op": round(stall / mem_ops, 3)
            if mem_ops else 0.0,
        },
        result,
    )


def profile_cell(cell: SimCell, top_n: int = 15) -> List[Dict[str, Any]]:
    """Re-run one cell under cProfile; top-``top_n`` functions by
    cumulative time. Run separately from :func:`_measure` so profiler
    overhead never contaminates the reported throughput."""
    import cProfile
    import pstats

    prof = cProfile.Profile()
    prof.enable()
    run_cell(cell)
    prof.disable()
    stats = pstats.Stats(prof)
    rows: List[Dict[str, Any]] = []
    ranked = sorted(stats.stats.items(),  # type: ignore[attr-defined]
                    key=lambda kv: kv[1][3], reverse=True)
    for (filename, line, name), (_cc, nc, tt, ct, _callers) in ranked:
        if name in ("<built-in method builtins.exec>", "profile_cell"):
            continue  # harness frames above the cell run
        where = (name if filename.startswith("<") and line == 0
                 else f"{os.path.basename(filename)}:{line}:{name}")
        rows.append({
            "func": where,
            "ncalls": nc,
            "tottime_s": round(tt, 4),
            "cumtime_s": round(ct, 4),
        })
        if len(rows) >= top_n:
            break
    return rows


def run_bench(quick: bool = False,
              compare_legacy: bool = False,
              profile_top: int = 0) -> Dict[str, Any]:
    """Run the benchmark suite; returns the report dict.

    With ``compare_legacy``, every cell is re-run on the pre-optimization
    heap engine (``RCC_LEGACY_ENGINE=1``) and the report gains a
    ``legacy`` block per cell plus the end-to-end speedup ratio. The two
    runs must produce identical result payloads — the engines share one
    determinism contract — and a mismatch raises immediately.

    With ``profile_top`` > 0, every cell is re-run under cProfile after
    its timing run and the report gains a per-cell ``profile`` block with
    the top-N functions by cumulative time (the timing numbers stay
    profiler-free).
    """
    cells = quick_cells() if quick else full_cells()
    calibration = calibrate()
    report: Dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "mode": "quick" if quick else "full",
        "provenance": provenance(),
        "calibration_loops_per_s": round(calibration, 1),
        "cells": {},
    }
    total_wall = 0.0
    total_events = 0
    legacy_wall = 0.0
    for cell in cells:
        entry, result = _measure(cell)
        entry["events_per_s_normalized"] = round(
            entry["events_per_s"] / calibration, 6)
        if profile_top > 0:
            entry["profile"] = profile_cell(cell, top_n=profile_top)
        if compare_legacy:
            os.environ["RCC_LEGACY_ENGINE"] = "1"
            try:
                legacy_entry, legacy_result = _measure(cell)
            finally:
                del os.environ["RCC_LEGACY_ENGINE"]
            if legacy_result.to_payload() != result.to_payload():
                raise AssertionError(
                    f"legacy/fast engine payload mismatch on {cell.label}")
            entry["legacy"] = legacy_entry
            entry["speedup_vs_legacy"] = round(
                legacy_entry["wall_s"] / entry["wall_s"], 3)
            legacy_wall += legacy_entry["wall_s"]
        report["cells"][cell.label] = entry
        total_wall += entry["wall_s"]
        total_events += entry["events"]
    report["totals"] = {
        "wall_s": round(total_wall, 6),
        "events": total_events,
        "events_per_s": round(total_events / total_wall, 1)
        if total_wall > 0 else 0.0,
    }
    if compare_legacy and total_wall > 0:
        report["totals"]["legacy_wall_s"] = round(legacy_wall, 6)
        report["totals"]["speedup_vs_legacy"] = round(
            legacy_wall / total_wall, 3)
    return report


def ablation_cells(quick: bool = False,
                   policies: Optional[List[str]] = None,
                   workloads: Optional[List[str]] = None) -> List[SimCell]:
    """The lease-ablation grid: policies × RCC variants × workloads.

    The policy rides in ``ts_overrides`` (even for ``fixed``), so every
    cell's content key names its policy and cached results never alias
    across policies."""
    cfg = GPUConfig.small() if quick else GPUConfig.bench()
    policies = policies or available_lease_policies()
    workloads = list(workloads or _ABLATION_WORKLOADS)
    return [
        SimCell(cfg=cfg, protocol=proto, workload=wl,
                ts_overrides=(("lease_policy", policy),))
        for policy in policies
        for proto in _ABLATION_PROTOCOLS
        for wl in workloads
    ]


def _ablation_worker(cell: SimCell) -> Dict[str, Any]:
    """Worker: run one ablation cell and report its metrics (module level
    so the sweep executor can ship it to worker processes; the
    calibration-normalized throughput is attached in the parent)."""
    t0 = time.perf_counter()
    result = run_cell(cell)
    wall = time.perf_counter() - t0
    mem_ops = result.mem_ops or 0
    renew_traffic = (getattr(result, "l2_renew_grants", 0) or 0) \
        + (getattr(result, "l1_renews", 0) or 0)
    return {
        "cycles": result.cycles,
        "mem_ops": mem_ops,
        "l2_renew_grants": getattr(result, "l2_renew_grants", 0) or 0,
        "l1_renews": getattr(result, "l1_renews", 0) or 0,
        "renew_traffic": renew_traffic,
        "renews_per_kop": round(1000.0 * renew_traffic / mem_ops, 2)
        if mem_ops else 0.0,
        "l1_load_expired": getattr(result, "l1_load_expired", 0) or 0,
        "sc_stall_cycles": result.sc_stall_cycles,
        "stall_cycles_per_op": round(
            result.sc_stall_cycles / mem_ops, 3) if mem_ops else 0.0,
        "wall_s": round(wall, 6),
        "events": result.events_fired,
        "events_per_s": round(result.events_fired / wall, 1)
        if wall > 0 else 0.0,
    }


def run_lease_ablation(quick: bool = False,
                       policies: Optional[List[str]] = None,
                       workloads: Optional[List[str]] = None,
                       intensity: Optional[float] = None,
                       executor: Optional[Any] = None) -> Dict[str, Any]:
    """Fig. 9-style lease-policy ablation report.

    For every (policy, protocol, workload) cell: simulated runtime,
    renew traffic (L2 renew grants + L1 renews received), expired-load
    count, SC stall cycles per memory op, and wall-clock events/s. The
    report groups per policy so the rendering and EXPERIMENTS.md table
    read straight off it.

    With an ``executor`` (a :class:`~repro.exec.SweepExecutor`) the grid
    fans out over its worker pool and, when the executor journals, each
    cell's metrics land in the campaign journal as it finishes — an
    interrupted ablation resumes without re-simulating completed cells.
    """
    cells = ablation_cells(quick=quick, policies=policies,
                           workloads=workloads)
    if intensity is not None:
        import dataclasses
        cells = [dataclasses.replace(c, intensity=intensity) for c in cells]
    calibration = calibrate()
    report: Dict[str, Any] = {
        "schema": ABLATION_SCHEMA,
        "kind": "lease-ablation",
        "mode": "quick" if quick else "full",
        "provenance": provenance(),
        "calibration_loops_per_s": round(calibration, 1),
        "policies": {},
    }
    labels = [f"{c.lease_policy}/{c.protocol}/{c.workload}" for c in cells]
    if executor is not None:
        entries = executor.map(
            _ablation_worker, cells, labels=labels,
            meta={"campaign": "lease-ablation",
                  "mode": report["mode"], "intensity": intensity,
                  "policies": list(policies or []),
                  "workloads": list(workloads or [])})
    else:
        entries = [_ablation_worker(c) for c in cells]
    for cell, entry in zip(cells, entries):
        wall = entry["wall_s"]
        entry["events_per_s_normalized"] = round(
            entry["events"] / wall / calibration, 6) if wall > 0 else 0.0
        label = f"{cell.protocol}/{cell.workload}"
        report["policies"].setdefault(cell.lease_policy, {})[label] = entry
    return report


def render_ablation(report: Dict[str, Any]) -> str:
    """Fixed-width table of the ablation report, one row per cell."""
    lines = [
        f"lease-policy ablation ({report['mode']} mode, calibration "
        f"{report['calibration_loops_per_s'] / 1e6:.2f}M loops/s)",
        f"  {'policy':<10} {'cell':<12} {'cycles':>10} {'renew/kop':>10} "
        f"{'expired':>8} {'stall/op':>9} {'ev/s':>9}",
    ]
    for policy in sorted(report["policies"]):
        for label, e in report["policies"][policy].items():
            lines.append(
                f"  {policy:<10} {label:<12} {e['cycles']:>10} "
                f"{e['renews_per_kop']:>10.2f} {e['l1_load_expired']:>8} "
                f"{e['stall_cycles_per_op']:>9.3f} "
                f"{e['events_per_s'] / 1e3:>8.1f}k")
    return "\n".join(lines)


def compare_to_baseline(current: Dict[str, Any], baseline: Dict[str, Any],
                        tolerance: float = 0.20) -> List[str]:
    """Regression check; returns failure messages (empty = pass).

    A cell fails when its calibration-normalized events/sec drops more
    than ``tolerance`` below the baseline's. Cells present only on one
    side are reported but do not fail the gate (the cell set may evolve);
    a baseline from a different mode does fail loudly.
    """
    failures: List[str] = []
    if baseline.get("mode") != current.get("mode"):
        return [
            f"baseline mode {baseline.get('mode')!r} does not match "
            f"current mode {current.get('mode')!r}; regenerate the "
            "baseline with --update-baseline"
        ]
    base_cells = baseline.get("cells", {})
    cur_cells = current.get("cells", {})
    for label, base in base_cells.items():
        cur = cur_cells.get(label)
        if cur is None:
            continue
        base_norm = base.get("events_per_s_normalized", 0.0)
        cur_norm = cur.get("events_per_s_normalized", 0.0)
        if base_norm <= 0:
            continue
        floor = base_norm * (1.0 - tolerance)
        if cur_norm < floor:
            failures.append(
                f"{label}: normalized throughput {cur_norm:.6f} is "
                f"{(1 - cur_norm / base_norm) * 100:.1f}% below baseline "
                f"{base_norm:.6f} (tolerance {tolerance * 100:.0f}%)"
            )
        if base.get("events") and cur.get("events") \
                and base["events"] != cur["events"]:
            failures.append(
                f"{label}: event count changed {base['events']} -> "
                f"{cur['events']} — simulation behavior drifted, not just "
                "speed; update the baseline deliberately if intended"
            )
    return failures
