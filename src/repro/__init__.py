"""repro — Relativistic Cache Coherence (RCC) for GPUs, reproduced.

A self-contained, event-driven GPU memory-system simulator and a full
implementation of the RCC logical-timestamp coherence protocol from

    Xiaowei Ren and Mieszko Lis,
    "Efficient Sequential Consistency in GPUs via Relativistic Cache
    Coherence", HPCA 2017.

Quickstart::

    from repro import GPUConfig, run_simulation
    from repro.workloads import get_workload

    cfg = GPUConfig.bench()
    wl = get_workload("dlb")
    result = run_simulation(cfg, "RCC", wl.generate(cfg), wl.name)
    print(result.cycles, result.avg_store_latency)

Protocols: ``MESI``, ``TCS``, ``TCW``, ``SC-IDEAL`` (baselines) and ``RCC``
/ ``RCC-WO`` (the paper's contribution).
"""

from repro.config import GPUConfig, CacheConfig, NoCConfig, DRAMConfig, \
    TimestampConfig, TCConfig, PROTOCOLS
from repro.sim.gpusim import GPUSimulator, run_simulation
from repro.sim.results import SimResult

__version__ = "1.3.0"

__all__ = [
    "CacheConfig",
    "DRAMConfig",
    "GPUConfig",
    "GPUSimulator",
    "NoCConfig",
    "PROTOCOLS",
    "SimResult",
    "TCConfig",
    "TimestampConfig",
    "run_simulation",
    "__version__",
]
