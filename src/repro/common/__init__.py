"""Shared primitive types: enums, messages, address helpers."""

from repro.common.types import (
    AccessOutcome,
    L1State,
    L2State,
    MemOpKind,
    MsgKind,
)
from repro.common.messages import Message
from repro.common.addresses import AddressMap

__all__ = [
    "AccessOutcome",
    "AddressMap",
    "L1State",
    "L2State",
    "MemOpKind",
    "Message",
    "MsgKind",
]
