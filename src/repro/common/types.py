"""Core enums shared across the memory system.

These mirror the vocabulary of the paper: memory operation kinds issued by
warps, coherence message kinds on the interconnect, and the stable/transient
states of the RCC L1 and L2 controllers (Fig. 4/5 of the paper). Baseline
protocols (MESI, TC-strong/weak) define their own state enums in their own
modules; the message kinds here are the union used by all protocols so the
NoC can account traffic uniformly.
"""

from __future__ import annotations

import enum


class MemOpKind(enum.Enum):
    """A memory/trace operation a warp can issue."""

    LOAD = "LD"
    STORE = "ST"
    ATOMIC = "AT"
    FENCE = "FENCE"
    COMPUTE = "COMPUTE"
    BARRIER = "BARRIER"

    # Stat dicts keyed by op kind sit in the simulator's hottest loops; the
    # default Enum.__hash__ is a Python-level call (it hashes the member
    # name). Identity hashing is equivalent for singleton members and runs
    # entirely in C. Dict iteration order is insertion order either way, so
    # results are unaffected.
    __hash__ = object.__hash__

    @property
    def is_global_mem(self) -> bool:
        """True for operations that access the global memory system."""
        return self in _GLOBAL_MEM_KINDS

    @property
    def is_write(self) -> bool:
        return self in _WRITE_KINDS


class MsgKind(enum.Enum):
    """Coherence message kinds (union over all protocols).

    ``GETS``/``WRITE``/``ATOMIC`` are L1→L2 requests; ``DATA``/``RENEW``/
    ``ACK`` are L2→L1 responses (RCC/TC); ``INV``/``INV_ACK``/``RECALL`` are
    MESI directory traffic; ``WBACK``/``FETCH``/``MEMDATA`` are L2↔DRAM.
    """

    GETS = "GETS"
    GETX = "GETX"            # MESI store-permission request (write-through data ride-along)
    WRITE = "WRITE"
    ATOMIC = "ATOMIC"
    DATA = "DATA"
    RENEW = "RENEW"
    ACK = "ACK"
    INV = "INV"
    INV_ACK = "INV_ACK"
    FENCE_REQ = "FENCE_REQ"  # TCW fence completion probe
    FENCE_ACK = "FENCE_ACK"
    WBACK = "WBACK"
    FETCH = "FETCH"
    MEMDATA = "MEMDATA"
    FLUSH = "FLUSH"          # rollover: L2 -> L1 flush request
    FLUSH_ACK = "FLUSH_ACK"

    __hash__ = object.__hash__  # see MemOpKind.__hash__

    @property
    def carries_data(self) -> bool:
        """Messages that carry a full cache block (data flits)."""
        return self in _DATA_KINDS


class L1State(enum.Enum):
    """RCC L1 controller states (paper Fig. 4/5).

    ``I``/``V`` are stable. ``IV``: load miss outstanding. ``II``: store or
    atomic outstanding, block unreadable. ``VI``: store outstanding but the
    pre-store copy is still valid-readable until the ACK arrives (GPU
    optimization).
    """

    I = "I"
    V = "V"
    IV = "IV"
    II = "II"
    VI = "VI"

    __hash__ = object.__hash__  # see MemOpKind.__hash__

    @property
    def stable(self) -> bool:
        return self in _STABLE_L1


class L2State(enum.Enum):
    """RCC L2 controller states (paper Fig. 4/5).

    ``IV``: miss outstanding with mergeable MSHR. ``IAV``: atomic received in
    I state; stalls further requests until the line returns from DRAM and the
    atomic completes.
    """

    I = "I"
    V = "V"
    IV = "IV"
    IAV = "IAV"

    __hash__ = object.__hash__  # see MemOpKind.__hash__

    @property
    def stable(self) -> bool:
        return self in _STABLE_L2


class AccessOutcome(enum.Enum):
    """Result of presenting a core memory op to the L1 controller."""

    HIT = "hit"              # completes after L1 hit latency
    MISS = "miss"            # request sent (or merged); completion via response
    STALL = "stall"          # structural/protocol stall; retry next cycle


class Direction(enum.Enum):
    """Crossbar direction (one xbar per direction, as in the paper)."""

    CORE_TO_L2 = "c2m"
    L2_TO_CORE = "m2c"

    __hash__ = object.__hash__  # see MemOpKind.__hash__


# Membership sets for the hot-path properties above (frozenset lookup beats
# rebuilding a tuple and linearly comparing on every call).
_GLOBAL_MEM_KINDS = frozenset(
    (MemOpKind.LOAD, MemOpKind.STORE, MemOpKind.ATOMIC))
_WRITE_KINDS = frozenset((MemOpKind.STORE, MemOpKind.ATOMIC))
_DATA_KINDS = frozenset((
    MsgKind.WRITE, MsgKind.ATOMIC, MsgKind.DATA, MsgKind.WBACK,
    MsgKind.MEMDATA, MsgKind.GETX))
_STABLE_L1 = frozenset((L1State.I, L1State.V))
_STABLE_L2 = frozenset((L2State.I, L2State.V))
