"""Address arithmetic: block alignment, set indexing, L2 bank hashing.

The GPU's shared L2 is split into banks (8 partitions in the paper's GTX 480
configuration); consecutive cache blocks are interleaved across banks, which
is also how the memory partitions are addressed.
"""

from __future__ import annotations

from repro.errors import ConfigError


class AddressMap:
    """Maps byte addresses to cache blocks, L2 banks, and memory partitions.

    >>> am = AddressMap(block_bytes=128, n_l2_banks=8)
    >>> am.block_of(0x100)
    256
    >>> am.bank_of(0x100)
    2
    """

    def __init__(self, block_bytes: int = 128, n_l2_banks: int = 8):
        if block_bytes <= 0 or block_bytes & (block_bytes - 1):
            raise ConfigError(f"block_bytes must be a power of two: {block_bytes}")
        if n_l2_banks <= 0:
            raise ConfigError(f"n_l2_banks must be positive: {n_l2_banks}")
        self.block_bytes = block_bytes
        self.n_l2_banks = n_l2_banks
        self._block_shift = block_bytes.bit_length() - 1

    def block_of(self, addr: int) -> int:
        """Block-aligned base address containing ``addr``."""
        return (addr >> self._block_shift) << self._block_shift

    def block_index(self, addr: int) -> int:
        """Sequential index of the block containing ``addr``."""
        return addr >> self._block_shift

    def bank_of(self, addr: int) -> int:
        """L2 bank (== memory partition) for ``addr``; block-interleaved."""
        return self.block_index(addr) % self.n_l2_banks

    def same_block(self, a: int, b: int) -> bool:
        return self.block_index(a) == self.block_index(b)
