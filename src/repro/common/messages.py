"""Coherence messages and flit accounting.

The simulated NoC moves 32-bit flits (paper Table III). A control message
(request, ack, renew, invalidate) is a handful of flits; a data message adds
the full 128-byte cache block. Flit counts therefore depend only on the
message kind and the configured block size, which is exactly how the paper's
traffic figures (Fig. 9c) are broken down.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional

from repro.common.types import MsgKind

_msg_ids = itertools.count()

#: Flits in a control-only message: address + command + timestamp metadata.
#: 8 bytes of header/metadata over 32-bit flits.
CONTROL_FLITS = 2


class Message:
    """A single coherence message travelling between an L1, an L2 bank,
    or a memory partition.

    Hand-written rather than a dataclass: one Message is allocated per
    hop of every coherence transaction, and the generated ``__init__``
    (two ``default_factory`` calls, an eager ``meta`` dict that most
    control messages never touch) was measurable in the event loop. The
    ``meta`` dict is materialized on first access instead.

    Attributes
    ----------
    kind:
        The :class:`~repro.common.types.MsgKind` of the message.
    addr:
        Block-aligned address the message concerns.
    src / dst:
        Endpoint ids. Cores are ``("core", i)``; L2 banks ``("l2", j)``;
        memory partitions ``("mem", j)``.
    now / exp / ver:
        Timestamp payloads, used by RCC (logical) and TC (physical)
        protocols; ``None`` when not applicable.
    value:
        The data token carried by data messages. The simulator models block
        contents as opaque, unique store tokens so the SC checker can
        reconstruct reads-from edges.
    meta:
        Protocol-private payload (e.g. MESI sharer lists on invalidate acks).
    """

    __slots__ = ("kind", "addr", "src", "dst", "now", "exp", "ver", "value",
                 "warp_ref", "_meta", "msg_id")

    def __init__(self, kind: MsgKind, addr: int, src: Any, dst: Any,
                 now: Optional[int] = None, exp: Optional[int] = None,
                 ver: Optional[int] = None, value: Any = None,
                 warp_ref: Any = None,
                 meta: Optional[Dict[str, Any]] = None):
        self.kind = kind
        self.addr = addr
        self.src = src
        self.dst = dst
        self.now = now
        self.exp = exp
        self.ver = ver
        self.value = value
        self.warp_ref = warp_ref
        self._meta = meta
        self.msg_id = next(_msg_ids)

    @property
    def meta(self) -> Dict[str, Any]:
        m = self._meta
        if m is None:
            m = self._meta = {}
        return m

    @meta.setter
    def meta(self, value: Dict[str, Any]) -> None:
        self._meta = value

    def flits(self, block_bytes: int = 128, flit_bytes: int = 4) -> int:
        """Number of flits this message occupies on a link."""
        n = CONTROL_FLITS
        if self.kind.carries_data:
            n += (block_bytes + flit_bytes - 1) // flit_bytes
        return n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ts = "".join(
            f" {k}={v}"
            for k, v in (("now", self.now), ("exp", self.exp), ("ver", self.ver))
            if v is not None
        )
        return (
            f"<{self.kind.value} addr=0x{self.addr:x} {self.src}->{self.dst}{ts}>"
        )
