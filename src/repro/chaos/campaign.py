"""Chaos campaigns: assert the executor contract under injected faults.

Two batteries live here, both driven by ``repro-fuzz --chaos`` and the
``chaos-smoke`` CI job:

**The contract battery** (:func:`run_chaos_campaign`) runs a matrix of
seeded :class:`~repro.chaos.plan.FaultPlan` specs against the sweep
executor and asserts, for every plan, the contract the rest of the repo
relies on:

* recoverable plans (``mode=first`` faults) finish with *correct results
  in input order* — bounded retries absorb every injected fault;
* unrecoverable plans (``mode=always`` faults) surface as one structured
  :class:`~repro.errors.HarnessError` whose per-cell
  :class:`~repro.errors.CellFailure` records carry kinds from the
  ``timeout`` / ``crash`` / ``poisoned-pool`` / ``cache-corrupt`` /
  ``exception`` taxonomy — never a raw ``BrokenProcessPool``, never a
  hang, never a wrong value;
* cache-fault plans (``torn-write`` / ``bit-flip`` / ``enospc``) never
  change results: a corrupted entry is detected and recomputed, a failed
  write is swallowed, and the journal degrades to non-journaled
  execution with a surfaced warning instead of killing the campaign.

**The kill-and-resume battery** (:func:`kill_resume_roundtrip`) runs a
real campaign in a child process (``python -m repro.chaos.campaign child
<kind>``) under ``RCC_CHAOS="exit-after=N"`` — a deterministic SIGKILL
right after the N-th journaled completion — then re-invokes the same
campaign and asserts that (a) the resumed run replays exactly the N
journaled cells without re-running them, and (b) its output is
byte-identical to an uninterrupted run once wall-clock fields are
stripped. Campaign kinds cover the three sweep entry points named in
the acceptance criteria: litmus fuzzing, hostile workloads, and the
lease ablation (plus the raw ``run_cells`` cache path).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.chaos.plan import CHAOS_EXIT_CODE, ENV_CHAOS, ENV_CHAOS_PARENT
from repro.errors import FAILURE_KINDS, HarnessError
from repro.exec.engine import RetryPolicy, SweepExecutor

#: Wall-clock-dependent report fields, stripped before any cross-run
#: equality check (everything else must be byte-identical).
WALL_CLOCK_FIELDS = frozenset({
    "wall_s", "events_per_s", "events_per_s_normalized",
    "calibration_loops_per_s", "calibration", "elapsed", "created",
    "cliffs", "throughput_judged",
})

#: Campaign kinds the child runner (and the resume battery) understands.
CHILD_KINDS = ("cells", "litmus", "hostile", "ablation")


def strip_wall_clock(doc: Any) -> Any:
    """Recursively drop wall-clock-derived fields from a JSON-able doc,
    leaving only content that must reproduce across runs."""
    if isinstance(doc, dict):
        return {k: strip_wall_clock(v) for k, v in sorted(doc.items())
                if k not in WALL_CLOCK_FIELDS}
    if isinstance(doc, list):
        return [strip_wall_clock(v) for v in doc]
    return doc


class _ChaosEnv:
    """Scoped ``RCC_CHAOS`` setting (restores the previous value and
    drops the parent-pid marker on exit)."""

    def __init__(self, spec: Optional[str]):
        self.spec = spec
        self._prev: Dict[str, Optional[str]] = {}

    def __enter__(self):
        for var in (ENV_CHAOS, ENV_CHAOS_PARENT):
            self._prev[var] = os.environ.get(var)
            os.environ.pop(var, None)
        if self.spec:
            os.environ[ENV_CHAOS] = self.spec
        return self

    def __exit__(self, *exc):
        for var, val in self._prev.items():
            if val is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = val
        return False


# ----------------------------------------------------------------------
# Contract battery
# ----------------------------------------------------------------------

def _chaos_cell(x: int) -> Dict[str, int]:
    """Trivial deterministic worker for the contract battery (module
    level so it forks/pickles; cheap so plans run in milliseconds)."""
    return {"x": x, "y": x * x + 1}


@dataclass(frozen=True)
class ChaosPlan:
    """One contract-battery scenario."""

    spec: str
    #: ``serial`` / ``pool`` (executor.map), ``cache`` (run_cells against
    #: a real cache), ``journal`` (map with journaling under write
    #: faults).
    mode: str
    #: ``recover`` — must finish with correct results; ``failures`` —
    #: must raise HarnessError with kinds drawn from ``allowed_kinds``.
    expect: str = "recover"
    allowed_kinds: Tuple[str, ...] = FAILURE_KINDS
    timeout: Optional[float] = 15.0
    n_items: int = 8


#: The default plan matrix: every fault kind, serial and fork-pool modes.
#: Serial plans exclude ``hang`` — in-process execution cannot preempt a
#: wedged cell (documented limitation; timeouts need a worker process to
#: reap).
DEFAULT_PLANS: Tuple[ChaosPlan, ...] = (
    # Transient faults: bounded retries must absorb them silently.
    ChaosPlan("flaky:0.6;seed=3", "serial"),
    ChaosPlan("flaky:0.6;seed=11", "pool"),
    # First-attempt crashes: serial raises ChaosCrash in-process; the
    # pool loses real worker processes and must rebuild + resubmit.
    ChaosPlan("crash:0.6;seed=5", "serial"),
    ChaosPlan("crash:0.6;seed=2", "pool"),
    # First-attempt hangs: the timeout reaps the worker, retries recover.
    ChaosPlan("hang:0.4;seed=4;hang-s=10", "pool", timeout=1.0),
    # Permanent faults: structured HarnessError, correct taxonomy.
    ChaosPlan("crash:0.4:always;seed=7", "serial", expect="failures",
              allowed_kinds=("crash",)),
    ChaosPlan("crash:0.4:always;seed=9", "pool", expect="failures",
              allowed_kinds=("crash", "poisoned-pool")),
    ChaosPlan("flaky:0.4:always;seed=13", "pool", expect="failures",
              allowed_kinds=("exception",)),
    ChaosPlan("hang:0.4:always;seed=6;hang-s=10", "pool",
              expect="failures", allowed_kinds=("timeout",), timeout=1.0),
    # Storage faults: results unchanged, corruption detected on read.
    ChaosPlan("torn-write;seed=1", "cache", n_items=2),
    ChaosPlan("bit-flip;seed=1", "cache", n_items=2),
    ChaosPlan("enospc;seed=1", "cache", n_items=2),
    ChaosPlan("enospc;seed=1", "journal"),
)


@dataclass
class PlanOutcome:
    """What one contract-battery plan did."""

    plan: ChaosPlan
    ok: bool
    detail: str
    failure_kinds: List[str] = field(default_factory=list)

    def describe(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        return (f"{status} [{self.plan.mode:>7}] "
                f"{self.plan.spec:<34} {self.detail}")


def _run_map_plan(plan: ChaosPlan, workdir: str) -> PlanOutcome:
    items = list(range(plan.n_items))
    labels = [f"cell[{i}]" for i in items]
    ground = [_chaos_cell(i) for i in items]
    journal_dir = (os.path.join(workdir, "journal")
                   if plan.mode == "journal" else None)
    warnings: List[str] = []
    ex = SweepExecutor(jobs=1 if plan.mode == "serial" else 2,
                       timeout=plan.timeout,
                       retry=RetryPolicy(max_attempts=3, base_delay=0.01),
                       journal_dir=journal_dir,
                       on_summary=warnings.append)
    with _ChaosEnv(plan.spec):
        try:
            got = ex.map(_chaos_cell, items, labels=labels,
                         meta={"campaign": "chaos-contract",
                               "spec": plan.spec})
        except HarnessError as err:
            kinds = sorted({f.kind for f in err.failures})
            if plan.expect != "failures":
                return PlanOutcome(plan, False,
                                   f"unexpected HarnessError: {err}",
                                   kinds)
            bad = [k for k in kinds if k not in plan.allowed_kinds]
            if bad or not err.failures:
                return PlanOutcome(
                    plan, False,
                    f"failure kinds {kinds} outside allowed "
                    f"{list(plan.allowed_kinds)}", kinds)
            for f in err.failures:
                if f.label not in labels or not f.message:
                    return PlanOutcome(plan, False,
                                       f"malformed failure {f!r}", kinds)
            return PlanOutcome(
                plan, True,
                f"{len(err.failures)} structured failure(s): "
                f"{', '.join(kinds)}", kinds)
        except BaseException as exc:  # the contract forbids raw leaks
            return PlanOutcome(plan, False,
                               f"non-contract exception "
                               f"{type(exc).__name__}: {exc}")
    if plan.expect == "failures":
        return PlanOutcome(plan, False,
                           "expected a HarnessError; campaign succeeded")
    if got != ground:
        return PlanOutcome(plan, False, "results differ from ground truth")
    detail = (f"recovered, {ex.last_stats.retries} retried, "
              f"{ex.last_stats.pool_rebuilds} pool rebuild(s)")
    if plan.mode == "journal":
        if not any("journal write failed" in w for w in warnings):
            return PlanOutcome(plan, False,
                               "journal write fault was not surfaced")
        detail += ", journal degradation surfaced"
    return PlanOutcome(plan, True, detail)


def _run_cache_plan(plan: ChaosPlan, workdir: str) -> PlanOutcome:
    from repro.config import GPUConfig
    from repro.exec import ResultCache, SimCell, payload_digest

    cfg = GPUConfig.small()
    cells = [SimCell(cfg=cfg, protocol=p, workload="bfs", intensity=0.05)
             for p in ("RCC", "MESI")][:plan.n_items]
    clean = SweepExecutor(jobs=1).run_cells(cells)
    want = [payload_digest(r.to_payload()) for r in clean]
    root = os.path.join(workdir, f"cache-{plan.spec.replace(':', '_')}")
    with _ChaosEnv(plan.spec):
        try:
            cache = ResultCache(root)
            ex = SweepExecutor(jobs=1, cache=cache)
            first = ex.run_cells(cells)
            second = ex.run_cells(cells)
        except BaseException as exc:
            return PlanOutcome(plan, False,
                               f"non-contract exception "
                               f"{type(exc).__name__}: {exc}")
    for name, batch in (("first", first), ("second", second)):
        got = [payload_digest(r.to_payload()) for r in batch]
        if got != want:
            return PlanOutcome(plan, False,
                               f"{name} run returned corrupted results")
    detail = (f"results intact; cache hits={cache.hits} "
              f"misses={cache.misses} evictions={cache.evictions} "
              f"write_errors={cache.write_errors}")
    if "enospc" in plan.spec and cache.write_errors == 0:
        return PlanOutcome(plan, False, "enospc fault never fired")
    if ("enospc" not in plan.spec and cache.evictions == 0
            and cache.hits > 0):
        return PlanOutcome(plan, False,
                           "corrupted entries were served, not evicted")
    return PlanOutcome(plan, True, detail)


def run_chaos_campaign(plans: Optional[Sequence[ChaosPlan]] = None,
                       kill_resume: Optional[Sequence[str]] = None,
                       workdir: Optional[str] = None,
                       out=print) -> List[PlanOutcome]:
    """Run the contract battery (and, optionally, kill-and-resume
    round-trips for the named campaign kinds); returns every outcome.

    ``repro-fuzz --chaos`` drives this with the default matrix and all
    four campaign kinds; the caller decides pass/fail from the outcomes.
    """
    plans = list(DEFAULT_PLANS if plans is None else plans)
    owned = workdir is None
    workdir = workdir or tempfile.mkdtemp(prefix="rcc-chaos-")
    outcomes: List[PlanOutcome] = []
    try:
        for plan in plans:
            if plan.mode == "cache":
                outcome = _run_cache_plan(plan, workdir)
            else:
                outcome = _run_map_plan(plan, workdir)
            outcomes.append(outcome)
            if out:
                out(outcome.describe())
        for kind in kill_resume or ():
            # The quick ablation grid is only two cells; kill after one
            # so the resume still has work left to do.
            outcome = kill_resume_roundtrip(
                kind, os.path.join(workdir, f"resume-{kind}"),
                exit_after=1 if kind == "ablation" else 2)
            outcomes.append(outcome)
            if out:
                out(outcome.describe())
    finally:
        if owned:
            import shutil
            shutil.rmtree(workdir, ignore_errors=True)
    return outcomes


# ----------------------------------------------------------------------
# Kill-and-resume battery
# ----------------------------------------------------------------------

def _child_env(chaos: Optional[str]) -> Dict[str, str]:
    env = dict(os.environ)
    env.pop(ENV_CHAOS, None)
    env.pop(ENV_CHAOS_PARENT, None)
    if chaos:
        env[ENV_CHAOS] = chaos
    src = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    parts = [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    if src not in parts:
        env["PYTHONPATH"] = os.pathsep.join([src] + parts)
    return env


def _run_child(kind: str, workdir: str,
               chaos: Optional[str]) -> subprocess.CompletedProcess:
    cmd = [sys.executable, "-m", "repro.chaos.campaign", "child", kind,
           "--workdir", workdir]
    return subprocess.run(cmd, env=_child_env(chaos),
                          capture_output=True, text=True, timeout=600)


def _child_report(proc: subprocess.CompletedProcess) -> Dict[str, Any]:
    for line in reversed(proc.stdout.strip().splitlines()):
        if line.startswith("{"):
            return json.loads(line)
    raise ValueError(f"child produced no report; stderr:\n{proc.stderr}")


def kill_resume_roundtrip(kind: str, workdir: str,
                          exit_after: int = 2) -> PlanOutcome:
    """One kill-and-resume equivalence round-trip for a campaign kind.

    Child run 1 (journaling, ``RCC_CHAOS=exit-after=N``) dies with
    :data:`CHAOS_EXIT_CODE` right after journaling its N-th completion;
    run 2 (same flags, chaos off) must resume — replaying exactly N
    cells, re-running zero completed ones — and run 3 (a fresh straight
    shot in a clean directory) provides the ground truth the resumed
    output must match byte-for-byte modulo wall-clock fields.
    """
    plan = ChaosPlan(f"exit-after={exit_after}", f"resume:{kind}")
    killed = _run_child(kind, os.path.join(workdir, "a"),
                        f"exit-after={exit_after}")
    if killed.returncode != CHAOS_EXIT_CODE:
        return PlanOutcome(
            plan, False,
            f"kill run exited {killed.returncode}, want "
            f"{CHAOS_EXIT_CODE}; stderr:\n{killed.stderr[-2000:]}")
    resumed = _run_child(kind, os.path.join(workdir, "a"), None)
    if resumed.returncode != 0:
        return PlanOutcome(plan, False,
                           f"resume run exited {resumed.returncode}; "
                           f"stderr:\n{resumed.stderr[-2000:]}")
    fresh = _run_child(kind, os.path.join(workdir, "b"), None)
    if fresh.returncode != 0:
        return PlanOutcome(plan, False,
                           f"fresh run exited {fresh.returncode}; "
                           f"stderr:\n{fresh.stderr[-2000:]}")
    try:
        res_doc = _child_report(resumed)
        fresh_doc = _child_report(fresh)
    except ValueError as exc:
        return PlanOutcome(plan, False, str(exc))
    if res_doc["canonical"] != fresh_doc["canonical"]:
        return PlanOutcome(plan, False,
                           "resumed output differs from an "
                           "uninterrupted run")
    stats = res_doc["stats"]
    n_cells = stats["n_cells"]
    rerun = stats["n_computed"] - (n_cells - exit_after)
    if stats["n_replayed"] + stats.get("n_cached", 0) < exit_after:
        return PlanOutcome(
            plan, False,
            f"resume replayed only {stats['n_replayed']} of the "
            f"{exit_after} journaled cells (stats: {stats})")
    if rerun > 0:
        return PlanOutcome(
            plan, False,
            f"resume re-ran {rerun} already-completed cell(s) "
            f"(stats: {stats})")
    return PlanOutcome(
        plan, True,
        f"killed at {exit_after}/{n_cells}, resumed "
        f"{stats['n_replayed']} replayed + {stats['n_computed']} "
        f"computed, outputs identical")


# ----------------------------------------------------------------------
# The child campaign runner (``python -m repro.chaos.campaign child ...``)
# ----------------------------------------------------------------------

def _child_cells(workdir: str, ex_kwargs: Dict[str, Any]) -> Dict[str, Any]:
    from repro.config import GPUConfig
    from repro.exec import ResultCache, payload_digest, SimCell

    cfg = GPUConfig.small()
    cells = [SimCell(cfg=cfg, protocol=p, workload=w, intensity=0.05)
             for p in ("RCC", "MESI") for w in ("bfs", "stn")]
    ex = SweepExecutor(cache=ResultCache(os.path.join(workdir, "cache")),
                       **ex_kwargs)
    results = ex.run_cells(cells, meta={"campaign": "chaos-child-cells"})
    return {"canonical": [payload_digest(r.to_payload())
                          for r in results],
            "stats": _stats_doc(ex)}


def _child_litmus(workdir: str, ex_kwargs: Dict[str, Any]) -> Dict[str, Any]:
    from repro.config import GPUConfig
    from repro.fuzz.differential import DifferentialRunner, run_campaign
    from repro.fuzz.generator import FuzzKnobs

    runner = DifferentialRunner(cfg=GPUConfig.small(),
                                protocols=["RCC", "MESI"])
    knobs = FuzzKnobs(n_cores=2, warps_per_core=1, ops_per_warp=4,
                      n_addrs=2)
    ex = SweepExecutor(**ex_kwargs)
    result = run_campaign(runner, seed=7, n_programs=6, knobs=knobs,
                          shrink=False, executor=ex)
    tallies = {
        name: {"runs": t.runs, "errors": t.errors,
               "witness": t.witness_failures, "oracle": t.oracle_failures,
               "exhausted": t.oracle_exhausted,
               "cycles_mean": round(t.cycles.mean, 3)}
        for name, t in sorted(result.tallies.items())
    }
    return {"canonical": {"programs_run": result.programs_run,
                          "programs_failed": result.programs_failed,
                          "sc_violations": result.sc_violations,
                          "tallies": tallies},
            "stats": _stats_doc(ex)}


def _child_hostile(workdir: str, ex_kwargs: Dict[str, Any]) -> Dict[str, Any]:
    from repro.fuzz.workloads import run_hostile_campaign

    ex = SweepExecutor(**ex_kwargs)
    result = run_hostile_campaign(
        config_name="small", regimes="storm", runs=4, seed=0,
        protocols=("RCC",), baseline_path=None, executor=ex,
        calibration=1_000_000.0)
    return {"canonical": strip_wall_clock(result.to_json()),
            "stats": _stats_doc(ex)}


def _child_ablation(workdir: str, ex_kwargs: Dict[str, Any]) -> Dict[str, Any]:
    from repro.perf.bench import run_lease_ablation

    ex = SweepExecutor(**ex_kwargs)
    report = run_lease_ablation(quick=True, policies=["fixed"],
                                workloads=["bfs"], executor=ex)
    return {"canonical": strip_wall_clock(report),
            "stats": _stats_doc(ex)}


def _stats_doc(ex: SweepExecutor) -> Dict[str, Any]:
    s = ex.last_stats
    return {"n_cells": s.n_cells, "n_computed": s.n_computed,
            "n_cached": s.n_cached, "n_replayed": s.n_replayed,
            "retries": s.retries}


_CHILD_RUNNERS = {
    "cells": _child_cells,
    "litmus": _child_litmus,
    "hostile": _child_hostile,
    "ablation": _child_ablation,
}


def child_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for subprocess campaigns (the resume battery's target;
    also handy for reproducing resume bugs by hand)::

        RCC_CHAOS="exit-after=2" python -m repro.chaos.campaign \\
            child cells --workdir /tmp/c    # dies with exit code 86
        python -m repro.chaos.campaign child cells --workdir /tmp/c
    """
    import argparse

    p = argparse.ArgumentParser(prog="repro.chaos.campaign")
    p.add_argument("cmd", choices=["child"])
    p.add_argument("kind", choices=sorted(_CHILD_RUNNERS))
    p.add_argument("--workdir", required=True)
    p.add_argument("--jobs", type=int, default=1)
    args = p.parse_args(argv)

    os.makedirs(args.workdir, exist_ok=True)
    ex_kwargs = {"jobs": args.jobs,
                 "journal_dir": os.path.join(args.workdir, "journal"),
                 "retry": RetryPolicy(max_attempts=3, base_delay=0.01)}
    report = _CHILD_RUNNERS[args.kind](args.workdir, ex_kwargs)
    print(json.dumps(report, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(child_main())
