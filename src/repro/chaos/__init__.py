"""Deterministic chaos layer for the sweep stack.

:mod:`repro.chaos.plan` defines seeded :class:`FaultPlan` specs injected
behind ``RCC_CHAOS`` at the worker, cache, and journal boundaries;
:mod:`repro.chaos.campaign` asserts the executor's failure contract
under such plans (``repro-fuzz --chaos``) and drives the
kill-and-resume equivalence round-trips.
"""

from repro.chaos.plan import (
    CHAOS_EXIT_CODE, ChaosCrash, ChaosError, ChaosFlaky, ENV_CHAOS,
    FAULT_KINDS, FaultPlan, FaultSpec, arm_parent, plan_from_env,
)

__all__ = [
    "CHAOS_EXIT_CODE",
    "ChaosCrash",
    "ChaosError",
    "ChaosFlaky",
    "ENV_CHAOS",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "arm_parent",
    "plan_from_env",
]
