"""Deterministic fault plans: seeded chaos for the sweep stack.

A :class:`FaultPlan` is a seeded description of which faults to inject
where. Injection decisions are *pure functions* of
``(plan seed, site, fault kind, operation identity)`` — a sha256-based
uniform draw — so a plan makes exactly the same decisions regardless of
worker scheduling, process boundaries, or how many times the campaign is
(re)run. That determinism is what makes chaos findings replayable: the
failing plan spec is the reproducer.

Fault kinds and the boundary they fire at:

==============  =========  ====================================================
kind            site       effect
==============  =========  ====================================================
``crash``       worker     the worker process dies via ``os._exit`` (in a
                           forked child; in-process/serial execution raises
                           :class:`ChaosCrash` instead, because killing the
                           campaign's own process is the *campaign-kill*
                           fault's job, not this one's)
``hang``        worker     the worker sleeps past any reasonable timeout
                           (``hang-s``, default 30s)
``flaky``       worker     a transient :class:`ChaosFlaky` exception on
                           attempt 1 only — retries must absorb it
``torn-write``  cache      the committed cache entry is truncated mid-JSON,
                           emulating a non-atomic write torn by a crash
``bit-flip``    cache      one byte of the committed cache entry is flipped,
                           emulating silent media corruption
``enospc``      cache,     the write raises ``OSError(ENOSPC)`` — the cache
                journal    skips the entry, the journal degrades to
                           non-journaling with a surfaced warning
==============  =========  ====================================================

Plus the parent-side *campaign-kill* directive ``exit-after=N``: the
campaign process ``os._exit``\\ s immediately after the N-th completed
cell is journaled, emulating a SIGKILL at a deterministic point (the
kill-and-resume batteries are built on it).

Spec grammar (``RCC_CHAOS`` environment variable, or ``--chaos``)::

    spec      := clause (";" clause)*
    clause    := fault | "seed=" INT | "hang-s=" FLOAT | "exit-after=" INT
    fault     := kind [":" prob [":" mode]]
    kind      := "crash" | "hang" | "flaky" | "torn-write" | "bit-flip"
                 | "enospc"
    prob      := float in [0, 1]          (default 1.0)
    mode      := "first" | "always"       (default "first")

``mode=first`` fires only on a cell's first attempt (retries then
recover); ``mode=always`` fires on every attempt (the cell must surface
as a structured failure). Examples::

    RCC_CHAOS="flaky:0.5;seed=7"            # half the cells flake once
    RCC_CHAOS="crash:0.3:always;seed=1"     # 30% of cells crash forever
    RCC_CHAOS="torn-write;bit-flip:0.5"     # hostile filesystem
    RCC_CHAOS="exit-after=3"                # SIGKILL after 3 journaled cells

The executor, cache, and journal consult :func:`plan_from_env` at their
boundaries; with ``RCC_CHAOS`` unset every hook is a no-op.
"""

from __future__ import annotations

import errno
import hashlib
import os
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ReproError

#: Environment variable carrying the fault-plan spec (inherited by forked
#: sweep workers, so one setting arms every process of a campaign).
ENV_CHAOS = "RCC_CHAOS"

#: Set (by :func:`arm_parent`) to the campaign parent's pid so the
#: ``crash`` fault can tell a forked worker (safe to ``os._exit``) from
#: the campaign process itself (raise :class:`ChaosCrash` instead).
ENV_CHAOS_PARENT = "RCC_CHAOS_PARENT_PID"

#: Exit code used by chaos-injected process deaths (worker ``crash`` and
#: the parent-side ``exit-after`` campaign kill).
CHAOS_EXIT_CODE = 86

FAULT_KINDS = ("crash", "hang", "flaky", "torn-write", "bit-flip", "enospc")

_WORKER_KINDS = ("crash", "hang", "flaky")
_MODES = ("first", "always")


class ChaosError(ReproError):
    """Base class for injected chaos faults."""


class ChaosCrash(ChaosError):
    """The ``crash`` fault fired in-process (serial mode), where killing
    the interpreter would take the whole campaign down; classified under
    the ``crash`` taxonomy like a real worker death."""


class ChaosFlaky(ChaosError):
    """The ``flaky`` fault: a transient failure on a cell's first
    attempt. Bounded retries must absorb it without surfacing."""


@dataclass(frozen=True)
class FaultSpec:
    kind: str
    prob: float = 1.0
    mode: str = "first"


class FaultPlan:
    """A parsed, seeded chaos specification. See the module docstring."""

    def __init__(self, faults: Dict[str, FaultSpec], seed: int = 0,
                 hang_s: float = 30.0, exit_after: Optional[int] = None,
                 spec: str = ""):
        self.faults = dict(faults)
        self.seed = seed
        self.hang_s = hang_s
        self.exit_after = exit_after
        self.spec = spec
        self._completions = 0

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        faults: Dict[str, FaultSpec] = {}
        seed = 0
        hang_s = 30.0
        exit_after: Optional[int] = None
        for raw in spec.split(";"):
            clause = raw.strip()
            if not clause:
                continue
            if "=" in clause:
                key, _, val = clause.partition("=")
                key = key.strip()
                try:
                    if key == "seed":
                        seed = int(val)
                    elif key == "hang-s":
                        hang_s = float(val)
                    elif key == "exit-after":
                        exit_after = int(val)
                    else:
                        raise ChaosError(
                            f"unknown chaos directive {key!r} in {spec!r}")
                except ValueError:
                    raise ChaosError(
                        f"bad value for chaos directive {clause!r}") from None
                continue
            parts = clause.split(":")
            kind = parts[0].strip()
            if kind not in FAULT_KINDS:
                raise ChaosError(
                    f"unknown chaos fault {kind!r} in {spec!r} "
                    f"(choose from {', '.join(FAULT_KINDS)})")
            prob = 1.0
            mode = "first"
            try:
                if len(parts) > 1 and parts[1].strip():
                    prob = float(parts[1])
                if len(parts) > 2 and parts[2].strip():
                    mode = parts[2].strip()
            except ValueError:
                raise ChaosError(
                    f"bad probability in chaos clause {clause!r}") from None
            if not 0.0 <= prob <= 1.0:
                raise ChaosError(
                    f"chaos probability must be in [0, 1]: {clause!r}")
            if mode not in _MODES:
                raise ChaosError(
                    f"chaos mode must be one of {_MODES}: {clause!r}")
            faults[kind] = FaultSpec(kind=kind, prob=prob, mode=mode)
        return cls(faults, seed=seed, hang_s=hang_s, exit_after=exit_after,
                   spec=spec)

    # ------------------------------------------------------------------
    def _draw(self, *parts) -> float:
        """Uniform [0,1) draw, a pure function of (seed, *parts)."""
        digest = hashlib.sha256(
            repr((self.seed,) + parts).encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") / 2.0 ** 64

    def decide(self, site: str, kind: str, identity: str,
               attempt: int = 1) -> bool:
        """Should fault ``kind`` fire at ``site`` for this operation?

        Deterministic in ``(seed, site, kind, identity)``; ``attempt``
        only gates ``mode=first`` faults (fire on attempt 1, spare the
        retries).
        """
        fault = self.faults.get(kind)
        if fault is None or fault.prob <= 0.0:
            return False
        if fault.mode == "first" and attempt > 1:
            return False
        return self._draw(site, kind, identity) < fault.prob

    # ------------------------------------------------------------------
    # Worker-boundary faults
    # ------------------------------------------------------------------
    def fire_worker(self, identity: str, attempt: int = 1) -> None:
        """Run the worker-site faults for one cell evaluation. Called at
        the top of the executor's worker wrapper, in whatever process is
        about to evaluate the cell."""
        if self.decide("worker", "crash", identity, attempt):
            parent = os.environ.get(ENV_CHAOS_PARENT)
            if parent and parent != str(os.getpid()):
                os._exit(CHAOS_EXIT_CODE)
            raise ChaosCrash(
                f"chaos: injected worker crash for {identity!r} "
                f"(attempt {attempt}, in-process)")
        if self.decide("worker", "hang", identity, attempt):
            time.sleep(self.hang_s)
        if self.decide("worker", "flaky", identity, attempt):
            raise ChaosFlaky(
                f"chaos: injected transient fault for {identity!r} "
                f"(attempt {attempt})")

    # ------------------------------------------------------------------
    # Cache/journal-boundary faults
    # ------------------------------------------------------------------
    def check_write(self, site: str, identity: str) -> None:
        """Raise ``OSError(ENOSPC)`` when the ``enospc`` fault fires for
        this write (``site`` is ``"cache"`` or ``"journal"``)."""
        if self.decide(site, "enospc", identity):
            raise OSError(errno.ENOSPC,
                          f"chaos: injected ENOSPC on {site} write "
                          f"for {identity!r}")

    def corrupt_bytes(self, identity: str,
                      data: bytes) -> Tuple[bytes, Optional[str]]:
        """Apply cache-corruption faults to an entry about to be
        committed; returns ``(possibly damaged bytes, fault kind or
        None)``."""
        if self.decide("cache", "torn-write", identity):
            return data[:max(1, len(data) // 2)], "torn-write"
        if self.decide("cache", "bit-flip", identity):
            # Flip one bit of one byte in the payload's middle —
            # deterministically chosen, never the first/last byte (those
            # would break the JSON envelope and be caught trivially).
            if len(data) > 2:
                pos = 1 + int(self._draw("cache", "bit-flip-pos", identity)
                              * (len(data) - 2))
                flipped = data[pos] ^ (1 << 4)
                data = data[:pos] + bytes([flipped]) + data[pos + 1:]
            return data, "bit-flip"
        return data, None

    # ------------------------------------------------------------------
    # Campaign-kill directive
    # ------------------------------------------------------------------
    def count_completion(self) -> None:
        """Account one journaled cell completion; ``os._exit`` when the
        ``exit-after`` budget is reached (a deterministic SIGKILL)."""
        if self.exit_after is None:
            return
        self._completions += 1
        if self._completions >= self.exit_after:
            os._exit(CHAOS_EXIT_CODE)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        parts = [f"{f.kind}:{f.prob:g}:{f.mode}"
                 for f in self.faults.values()]
        parts.append(f"seed={self.seed}")
        if self.exit_after is not None:
            parts.append(f"exit-after={self.exit_after}")
        return ";".join(parts)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<FaultPlan {self.describe()}>"


# ----------------------------------------------------------------------
# Environment plumbing
# ----------------------------------------------------------------------

#: Memoized parse of the last-seen ``RCC_CHAOS`` value (the plan object
#: also carries the ``exit-after`` counter, which must persist across
#: batches within one campaign process).
_CACHED: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)


def plan_from_env() -> Optional[FaultPlan]:
    """The active fault plan, or None when ``RCC_CHAOS`` is unset/empty.

    Parsed once per distinct spec value per process; forked workers
    inherit the environment and re-parse on first use.
    """
    global _CACHED
    spec = os.environ.get(ENV_CHAOS)
    if not spec:
        return None
    cached_spec, cached_plan = _CACHED
    if spec == cached_spec:
        return cached_plan
    plan = FaultPlan.parse(spec)
    _CACHED = (spec, plan)
    return plan


def arm_parent() -> None:
    """Record this process as the campaign parent (see ``crash`` fault).

    Called by the executor before building worker pools so forked
    children can tell themselves apart from the campaign process.
    """
    if os.environ.get(ENV_CHAOS):
        os.environ[ENV_CHAOS_PARENT] = str(os.getpid())
