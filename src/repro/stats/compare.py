"""Run-comparison helpers: normalize a set of SimResults against a
baseline, the way every figure in the paper is plotted."""

from __future__ import annotations

from statistics import geometric_mean
from typing import Dict, Iterable, List, Sequence

from repro.sim.results import SimResult


def compare_runs(results: Sequence[SimResult],
                 baseline_protocol: str = "MESI") -> Dict[str, Dict[str, float]]:
    """Normalize each run against the baseline run of the same workload.

    Returns ``{protocol: {metric: normalized value}}`` with speedup,
    energy, and traffic ratios (baseline == 1.0 by construction).
    """
    by_key = {(r.protocol, r.workload): r for r in results}
    workloads = sorted({r.workload for r in results})
    protocols = sorted({r.protocol for r in results})
    out: Dict[str, Dict[str, float]] = {}
    for p in protocols:
        speed, energy, traffic = [], [], []
        for w in workloads:
            base = by_key.get((baseline_protocol, w))
            run = by_key.get((p, w))
            if base is None or run is None:
                continue
            # Degenerate runs (empty trace -> 0 cycles, energy model off
            # -> 0 total) must neither divide by zero nor feed a zero to
            # the geometric mean; a zero on either side counts as 1.
            speed.append(max(1, base.cycles) / max(1, run.cycles))
            energy.append((run.energy.total or 1.0)
                          / (base.energy.total or 1.0))
            traffic.append(max(1, run.total_flits) / max(1, base.total_flits))
        if speed:
            out[p] = {
                "speedup": geometric_mean(speed),
                "energy": geometric_mean(energy),
                "traffic": geometric_mean(traffic),
            }
    return out


def speedup_table(results: Sequence[SimResult],
                  baseline_protocol: str = "MESI") -> List[List[str]]:
    """Rows of (workload, protocol, speedup) ready for render_table."""
    by_key = {(r.protocol, r.workload): r for r in results}
    rows: List[List[str]] = []
    for (p, w), run in sorted(by_key.items(), key=lambda kv: (kv[0][1],
                                                              kv[0][0])):
        base = by_key.get((baseline_protocol, w))
        if base is None:
            continue
        rows.append([w, p, f"{base.cycles / max(1, run.cycles):.2f}x"])
    return rows
