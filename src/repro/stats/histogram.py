"""Log-bucketed latency histograms.

Memory latencies in a GPU span three orders of magnitude (L1 hit ~1 cycle,
DRAM round trip ~1000), so fixed-width bins are useless; this histogram
buckets by powers of two and reports percentiles by linear interpolation
inside a bucket — cheap enough to keep one per (op kind) per run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class Histogram:
    """Power-of-two-bucketed histogram of non-negative integers."""

    def __init__(self, max_value: int = 1 << 24):
        self.max_value = max_value
        n_buckets = max_value.bit_length() + 1
        self._buckets: List[int] = [0] * n_buckets
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    @staticmethod
    def _bucket_of(value: int) -> int:
        return value.bit_length()  # 0 -> 0, 1 -> 1, 2..3 -> 2, 4..7 -> 3 ...

    def _bucket_bounds(self, i: int) -> Tuple[int, int]:
        """Nominal [lo, hi] of bucket ``i`` — except the last bucket,
        which is a *saturation* bucket: both ``add`` (values clamped to
        ``max_value``) and ``merge`` (a wider histogram's overflow) can
        park samples there that exceed its power-of-two range, so its
        upper bound extends to the observed max. Without this, a merged
        histogram reports every percentile below samples its own
        min/max/mean prove it holds."""
        lo = 0 if i == 0 else 1 << (i - 1)
        hi = 0 if i == 0 else (1 << i) - 1
        if i == len(self._buckets) - 1 and self.max is not None:
            hi = max(hi, self.max)
        return lo, hi

    def add(self, value: int, count: int = 1) -> None:
        if value < 0:
            raise ValueError(f"negative sample: {value}")
        if value > self.max_value:
            value = self.max_value
        self._buckets[value.bit_length()] += count
        self.count += count
        self.total += value * count
        mn = self.min
        if mn is None or value < mn:
            self.min = value
        mx = self.max
        if mx is None or value > mx:
            self.max = value

    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Approximate p-th percentile (0 < p <= 100)."""
        if not 0 < p <= 100:
            raise ValueError(f"percentile out of range: {p}")
        if self.count == 0:
            return 0.0
        target = self.count * p / 100.0
        seen = 0
        for i, n in enumerate(self._buckets):
            if n == 0:
                continue
            if seen + n >= target:
                lo, hi = self._bucket_bounds(i)
                # The samples can only occupy [min, max] of the bucket's
                # nominal range; clamping keeps e.g. a single-sample
                # histogram's every percentile equal to that sample.
                if self.min is not None:
                    lo = max(lo, self.min)
                if self.max is not None:
                    hi = min(hi, self.max)
                if hi <= lo:
                    return float(lo)
                frac = (target - seen) / n
                return lo + frac * (hi - lo)
            seen += n
        return float(self.max or 0)

    def buckets(self) -> List[Tuple[int, int, int]]:
        """Non-empty buckets as (low, high, count)."""
        out = []
        for i, n in enumerate(self._buckets):
            if n:
                out.append(self._bucket_bounds(i) + (n,))
        return out

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram into this one (per-core -> global)."""
        for i, n in enumerate(other._buckets):
            # A wider histogram's overflow buckets fold into our top
            # (saturation) bucket instead of silently vanishing, so
            # count/total/percentiles stay mutually consistent.
            self._buckets[min(i, len(self._buckets) - 1)] += n
        self.count += other.count
        self.total += other.total
        for bound in (other.min, other.max):
            if bound is not None:
                self.min = bound if self.min is None else min(self.min, bound)
                self.max = bound if self.max is None else max(self.max, bound)

    def to_dict(self) -> Dict[str, object]:
        """JSON-able snapshot (inverse of :meth:`from_dict`)."""
        return {
            "max_value": self.max_value,
            "buckets": list(self._buckets),
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Histogram":
        """Rebuild a histogram serialized with :meth:`to_dict`."""
        h = cls(max_value=int(data["max_value"]))
        buckets = list(data["buckets"])
        if len(buckets) != len(h._buckets):
            raise ValueError(
                f"histogram bucket count mismatch: {len(buckets)} vs "
                f"{len(h._buckets)}")
        h._buckets = [int(n) for n in buckets]
        h.count = int(data["count"])
        h.total = int(data["total"])
        h.min = None if data["min"] is None else int(data["min"])
        h.max = None if data["max"] is None else int(data["max"])
        return h

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": round(self.mean, 2),
            "p50": round(self.percentile(50), 1),
            "p90": round(self.percentile(90), 1),
            "p99": round(self.percentile(99), 1),
            "min": self.min or 0,
            "max": self.max or 0,
        }
