"""Windowed time series: sample a counter every N cycles.

Used to watch quantities evolve over a run (e.g. logical-clock skew across
cores, MSHR occupancy, NoC injection rate) without storing per-event data.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.timing.engine import Engine


class TimeSeries:
    """Periodically samples ``probe()`` until ``active()`` turns false."""

    def __init__(self, engine: Engine, probe: Callable[[], float],
                 period: int = 1000,
                 active: Optional[Callable[[], bool]] = None,
                 name: str = "series"):
        if period <= 0:
            raise ValueError("period must be positive")
        self.engine = engine
        self.probe = probe
        self.period = period
        self.active = active or (lambda: True)
        self.name = name
        self.samples: List[Tuple[int, float]] = []
        self._started = False

    def start(self) -> None:
        if not self._started:
            self._started = True
            self.engine.schedule_in(self.period, self._tick)

    def _tick(self) -> None:
        if not self.active():
            return  # stop sampling; lets the event queue drain
        self.samples.append((self.engine.now, float(self.probe())))
        self.engine.schedule_in(self.period, self._tick)

    # ------------------------------------------------------------------
    def values(self) -> List[float]:
        return [v for _, v in self.samples]

    @property
    def mean(self) -> float:
        vals = self.values()
        return sum(vals) / len(vals) if vals else 0.0

    @property
    def peak(self) -> float:
        vals = self.values()
        return max(vals) if vals else 0.0

    def last(self) -> float:
        return self.samples[-1][1] if self.samples else 0.0


def clock_skew_probe(l1s) -> Callable[[], float]:
    """Probe: spread between the fastest and slowest logical clock — the
    'relativistic' divergence between cores, interesting to watch on
    workloads with rare sharing (dlb) vs constant sharing (vpr)."""
    def probe() -> float:
        clocks = [l1.clock.value for l1 in l1s if hasattr(l1, "clock")]
        return float(max(clocks) - min(clocks)) if clocks else 0.0
    return probe


def mshr_occupancy_probe(controllers) -> Callable[[], float]:
    """Probe: total outstanding MSHR entries across controllers."""
    def probe() -> float:
        return float(sum(len(c.mshr) for c in controllers))
    return probe
