"""Measurement utilities: histograms, time-series samplers, and run
comparison helpers used by the harness and available to downstream users."""

from repro.stats.histogram import Histogram
from repro.stats.timeseries import TimeSeries
from repro.stats.compare import compare_runs, speedup_table

__all__ = ["Histogram", "TimeSeries", "compare_runs", "speedup_table"]
