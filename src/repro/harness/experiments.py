"""Per-figure/table experiment definitions.

Every experiment mirrors one table or figure of the paper's evaluation:
same protocols, same workload grouping (inter- vs intra-workgroup), same
normalizations (MESI baseline for Figs. 8/9, RCC-SC baseline for Fig. 10,
-R / -P baselines for Fig. 7). Absolute cycle counts differ from the
paper's GPGPU-Sim testbed; the *shape* — who wins, by what factor — is the
reproduction target, and each experiment records the paper's headline
number next to the measured one.
"""

from __future__ import annotations

from statistics import geometric_mean
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.config import GPUConfig, PROTOCOLS
from repro.exec import SimCell, SweepExecutor, canonical_overrides
from repro.harness.complexity import table_v_rows
from repro.harness.tables import render_table
from repro.sim.results import SimResult
from repro.workloads import WORKLOADS, inter_workgroup

#: One sweep cell as the experiments name it: (protocol, workload) or
#: (protocol, workload, ts-override dict).
RunSpec = Tuple[Any, ...]


class ExperimentResult:
    """Rows of one regenerated table/figure plus paper-vs-measured notes."""

    def __init__(self, name: str, title: str, columns: List[str]):
        self.name = name
        self.title = title
        self.columns = columns
        self.rows: List[List[Any]] = []
        #: claim -> (paper value, measured value)
        self.claims: Dict[str, Tuple[str, str]] = {}
        self.notes: List[str] = []

    def add_row(self, *cells: Any) -> None:
        self.rows.append(list(cells))

    def claim(self, description: str, paper: str, measured: str) -> None:
        self.claims[description] = (paper, measured)

    def render(self) -> str:
        out = [render_table(self.columns, self.rows, title=self.title)]
        if self.claims:
            out.append("")
            out.append("paper vs measured:")
            for desc, (paper, measured) in self.claims.items():
                out.append(f"  {desc}: paper {paper} | measured {measured}")
        for note in self.notes:
            out.append(f"note: {note}")
        return "\n".join(out)


class Harness:
    """Runs and caches the simulations behind all experiments.

    All simulation runs — single cells and whole figure grids alike —
    route through one :meth:`run_cells` entry point on the sweep executor
    (:mod:`repro.exec`), so ``--jobs N`` parallelism and the on-disk
    result cache apply uniformly to every experiment. The default
    executor is serial and cache-less, which reproduces the historical
    in-process behavior exactly.
    """

    def __init__(self, cfg: Optional[GPUConfig] = None,
                 intensity: float = 0.25, seed: int = 1234,
                 executor: Optional[SweepExecutor] = None):
        self.cfg = cfg or GPUConfig.bench()
        self.intensity = intensity
        self.seed = seed
        self.executor = executor or SweepExecutor()
        self._cache: Dict[Tuple, SimResult] = {}

    # ------------------------------------------------------------------
    def _canon(self, spec: RunSpec) -> Tuple[str, str, Tuple]:
        protocol, workload = spec[0], spec[1]
        overrides = spec[2] if len(spec) > 2 else None
        return protocol, workload, canonical_overrides(overrides)

    def _key(self, protocol: str, workload: str, overrides: Tuple) -> Tuple:
        return (protocol, workload, self.intensity, self.seed, overrides)

    def _cell(self, protocol: str, workload: str,
              overrides: Tuple) -> SimCell:
        return SimCell(cfg=self.cfg, protocol=protocol, workload=workload,
                       intensity=self.intensity, seed=self.seed,
                       ts_overrides=overrides)

    def prefetch(self, specs: Iterable[RunSpec]) -> None:
        """Run every not-yet-cached spec as one batch on the executor.

        Every experiment declares its full simulation grid up front via
        this method, which is what lets ``--jobs N`` fan the independent
        cells out over worker processes.
        """
        todo: Dict[Tuple, SimCell] = {}
        for spec in specs:
            protocol, workload, overrides = self._canon(spec)
            key = self._key(protocol, workload, overrides)
            if key not in self._cache and key not in todo:
                todo[key] = self._cell(protocol, workload, overrides)
        if not todo:
            return
        results = self.executor.run_cells(list(todo.values()))
        for key, result in zip(todo, results):
            self._cache[key] = result

    def run_cells(self, specs: Iterable[RunSpec]) -> List[SimResult]:
        """Run (or replay) the given specs; results in input order."""
        specs = list(specs)
        self.prefetch(specs)
        return [self._cache[self._key(*self._canon(s))] for s in specs]

    def run(self, protocol: str, workload: str,
            ts_overrides: Optional[Dict[str, Any]] = None) -> SimResult:
        overrides = canonical_overrides(ts_overrides)
        key = self._key(protocol, workload, overrides)
        if key not in self._cache:
            self.prefetch([(protocol, workload, ts_overrides)])
        return self._cache[key]

    def sweep(self, protocols: List[str], workloads: List[str],
              **kw) -> Dict[Tuple[str, str], SimResult]:
        ts_overrides = kw.get("ts_overrides")
        specs = [(p, w, ts_overrides) for w in workloads for p in protocols]
        results = self.run_cells(specs)
        return {(p, w): res
                for (p, w, _), res in zip(specs, results)}

    @staticmethod
    def _gmean(values: List[float]) -> float:
        return geometric_mean([max(v, 1e-12) for v in values])

    # ------------------------------------------------------------------
    # Figure 1 — motivation: SC stalls and store latencies under MESI-WT
    # ------------------------------------------------------------------
    def fig1(self) -> ExperimentResult:
        exp = ExperimentResult(
            "fig1",
            "Fig. 1 - SC overheads under the MESI-WT baseline "
            "(a: % mem ops SC-stalled; b: % stall cycles due to a prior "
            "store; c: load/store latency; d: SC-ideal speedup)",
            ["workload", "class", "stall_frac", "store_blame",
             "ld_lat", "st_lat", "st/ld", "ideal_speedup"],
        )
        self.prefetch([(p, w) for w in WORKLOADS
                       for p in ("MESI", "SC-IDEAL")])
        inter_ratio, inter_speedup, intra_speedup = [], [], []
        for name in WORKLOADS:
            base = self.run("MESI", name)
            ideal = self.run("SC-IDEAL", name)
            cat = WORKLOADS[name].category
            ratio = (base.avg_store_latency / base.avg_load_latency
                     if base.avg_load_latency else 0.0)
            speedup = base.cycles / ideal.cycles
            exp.add_row(name, cat, base.sc_stall_fraction,
                        base.sc_stall_store_fraction,
                        base.avg_load_latency, base.avg_store_latency,
                        ratio, speedup)
            if cat == "inter":
                inter_ratio.append(ratio)
                inter_speedup.append(speedup)
            else:
                intra_speedup.append(speedup)
        exp.claim("store/load latency ratio, inter-wg gmean (Fig 1c)",
                  "2.4x (up to 3.7x)", f"{self._gmean(inter_ratio):.2f}x")
        exp.claim("SC-ideal speedup, inter-wg gmean (Fig 1d)",
                  "1.6x", f"{self._gmean(inter_speedup):.2f}x")
        exp.claim("SC-ideal speedup, intra-wg gmean (Fig 1d)",
                  "~1.0x", f"{self._gmean(intra_speedup):.2f}x")
        return exp

    # ------------------------------------------------------------------
    # Figure 6 — expired L1 copies and renewability under RCC
    # ------------------------------------------------------------------
    def fig6(self) -> ExperimentResult:
        exp = ExperimentResult(
            "fig6",
            "Fig. 6 - loads finding V-but-expired blocks (left) and the "
            "fraction of expired refetches the L2 can renew (right), RCC",
            ["workload", "class", "expired_frac", "renewable_frac"],
        )
        self.prefetch([("RCC", w) for w in WORKLOADS])
        inter_expired, intra_expired, renewable = [], [], []
        for name in WORKLOADS:
            res = self.run("RCC", name)
            cat = WORKLOADS[name].category
            exp.add_row(name, cat, res.l1_expired_fraction,
                        res.renewable_fraction)
            if cat == "inter":
                inter_expired.append(res.l1_expired_fraction)
                renewable.append(res.renewable_fraction)
            else:
                intra_expired.append(res.l1_expired_fraction)
        exp.claim("expired-load fraction, intra-wg (Fig 6 left)",
                  "negligible",
                  f"avg {sum(intra_expired) / len(intra_expired):.3f}")
        exp.claim("expired loads renewable, inter-wg (Fig 6 right)",
                  "most are premature/renewable",
                  f"avg {sum(renewable) / len(renewable):.2f}")
        return exp

    # ------------------------------------------------------------------
    # Figure 7 — renew mechanism (-R/+R) and lease predictor (-P/+P)
    # ------------------------------------------------------------------
    def fig7(self) -> ExperimentResult:
        exp = ExperimentResult(
            "fig7",
            "Fig. 7 - interconnect traffic with/without RENEW (left) and "
            "expired reads with/without the lease predictor (right), RCC, "
            "inter-workgroup workloads",
            ["workload", "traffic(-R)", "traffic(+R)", "+R/-R",
             "expired(-P)", "expired(+P)", "+P/-P"],
        )
        self.prefetch([("RCC", w, ov) for w in inter_workgroup()
                       for ov in (None, {"renew_enabled": False},
                                  {"predictor_enabled": False})])
        traffic_ratios, expired_ratios = [], []
        for name in inter_workgroup():
            plus_r = self.run("RCC", name)
            minus_r = self.run("RCC", name,
                               ts_overrides={"renew_enabled": False})
            plus_p = plus_r
            minus_p = self.run("RCC", name,
                               ts_overrides={"predictor_enabled": False})
            t_ratio = plus_r.total_flits / max(1, minus_r.total_flits)
            e_ratio = (plus_p.l1_expired_fraction
                       / max(1e-9, minus_p.l1_expired_fraction))
            exp.add_row(name, minus_r.total_flits, plus_r.total_flits,
                        t_ratio, minus_p.l1_expired_fraction,
                        plus_p.l1_expired_fraction, e_ratio)
            traffic_ratios.append(t_ratio)
            expired_ratios.append(e_ratio)
        exp.claim("traffic reduction from RENEW, inter-wg (Fig 7 left)",
                  "-15%",
                  f"{(self._gmean(traffic_ratios) - 1) * 100:+.1f}%")
        exp.claim("expired-read reduction from predictor (Fig 7 right)",
                  "-31%",
                  f"{(self._gmean(expired_ratios) - 1) * 100:+.1f}%")
        return exp

    # ------------------------------------------------------------------
    # Figure 8 — SC stalls and stall-resolve latency vs MESI
    # ------------------------------------------------------------------
    def fig8(self) -> ExperimentResult:
        exp = ExperimentResult(
            "fig8",
            "Fig. 8 - SC issue-stall cycles (top) and stall resolve "
            "latency (bottom), normalized to MESI-WT",
            ["workload", "class", "stalls_TCS/MESI", "stalls_RCC/MESI",
             "resolve_TCS/MESI", "resolve_RCC/MESI"],
        )
        sc_protos = ("MESI", "TCS", "RCC")
        self.prefetch([(p, w) for w in inter_workgroup()
                       for p in sc_protos])
        rel_stall = {p: [] for p in sc_protos}
        rel_resolve = {p: [] for p in sc_protos}
        for name in inter_workgroup():
            res = {p: self.run(p, name) for p in sc_protos}
            base_stall = max(1, res["MESI"].sc_stall_cycles)
            base_resolve = max(1e-9, res["MESI"].sc_stall_resolve_latency)
            row = [name, "inter"]
            for p in ("TCS", "RCC"):
                row.append(res[p].sc_stall_cycles / base_stall)
            for p in ("TCS", "RCC"):
                row.append(res[p].sc_stall_resolve_latency / base_resolve)
            exp.add_row(*row)
            for p in sc_protos:
                rel_stall[p].append(res[p].sc_stall_cycles / base_stall)
                rel_resolve[p].append(
                    res[p].sc_stall_resolve_latency / base_resolve)
        g_stall_rcc = self._gmean(rel_stall["RCC"])
        g_stall_tcs = self._gmean(rel_stall["TCS"])
        g_res_rcc = self._gmean(rel_resolve["RCC"])
        g_res_tcs = self._gmean(rel_resolve["TCS"])
        exp.claim("SC stall reduction, RCC vs MESI (Fig 8 top)", "-52%",
                  f"{(g_stall_rcc - 1) * 100:+.1f}%")
        exp.claim("SC stall reduction, RCC vs TCS (Fig 8 top)", "-25%",
                  f"{(g_stall_rcc / g_stall_tcs - 1) * 100:+.1f}%")
        exp.claim("stall resolve latency, RCC vs MESI (Fig 8 bottom)",
                  "-35%", f"{(g_res_rcc - 1) * 100:+.1f}%")
        exp.claim("stall resolve latency, RCC vs TCS (Fig 8 bottom)",
                  "-11%", f"{(g_res_rcc / g_res_tcs - 1) * 100:+.1f}%")
        return exp

    # ------------------------------------------------------------------
    # Figure 9 — performance, energy, traffic vs the MESI baseline
    # ------------------------------------------------------------------
    def fig9(self) -> ExperimentResult:
        exp = ExperimentResult(
            "fig9",
            "Fig. 9 - (a) speedup, (b) interconnect energy, (c) traffic, "
            "all normalized to MESI-WT",
            ["workload", "class", "speedup_TCS", "speedup_TCW",
             "speedup_RCC", "energy_TCS", "energy_TCW", "energy_RCC",
             "traffic_TCS", "traffic_TCW", "traffic_RCC"],
        )
        protos = ("MESI", "TCS", "TCW", "RCC")
        self.prefetch([(p, w) for w in WORKLOADS for p in protos])
        agg = {("speed", p): {"inter": [], "intra": []} for p in protos}
        agg.update({("energy", p): {"inter": [], "intra": []}
                    for p in protos})
        for name in WORKLOADS:
            res = {p: self.run(p, name) for p in protos}
            cat = WORKLOADS[name].category
            base = res["MESI"]
            row = [name, cat]
            for p in ("TCS", "TCW", "RCC"):
                row.append(base.cycles / res[p].cycles)
            for p in ("TCS", "TCW", "RCC"):
                row.append(res[p].energy.total / base.energy.total)
            for p in ("TCS", "TCW", "RCC"):
                row.append(res[p].total_flits / base.total_flits)
            exp.add_row(*row)
            for p in protos:
                agg[("speed", p)][cat].append(base.cycles / res[p].cycles)
                agg[("energy", p)][cat].append(
                    res[p].energy.total / base.energy.total)
        g = {k: {c: self._gmean(v) for c, v in d.items()}
             for k, d in agg.items()}
        exp.claim("speedup vs MESI, inter-wg (Fig 9a)", "RCC +76%",
                  f"RCC {(g[('speed', 'RCC')]['inter'] - 1) * 100:+.0f}%")
        exp.claim("speedup vs TCS, inter-wg (Fig 9a)", "RCC +29%",
                  f"RCC {(g[('speed', 'RCC')]['inter'] / g[('speed', 'TCS')]['inter'] - 1) * 100:+.0f}%")
        exp.claim("RCC vs TCW (best non-SC), inter-wg (Fig 9a)",
                  "within 7%",
                  f"{(1 - g[('speed', 'RCC')]['inter'] / g[('speed', 'TCW')]['inter']) * 100:.0f}% behind")
        exp.claim("speedup vs MESI, intra-wg (Fig 9a)", "RCC +10%",
                  f"RCC {(g[('speed', 'RCC')]['intra'] - 1) * 100:+.0f}%")
        exp.claim("interconnect energy vs MESI, inter-wg (Fig 9b)",
                  "RCC -45%",
                  f"RCC {(g[('energy', 'RCC')]['inter'] - 1) * 100:+.0f}%")
        exp.claim("interconnect energy vs TCS, inter-wg (Fig 9b)",
                  "RCC -25%",
                  f"RCC {(g[('energy', 'RCC')]['inter'] / g[('energy', 'TCS')]['inter'] - 1) * 100:+.0f}%")
        return exp

    # ------------------------------------------------------------------
    # Figure 10 — weak-ordering variants vs RCC-SC
    # ------------------------------------------------------------------
    def fig10(self) -> ExperimentResult:
        exp = ExperimentResult(
            "fig10",
            "Fig. 10 - speedup of weak-ordering implementations over "
            "RCC-SC",
            ["workload", "class", "RCC-WO/RCC-SC", "TCW/RCC-SC"],
        )
        self.prefetch([(p, w) for w in WORKLOADS
                       for p in ("RCC", "RCC-WO", "TCW")])
        agg = {"RCC-WO": [], "TCW": []}
        for name in WORKLOADS:
            base = self.run("RCC", name)
            row = [name, WORKLOADS[name].category]
            for p in ("RCC-WO", "TCW"):
                s = base.cycles / self.run(p, name).cycles
                row.append(s)
                if WORKLOADS[name].category == "inter":
                    agg[p].append(s)
            exp.add_row(*row)
        exp.claim("RCC-WO over RCC-SC, inter-wg (Fig 10)", "+7%",
                  f"{(self._gmean(agg['RCC-WO']) - 1) * 100:+.0f}%")
        exp.claim("TCW over RCC-SC, inter-wg (Fig 10)", "+7% (neck-to-neck "
                  "with RCC-WO)",
                  f"{(self._gmean(agg['TCW']) - 1) * 100:+.0f}%")
        return exp

    # ------------------------------------------------------------------
    # Differential fuzz campaign (correctness, not a paper figure)
    # ------------------------------------------------------------------
    def fuzz(self, n_programs: int = 50,
             seed: Optional[int] = None) -> ExperimentResult:
        """Differential fuzz: random programs under every protocol,
        SC protocols cross-checked against the witness checker and the
        SC interleaving oracle (see :mod:`repro.fuzz`)."""
        # Imported lazily: repro.fuzz.differential imports ExperimentResult
        # from this module, so a top-level import would be circular.
        from repro.fuzz import DifferentialRunner, run_campaign
        runner = DifferentialRunner(cfg=GPUConfig.small())
        result = run_campaign(runner, seed=self.seed if seed is None
                              else seed, n_programs=n_programs,
                              executor=self.executor)
        return result.as_experiment()

    # ------------------------------------------------------------------
    # Tables
    # ------------------------------------------------------------------
    def table1(self) -> ExperimentResult:
        exp = ExperimentResult(
            "table1", "Table I - SC and store-permission capability matrix",
            ["protocol", "SC support", "stall-free store permissions"])
        exp.add_row("MESI", "yes", "no (invalidate sharers)")
        exp.add_row("TCS", "yes", "no (wait until lease expires)")
        exp.add_row("TCW", "no", "yes (but stall for fences)")
        exp.add_row("RCC", "yes", "yes")
        return exp

    def table3(self) -> ExperimentResult:
        cfg = self.cfg
        exp = ExperimentResult(
            "table3", "Table III - simulated GPU configuration",
            ["parameter", "value"])
        exp.add_row("GPU cores", cfg.n_cores)
        exp.add_row("warps/core", cfg.warps_per_core)
        exp.add_row("L1 per core",
                    f"{cfg.l1.size_bytes // 1024} KB, {cfg.l1.assoc}-way, "
                    f"{cfg.l1.block_bytes} B lines, "
                    f"{cfg.l1.mshr_entries} MSHRs")
        exp.add_row("L2 partitions", cfg.l2_banks)
        exp.add_row("L2 per partition",
                    f"{cfg.l2_per_bank.size_bytes // 1024} KB, "
                    f"{cfg.l2_per_bank.assoc}-way, "
                    f"{cfg.l2_per_bank.mshr_entries} MSHRs")
        exp.add_row("L2 min round trip", f"{cfg.l2_min_round_trip} cycles")
        exp.add_row("DRAM min latency", f"{cfg.dram.min_latency} cycles")
        exp.add_row("logical timestamps",
                    f"{cfg.ts.bits} bits, leases {cfg.ts.lease_min}-"
                    f"{cfg.ts.lease_max} (predicted)")
        return exp

    def table4(self) -> ExperimentResult:
        exp = ExperimentResult(
            "table4", "Table IV - benchmark models",
            ["name", "class", "pattern modelled"])
        for name, cls in WORKLOADS.items():
            exp.add_row(name, cls.category, cls.description)
        return exp

    def table5(self) -> ExperimentResult:
        exp = ExperimentResult(
            "table5", "Table V - protocol states and transitions "
            "(paper-reported; RCC matches this implementation's FSM)",
            ["protocol", "L1 states", "L1 transitions", "L2 states",
             "L2 transitions"])
        for row in table_v_rows():
            exp.add_row(*row)
        exp.notes.append(
            "RCC's state sets here are implemented exactly: L1 {I,V} + "
            "{IV,II,VI}, L2 {I,V} + {IV,IAV} (see repro.common.types).")
        return exp


#: name -> method name, for the CLI and the benchmark files.
ALL_EXPERIMENTS: Dict[str, str] = {
    "fig1": "fig1",
    "fig6": "fig6",
    "fig7": "fig7",
    "fig8": "fig8",
    "fig9": "fig9",
    "fig10": "fig10",
    "table1": "table1",
    "table3": "table3",
    "table4": "table4",
    "table5": "table5",
    "fuzz": "fuzz",
}
