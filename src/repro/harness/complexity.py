"""Protocol complexity accounting (paper Table V).

The paper argues RCC is simpler than the alternatives: fewer controller
states and transitions make verification tractable. The published counts
are reproduced here as reference data; alongside them we report the state
counts of *this implementation's* controllers (our baselines are modelled
at the fidelity the evaluation needs, so their transition counts are not
directly comparable to a full Ruby SLICC specification — the RCC row,
which we implement transition-for-transition from Fig. 5, is).
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.types import L1State, L2State

#: Paper Table V: states are (stable + transient); transitions as counted
#: in the authors' SLICC-level specifications.
PAPER_TABLE_V: Dict[str, Dict[str, object]] = {
    "MESI": {"l1_states": 16, "l1_stable": 5, "l1_transitions": 81,
             "l2_states": 15, "l2_stable": 4, "l2_transitions": 50},
    "TCS": {"l1_states": 5, "l1_stable": 2, "l1_transitions": 27,
            "l2_states": 8, "l2_stable": 4, "l2_transitions": 23},
    "TCW": {"l1_states": 5, "l1_stable": 2, "l1_transitions": 42,
            "l2_states": 8, "l2_stable": 4, "l2_transitions": 34},
    "RCC": {"l1_states": 5, "l1_stable": 2, "l1_transitions": 33,
            "l2_states": 4, "l2_stable": 2, "l2_transitions": 14},
}


def implementation_states() -> Dict[str, Dict[str, int]]:
    """State counts of the controllers in this repository.

    RCC uses exactly the Fig. 5 state set: L1 {I, V} stable + {IV, II, VI}
    transient, L2 {I, V} stable + {IV, IAV} transient.
    """
    rcc_l1 = [s for s in L1State]
    rcc_l2 = [s for s in L2State]
    return {
        "RCC": {
            "l1_states": len(rcc_l1),
            "l1_stable": sum(1 for s in rcc_l1 if s.stable),
            "l2_states": len(rcc_l2),
            "l2_stable": sum(1 for s in rcc_l2 if s.stable),
        },
    }


def table_v_rows() -> List[List[object]]:
    rows = []
    for proto, d in PAPER_TABLE_V.items():
        rows.append([
            proto,
            f"{d['l1_states']} ({d['l1_stable']}+{d['l1_states'] - d['l1_stable']})",
            d["l1_transitions"],
            f"{d['l2_states']} ({d['l2_stable']}+{d['l2_states'] - d['l2_stable']})",
            d["l2_transitions"],
        ])
    return rows
