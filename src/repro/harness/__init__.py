"""Experiment harness: one entry per paper table/figure.

Each ``fig*``/``table*`` function runs the required simulations and returns
an :class:`~repro.harness.experiments.ExperimentResult` whose rows mirror
what the paper plots; ``repro.harness.runner`` provides the CLI
(``rcc-repro <experiment>``), and ``benchmarks/`` wraps the same functions
in pytest-benchmark with shape assertions.
"""

from repro.harness.experiments import (
    ExperimentResult,
    Harness,
    ALL_EXPERIMENTS,
)

__all__ = ["ALL_EXPERIMENTS", "ExperimentResult", "Harness"]
