"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    rcc-repro fig9                 # one experiment
    rcc-repro all                  # everything
    rcc-repro all --jobs 4         # fan cells out over 4 worker processes
    rcc-repro all --report out.md  # also write a markdown report
    rcc-repro fig9 --intensity 0.5 --seed 7

``--quick`` runs a reduced intensity for smoke testing.

Simulation results are cached under ``.rcc-cache/`` (override with
``--cache-dir`` or ``RCC_CACHE_DIR``, disable with ``--no-cache``), keyed
by a content hash of the full configuration, so a re-run after an
unrelated edit replays from disk instead of resimulating. Parallelism
defaults to ``RCC_JOBS`` (serial if unset); results are identical to a
serial run either way.

A failing experiment no longer aborts the rest: the runner reports it,
continues with the remaining experiments, and exits non-zero at the end.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional, Tuple

from repro.config import GPUConfig
from repro.core.lease_policy import available_lease_policies
from repro.exec import ResultCache, SweepExecutor
from repro.sanitize.sanitizer import ENV_SANITIZE, ENV_TRACE_OUT
from repro.harness.experiments import ALL_EXPERIMENTS, ExperimentResult, \
    Harness
from repro.harness.tables import render_markdown


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="rcc-repro",
        description="Regenerate tables/figures from 'Efficient Sequential "
                    "Consistency in GPUs via Relativistic Cache Coherence' "
                    "(HPCA 2017).")
    p.add_argument("experiments", nargs="+",
                   help=f"experiment ids ({', '.join(ALL_EXPERIMENTS)}) "
                        "or 'all'")
    p.add_argument("--intensity", type=float, default=0.25,
                   help="workload scale factor (default 0.25)")
    p.add_argument("--seed", type=int, default=1234)
    p.add_argument("--quick", action="store_true",
                   help="tiny workloads for a fast smoke run")
    p.add_argument("--paper-config", action="store_true",
                   help="use the full Table III machine (16 SMs x 48 warps; "
                        "slow in this Python simulator)")
    p.add_argument("--lease-policy", default=None,
                   choices=available_lease_policies(),
                   help="RCC lease-sizing policy for every experiment "
                        "(default: the config's, i.e. 'fixed')")
    p.add_argument("--report", metavar="FILE",
                   help="also write a markdown report to FILE")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes for independent simulation cells "
                        "(default: RCC_JOBS or 1 = serial)")
    p.add_argument("--no-cache", action="store_true",
                   help="do not read or write the on-disk result cache")
    p.add_argument("--cache-dir", metavar="DIR", default=None,
                   help="result cache directory (default: RCC_CACHE_DIR "
                        "or .rcc-cache)")
    p.add_argument("--cell-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="per-cell wall-clock timeout; a wedged cell gets "
                        "its remaining retry budget in fresh workers "
                        "(default: none)")
    p.add_argument("--journal-dir", metavar="DIR", default=None,
                   help="journal every sweep batch as an append-only "
                        "JSONL campaign file in DIR; an interrupted run "
                        "re-invoked with the same flags resumes from its "
                        "last completed cell (default: RCC_JOURNAL_DIR)")
    p.add_argument("--resume", metavar="PATH", default=None,
                   help="resume from a specific campaign journal file "
                        "(errors if it belongs to a different campaign), "
                        "or from a journal directory (same as "
                        "--journal-dir)")
    p.add_argument("--sanitize", action="store_true",
                   help="run every simulation with the coherence-invariant "
                        "sanitizer enabled (aborts on the first violation; "
                        "implies --no-cache so every cell really runs)")
    p.add_argument("--trace-out", metavar="FILE",
                   help="with --sanitize: dump the last coherence events as "
                        "JSON lines to FILE when a violation is caught")
    return p


def select(names: List[str]) -> List[str]:
    if "all" in names:
        return list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        raise SystemExit(f"unknown experiment(s): {unknown}; "
                         f"choose from {list(ALL_EXPERIMENTS)} or 'all'")
    return names


def build_report(results: List[ExperimentResult]) -> str:
    """The markdown report for ``--report``, deterministic in its inputs."""
    parts: List[str] = []
    for result in results:
        parts.append(f"## {result.title}\n")
        parts.append(render_markdown(result.columns, result.rows))
        if result.claims:
            parts.append("\n**Paper vs measured:**\n")
            for desc, (paper, measured) in result.claims.items():
                parts.append(
                    f"- {desc}: paper *{paper}*, measured *{measured}*")
        parts.append("")
    return "\n".join(parts)


def make_executor(args) -> SweepExecutor:
    """The sweep executor the CLI flags describe."""
    # --sanitize disables the cache: a cached result would skip the
    # simulation, and with it every invariant check.
    cache = (None if args.no_cache or args.sanitize
             else ResultCache(args.cache_dir))
    return SweepExecutor(jobs=args.jobs, cache=cache,
                         timeout=args.cell_timeout, on_summary=print,
                         journal_dir=args.journal_dir, resume=args.resume)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.sanitize:
        # Environment toggles, so forked sweep workers inherit them.
        os.environ[ENV_SANITIZE] = "1"
        if args.trace_out:
            os.environ[ENV_TRACE_OUT] = args.trace_out
    cfg = GPUConfig.paper() if args.paper_config else GPUConfig.bench()
    if args.lease_policy:
        import dataclasses
        cfg = cfg.replace(
            ts=dataclasses.replace(cfg.ts, lease_policy=args.lease_policy))
    intensity = 0.1 if args.quick else args.intensity
    harness = Harness(cfg=cfg, intensity=intensity, seed=args.seed,
                      executor=make_executor(args))

    succeeded: List[ExperimentResult] = []
    failures: List[Tuple[str, BaseException]] = []
    for name in select(args.experiments):
        start = time.time()
        try:
            result = getattr(harness, ALL_EXPERIMENTS[name])()
        except Exception as exc:  # noqa: BLE001 - report, then continue
            failures.append((name, exc))
            print(f"[{name} FAILED: {type(exc).__name__}: {exc}]",
                  file=sys.stderr)
            print()
            continue
        elapsed = time.time() - start
        print(result.render())
        print(f"[{name} regenerated in {elapsed:.1f}s]")
        print()
        succeeded.append(result)
    if args.report:
        with open(args.report, "w") as f:
            f.write(build_report(succeeded))
        print(f"report written to {args.report}")
    if failures:
        print(f"{len(failures)} experiment(s) failed: "
              + ", ".join(name for name, _ in failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
