"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    rcc-repro fig9                 # one experiment
    rcc-repro all                  # everything
    rcc-repro all --report out.md  # also write a markdown report
    rcc-repro fig9 --intensity 0.5 --seed 7

``--quick`` runs a reduced intensity for smoke testing.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.config import GPUConfig
from repro.harness.experiments import ALL_EXPERIMENTS, Harness
from repro.harness.tables import render_markdown


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="rcc-repro",
        description="Regenerate tables/figures from 'Efficient Sequential "
                    "Consistency in GPUs via Relativistic Cache Coherence' "
                    "(HPCA 2017).")
    p.add_argument("experiments", nargs="+",
                   help=f"experiment ids ({', '.join(ALL_EXPERIMENTS)}) "
                        "or 'all'")
    p.add_argument("--intensity", type=float, default=0.25,
                   help="workload scale factor (default 0.25)")
    p.add_argument("--seed", type=int, default=1234)
    p.add_argument("--quick", action="store_true",
                   help="tiny workloads for a fast smoke run")
    p.add_argument("--paper-config", action="store_true",
                   help="use the full Table III machine (16 SMs x 48 warps; "
                        "slow in this Python simulator)")
    p.add_argument("--report", metavar="FILE",
                   help="also write a markdown report to FILE")
    return p


def select(names: List[str]) -> List[str]:
    if "all" in names:
        return list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        raise SystemExit(f"unknown experiment(s): {unknown}; "
                         f"choose from {list(ALL_EXPERIMENTS)} or 'all'")
    return names


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    cfg = GPUConfig.paper() if args.paper_config else GPUConfig.bench()
    intensity = 0.1 if args.quick else args.intensity
    harness = Harness(cfg=cfg, intensity=intensity, seed=args.seed)

    report_parts = []
    for name in select(args.experiments):
        start = time.time()
        result = getattr(harness, ALL_EXPERIMENTS[name])()
        elapsed = time.time() - start
        print(result.render())
        print(f"[{name} regenerated in {elapsed:.1f}s]")
        print()
        if args.report:
            report_parts.append(f"## {result.title}\n")
            report_parts.append(render_markdown(result.columns, result.rows))
            if result.claims:
                report_parts.append("\n**Paper vs measured:**\n")
                for desc, (paper, measured) in result.claims.items():
                    report_parts.append(
                        f"- {desc}: paper *{paper}*, measured *{measured}*")
            report_parts.append("")
    if args.report:
        with open(args.report, "w") as f:
            f.write("\n".join(report_parts))
        print(f"report written to {args.report}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
