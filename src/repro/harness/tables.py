"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from typing import Any, List, Sequence


def fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 100 else f"{value:.1f}"
    return str(value)


def render_table(columns: Sequence[str], rows: List[Sequence[Any]],
                 title: str = "") -> str:
    """Render an ASCII table with aligned columns."""
    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out = []
    if title:
        out.append(title)
    out.append(line(columns))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def render_markdown(columns: Sequence[str], rows: List[Sequence[Any]]) -> str:
    """Render a GitHub-markdown table."""
    out = ["| " + " | ".join(columns) + " |",
           "|" + "|".join("---" for _ in columns) + "|"]
    for row in rows:
        out.append("| " + " | ".join(fmt(v) for v in row) + " |")
    return "\n".join(out)
