"""Workload registry — names, categories, and lookup.

Two suites live here: the paper's twelve benchmark models (Table IV;
``WORKLOADS``, which the figure harness iterates and must stay exactly
the paper's set) and the hostile lab's pathological generators
(``HOSTILE_WORKLOADS``). :func:`get_workload` resolves names from both,
and additionally understands hostile **spec strings** —
``"storm:hot_blocks=2,p_load=0.8"`` — that carry generator knobs inline,
so a knob-mutated hostile cell is addressable by a plain string
everywhere a workload name flows (sweep cells, cache keys, corpus
files).
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.errors import ConfigError
from repro.workloads.base import Workload
from repro.workloads.hostile.base import HostileWorkload, parse_spec
from repro.workloads.hostile.regimes import HOSTILE_WORKLOADS
from repro.workloads.interwg import (
    BFS, BarnesHut, Cloth, DynamicLoadBalance, PlaceAndRoute, Stencil,
)
from repro.workloads.intrawg import (
    Hotspot, KMeans, LUDecomposition, Laplace3D, NeedlemanWunsch,
    SpeckleReduction,
)

#: All twelve benchmark models, in the paper's presentation order.
WORKLOADS: Dict[str, Type[Workload]] = {
    "bh": BarnesHut,
    "bfs": BFS,
    "cl": Cloth,
    "dlb": DynamicLoadBalance,
    "stn": Stencil,
    "vpr": PlaceAndRoute,
    "hsp": Hotspot,
    "kmn": KMeans,
    "lps": Laplace3D,
    "ndl": NeedlemanWunsch,
    "sr": SpeckleReduction,
    "lud": LUDecomposition,
}


def get_workload(name: str, intensity: float = 1.0,
                 seed: int = 1234) -> Workload:
    """Instantiate a workload by name or hostile spec string."""
    base, knobs = parse_spec(name)
    cls = WORKLOADS.get(base) or HOSTILE_WORKLOADS.get(base)
    if cls is None:
        raise ConfigError(
            f"unknown workload {name!r}; choose from "
            f"{sorted(WORKLOADS) + sorted(HOSTILE_WORKLOADS)}")
    if knobs and not issubclass(cls, HostileWorkload):
        raise ConfigError(
            f"workload {base!r} takes no knobs (spec was {name!r}); only "
            f"hostile workloads {sorted(HOSTILE_WORKLOADS)} are knobbed")
    if issubclass(cls, HostileWorkload):
        return cls(intensity=intensity, seed=seed, **knobs)
    return cls(intensity=intensity, seed=seed)


def hostile_workloads() -> List[str]:
    """Names of the hostile-lab generators."""
    return sorted(HOSTILE_WORKLOADS)


def inter_workgroup() -> List[str]:
    """Names of the inter-workgroup-sharing benchmarks."""
    return [n for n, cls in WORKLOADS.items() if cls.category == "inter"]


def intra_workgroup() -> List[str]:
    """Names of the intra-workgroup benchmarks."""
    return [n for n, cls in WORKLOADS.items() if cls.category == "intra"]
