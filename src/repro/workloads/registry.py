"""Workload registry — names, categories, and lookup (paper Table IV)."""

from __future__ import annotations

from typing import Dict, List, Type

from repro.errors import ConfigError
from repro.workloads.base import Workload
from repro.workloads.interwg import (
    BFS, BarnesHut, Cloth, DynamicLoadBalance, PlaceAndRoute, Stencil,
)
from repro.workloads.intrawg import (
    Hotspot, KMeans, LUDecomposition, Laplace3D, NeedlemanWunsch,
    SpeckleReduction,
)

#: All twelve benchmark models, in the paper's presentation order.
WORKLOADS: Dict[str, Type[Workload]] = {
    "bh": BarnesHut,
    "bfs": BFS,
    "cl": Cloth,
    "dlb": DynamicLoadBalance,
    "stn": Stencil,
    "vpr": PlaceAndRoute,
    "hsp": Hotspot,
    "kmn": KMeans,
    "lps": Laplace3D,
    "ndl": NeedlemanWunsch,
    "sr": SpeckleReduction,
    "lud": LUDecomposition,
}


def get_workload(name: str, intensity: float = 1.0,
                 seed: int = 1234) -> Workload:
    """Instantiate a benchmark model by its Table IV short name."""
    try:
        cls = WORKLOADS[name.lower()]
    except KeyError:
        raise ConfigError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}"
        ) from None
    return cls(intensity=intensity, seed=seed)


def inter_workgroup() -> List[str]:
    """Names of the inter-workgroup-sharing benchmarks."""
    return [n for n, cls in WORKLOADS.items() if cls.category == "inter"]


def intra_workgroup() -> List[str]:
    """Names of the intra-workgroup benchmarks."""
    return [n for n, cls in WORKLOADS.items() if cls.category == "intra"]
