"""Trace file I/O.

Workload traces can be saved to (and replayed from) a simple line-oriented
text format, so users can feed externally captured access streams into the
simulator, diff generated workloads, or archive the exact traces behind a
result. Format, one op per line, with per-warp headers:

    # repro-trace v1
    @ <core> <warp>
    L <hex-addr>        load
    S <hex-addr>        store
    A <hex-addr>        atomic
    C <cycles>          compute
    F                   fence
    B <barrier-id>      barrier

Blank lines and ``#`` comments are ignored.
"""

from __future__ import annotations

from typing import List, TextIO, Union

from repro.common.types import MemOpKind
from repro.errors import TraceError
from repro.gpu.trace import (
    TraceOp, WarpTrace, atomic_op, barrier_op, compute_op, fence_op,
    load_op, store_op,
)

MAGIC = "# repro-trace v1"

_KIND_CODE = {
    MemOpKind.LOAD: "L",
    MemOpKind.STORE: "S",
    MemOpKind.ATOMIC: "A",
    MemOpKind.COMPUTE: "C",
    MemOpKind.FENCE: "F",
    MemOpKind.BARRIER: "B",
}


def _encode_op(op: TraceOp) -> str:
    code = _KIND_CODE[op.kind]
    if op.kind.is_global_mem:
        return f"{code} {op.addr:x}"
    if op.kind is MemOpKind.COMPUTE:
        return f"{code} {op.cycles}"
    if op.kind is MemOpKind.BARRIER:
        return f"{code} {op.barrier_id}"
    return code


def _decode_op(line: str, lineno: int) -> TraceOp:
    parts = line.split()
    code = parts[0]
    try:
        if code == "L":
            return load_op(int(parts[1], 16))
        if code == "S":
            return store_op(int(parts[1], 16))
        if code == "A":
            return atomic_op(int(parts[1], 16))
        if code == "C":
            return compute_op(int(parts[1]))
        if code == "F":
            return fence_op()
        if code == "B":
            return barrier_op(int(parts[1]))
    except (IndexError, ValueError) as exc:
        raise TraceError(f"line {lineno}: malformed op {line!r}") from exc
    raise TraceError(f"line {lineno}: unknown op code {code!r}")


def save_traces(f: Union[str, TextIO],
                traces: List[List[WarpTrace]]) -> None:
    """Write a per-core/per-warp trace grid to ``f`` (path or file)."""
    if isinstance(f, str):
        with open(f, "w") as fh:
            save_traces(fh, traces)
        return
    f.write(MAGIC + "\n")
    for core_traces in traces:
        for t in core_traces:
            f.write(f"@ {t.core_id} {t.warp_id}\n")
            for op in t.ops:
                f.write(_encode_op(op) + "\n")


def load_traces(f: Union[str, TextIO]) -> List[List[WarpTrace]]:
    """Read a trace grid; the result is dense in (core, warp) ids."""
    if isinstance(f, str):
        with open(f) as fh:
            return load_traces(fh)
    grid = {}
    current: WarpTrace = None
    for lineno, raw in enumerate(f, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("@"):
            parts = line.split()
            try:
                core, warp = int(parts[1]), int(parts[2])
            except (IndexError, ValueError) as exc:
                raise TraceError(f"line {lineno}: bad header {line!r}") \
                    from exc
            if (core, warp) in grid:
                raise TraceError(f"line {lineno}: duplicate warp "
                                 f"({core},{warp})")
            current = WarpTrace(core, warp)
            grid[(core, warp)] = current
            continue
        if current is None:
            raise TraceError(f"line {lineno}: op before any '@' header")
        current.append(_decode_op(line, lineno))
    if not grid:
        raise TraceError("empty trace file")
    n_cores = max(c for c, _ in grid) + 1
    n_warps = max(w for _, w in grid) + 1
    out: List[List[WarpTrace]] = []
    for c in range(n_cores):
        row = []
        for w in range(n_warps):
            row.append(grid.get((c, w), WarpTrace(c, w)))
        out.append(row)
    return out
