"""STN — finite-difference stencil with fast inter-block barriers
(Xiao & Feng IPDPS'10).

Sharing pattern: the grid is split into per-SM row bands; each sweep reads
the band plus halo rows owned by adjacent SMs and writes the band interior,
then synchronizes *across SMs* with an atomic-flag "fast barrier" — the
hot barrier block is written by every SM every sweep.
"""

from __future__ import annotations

import random

from repro.config import GPUConfig
from repro.workloads.base import TraceBuilder, Workload

GRID_BASE = 1 << 16
BAND_BLOCKS = 40           # grid blocks per core band
FLAG_BASE = 1 << 19        # inter-block barrier flags


class Stencil(Workload):
    name = "stn"
    category = "inter"
    description = "Stencil sweeps with atomic-flag inter-SM barriers"
    base_iterations = 12   # sweeps

    own_reads = 4
    own_writes = 2
    spin_reads = 2

    def build_warp(self, b: TraceBuilder, cfg: GPUConfig,
                   rng: random.Random) -> None:
        core = b.trace.core_id
        band = GRID_BASE + core * BAND_BLOCKS
        up = GRID_BASE + ((core - 1) % cfg.n_cores) * BAND_BLOCKS
        down = GRID_BASE + ((core + 1) % cfg.n_cores) * BAND_BLOCKS
        slice_lo = (b.trace.warp_id * BAND_BLOCKS) // cfg.warps_per_core

        for sweep in range(self.iterations()):
            for r in range(self.own_reads):
                b.load(band + (slice_lo + r + sweep) % BAND_BLOCKS)
                b.compute(5)
            # Halo rows from the neighboring SMs' bands.
            b.load(up + BAND_BLOCKS - 1)
            b.load(down)
            b.compute(10)
            b.load(band + (slice_lo + sweep) % BAND_BLOCKS)  # revisit
            b.compute(10)
            for w in range(self.own_writes):
                b.store(band + (slice_lo + w + sweep) % BAND_BLOCKS)
            b.fence()
            # Fast barrier: signal arrival, then poll the flag block.
            b.atomic(FLAG_BASE + sweep % 4)
            for _ in range(self.spin_reads):
                b.load(FLAG_BASE + sweep % 4)
                b.compute(8)
            b.barrier(sweep)
