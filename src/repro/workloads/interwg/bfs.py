"""BFS — level-synchronized breadth-first search (Bakhoda et al.).

Sharing pattern: all threads share a frontier "mask" vector identifying the
nodes to visit in the next level; every level, warps on every SM read
scattered mask blocks and write scattered mask blocks for their neighbors.
This is the workload the paper uses to explain TC-weak's advantage: cores
update disjoint words of shared mask blocks, so relaxing write atomicity
(TCW) wins, while SC protocols pay for block-granularity ordering.
"""

from __future__ import annotations

import random

from repro.config import GPUConfig
from repro.workloads.base import TraceBuilder, Workload

MASK_BASE = 1 << 16        # shared frontier mask vector
MASK_BLOCKS = 384
LEVEL_BASE = 1 << 18       # per-level frontier counters (hot, atomic)


class BFS(Workload):
    name = "bfs"
    category = "inter"
    description = "Level-synchronized BFS: shared frontier mask, scattered RW"
    base_iterations = 12   # graph levels

    reads_per_level = 5
    writes_per_level = 3

    def build_warp(self, b: TraceBuilder, cfg: GPUConfig,
                   rng: random.Random) -> None:
        adj = MASK_BASE + (1 << 10)  # read-only adjacency lists (CSR arrays)
        for level in range(self.iterations()):
            for _ in range(self.reads_per_level):
                # Check the current frontier: scattered shared reads.
                b.load(MASK_BASE + rng.randrange(MASK_BLOCKS))
                # Walk the node's edge list: read-only graph structure.
                b.load(adj + rng.randrange(MASK_BLOCKS))
                b.compute(6)
            for _ in range(self.writes_per_level):
                # Mark neighbors for the next level: scattered shared writes.
                b.store(MASK_BASE + rng.randrange(MASK_BLOCKS))
                b.compute(4)
            # Count discovered nodes for this level (hot shared counter).
            b.atomic(LEVEL_BASE + level % 4)
            b.fence()
            # Kernel relaunch between levels.
            b.barrier(level)
