"""BH — Barnes-Hut n-body tree traversal (Burtscher & Pingali).

Sharing pattern: a read-mostly octree whose top levels are read by every
warp on every traversal (hot, highly shared, rarely written), plus atomic
child-pointer insertions that occasionally write those same shared nodes.
Body data is private to each warp. The shared-read/rare-write mix is what
gives timestamp protocols their renewable leases, while the atomic updates
to hot tree nodes force coherence activity across every SM.
"""

from __future__ import annotations

import random

from repro.config import GPUConfig
from repro.workloads.base import TraceBuilder, Workload

TREE_BASE = 1 << 16        # shared octree nodes
TREE_BLOCKS = 192
BODY_BASE = 1 << 18        # per-warp private bodies


class BarnesHut(Workload):
    name = "bh"
    category = "inter"
    description = "Barnes-Hut n-body: shared read-mostly tree + atomic inserts"
    base_iterations = 36

    #: Traversal depth (tree-node loads per body).
    depth = 5
    #: One atomic tree insertion every this many bodies.
    insert_every = 8

    def _tree_node(self, rng: random.Random) -> int:
        # Bias toward low indices: the tree's top levels are hottest.
        return TREE_BASE + int(TREE_BLOCKS * (rng.random() ** 3))

    def build_warp(self, b: TraceBuilder, cfg: GPUConfig,
                   rng: random.Random) -> None:
        my_bodies = BODY_BASE + (b.trace.core_id * cfg.warps_per_core
                                 + b.trace.warp_id) * 8
        for i in range(self.iterations()):
            # Walk the tree from the root: shared read path.
            for _ in range(self.depth):
                b.load(self._tree_node(rng))
                b.compute(4)
            # Update this body: private read-modify-write.
            body = my_bodies + (i % 8)
            b.load(body)
            b.compute(8)
            b.load(body)    # position + velocity: two loads, one line
            b.compute(8)
            b.store(body)
            if i % self.insert_every == self.insert_every - 1:
                # Tree insertion: atomic CAS on a (hot) shared node.
                b.atomic(self._tree_node(rng))
                b.fence()
