"""VPR — FPGA place & route (the VTR project).

Sharing pattern: a large shared routing-cost grid updated with fine-grained,
low-locality read-modify-writes under per-region locks. Every SM touches
random grid regions, so nearly every store hits data some other SM recently
read — the worst case for invalidation (MESI) and lease-expiry (TCS) store
latencies, and the pattern where RCC's instant write permissions matter
most.
"""

from __future__ import annotations

import random

from repro.config import GPUConfig
from repro.workloads.base import TraceBuilder, Workload

GRID_BASE = 1 << 16        # shared routing-cost grid
GRID_BLOCKS = 512
LOCK_BASE = 1 << 19        # region locks
LOCKS = 48


class PlaceAndRoute(Workload):
    name = "vpr"
    category = "inter"
    description = "Place & route: random fine-grained RW on a shared grid"
    base_iterations = 22

    route_reads = 4

    def build_warp(self, b: TraceBuilder, cfg: GPUConfig,
                   rng: random.Random) -> None:
        for i in range(self.iterations()):
            # Evaluate a candidate route: scattered shared reads.
            for _ in range(self.route_reads):
                b.load(GRID_BASE + rng.randrange(GRID_BLOCKS))
                b.compute(5)
            b.compute(12)
            # Commit the best move under a region lock.
            region = rng.randrange(LOCKS)
            b.atomic(LOCK_BASE + region)       # acquire
            b.fence()
            target = GRID_BASE + rng.randrange(GRID_BLOCKS)
            b.load(target)
            b.compute(6)
            b.store(target)                    # shared grid write
            b.fence()
            b.atomic(LOCK_BASE + region)       # release
            b.fence()
