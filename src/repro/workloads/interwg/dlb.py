"""DLB — dynamic load balancing via work stealing (Cederman & Tsigas).

Sharing pattern: each workgroup owns a task deque (control block + task
blocks) that it mostly accesses alone — but because *any* workgroup may
steal at *any* time, every queue operation must be fenced. Actual steals
are rare.

This is the workload the paper uses to explain RCC's advantage over
TC-weak: TCW stalls every fence until all prior stores are globally visible
in physical time, even though stealing (actual sharing) almost never
happens; RCC lets cores run in their own logical epochs until real sharing
occurs, and its stores never stall even then.
"""

from __future__ import annotations

import random

from repro.config import GPUConfig
from repro.workloads.base import TraceBuilder, Workload

QUEUE_BASE = 1 << 16       # per-core deque control blocks
TASKS_PER_CORE = 16
TASK_BASE = 1 << 17        # per-core task storage
RESULT_BASE = 1 << 19      # per-warp private results


class DynamicLoadBalance(Workload):
    name = "dlb"
    category = "inter"
    description = "Work-stealing deques: fenced queue ops, rare steals"
    base_iterations = 30

    steal_probability = 0.05

    def build_warp(self, b: TraceBuilder, cfg: GPUConfig,
                   rng: random.Random) -> None:
        core = b.trace.core_id
        my_queue = QUEUE_BASE + core
        my_tasks = TASK_BASE + core * TASKS_PER_CORE
        my_results = RESULT_BASE + (core * cfg.warps_per_core
                                    + b.trace.warp_id) * 4

        for i in range(self.iterations()):
            steal = rng.random() < self.steal_probability
            if steal and cfg.n_cores > 1:
                victim = rng.randrange(cfg.n_cores - 1)
                victim = victim + 1 if victim >= core else victim
                # Pop from the victim's deque: atomic on their control
                # block, then read their task data.
                b.atomic(QUEUE_BASE + victim)
                b.fence()
                b.load(TASK_BASE + victim * TASKS_PER_CORE
                       + rng.randrange(TASKS_PER_CORE))
            else:
                # Pop from our own deque (still must be fenced!).
                b.atomic(my_queue)
                b.fence()
                b.load(my_tasks + rng.randrange(TASKS_PER_CORE))
            b.compute(32)
            # Produce a result and possibly push new work.
            b.store(my_results + (i % 4))
            if i % 4 == 0:
                b.store(my_tasks + rng.randrange(TASKS_PER_CORE))
                b.fence()
                b.atomic(my_queue)
                b.fence()
