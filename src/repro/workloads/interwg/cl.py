"""CL — cloth-physics kernel (RopaDemo, Brownsword GDC'09).

Sharing pattern: a particle array partitioned across SMs; each phase, every
warp reads its own tile plus *halo* particles owned by the neighboring SMs
(written there during the previous phase) and writes back its own tile.
Classic producer-consumer sharing across workgroup boundaries, phase-
separated by barriers and a shared phase counter.
"""

from __future__ import annotations

import random

from repro.config import GPUConfig
from repro.workloads.base import TraceBuilder, Workload

PART_BASE = 1 << 16        # particle array, partitioned per core
TILE_BLOCKS = 48           # blocks owned by each core
PHASE_BASE = 1 << 19       # shared phase counters


class Cloth(Workload):
    name = "cl"
    category = "inter"
    description = "Cloth physics: tiled particles with cross-SM halo reads"
    base_iterations = 14   # physics phases

    own_reads = 4
    halo_reads = 2
    own_writes = 2

    def build_warp(self, b: TraceBuilder, cfg: GPUConfig,
                   rng: random.Random) -> None:
        core = b.trace.core_id
        my_tile = PART_BASE + core * TILE_BLOCKS
        left = PART_BASE + ((core - 1) % cfg.n_cores) * TILE_BLOCKS
        right = PART_BASE + ((core + 1) % cfg.n_cores) * TILE_BLOCKS
        # Each warp works a slice of the core's tile.
        slice_lo = (b.trace.warp_id * TILE_BLOCKS) // cfg.warps_per_core

        for phase in range(self.iterations()):
            for r in range(self.own_reads):
                b.load(my_tile + (slice_lo + r + phase) % TILE_BLOCKS)
                b.compute(5)
            # Halo particles: the neighbors' boundary blocks (they stored
            # them last phase -> genuine inter-workgroup RW sharing).
            b.load(left + TILE_BLOCKS - 1 - (phase % 4))
            b.load(right + (phase % 4))
            b.compute(12)
            b.load(my_tile + (slice_lo + phase) % TILE_BLOCKS)  # revisit
            b.compute(12)
            for w in range(self.own_writes):
                b.store(my_tile + (slice_lo + w + phase) % TILE_BLOCKS)
            # Phase synchronization: shared counter + local barrier.
            b.atomic(PHASE_BASE + (phase % 2))
            b.fence()
            b.barrier(phase)
