"""Inter-workgroup-sharing benchmark models (paper Table IV, top half)."""

from repro.workloads.interwg.bh import BarnesHut
from repro.workloads.interwg.bfs import BFS
from repro.workloads.interwg.cl import Cloth
from repro.workloads.interwg.dlb import DynamicLoadBalance
from repro.workloads.interwg.stn import Stencil
from repro.workloads.interwg.vpr import PlaceAndRoute

__all__ = ["BFS", "BarnesHut", "Cloth", "DynamicLoadBalance",
           "PlaceAndRoute", "Stencil"]
