"""LUD — blocked LU decomposition (Rodinia).

Per iteration, every warp of an SM reads the current pivot block (shared
read within the workgroup), combines it with its own panel block, and
writes the panel back, with a barrier per step. All sharing intra-SM.
"""

from __future__ import annotations

import random

from repro.config import GPUConfig
from repro.workloads.base import TraceBuilder, Workload

MAT_BASE = 1 << 16
PANEL_BLOCKS = 56
CORE_STRIDE = 1 << 10


class LUDecomposition(Workload):
    name = "lud"
    category = "intra"
    description = "Blocked LU: shared-in-SM pivot block + private panels"
    base_iterations = 16

    def build_warp(self, b: TraceBuilder, cfg: GPUConfig,
                   rng: random.Random) -> None:
        mat = MAT_BASE + b.trace.core_id * CORE_STRIDE
        panel = (1 + b.trace.warp_id * 3) % PANEL_BLOCKS

        for step in range(self.iterations()):
            pivot = mat + (step % 8)          # hot within the SM
            b.load(pivot)
            mine = mat + 8 + (panel + step) % PANEL_BLOCKS
            b.load(mine)
            b.compute(12)
            b.load(pivot)   # pivot block re-read during elimination
            b.load(mine)
            b.compute(14)
            b.store(mine)
            b.barrier(step)
