"""KMN — k-means clustering (Rodinia).

Streaming: each SM scans its own slice of the point set (long sequential
read streams with no reuse — the blocks that "miss in the L2" and should
get maximal leases), accumulates into per-SM centroid blocks with atomics,
and writes per-point assignments. No inter-SM sharing.
"""

from __future__ import annotations

import random

from repro.config import GPUConfig
from repro.workloads.base import TraceBuilder, Workload

POINTS_BASE = 1 << 16
POINTS_PER_CORE = 1 << 10  # streaming region per core
CENTROID_BASE = 1 << 20    # per-core accumulator blocks
ASSIGN_BASE = 1 << 21


class KMeans(Workload):
    name = "kmn"
    category = "intra"
    description = "k-means: streaming reads, per-SM atomic accumulators"
    base_iterations = 48   # points scanned per warp

    def build_warp(self, b: TraceBuilder, cfg: GPUConfig,
                   rng: random.Random) -> None:
        core = b.trace.core_id
        warp = b.trace.warp_id
        my_points = POINTS_BASE + core * POINTS_PER_CORE
        my_centroids = CENTROID_BASE + core * 8
        my_assign = ASSIGN_BASE + (core * cfg.warps_per_core + warp) * 8

        for i in range(self.iterations()):
            # Stream the next point block: sequential, no reuse.
            b.load(my_points + (warp * self.iterations() + i)
                   % POINTS_PER_CORE)
            b.compute(8)
            b.load(my_points + (warp * self.iterations() + i)
                   % POINTS_PER_CORE)  # second feature access, same line
            b.compute(6)
            # Accumulate into this SM's nearest centroid.
            b.atomic(my_centroids + rng.randrange(8))
            b.store(my_assign + (i % 8))
            b.compute(6)
