"""LPS — 3-D Laplace solver (Bakhoda et al.).

A 3-D stencil per SM: more neighbor reads per written point than HSP
(6-point stencil) and a barrier per sweep. All sharing is intra-SM.
"""

from __future__ import annotations

import random

from repro.config import GPUConfig
from repro.workloads.base import TraceBuilder, Workload

VOL_BASE = 1 << 16
PLANE = 8                   # blocks per z-plane slice
PLANES = 6
CORE_STRIDE = 1 << 10


class Laplace3D(Workload):
    name = "lps"
    category = "intra"
    description = "3-D Laplace: 6-point per-SM stencil, barrier per sweep"
    base_iterations = 14

    def build_warp(self, b: TraceBuilder, cfg: GPUConfig,
                   rng: random.Random) -> None:
        vol = VOL_BASE + b.trace.core_id * CORE_STRIDE
        n_blocks = PLANE * PLANES
        mine = (b.trace.warp_id * 3) % n_blocks

        bc = vol + (1 << 8)  # read-only boundary-condition planes
        for sweep in range(self.iterations()):
            # Double-buffered volumes: sweep reads one buffer, writes the
            # other (Jacobi iteration), swapping each sweep.
            src = vol + (sweep % 2) * n_blocks
            dst = vol + ((sweep + 1) % 2) * n_blocks
            point = (mine + sweep) % n_blocks
            b.load(src + point)
            b.load(src + (point + 1) % n_blocks)      # x+1
            b.load(src + (point - 1) % n_blocks)      # x-1
            b.load(src + (point + PLANE) % n_blocks)  # z+1
            b.load(src + (point - PLANE) % n_blocks)  # z-1
            b.load(bc + mine % PLANE)                 # boundary input
            b.load(bc + PLANE + (mine + sweep) % PLANE)
            b.compute(12)
            # Revisit the centre block (several loads land in one line).
            b.load(src + point)
            b.compute(10)
            b.store(dst + point)
            b.barrier(sweep)
