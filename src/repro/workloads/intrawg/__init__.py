"""Intra-workgroup benchmark models (paper Table IV, bottom half).

These execute correctly without any inter-SM coherence: every address is
private to one SM (shared at most between warps of the same workgroup).
They measure the *overhead* of always-on coherence on conventional GPU
workloads — Fig. 9's right-hand panels.
"""

from repro.workloads.intrawg.hsp import Hotspot
from repro.workloads.intrawg.kmn import KMeans
from repro.workloads.intrawg.lps import Laplace3D
from repro.workloads.intrawg.ndl import NeedlemanWunsch
from repro.workloads.intrawg.sr import SpeckleReduction
from repro.workloads.intrawg.lud import LUDecomposition

__all__ = ["Hotspot", "KMeans", "LUDecomposition", "Laplace3D",
           "NeedlemanWunsch", "SpeckleReduction"]
