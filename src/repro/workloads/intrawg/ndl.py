"""NDL — Needleman-Wunsch DNA sequence alignment (Rodinia).

Wavefront dynamic programming over a score matrix: each anti-diagonal wave
reads cells written by sibling warps in the previous wave (up / left /
up-left) and writes its own cell, with a workgroup barrier per wave. The
barrier-to-work ratio is the highest of the suite. All sharing intra-SM.
"""

from __future__ import annotations

import random

from repro.config import GPUConfig
from repro.workloads.base import TraceBuilder, Workload

MATRIX_BASE = 1 << 16
MATRIX_BLOCKS = 4096       # large enough that each cell is written once
CORE_STRIDE = 1 << 13


class NeedlemanWunsch(Workload):
    name = "ndl"
    category = "intra"
    description = "Needleman-Wunsch: wavefront DP, barrier every wave"
    base_iterations = 20   # anti-diagonal waves

    def build_warp(self, b: TraceBuilder, cfg: GPUConfig,
                   rng: random.Random) -> None:
        mat = MATRIX_BASE + b.trace.core_id * CORE_STRIDE
        warp = b.trace.warp_id

        ref = mat + MATRIX_BLOCKS  # read-only sequences + substitution table
        for wave in range(self.iterations()):
            cell = (warp + wave * cfg.warps_per_core) % MATRIX_BLOCKS
            # Read the dependencies produced by the previous wave.
            b.load(mat + (cell - 1) % MATRIX_BLOCKS)             # left
            b.load(mat + (cell - cfg.warps_per_core) % MATRIX_BLOCKS)  # up
            b.load(mat + (cell - cfg.warps_per_core - 1) % MATRIX_BLOCKS)
            b.load(ref + cell % 8)        # sequence characters (read-only)
            b.load(ref + 8 + wave % 4)    # substitution-matrix entries
            b.compute(6)
            b.load(mat + (cell - 1) % MATRIX_BLOCKS)  # left dep revisited
            b.compute(4)
            b.store(mat + cell)
            b.barrier(wave)
