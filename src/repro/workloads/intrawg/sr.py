"""SR — SRAD speckle-reducing anisotropic diffusion (Rodinia).

Two compute-heavy phases per iteration over per-SM image tiles: phase one
computes diffusion coefficients from a 4-neighborhood, phase two applies
the update; a workgroup barrier separates the phases. All sharing intra-SM.
"""

from __future__ import annotations

import random

from repro.config import GPUConfig
from repro.workloads.base import TraceBuilder, Workload

IMG_BASE = 1 << 16
TILE_BLOCKS = 40
COEF_BASE = 1 << 20
CORE_STRIDE = 1 << 10


class SpeckleReduction(Workload):
    name = "sr"
    category = "intra"
    description = "SRAD: two-phase per-SM image diffusion, compute heavy"
    base_iterations = 10

    def build_warp(self, b: TraceBuilder, cfg: GPUConfig,
                   rng: random.Random) -> None:
        core = b.trace.core_id
        img = IMG_BASE + core * CORE_STRIDE
        coef = COEF_BASE + core * CORE_STRIDE
        mine = (b.trace.warp_id * 2) % TILE_BLOCKS

        neigh = img + (1 << 9)  # read-only precomputed neighbor-index tables
        for it in range(self.iterations()):
            # Double-buffered image; per-iteration coefficient scratch.
            src = img + (it % 2) * TILE_BLOCKS
            dst = img + ((it + 1) % 2) * TILE_BLOCKS
            cwr = coef + (it % 2) * TILE_BLOCKS
            # Phase 1: coefficients from the 4-neighborhood.
            cell = (mine + it) % TILE_BLOCKS
            b.load(src + cell)
            b.load(src + (cell + 1) % TILE_BLOCKS)
            b.load(src + (cell - 1) % TILE_BLOCKS)
            b.load(src + (cell + 8) % TILE_BLOCKS)
            b.load(neigh + cell % 8)      # iN/iS/jE/jW tables (read-only)
            b.compute(16)
            b.load(src + cell)            # centre block revisited
            b.compute(14)
            b.store(cwr + cell)
            b.barrier(2 * it)
            # Phase 2: apply the update.
            b.load(cwr + cell)
            b.load(cwr + (cell + 1) % TILE_BLOCKS)
            b.load(neigh + 8 + cell % 8)
            b.compute(26)
            b.store(dst + cell)
            b.barrier(2 * it + 1)
