"""HSP — HotSpot 2-D thermal simulation (Rodinia).

Tiled 2-D stencil: each workgroup iterates on its own tile; warps read
their rows plus in-tile neighbors (written by sibling warps of the *same*
SM last iteration) and write their rows back, synchronizing with workgroup
barriers. All sharing is intra-SM.
"""

from __future__ import annotations

import random

from repro.config import GPUConfig
from repro.workloads.base import TraceBuilder, Workload

TILE_BASE = 1 << 16
TILE_BLOCKS = 48           # blocks per core tile
CORE_STRIDE = 1 << 10      # keep core regions far apart
POWER_BASE = 1 << 22       # read-only power-dissipation input grid


class Hotspot(Workload):
    name = "hsp"
    category = "intra"
    description = "HotSpot: per-SM tiled 2-D stencil with workgroup barriers"
    base_iterations = 16

    def build_warp(self, b: TraceBuilder, cfg: GPUConfig,
                   rng: random.Random) -> None:
        tile = TILE_BASE + b.trace.core_id * CORE_STRIDE
        rows = max(1, TILE_BLOCKS // cfg.warps_per_core)
        my_row = (b.trace.warp_id * rows) % TILE_BLOCKS

        power = POWER_BASE + b.trace.core_id * CORE_STRIDE
        for it in range(self.iterations()):
            # Double-buffered temperature grids: read this sweep's input
            # buffer, write the output buffer (as the Rodinia kernel does) —
            # stores land on blocks nobody holds a fresh lease on.
            src = tile + (it % 2) * TILE_BLOCKS
            dst = tile + ((it + 1) % 2) * TILE_BLOCKS
            b.load(src + my_row)
            b.load(src + (my_row - 1) % TILE_BLOCKS)  # sibling warp's row
            b.load(src + (my_row + rows) % TILE_BLOCKS)
            # The power-dissipation grid is a read-only kernel input.
            b.load(power + my_row)
            b.load(power + (my_row + 1) % TILE_BLOCKS)
            b.compute(10)
            # Second access to the row block (multiple loads per line).
            b.load(src + my_row)
            b.compute(8)
            b.store(dst + my_row)
            b.barrier(it)
