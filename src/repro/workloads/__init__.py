"""Synthetic workload generators modelling the paper's twelve benchmarks.

The paper evaluates six benchmarks with **inter-workgroup** sharing (they
communicate across SMs through the L2 and rely on coherence: BH, BFS, CL,
DLB, STN, VPR) and six with only **intra-workgroup** sharing (HSP, KMN,
LPS, NDL, SR, LUD; they run correctly without coherence and quantify the
overhead of always-on coherence).

We do not have the CUDA sources or a SASS front-end, so each generator
reproduces the benchmark's *sharing pattern* — who writes what that whom
re-reads, with what locality, synchronization, and op mix — which is what
drives every effect the paper measures. Generators are deterministic under
a seed.
"""

from repro.workloads.base import Workload, TraceBuilder
from repro.workloads.hostile import HOSTILE_WORKLOADS, REGIMES
from repro.workloads.registry import (
    WORKLOADS,
    get_workload,
    hostile_workloads,
    inter_workgroup,
    intra_workgroup,
)
from repro.workloads.tracefile import load_traces, save_traces

__all__ = [
    "HOSTILE_WORKLOADS",
    "REGIMES",
    "TraceBuilder",
    "WORKLOADS",
    "Workload",
    "get_workload",
    "hostile_workloads",
    "inter_workgroup",
    "intra_workgroup",
    "load_traces",
    "save_traces",
]
