"""The five canonical hostile regimes the lab sweeps.

A :class:`HostileRegime` couples a hostile generator with the *machine*
conditions that make it hostile — the storm is only a storm against a
narrow timestamp width — plus the knob subspace the workload fuzzer
mutates. Machine conditions ride as ``ts_overrides`` on the sweep cell
(the same mechanism the ablation experiments use), so a regime run is an
ordinary, cacheable, fork-portable :class:`~repro.exec.cells.SimCell`.

``sample_cell_inputs`` is the mutation step of ``repro-fuzz
--workloads``: one seeded draw over the regime's workload knobs and
timestamp ranges, returning the ``(workload spec, ts_overrides)`` pair
that fully names the mutated run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple, Type

from repro.errors import ConfigError
from repro.workloads.hostile.base import HostileWorkload
from repro.workloads.hostile.bursty import BurstyPhases
from repro.workloads.hostile.pingpong import FalseSharingPingPong
from repro.workloads.hostile.rwext import ReaderWriterExtremes
from repro.workloads.hostile.storm import RolloverStorm
from repro.workloads.hostile.thrash import L2Thrash

#: The hostile generators, keyed by workload name (merged into
#: ``get_workload`` lookup by the registry).
HOSTILE_WORKLOADS: Dict[str, Type[HostileWorkload]] = {
    cls.name: cls
    for cls in (RolloverStorm, FalseSharingPingPong, ReaderWriterExtremes,
                BurstyPhases, L2Thrash)
}


@dataclass(frozen=True)
class HostileRegime:
    """One named pathological regime: generator + machine conditions +
    mutation space."""

    name: str
    workload: str
    description: str
    #: Timestamp-config fields pinned for every run of this regime.
    ts_overrides: Tuple[Tuple[str, Any], ...] = ()
    #: Timestamp-config fields the fuzzer additionally mutates, with
    #: inclusive integer ranges.
    ts_ranges: Tuple[Tuple[str, Tuple[int, int]], ...] = ()
    #: Categorical timestamp-config fields the fuzzer draws uniformly
    #: from a fixed value set (e.g. the lease policy).
    ts_choices: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()
    #: Workload knobs to mutate (empty = all of the generator's knobs).
    mutate_knobs: Tuple[str, ...] = ()
    #: Knob values forced for every run (overriding generator defaults).
    knob_overrides: Tuple[Tuple[str, Any], ...] = ()

    @property
    def workload_cls(self) -> Type[HostileWorkload]:
        return HOSTILE_WORKLOADS[self.workload]

    def sample_cell_inputs(self, rng: random.Random
                           ) -> Tuple[str, Dict[str, Any]]:
        """One mutation draw: (workload spec, ts override dict)."""
        knobs = dict(self.knob_overrides)
        knobs.update(self.workload_cls.sample_knobs(rng, self.mutate_knobs))
        spec = self.workload_cls(**knobs).spec
        ts = dict(self.ts_overrides)
        for name, (lo, hi) in self.ts_ranges:
            ts[name] = rng.randint(lo, hi)
        for name, values in self.ts_choices:
            ts[name] = values[rng.randrange(len(values))]
        return spec, ts

    def default_cell_inputs(self) -> Tuple[str, Dict[str, Any]]:
        """The regime's unmutated center point."""
        spec = self.workload_cls(**dict(self.knob_overrides)).spec
        return spec, dict(self.ts_overrides)


#: Narrow-clock conditions for the storm: an 11-bit timestamp rolls over
#: every ~2k logical ticks, and with fixed 64-tick leases each
#: (load, store) pair jumps ~a lease, so a few dozen pairs per warp force
#: a rollover. The predictor is pinned off so lease length — hence storm
#: violence — is a controlled variable the fuzzer sweeps via ``bits``.
_STORM_TS = (("bits", 11), ("lease_min", 8), ("lease_default", 64),
             ("lease_max", 64), ("predictor_enabled", False))

#: Every regime fuzzes the lease policy as a categorical knob: hostile
#: access patterns are exactly where lease-sizing strategies diverge, and
#: the differential battery wants violations found under *any* policy.
#: Draw 0 (the unmutated center point) still runs the default ``fixed``.
_POLICY_CHOICE = (("lease_policy", ("fixed", "adaptive", "pc-pred")),)

REGIMES: Dict[str, HostileRegime] = {
    "storm": HostileRegime(
        name="storm", workload="storm",
        description="timestamp-rollover storm: tiny width + write-heavy",
        ts_overrides=_STORM_TS,
        ts_ranges=(("bits", (10, 13)),),
        ts_choices=_POLICY_CHOICE,
    ),
    "pingpong": HostileRegime(
        name="pingpong", workload="pingpong",
        description="false-sharing ping-pong on a handful of blocks",
        ts_choices=_POLICY_CHOICE,
    ),
    "rwext": HostileRegime(
        name="rwext", workload="rwext",
        description="reader/writer ratio extremes",
        ts_choices=_POLICY_CHOICE,
    ),
    "bursty": HostileRegime(
        name="bursty", workload="bursty",
        description="bursty phase-changing traffic",
        ts_choices=_POLICY_CHOICE,
    ),
    "thrash": HostileRegime(
        name="thrash", workload="thrash",
        description="million-block working sets that thrash the L2",
        ts_choices=_POLICY_CHOICE,
    ),
}


def get_regime(name: str) -> HostileRegime:
    try:
        return REGIMES[name.lower()]
    except KeyError:
        raise ConfigError(
            f"unknown hostile regime {name!r}; "
            f"choose from {sorted(REGIMES)}") from None


def select_regimes(names: str) -> List[HostileRegime]:
    """Parse a CLI-style regime list (``'all'`` or comma-separated)."""
    if names.strip().lower() in ("", "all"):
        return [REGIMES[n] for n in sorted(REGIMES)]
    return [get_regime(n) for n in names.split(",") if n.strip()]


__all__ = [
    "HOSTILE_WORKLOADS", "HostileRegime", "REGIMES", "get_regime",
    "select_regimes",
]
