"""BURSTY — phase-changing traffic.

Alternates long quiet phases (private streaming reads, the pattern every
lease predictor trains toward maximal leases on) with sudden write-heavy
bursts on a shared hot set (where those long leases are pure poison:
every store must jump or wait them out). Phase changes are the classic
adversary of any history-based predictor; this generator makes them the
*only* feature of the workload.
"""

from __future__ import annotations

import random

from repro.config import GPUConfig
from repro.workloads.base import TraceBuilder
from repro.workloads.hostile.base import HOSTILE_BASE, HostileWorkload, Knob

BURST_HOT = HOSTILE_BASE + (1 << 14)
BURST_PRIV = BURST_HOT + 128


class BurstyPhases(HostileWorkload):
    name = "bursty"
    description = ("bursty phases: read-mostly private streaming "
                   "punctuated by write-heavy shared bursts")
    base_iterations = 24
    KNOBS = (
        Knob("phase_len", 6, 1, 64, "iterations per phase"),
        Knob("burst_p_store", 0.85, 0.0, 1.0,
             "P(store) during a burst phase"),
        Knob("hot_blocks", 4, 1, 64, "shared blocks a burst hammers"),
        Knob("quiet_blocks", 32, 1, 4096,
             "per-warp private streaming set in quiet phases"),
    )

    def build_warp(self, b: TraceBuilder, cfg: GPUConfig,
                   rng: random.Random) -> None:
        phase_len = self.knob("phase_len")
        quiet = self.knob("quiet_blocks")
        gid = b.trace.core_id * cfg.warps_per_core + b.trace.warp_id
        private = BURST_PRIV + gid * quiet
        for it in range(self.iterations()):
            if (it // phase_len) % 2 == 0:
                # Quiet: stream the private set; trains predictors long.
                b.load(private + it % quiet)
                b.load(private + (it * 3 + 1) % quiet)
                b.compute(rng.randrange(4, 16))
            else:
                # Burst: write-heavy contention on the shared hot set.
                blk = BURST_HOT + rng.randrange(self.knob("hot_blocks"))
                if rng.random() < self.knob("burst_p_store"):
                    b.store(blk)
                else:
                    b.load(blk)
