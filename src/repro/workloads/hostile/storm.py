"""STORM — timestamp-rollover storm.

Under RCC every store to a leased block jumps the writer's logical clock
past the lease end (paper §III-C: stores write "in the future"), so a
write-heavy loop over a small hot set advances logical time by roughly one
lease per store. Run against a *narrow* timestamp width (the storm
regime's config override), that drives the rollover machinery — the
epoch-clamp path Tardis's proof paper treats as the hard case — hundreds
of times per run instead of the near-zero a benign workload sees.

The op mix is the inverse of every paper benchmark: mostly stores, with
just enough lease-taking loads that each store lands on a block somebody
holds fresh, maximizing both lease jumps and (under MESI) invalidations.
"""

from __future__ import annotations

import random

from repro.config import GPUConfig
from repro.workloads.base import TraceBuilder
from repro.workloads.hostile.base import HOSTILE_BASE, HostileWorkload, Knob

#: Block index bases; each generator gets its own slice of the hostile
#: region (above every benchmark model's range) so suites never alias.
STORM_HOT = HOSTILE_BASE
STORM_COL = STORM_HOT + 256   # per-warp private escalator columns


class RolloverStorm(HostileWorkload):
    name = "storm"
    description = ("rollover storm: write-heavy traffic over a tiny hot "
                   "set advances logical time ~a lease per store")
    base_iterations = 48
    KNOBS = (
        Knob("hot_blocks", 4, 1, 64,
             "globally shared blocks every warp hammers"),
        Knob("p_load", 0.6, 0.0, 1.0,
             "P(lease-taking load immediately before a hot-set store)"),
        Knob("p_remote", 0.5, 0.0, 1.0,
             "P(target the shared hot set vs the warp's own escalator)"),
    )

    def build_warp(self, b: TraceBuilder, cfg: GPUConfig,
                   rng: random.Random) -> None:
        hot = self.knob("hot_blocks")
        gid = b.trace.core_id * cfg.warps_per_core + b.trace.warp_id
        escalator = STORM_COL + gid
        for _ in range(self.iterations()):
            if rng.random() < self.knob("p_remote"):
                # Shared contention: a load takes a lease, the store has
                # to jump past it — and under MESI, an invalidation round.
                blk = STORM_HOT + rng.randrange(hot)
                if rng.random() < self.knob("p_load"):
                    b.load(blk)
                b.store(blk)
            else:
                # Private escalator: each (load, store) pair climbs the
                # core's clock by ~one lease, the guaranteed engine of
                # the storm (same ladder the rollover unit tests use).
                b.load(escalator)
                b.store(escalator)
