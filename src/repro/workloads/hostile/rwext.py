"""RWEXT — reader/writer ratio extremes.

Sweeps the read fraction to the edges no benchmark occupies: a single
producer invalidating an arena of readers (``read_frac`` near 1), or an
all-writers melee with no read reuse at all (near 0). Tardis 2.0's
lease/renewal analysis predicts exactly these re-read-distance extremes
are where lease prediction mispredicts hardest — near-1 wants maximal
leases, near-0 makes every lease a liability.
"""

from __future__ import annotations

import random

from repro.config import GPUConfig
from repro.workloads.base import TraceBuilder
from repro.workloads.hostile.base import HOSTILE_BASE, HostileWorkload, Knob

RW_BASE = HOSTILE_BASE + (1 << 13)


class ReaderWriterExtremes(HostileWorkload):
    name = "rwext"
    description = ("reader/writer extremes: one producer vs an arena of "
                   "readers, or an all-writers melee")
    base_iterations = 24
    KNOBS = (
        Knob("read_frac", 0.95, 0.0, 1.0,
             "fraction of a writer's accesses that are reads"),
        Knob("shared_blocks", 8, 1, 256, "size of the shared arena"),
        Knob("writers", 1, 0, 1024,
             "warps allowed to store (0 = every warp may write)"),
    )

    def build_warp(self, b: TraceBuilder, cfg: GPUConfig,
                   rng: random.Random) -> None:
        writers = self.knob("writers")
        gid = b.trace.core_id * cfg.warps_per_core + b.trace.warp_id
        can_write = writers == 0 or gid < writers
        arena = self.knob("shared_blocks")
        for _ in range(self.iterations()):
            blk = RW_BASE + rng.randrange(arena)
            if can_write and rng.random() >= self.knob("read_frac"):
                b.store(blk)
            else:
                b.load(blk)
            if rng.random() < 0.25:
                b.compute(rng.randrange(1, 12))
