"""THRASH — huge streamed working sets that thrash the L2.

Every warp strides through its own slice of a working set up to a million
blocks wide with essentially zero reuse, so nearly every access misses
both cache levels and the run is bounded by L2/DRAM occupancy (MSHRs, row
misses, eviction bandwidth). A small probability of touching a shared hot
set keeps coherence in the loop — evictions of leased/owned lines under
capacity pressure are exactly the path the MESI recall race of PR 3 hid
in. Latency histograms here live at the saturation edge, which is what
flushed out the Histogram merge bug this PR fixes.
"""

from __future__ import annotations

import random

from repro.config import GPUConfig
from repro.workloads.base import TraceBuilder
from repro.workloads.hostile.base import HOSTILE_BASE, HostileWorkload, Knob

THRASH_BASE = HOSTILE_BASE + (1 << 21)
THRASH_HOT = HOSTILE_BASE + (1 << 16)

#: Large prime stride decorrelates consecutive accesses from set indexing.
_STRIDE = 9973


class L2Thrash(HostileWorkload):
    name = "thrash"
    description = ("L2 thrash: near-zero-reuse streaming over a working "
                   "set up to a million blocks")
    base_iterations = 24
    KNOBS = (
        Knob("working_set", 1 << 16, 1 << 8, 1 << 20,
             "blocks in the streamed working set"),
        Knob("p_store", 0.3, 0.0, 1.0, "P(an access is a store)"),
        Knob("p_shared", 0.05, 0.0, 1.0,
             "P(touch the small shared hot set instead of the stream)"),
    )

    def build_warp(self, b: TraceBuilder, cfg: GPUConfig,
                   rng: random.Random) -> None:
        ws = self.knob("working_set")
        gid = b.trace.core_id * cfg.warps_per_core + b.trace.warp_id
        pos = (gid * 7919) % ws
        for _ in range(self.iterations()):
            if rng.random() < self.knob("p_shared"):
                blk = THRASH_HOT + rng.randrange(8)
            else:
                pos = (pos + _STRIDE) % ws
                blk = THRASH_BASE + pos
            if rng.random() < self.knob("p_store"):
                b.store(blk)
            else:
                b.load(blk)
