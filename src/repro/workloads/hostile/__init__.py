"""Hostile-workload lab: parameterized pathological generators.

Five regimes target the cliffs a logical-lease coherence design hides off
the benchmark grid (ROADMAP "scenario diversity"; Tardis 2.0's lease
analysis names the extremes):

* ``storm`` — timestamp-rollover storms (tiny width + write-heavy);
* ``pingpong`` — false-sharing ping-pong;
* ``rwext`` — reader/writer ratio extremes;
* ``bursty`` — phase-changing traffic that poisons predictors;
* ``thrash`` — million-block working sets that thrash the L2.

``repro-fuzz --workloads`` mutates these generators' knobs through the
sweep executor under the sanitizer, hunting performance cliffs against
``benchmarks/perf_baseline.json``.
"""

from repro.workloads.hostile.base import (
    HostileWorkload, Knob, parse_spec,
)
from repro.workloads.hostile.bursty import BurstyPhases
from repro.workloads.hostile.pingpong import FalseSharingPingPong
from repro.workloads.hostile.regimes import (
    HOSTILE_WORKLOADS, HostileRegime, REGIMES, get_regime, select_regimes,
)
from repro.workloads.hostile.rwext import ReaderWriterExtremes
from repro.workloads.hostile.storm import RolloverStorm
from repro.workloads.hostile.thrash import L2Thrash

__all__ = [
    "BurstyPhases",
    "FalseSharingPingPong",
    "HOSTILE_WORKLOADS",
    "HostileRegime",
    "HostileWorkload",
    "Knob",
    "L2Thrash",
    "REGIMES",
    "ReaderWriterExtremes",
    "RolloverStorm",
    "get_regime",
    "parse_spec",
    "select_regimes",
]
