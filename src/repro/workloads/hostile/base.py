"""Hostile workload machinery: knob-parameterized pathological generators.

The paper's twelve benchmark models reproduce *observed* sharing patterns;
the hostile suite instead targets the patterns nobody benchmarked — the
regimes where a timestamp-coherence design is predicted to fall off a
cliff (rollover storms, lease-expiry thrash, capacity blowups). Each
generator is a :class:`HostileWorkload`: a normal :class:`Workload` whose
behavior is additionally shaped by a declared set of :class:`Knob`\\ s, so
the workload fuzzer can mutate the *workload*, not the litmus program.

Knobbed workloads are addressable by **spec strings** —
``"storm:hot_blocks=2,p_load=0.8"`` — which round-trip through
``HostileWorkload.spec`` and :func:`parse_spec`. A spec is an ordinary
workload name to the rest of the system (it rides in
``SimCell.workload``, hashes into cache keys, survives a fork to sweep
workers), which is what lets hostile cells flow through the existing
executor, sanitizer, and result cache unchanged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Tuple

from repro.errors import ConfigError
from repro.workloads.base import Workload

#: First block index of the hostile suite's address region. The paper's
#: benchmark models address blocks up to ~2**22 (their private arenas
#: scale with warp count); everything hostile lives above 2**23 so the
#: two suites can never alias a cache line.
HOSTILE_BASE = 1 << 23


@dataclass(frozen=True)
class Knob:
    """One tunable dimension of a hostile generator.

    ``default`` fixes the knob's type: an ``int`` default makes an integer
    knob (sampled log2-uniform when the range spans decades, so a
    ``working_set`` of 256..1M blocks explores every order of magnitude),
    a ``float`` default a real-valued one.
    """

    name: str
    default: Any
    lo: Any
    hi: Any
    doc: str = ""

    @property
    def is_int(self) -> bool:
        return isinstance(self.default, int) and \
            not isinstance(self.default, bool)

    def coerce(self, raw: Any) -> Any:
        """Parse and range-check one user/fuzzer-supplied value."""
        try:
            value = int(raw) if self.is_int else float(raw)
        except (TypeError, ValueError):
            raise ConfigError(
                f"knob {self.name!r} needs "
                f"{'an integer' if self.is_int else 'a number'}, "
                f"got {raw!r}") from None
        if not (self.lo <= value <= self.hi):
            raise ConfigError(
                f"knob {self.name!r}={value} outside [{self.lo}, {self.hi}]")
        return value

    def sample(self, rng: random.Random) -> Any:
        """One mutated value; floats are rounded so the resulting spec
        string re-parses to the identical value."""
        if self.is_int:
            if self.lo > 0 and self.hi // self.lo >= 64:
                exp = rng.uniform(self.lo.bit_length() - 1,
                                  self.hi.bit_length() - 1)
                return max(self.lo, min(self.hi, int(round(2 ** exp))))
            return rng.randint(self.lo, self.hi)
        return round(rng.uniform(self.lo, self.hi), 4)


def parse_spec(spec: str) -> Tuple[str, Dict[str, str]]:
    """Split ``"name:knob=v,knob=v"`` into (name, raw knob dict)."""
    name, sep, rest = spec.partition(":")
    knobs: Dict[str, str] = {}
    if sep:
        for item in rest.split(","):
            if not item.strip():
                continue
            key, eq, value = item.partition("=")
            if not eq or not key.strip() or not value.strip():
                raise ConfigError(
                    f"bad knob assignment {item!r} in workload spec "
                    f"{spec!r} (want name:knob=value,knob=value)")
            knobs[key.strip()] = value.strip()
    return name.strip().lower(), knobs


def _format_value(value: Any) -> str:
    """Canonical spec rendering (floats via repr, which round-trips)."""
    return repr(value) if isinstance(value, float) else str(value)


class HostileWorkload(Workload):
    """A pathological generator with declared, mutable knobs."""

    category = "hostile"
    KNOBS: Tuple[Knob, ...] = ()

    def __init__(self, intensity: float = 1.0, seed: int = 1234,
                 **knobs: Any):
        super().__init__(intensity=intensity, seed=seed)
        specs = {k.name: k for k in self.KNOBS}
        unknown = sorted(set(knobs) - set(specs))
        if unknown:
            raise ConfigError(
                f"unknown knob(s) {unknown} for workload {self.name!r}; "
                f"available: {sorted(specs)}")
        self.knobs: Dict[str, Any] = {
            name: (spec.coerce(knobs[name]) if name in knobs
                   else spec.default)
            for name, spec in specs.items()
        }

    def knob(self, name: str) -> Any:
        return self.knobs[name]

    @property
    def spec(self) -> str:
        """Canonical spec string; omits knobs still at their default."""
        parts = [f"{k.name}={_format_value(self.knobs[k.name])}"
                 for k in self.KNOBS if self.knobs[k.name] != k.default]
        return self.name if not parts else f"{self.name}:{','.join(parts)}"

    @classmethod
    def sample_knobs(cls, rng: random.Random,
                     names: Tuple[str, ...] = ()) -> Dict[str, Any]:
        """Mutate the named knobs (all of them when ``names`` is empty)."""
        wanted = set(names) if names else {k.name for k in cls.KNOBS}
        return {k.name: k.sample(rng) for k in cls.KNOBS
                if k.name in wanted}

    def __repr__(self) -> str:  # pragma: no cover
        return f"<HostileWorkload {self.spec}>"
