"""PINGPONG — false-sharing ping-pong.

Every warp logically owns a private word, but all the words share a
handful of cache blocks, so at coherence granularity each access fights
every other warp for the same line. MESI degenerates to an invalidation
ping-pong; lease protocols see the block's write frequency crush the
lease/lifetime predictors to their minimum. No paper benchmark does this
on purpose — production code does it constantly by accident.
"""

from __future__ import annotations

import random

from repro.config import GPUConfig
from repro.workloads.base import TraceBuilder
from repro.workloads.hostile.base import HOSTILE_BASE, HostileWorkload, Knob

PING_BASE = HOSTILE_BASE + (1 << 12)


class FalseSharingPingPong(HostileWorkload):
    name = "pingpong"
    description = ("false sharing: all warps' 'private' words share a few "
                   "blocks, ping-ponging ownership every access")
    base_iterations = 24
    KNOBS = (
        Knob("lines", 2, 1, 16, "contended blocks the words are packed in"),
        Knob("p_store", 0.5, 0.0, 1.0, "P(an access writes its word)"),
        Knob("burst", 3, 1, 16, "back-to-back accesses per turn"),
    )

    def build_warp(self, b: TraceBuilder, cfg: GPUConfig,
                   rng: random.Random) -> None:
        lines = self.knob("lines")
        burst = self.knob("burst")
        for it in range(self.iterations()):
            # Deterministic rotation keeps every warp on the same line at
            # the same phase — the maximal-collision schedule.
            blk = PING_BASE + (it % lines)
            for _ in range(burst):
                if rng.random() < self.knob("p_store"):
                    b.store(blk)
                else:
                    b.load(blk)
            # Stagger turns slightly so protocol queues, not the trace,
            # decide the interleaving.
            b.compute(1 + (b.trace.warp_id % 3))
