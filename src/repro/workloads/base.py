"""Workload base classes and trace-building helpers."""

from __future__ import annotations

import random
from typing import List

from repro.config import GPUConfig
from repro.gpu.trace import (
    TraceOp,
    WarpTrace,
    atomic_op,
    barrier_op,
    compute_op,
    fence_op,
    load_op,
    store_op,
)

BLOCK = 128  # bytes per cache block; all generators address whole blocks


class TraceBuilder:
    """Convenience wrapper for emitting ops into one warp's trace."""

    def __init__(self, core_id: int, warp_id: int):
        self.trace = WarpTrace(core_id, warp_id)
        self._barrier_seq = 0

    def load(self, block_index: int) -> None:
        self.trace.append(load_op(block_index * BLOCK))

    def store(self, block_index: int) -> None:
        self.trace.append(store_op(block_index * BLOCK))

    def atomic(self, block_index: int) -> None:
        self.trace.append(atomic_op(block_index * BLOCK))

    def compute(self, cycles: int) -> None:
        if cycles > 0:
            self.trace.append(compute_op(cycles))

    def fence(self) -> None:
        self.trace.append(fence_op())

    def barrier(self, barrier_id: int) -> None:
        self.trace.append(barrier_op(barrier_id))


class Workload:
    """A named, categorized benchmark model.

    Subclasses set ``name``, ``category`` ("inter" or "intra"),
    ``description``, and implement :meth:`build_warp`, emitting the op
    stream for one warp given a seeded RNG. ``intensity`` scales iteration
    counts so tests can run tiny instances and benchmarks realistic ones.
    """

    name = "base"
    category = "inter"
    description = ""
    #: Baseline iterations per warp at intensity 1.0.
    base_iterations = 40

    def __init__(self, intensity: float = 1.0, seed: int = 1234):
        self.intensity = intensity
        self.seed = seed

    def iterations(self) -> int:
        return max(2, int(self.base_iterations * self.intensity))

    # ------------------------------------------------------------------
    def build_warp(self, b: TraceBuilder, cfg: GPUConfig,
                   rng: random.Random) -> None:
        raise NotImplementedError

    def generate(self, cfg: GPUConfig) -> List[List[WarpTrace]]:
        """Produce per-core, per-warp traces for ``cfg``'s machine shape."""
        out: List[List[WarpTrace]] = []
        for core in range(cfg.n_cores):
            core_traces = []
            for warp in range(cfg.warps_per_core):
                name_tag = sum(ord(ch) * (i + 1)
                               for i, ch in enumerate(self.name))
                rng = random.Random(
                    self.seed * 1_000_003 + name_tag * 7919
                    + core * 911 + warp * 31
                )
                b = TraceBuilder(core, warp)
                self.build_warp(b, cfg, rng)
                core_traces.append(b.trace)
            out.append(core_traces)
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Workload {self.name} ({self.category})>"
