"""Simulation configuration.

The defaults mirror the paper's Table III (an NVIDIA GTX 480 / Fermi-class
part): 16 SMs with 48 warps each, 32 KB 4-way L1s, a 1 MB 8-bank L2, a
crossbar per direction moving one 32-bit flit per cycle per port, and GDDR
with a 460-cycle minimum latency. ``GPUConfig.small()`` provides a scaled-
down configuration for unit tests, where simulating 768 warps per run would
be wasteful.

Consistency/protocol selection lives here too: a run is fully described by
``(GPUConfig, protocol name, workload)``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import ConfigError

#: Protocols implemented by the simulator, with the consistency model each
#: enforces at the core. ``sc`` means the core issues at most one global
#: memory op per warp (the paper's "naive SC"); ``wo`` means weak ordering
#: with fences.
PROTOCOLS: Dict[str, str] = {
    "MESI": "sc",
    "TCS": "sc",
    "TCW": "wo",
    "RCC": "sc",
    "RCC-WO": "wo",
    "SC-IDEAL": "sc",
}


@dataclass
class CacheConfig:
    """Geometry and latency of one cache level."""

    size_bytes: int
    assoc: int
    block_bytes: int = 128
    mshr_entries: int = 128
    hit_latency: int = 1

    @property
    def n_sets(self) -> int:
        n_blocks = self.size_bytes // self.block_bytes
        if n_blocks % self.assoc:
            raise ConfigError(
                f"cache of {n_blocks} blocks not divisible by assoc {self.assoc}"
            )
        return n_blocks // self.assoc

    def validate(self) -> None:
        if self.size_bytes <= 0:
            raise ConfigError("cache size must be positive")
        if self.block_bytes & (self.block_bytes - 1):
            raise ConfigError("block size must be a power of two")
        _ = self.n_sets  # raises on bad geometry


@dataclass
class NoCConfig:
    """Crossbar interconnect parameters (one xbar per direction)."""

    flit_bytes: int = 4
    link_latency: int = 8            # fixed traversal pipeline depth
    flits_per_cycle_per_port: int = 1
    #: Virtual channels needed for deadlock freedom: 5 for MESI (separate
    #: request/response/invalidate/ack/writeback networks), 2 otherwise.
    virtual_channels: int = 2


@dataclass
class DRAMConfig:
    """Banked GDDR model with row-buffer timing (simplified FR-FCFS)."""

    banks_per_partition: int = 8
    row_bytes: int = 2048
    row_hit_cycles: int = 20         # ~tCL + burst
    row_miss_cycles: int = 64        # precharge + activate + CAS
    min_latency: int = 460           # paper Table III minimum latency
    queue_depth: int = 64


@dataclass
class TimestampConfig:
    """Logical-timestamp parameters for RCC (paper §III-D/E)."""

    bits: int = 32
    lease_min: int = 8
    lease_max: int = 2048
    lease_default: int = 64          # fixed lease when the predictor is off
    predictor_enabled: bool = True
    renew_enabled: bool = True
    #: Lease-sizing strategy the L2 banks run (see
    #: :mod:`repro.core.lease_policy`): ``fixed`` (the paper's §III-E
    #: predictor, the default), ``adaptive`` (per-block re-read distance),
    #: or ``pc-pred`` (PC-indexed renew predictor). Part of every sweep
    #: cell's content key.
    lease_policy: str = "fixed"
    #: Livelock avoidance: bump each core's logical now by 1 every N cycles
    #: (0 disables the tick).
    livelock_tick_cycles: int = 10_000

    @property
    def max_timestamp(self) -> int:
        return (1 << self.bits) - 1

    def validate(self) -> None:
        if not (self.lease_min <= self.lease_default <= self.lease_max):
            raise ConfigError(
                "lease bounds must satisfy min <= default <= max: "
                f"{self.lease_min}/{self.lease_default}/{self.lease_max}"
            )
        if self.bits < 8:
            raise ConfigError("timestamps narrower than 8 bits are untested")
        if self.lease_max >= self.max_timestamp:
            raise ConfigError("lease_max must be far below timestamp rollover")
        # Imported here: lease_policy.py needs TimestampConfig at module
        # load, so the registry lookup must stay call-time only.
        from repro.core.lease_policy import LEASE_POLICIES
        if self.lease_policy not in LEASE_POLICIES:
            raise ConfigError(
                f"unknown lease policy {self.lease_policy!r}; choose from "
                f"{sorted(LEASE_POLICIES)}")


@dataclass
class TCConfig:
    """Physical-timestamp parameters for TC-strong / TC-weak.

    TC predicts per-block lifetimes (Singh et al.): blocks written often
    get short leases (so TCS stores barely wait and TCW fences see small
    GWCTs), read-mostly blocks get long ones. Prediction halves on a write
    and doubles when an expired copy turns out not to have been written.
    """

    lease_min: int = 512
    lease_default: int = 2048
    lease_max: int = 16384
    predictor_enabled: bool = True

    @property
    def lease_cycles(self) -> int:
        """Initial/fixed lease (used verbatim when prediction is off)."""
        return self.lease_default


@dataclass
class GPUConfig:
    """Full machine description (paper Table III by default)."""

    n_cores: int = 16
    warps_per_core: int = 48
    warp_width: int = 32
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=32 * 1024, assoc=4)
    )
    l2_banks: int = 8
    l2_per_bank: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=128 * 1024, assoc=8, hit_latency=40
        )
    )
    #: Minimum L1-to-L2-and-back latency (paper: 340-cycle minimum to L2).
    l2_min_round_trip: int = 340
    noc: NoCConfig = field(default_factory=NoCConfig)
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    ts: TimestampConfig = field(default_factory=TimestampConfig)
    tc: TCConfig = field(default_factory=TCConfig)
    #: Max outstanding global memory ops per warp under weak ordering.
    wo_max_outstanding: int = 8
    max_cycles: int = 200_000_000

    def validate(self) -> None:
        if self.n_cores <= 0 or self.warps_per_core <= 0:
            raise ConfigError("need at least one core and one warp")
        self.l1.validate()
        self.l2_per_bank.validate()
        self.ts.validate()
        if self.l1.block_bytes != self.l2_per_bank.block_bytes:
            raise ConfigError("L1/L2 block sizes must match")

    # ------------------------------------------------------------------
    # Canned configurations
    # ------------------------------------------------------------------
    @staticmethod
    def paper() -> "GPUConfig":
        """The paper's Table III configuration."""
        return GPUConfig()

    @staticmethod
    def small() -> "GPUConfig":
        """A scaled-down machine for unit tests: 4 SMs x 4 warps, small
        caches so that evictions/expirations happen quickly."""
        return GPUConfig(
            n_cores=4,
            warps_per_core=4,
            l1=CacheConfig(size_bytes=4 * 1024, assoc=4, mshr_entries=16),
            l2_banks=2,
            l2_per_bank=CacheConfig(
                size_bytes=16 * 1024, assoc=8, hit_latency=10, mshr_entries=16
            ),
            l2_min_round_trip=40,
            dram=DRAMConfig(min_latency=60, row_hit_cycles=8, row_miss_cycles=20),
            noc=NoCConfig(link_latency=4),
            ts=TimestampConfig(livelock_tick_cycles=2_000),
            max_cycles=20_000_000,
        )

    @staticmethod
    def bench() -> "GPUConfig":
        """Mid-sized machine used by the figure-regeneration benchmarks:
        a smaller core/bank count than Table III (so full protocol sweeps
        finish in seconds under pytest-benchmark) but the paper's *memory
        latencies* — the quantities every coherence trade-off is priced
        in — are kept at their Table III values."""
        cfg = GPUConfig(
            n_cores=8,
            warps_per_core=24,
            l1=CacheConfig(size_bytes=16 * 1024, assoc=4, mshr_entries=64),
            l2_banks=4,
            l2_per_bank=CacheConfig(
                size_bytes=64 * 1024, assoc=8, hit_latency=40, mshr_entries=64
            ),
            l2_min_round_trip=340,
            dram=DRAMConfig(min_latency=460),
            noc=NoCConfig(link_latency=8),
        )
        return cfg

    def replace(self, **kwargs) -> "GPUConfig":
        """Return a copy with top-level fields replaced."""
        return dataclasses.replace(self, **kwargs)


#: Canned machine configurations addressable by name (CLI flags, corpus
#: cell files). Names, not serialized configs, keep reproducer files
#: readable and robust to config-schema evolution.
NAMED_CONFIGS = {
    "small": GPUConfig.small,
    "bench": GPUConfig.bench,
    "paper": GPUConfig.paper,
}


def named_config(name: str) -> GPUConfig:
    """Instantiate a canned configuration by name."""
    try:
        return NAMED_CONFIGS[name.lower()]()
    except KeyError:
        raise ConfigError(
            f"unknown config {name!r}; choose from {sorted(NAMED_CONFIGS)}"
        ) from None


def consistency_of(protocol: str) -> str:
    """Consistency model ('sc' or 'wo') enforced with ``protocol``."""
    try:
        return PROTOCOLS[protocol]
    except KeyError:
        raise ConfigError(
            f"unknown protocol {protocol!r}; choose from {sorted(PROTOCOLS)}"
        ) from None
